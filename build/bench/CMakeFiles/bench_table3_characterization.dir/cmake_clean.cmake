file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_characterization.dir/bench_table3_characterization.cpp.o"
  "CMakeFiles/bench_table3_characterization.dir/bench_table3_characterization.cpp.o.d"
  "bench_table3_characterization"
  "bench_table3_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
