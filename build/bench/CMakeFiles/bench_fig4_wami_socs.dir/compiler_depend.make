# Empty compiler generated dependencies file for bench_fig4_wami_socs.
# This may be replaced when dependencies are built.
