file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_wami_socs.dir/bench_fig4_wami_socs.cpp.o"
  "CMakeFiles/bench_fig4_wami_socs.dir/bench_fig4_wami_socs.cpp.o.d"
  "bench_fig4_wami_socs"
  "bench_fig4_wami_socs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_wami_socs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
