file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_runtime.dir/bench_ablation_runtime.cpp.o"
  "CMakeFiles/bench_ablation_runtime.dir/bench_ablation_runtime.cpp.o.d"
  "bench_ablation_runtime"
  "bench_ablation_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
