file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_profiles.dir/bench_fig3_profiles.cpp.o"
  "CMakeFiles/bench_fig3_profiles.dir/bench_fig3_profiles.cpp.o.d"
  "bench_fig3_profiles"
  "bench_fig3_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
