# Empty dependencies file for bench_ablation_strategy.
# This may be replaced when dependencies are built.
