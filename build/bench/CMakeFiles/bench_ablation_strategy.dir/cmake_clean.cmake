file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_strategy.dir/bench_ablation_strategy.cpp.o"
  "CMakeFiles/bench_ablation_strategy.dir/bench_ablation_strategy.cpp.o.d"
  "bench_ablation_strategy"
  "bench_ablation_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
