file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_vs_monolithic.dir/bench_table5_vs_monolithic.cpp.o"
  "CMakeFiles/bench_table5_vs_monolithic.dir/bench_table5_vs_monolithic.cpp.o.d"
  "bench_table5_vs_monolithic"
  "bench_table5_vs_monolithic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_vs_monolithic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
