# Empty compiler generated dependencies file for bench_table5_vs_monolithic.
# This may be replaced when dependencies are built.
