file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_bitstreams.dir/bench_table6_bitstreams.cpp.o"
  "CMakeFiles/bench_table6_bitstreams.dir/bench_table6_bitstreams.cpp.o.d"
  "bench_table6_bitstreams"
  "bench_table6_bitstreams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_bitstreams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
