file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_strategies.dir/bench_table1_strategies.cpp.o"
  "CMakeFiles/bench_table1_strategies.dir/bench_table1_strategies.cpp.o.d"
  "bench_table1_strategies"
  "bench_table1_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
