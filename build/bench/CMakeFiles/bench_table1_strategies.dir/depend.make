# Empty dependencies file for bench_table1_strategies.
# This may be replaced when dependencies are built.
