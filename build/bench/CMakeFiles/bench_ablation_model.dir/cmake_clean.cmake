file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_model.dir/bench_ablation_model.cpp.o"
  "CMakeFiles/bench_ablation_model.dir/bench_ablation_model.cpp.o.d"
  "bench_ablation_model"
  "bench_ablation_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
