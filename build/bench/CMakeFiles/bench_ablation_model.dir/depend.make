# Empty dependencies file for bench_ablation_model.
# This may be replaced when dependencies are built.
