file(REMOVE_RECURSE
  "CMakeFiles/presp_hls.dir/estimator.cpp.o"
  "CMakeFiles/presp_hls.dir/estimator.cpp.o.d"
  "CMakeFiles/presp_hls.dir/kernel_spec.cpp.o"
  "CMakeFiles/presp_hls.dir/kernel_spec.cpp.o.d"
  "CMakeFiles/presp_hls.dir/library.cpp.o"
  "CMakeFiles/presp_hls.dir/library.cpp.o.d"
  "CMakeFiles/presp_hls.dir/spec_io.cpp.o"
  "CMakeFiles/presp_hls.dir/spec_io.cpp.o.d"
  "libpresp_hls.a"
  "libpresp_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presp_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
