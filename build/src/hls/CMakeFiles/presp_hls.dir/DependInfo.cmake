
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hls/estimator.cpp" "src/hls/CMakeFiles/presp_hls.dir/estimator.cpp.o" "gcc" "src/hls/CMakeFiles/presp_hls.dir/estimator.cpp.o.d"
  "/root/repo/src/hls/kernel_spec.cpp" "src/hls/CMakeFiles/presp_hls.dir/kernel_spec.cpp.o" "gcc" "src/hls/CMakeFiles/presp_hls.dir/kernel_spec.cpp.o.d"
  "/root/repo/src/hls/library.cpp" "src/hls/CMakeFiles/presp_hls.dir/library.cpp.o" "gcc" "src/hls/CMakeFiles/presp_hls.dir/library.cpp.o.d"
  "/root/repo/src/hls/spec_io.cpp" "src/hls/CMakeFiles/presp_hls.dir/spec_io.cpp.o" "gcc" "src/hls/CMakeFiles/presp_hls.dir/spec_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/presp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/presp_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/presp_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
