file(REMOVE_RECURSE
  "libpresp_hls.a"
)
