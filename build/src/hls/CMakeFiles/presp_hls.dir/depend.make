# Empty dependencies file for presp_hls.
# This may be replaced when dependencies are built.
