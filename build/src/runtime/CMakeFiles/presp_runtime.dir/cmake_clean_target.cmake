file(REMOVE_RECURSE
  "libpresp_runtime.a"
)
