
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/api.cpp" "src/runtime/CMakeFiles/presp_runtime.dir/api.cpp.o" "gcc" "src/runtime/CMakeFiles/presp_runtime.dir/api.cpp.o.d"
  "/root/repo/src/runtime/bitstream_store.cpp" "src/runtime/CMakeFiles/presp_runtime.dir/bitstream_store.cpp.o" "gcc" "src/runtime/CMakeFiles/presp_runtime.dir/bitstream_store.cpp.o.d"
  "/root/repo/src/runtime/boot.cpp" "src/runtime/CMakeFiles/presp_runtime.dir/boot.cpp.o" "gcc" "src/runtime/CMakeFiles/presp_runtime.dir/boot.cpp.o.d"
  "/root/repo/src/runtime/health.cpp" "src/runtime/CMakeFiles/presp_runtime.dir/health.cpp.o" "gcc" "src/runtime/CMakeFiles/presp_runtime.dir/health.cpp.o.d"
  "/root/repo/src/runtime/manager.cpp" "src/runtime/CMakeFiles/presp_runtime.dir/manager.cpp.o" "gcc" "src/runtime/CMakeFiles/presp_runtime.dir/manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/presp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/presp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/presp_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/presp_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/presp_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/presp_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/presp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/presp_fabric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
