file(REMOVE_RECURSE
  "CMakeFiles/presp_runtime.dir/api.cpp.o"
  "CMakeFiles/presp_runtime.dir/api.cpp.o.d"
  "CMakeFiles/presp_runtime.dir/bitstream_store.cpp.o"
  "CMakeFiles/presp_runtime.dir/bitstream_store.cpp.o.d"
  "CMakeFiles/presp_runtime.dir/boot.cpp.o"
  "CMakeFiles/presp_runtime.dir/boot.cpp.o.d"
  "CMakeFiles/presp_runtime.dir/health.cpp.o"
  "CMakeFiles/presp_runtime.dir/health.cpp.o.d"
  "CMakeFiles/presp_runtime.dir/manager.cpp.o"
  "CMakeFiles/presp_runtime.dir/manager.cpp.o.d"
  "libpresp_runtime.a"
  "libpresp_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presp_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
