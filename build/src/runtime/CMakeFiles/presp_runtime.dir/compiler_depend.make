# Empty compiler generated dependencies file for presp_runtime.
# This may be replaced when dependencies are built.
