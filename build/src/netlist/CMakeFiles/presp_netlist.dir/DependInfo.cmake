
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/components.cpp" "src/netlist/CMakeFiles/presp_netlist.dir/components.cpp.o" "gcc" "src/netlist/CMakeFiles/presp_netlist.dir/components.cpp.o.d"
  "/root/repo/src/netlist/config_io.cpp" "src/netlist/CMakeFiles/presp_netlist.dir/config_io.cpp.o" "gcc" "src/netlist/CMakeFiles/presp_netlist.dir/config_io.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/presp_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/presp_netlist.dir/netlist.cpp.o.d"
  "/root/repo/src/netlist/rtl.cpp" "src/netlist/CMakeFiles/presp_netlist.dir/rtl.cpp.o" "gcc" "src/netlist/CMakeFiles/presp_netlist.dir/rtl.cpp.o.d"
  "/root/repo/src/netlist/soc_config.cpp" "src/netlist/CMakeFiles/presp_netlist.dir/soc_config.cpp.o" "gcc" "src/netlist/CMakeFiles/presp_netlist.dir/soc_config.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/presp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/presp_fabric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
