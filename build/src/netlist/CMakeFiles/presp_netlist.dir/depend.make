# Empty dependencies file for presp_netlist.
# This may be replaced when dependencies are built.
