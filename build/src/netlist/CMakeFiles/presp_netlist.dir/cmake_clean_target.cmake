file(REMOVE_RECURSE
  "libpresp_netlist.a"
)
