file(REMOVE_RECURSE
  "CMakeFiles/presp_netlist.dir/components.cpp.o"
  "CMakeFiles/presp_netlist.dir/components.cpp.o.d"
  "CMakeFiles/presp_netlist.dir/config_io.cpp.o"
  "CMakeFiles/presp_netlist.dir/config_io.cpp.o.d"
  "CMakeFiles/presp_netlist.dir/netlist.cpp.o"
  "CMakeFiles/presp_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/presp_netlist.dir/rtl.cpp.o"
  "CMakeFiles/presp_netlist.dir/rtl.cpp.o.d"
  "CMakeFiles/presp_netlist.dir/soc_config.cpp.o"
  "CMakeFiles/presp_netlist.dir/soc_config.cpp.o.d"
  "libpresp_netlist.a"
  "libpresp_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presp_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
