
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/calibration.cpp" "src/core/CMakeFiles/presp_core.dir/calibration.cpp.o" "gcc" "src/core/CMakeFiles/presp_core.dir/calibration.cpp.o.d"
  "/root/repo/src/core/flow.cpp" "src/core/CMakeFiles/presp_core.dir/flow.cpp.o" "gcc" "src/core/CMakeFiles/presp_core.dir/flow.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/presp_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/presp_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/reference_designs.cpp" "src/core/CMakeFiles/presp_core.dir/reference_designs.cpp.o" "gcc" "src/core/CMakeFiles/presp_core.dir/reference_designs.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/presp_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/presp_core.dir/report.cpp.o.d"
  "/root/repo/src/core/runtime_model.cpp" "src/core/CMakeFiles/presp_core.dir/runtime_model.cpp.o" "gcc" "src/core/CMakeFiles/presp_core.dir/runtime_model.cpp.o.d"
  "/root/repo/src/core/strategy.cpp" "src/core/CMakeFiles/presp_core.dir/strategy.cpp.o" "gcc" "src/core/CMakeFiles/presp_core.dir/strategy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/presp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/presp_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/presp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/presp_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/floorplan/CMakeFiles/presp_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/pnr/CMakeFiles/presp_pnr.dir/DependInfo.cmake"
  "/root/repo/build/src/bitstream/CMakeFiles/presp_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/presp_hls.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
