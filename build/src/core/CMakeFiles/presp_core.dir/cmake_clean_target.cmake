file(REMOVE_RECURSE
  "libpresp_core.a"
)
