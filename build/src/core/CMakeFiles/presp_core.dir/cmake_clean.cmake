file(REMOVE_RECURSE
  "CMakeFiles/presp_core.dir/calibration.cpp.o"
  "CMakeFiles/presp_core.dir/calibration.cpp.o.d"
  "CMakeFiles/presp_core.dir/flow.cpp.o"
  "CMakeFiles/presp_core.dir/flow.cpp.o.d"
  "CMakeFiles/presp_core.dir/metrics.cpp.o"
  "CMakeFiles/presp_core.dir/metrics.cpp.o.d"
  "CMakeFiles/presp_core.dir/reference_designs.cpp.o"
  "CMakeFiles/presp_core.dir/reference_designs.cpp.o.d"
  "CMakeFiles/presp_core.dir/report.cpp.o"
  "CMakeFiles/presp_core.dir/report.cpp.o.d"
  "CMakeFiles/presp_core.dir/runtime_model.cpp.o"
  "CMakeFiles/presp_core.dir/runtime_model.cpp.o.d"
  "CMakeFiles/presp_core.dir/strategy.cpp.o"
  "CMakeFiles/presp_core.dir/strategy.cpp.o.d"
  "libpresp_core.a"
  "libpresp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
