# Empty compiler generated dependencies file for presp_core.
# This may be replaced when dependencies are built.
