# Empty compiler generated dependencies file for presp_synth.
# This may be replaced when dependencies are built.
