file(REMOVE_RECURSE
  "CMakeFiles/presp_synth.dir/synthesis.cpp.o"
  "CMakeFiles/presp_synth.dir/synthesis.cpp.o.d"
  "libpresp_synth.a"
  "libpresp_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presp_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
