file(REMOVE_RECURSE
  "libpresp_synth.a"
)
