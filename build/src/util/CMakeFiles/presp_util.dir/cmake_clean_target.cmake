file(REMOVE_RECURSE
  "libpresp_util.a"
)
