file(REMOVE_RECURSE
  "CMakeFiles/presp_util.dir/config.cpp.o"
  "CMakeFiles/presp_util.dir/config.cpp.o.d"
  "CMakeFiles/presp_util.dir/log.cpp.o"
  "CMakeFiles/presp_util.dir/log.cpp.o.d"
  "CMakeFiles/presp_util.dir/stats.cpp.o"
  "CMakeFiles/presp_util.dir/stats.cpp.o.d"
  "CMakeFiles/presp_util.dir/string_utils.cpp.o"
  "CMakeFiles/presp_util.dir/string_utils.cpp.o.d"
  "CMakeFiles/presp_util.dir/table.cpp.o"
  "CMakeFiles/presp_util.dir/table.cpp.o.d"
  "libpresp_util.a"
  "libpresp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
