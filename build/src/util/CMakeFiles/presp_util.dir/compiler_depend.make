# Empty compiler generated dependencies file for presp_util.
# This may be replaced when dependencies are built.
