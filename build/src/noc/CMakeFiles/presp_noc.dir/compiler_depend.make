# Empty compiler generated dependencies file for presp_noc.
# This may be replaced when dependencies are built.
