file(REMOVE_RECURSE
  "libpresp_noc.a"
)
