file(REMOVE_RECURSE
  "CMakeFiles/presp_noc.dir/noc.cpp.o"
  "CMakeFiles/presp_noc.dir/noc.cpp.o.d"
  "libpresp_noc.a"
  "libpresp_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presp_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
