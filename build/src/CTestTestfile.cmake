# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("fault")
subdirs("fabric")
subdirs("netlist")
subdirs("hls")
subdirs("synth")
subdirs("floorplan")
subdirs("pnr")
subdirs("bitstream")
subdirs("core")
subdirs("noc")
subdirs("soc")
subdirs("runtime")
subdirs("wami")
