# Empty dependencies file for presp_sim.
# This may be replaced when dependencies are built.
