file(REMOVE_RECURSE
  "CMakeFiles/presp_sim.dir/kernel.cpp.o"
  "CMakeFiles/presp_sim.dir/kernel.cpp.o.d"
  "libpresp_sim.a"
  "libpresp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
