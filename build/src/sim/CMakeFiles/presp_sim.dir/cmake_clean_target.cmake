file(REMOVE_RECURSE
  "libpresp_sim.a"
)
