file(REMOVE_RECURSE
  "libpresp_bitstream.a"
)
