file(REMOVE_RECURSE
  "CMakeFiles/presp_bitstream.dir/artifact_io.cpp.o"
  "CMakeFiles/presp_bitstream.dir/artifact_io.cpp.o.d"
  "CMakeFiles/presp_bitstream.dir/bitstream.cpp.o"
  "CMakeFiles/presp_bitstream.dir/bitstream.cpp.o.d"
  "libpresp_bitstream.a"
  "libpresp_bitstream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presp_bitstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
