# Empty dependencies file for presp_bitstream.
# This may be replaced when dependencies are built.
