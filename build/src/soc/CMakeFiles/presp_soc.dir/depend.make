# Empty dependencies file for presp_soc.
# This may be replaced when dependencies are built.
