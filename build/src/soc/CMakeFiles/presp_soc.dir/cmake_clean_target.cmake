file(REMOVE_RECURSE
  "libpresp_soc.a"
)
