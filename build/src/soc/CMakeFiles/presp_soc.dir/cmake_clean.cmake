file(REMOVE_RECURSE
  "CMakeFiles/presp_soc.dir/energy.cpp.o"
  "CMakeFiles/presp_soc.dir/energy.cpp.o.d"
  "CMakeFiles/presp_soc.dir/memory.cpp.o"
  "CMakeFiles/presp_soc.dir/memory.cpp.o.d"
  "CMakeFiles/presp_soc.dir/soc.cpp.o"
  "CMakeFiles/presp_soc.dir/soc.cpp.o.d"
  "CMakeFiles/presp_soc.dir/tiles.cpp.o"
  "CMakeFiles/presp_soc.dir/tiles.cpp.o.d"
  "libpresp_soc.a"
  "libpresp_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presp_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
