file(REMOVE_RECURSE
  "libpresp_fabric.a"
)
