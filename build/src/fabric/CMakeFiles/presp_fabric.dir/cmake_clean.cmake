file(REMOVE_RECURSE
  "CMakeFiles/presp_fabric.dir/device.cpp.o"
  "CMakeFiles/presp_fabric.dir/device.cpp.o.d"
  "libpresp_fabric.a"
  "libpresp_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presp_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
