# Empty dependencies file for presp_fabric.
# This may be replaced when dependencies are built.
