file(REMOVE_RECURSE
  "CMakeFiles/presp_floorplan.dir/floorplanner.cpp.o"
  "CMakeFiles/presp_floorplan.dir/floorplanner.cpp.o.d"
  "CMakeFiles/presp_floorplan.dir/visualize.cpp.o"
  "CMakeFiles/presp_floorplan.dir/visualize.cpp.o.d"
  "libpresp_floorplan.a"
  "libpresp_floorplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presp_floorplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
