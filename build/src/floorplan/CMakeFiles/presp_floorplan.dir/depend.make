# Empty dependencies file for presp_floorplan.
# This may be replaced when dependencies are built.
