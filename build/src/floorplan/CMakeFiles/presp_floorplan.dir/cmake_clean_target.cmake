file(REMOVE_RECURSE
  "libpresp_floorplan.a"
)
