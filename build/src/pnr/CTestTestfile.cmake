# CMake generated Testfile for 
# Source directory: /root/repo/src/pnr
# Build directory: /root/repo/build/src/pnr
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
