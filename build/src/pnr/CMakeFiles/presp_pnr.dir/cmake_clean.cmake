file(REMOVE_RECURSE
  "CMakeFiles/presp_pnr.dir/engine.cpp.o"
  "CMakeFiles/presp_pnr.dir/engine.cpp.o.d"
  "CMakeFiles/presp_pnr.dir/placer.cpp.o"
  "CMakeFiles/presp_pnr.dir/placer.cpp.o.d"
  "CMakeFiles/presp_pnr.dir/router.cpp.o"
  "CMakeFiles/presp_pnr.dir/router.cpp.o.d"
  "CMakeFiles/presp_pnr.dir/verify.cpp.o"
  "CMakeFiles/presp_pnr.dir/verify.cpp.o.d"
  "libpresp_pnr.a"
  "libpresp_pnr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presp_pnr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
