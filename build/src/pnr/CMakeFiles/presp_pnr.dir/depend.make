# Empty dependencies file for presp_pnr.
# This may be replaced when dependencies are built.
