file(REMOVE_RECURSE
  "libpresp_pnr.a"
)
