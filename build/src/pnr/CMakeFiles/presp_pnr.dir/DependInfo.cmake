
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pnr/engine.cpp" "src/pnr/CMakeFiles/presp_pnr.dir/engine.cpp.o" "gcc" "src/pnr/CMakeFiles/presp_pnr.dir/engine.cpp.o.d"
  "/root/repo/src/pnr/placer.cpp" "src/pnr/CMakeFiles/presp_pnr.dir/placer.cpp.o" "gcc" "src/pnr/CMakeFiles/presp_pnr.dir/placer.cpp.o.d"
  "/root/repo/src/pnr/router.cpp" "src/pnr/CMakeFiles/presp_pnr.dir/router.cpp.o" "gcc" "src/pnr/CMakeFiles/presp_pnr.dir/router.cpp.o.d"
  "/root/repo/src/pnr/verify.cpp" "src/pnr/CMakeFiles/presp_pnr.dir/verify.cpp.o" "gcc" "src/pnr/CMakeFiles/presp_pnr.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/presp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/presp_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/presp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/presp_synth.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
