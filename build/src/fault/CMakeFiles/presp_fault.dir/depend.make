# Empty dependencies file for presp_fault.
# This may be replaced when dependencies are built.
