file(REMOVE_RECURSE
  "libpresp_fault.a"
)
