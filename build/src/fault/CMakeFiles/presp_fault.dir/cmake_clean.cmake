file(REMOVE_RECURSE
  "CMakeFiles/presp_fault.dir/fault.cpp.o"
  "CMakeFiles/presp_fault.dir/fault.cpp.o.d"
  "libpresp_fault.a"
  "libpresp_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presp_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
