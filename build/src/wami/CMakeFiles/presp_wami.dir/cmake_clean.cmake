file(REMOVE_RECURSE
  "CMakeFiles/presp_wami.dir/accelerators.cpp.o"
  "CMakeFiles/presp_wami.dir/accelerators.cpp.o.d"
  "CMakeFiles/presp_wami.dir/app.cpp.o"
  "CMakeFiles/presp_wami.dir/app.cpp.o.d"
  "CMakeFiles/presp_wami.dir/frame_generator.cpp.o"
  "CMakeFiles/presp_wami.dir/frame_generator.cpp.o.d"
  "CMakeFiles/presp_wami.dir/kernels.cpp.o"
  "CMakeFiles/presp_wami.dir/kernels.cpp.o.d"
  "CMakeFiles/presp_wami.dir/pipeline.cpp.o"
  "CMakeFiles/presp_wami.dir/pipeline.cpp.o.d"
  "libpresp_wami.a"
  "libpresp_wami.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presp_wami.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
