file(REMOVE_RECURSE
  "libpresp_wami.a"
)
