# Empty dependencies file for presp_wami.
# This may be replaced when dependencies are built.
