file(REMOVE_RECURSE
  "CMakeFiles/presp-flow.dir/presp_flow_cli.cpp.o"
  "CMakeFiles/presp-flow.dir/presp_flow_cli.cpp.o.d"
  "presp-flow"
  "presp-flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presp-flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
