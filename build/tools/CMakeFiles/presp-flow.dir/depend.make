# Empty dependencies file for presp-flow.
# This may be replaced when dependencies are built.
