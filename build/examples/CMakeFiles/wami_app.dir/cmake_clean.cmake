file(REMOVE_RECURSE
  "CMakeFiles/wami_app.dir/wami_app.cpp.o"
  "CMakeFiles/wami_app.dir/wami_app.cpp.o.d"
  "wami_app"
  "wami_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wami_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
