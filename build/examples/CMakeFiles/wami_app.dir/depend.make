# Empty dependencies file for wami_app.
# This may be replaced when dependencies are built.
