file(REMOVE_RECURSE
  "CMakeFiles/adaptive_system.dir/adaptive_system.cpp.o"
  "CMakeFiles/adaptive_system.dir/adaptive_system.cpp.o.d"
  "adaptive_system"
  "adaptive_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
