# Empty dependencies file for adaptive_system.
# This may be replaced when dependencies are built.
