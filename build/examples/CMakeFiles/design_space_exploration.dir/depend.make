# Empty dependencies file for design_space_exploration.
# This may be replaced when dependencies are built.
