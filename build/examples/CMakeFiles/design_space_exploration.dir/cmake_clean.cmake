file(REMOVE_RECURSE
  "CMakeFiles/design_space_exploration.dir/design_space_exploration.cpp.o"
  "CMakeFiles/design_space_exploration.dir/design_space_exploration.cpp.o.d"
  "design_space_exploration"
  "design_space_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_space_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
