# Empty dependencies file for architecture_test.
# This may be replaced when dependencies are built.
