file(REMOVE_RECURSE
  "CMakeFiles/architecture_test.dir/architecture_test.cpp.o"
  "CMakeFiles/architecture_test.dir/architecture_test.cpp.o.d"
  "architecture_test"
  "architecture_test.pdb"
  "architecture_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/architecture_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
