file(REMOVE_RECURSE
  "CMakeFiles/portability_test.dir/portability_test.cpp.o"
  "CMakeFiles/portability_test.dir/portability_test.cpp.o.d"
  "portability_test"
  "portability_test.pdb"
  "portability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
