# Empty compiler generated dependencies file for portability_test.
# This may be replaced when dependencies are built.
