# Empty compiler generated dependencies file for wami_app_test.
# This may be replaced when dependencies are built.
