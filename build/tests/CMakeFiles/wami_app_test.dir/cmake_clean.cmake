file(REMOVE_RECURSE
  "CMakeFiles/wami_app_test.dir/wami_app_test.cpp.o"
  "CMakeFiles/wami_app_test.dir/wami_app_test.cpp.o.d"
  "wami_app_test"
  "wami_app_test.pdb"
  "wami_app_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wami_app_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
