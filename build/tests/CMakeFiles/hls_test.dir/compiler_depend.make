# Empty compiler generated dependencies file for hls_test.
# This may be replaced when dependencies are built.
