file(REMOVE_RECURSE
  "CMakeFiles/hls_test.dir/hls_test.cpp.o"
  "CMakeFiles/hls_test.dir/hls_test.cpp.o.d"
  "hls_test"
  "hls_test.pdb"
  "hls_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hls_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
