file(REMOVE_RECURSE
  "CMakeFiles/sim_stress_test.dir/sim_stress_test.cpp.o"
  "CMakeFiles/sim_stress_test.dir/sim_stress_test.cpp.o.d"
  "sim_stress_test"
  "sim_stress_test.pdb"
  "sim_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
