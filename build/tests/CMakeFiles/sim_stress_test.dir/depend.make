# Empty dependencies file for sim_stress_test.
# This may be replaced when dependencies are built.
