# Empty compiler generated dependencies file for floorplan_test.
# This may be replaced when dependencies are built.
