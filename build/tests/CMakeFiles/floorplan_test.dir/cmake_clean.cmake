file(REMOVE_RECURSE
  "CMakeFiles/floorplan_test.dir/floorplan_test.cpp.o"
  "CMakeFiles/floorplan_test.dir/floorplan_test.cpp.o.d"
  "floorplan_test"
  "floorplan_test.pdb"
  "floorplan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floorplan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
