# Empty dependencies file for pipeline_artifact_test.
# This may be replaced when dependencies are built.
