file(REMOVE_RECURSE
  "CMakeFiles/pipeline_artifact_test.dir/pipeline_artifact_test.cpp.o"
  "CMakeFiles/pipeline_artifact_test.dir/pipeline_artifact_test.cpp.o.d"
  "pipeline_artifact_test"
  "pipeline_artifact_test.pdb"
  "pipeline_artifact_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_artifact_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
