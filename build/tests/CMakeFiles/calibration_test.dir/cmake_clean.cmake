file(REMOVE_RECURSE
  "CMakeFiles/calibration_test.dir/calibration_test.cpp.o"
  "CMakeFiles/calibration_test.dir/calibration_test.cpp.o.d"
  "calibration_test"
  "calibration_test.pdb"
  "calibration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
