file(REMOVE_RECURSE
  "CMakeFiles/boot_report_test.dir/boot_report_test.cpp.o"
  "CMakeFiles/boot_report_test.dir/boot_report_test.cpp.o.d"
  "boot_report_test"
  "boot_report_test.pdb"
  "boot_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boot_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
