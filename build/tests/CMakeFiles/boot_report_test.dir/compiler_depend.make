# Empty compiler generated dependencies file for boot_report_test.
# This may be replaced when dependencies are built.
