
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/integration_test.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wami/CMakeFiles/presp_wami.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/presp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/presp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/presp_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/presp_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/presp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/presp_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/presp_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/floorplan/CMakeFiles/presp_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/bitstream/CMakeFiles/presp_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/pnr/CMakeFiles/presp_pnr.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/presp_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/presp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/presp_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/presp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
