# Empty dependencies file for wami_test.
# This may be replaced when dependencies are built.
