file(REMOVE_RECURSE
  "CMakeFiles/wami_test.dir/wami_test.cpp.o"
  "CMakeFiles/wami_test.dir/wami_test.cpp.o.d"
  "wami_test"
  "wami_test.pdb"
  "wami_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wami_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
