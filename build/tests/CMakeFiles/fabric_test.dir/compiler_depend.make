# Empty compiler generated dependencies file for fabric_test.
# This may be replaced when dependencies are built.
