file(REMOVE_RECURSE
  "CMakeFiles/fault_test.dir/fault_test.cpp.o"
  "CMakeFiles/fault_test.dir/fault_test.cpp.o.d"
  "fault_test"
  "fault_test.pdb"
  "fault_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
