# Empty compiler generated dependencies file for soc_test.
# This may be replaced when dependencies are built.
