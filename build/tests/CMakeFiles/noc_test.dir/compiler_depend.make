# Empty compiler generated dependencies file for noc_test.
# This may be replaced when dependencies are built.
