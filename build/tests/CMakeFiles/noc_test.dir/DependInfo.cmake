
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/noc_test.cpp" "tests/CMakeFiles/noc_test.dir/noc_test.cpp.o" "gcc" "tests/CMakeFiles/noc_test.dir/noc_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/noc/CMakeFiles/presp_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/presp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/presp_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/presp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
