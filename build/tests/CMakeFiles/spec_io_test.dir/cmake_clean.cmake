file(REMOVE_RECURSE
  "CMakeFiles/spec_io_test.dir/spec_io_test.cpp.o"
  "CMakeFiles/spec_io_test.dir/spec_io_test.cpp.o.d"
  "spec_io_test"
  "spec_io_test.pdb"
  "spec_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
