# Empty compiler generated dependencies file for spec_io_test.
# This may be replaced when dependencies are built.
