# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/hls_test[1]_include.cmake")
include("/root/repo/build/tests/synth_test[1]_include.cmake")
include("/root/repo/build/tests/floorplan_test[1]_include.cmake")
include("/root/repo/build/tests/pnr_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/bitstream_test[1]_include.cmake")
include("/root/repo/build/tests/noc_test[1]_include.cmake")
include("/root/repo/build/tests/soc_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/wami_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/resilience_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/portability_test[1]_include.cmake")
include("/root/repo/build/tests/energy_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/calibration_test[1]_include.cmake")
include("/root/repo/build/tests/architecture_test[1]_include.cmake")
include("/root/repo/build/tests/verify_test[1]_include.cmake")
include("/root/repo/build/tests/boot_report_test[1]_include.cmake")
include("/root/repo/build/tests/spec_io_test[1]_include.cmake")
include("/root/repo/build/tests/wami_app_test[1]_include.cmake")
include("/root/repo/build/tests/sim_stress_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_artifact_test[1]_include.cmake")
