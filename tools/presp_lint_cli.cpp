// presp-lint: cross-layer static design-rule checker.
//
// Usage:
//   presp-lint [--format=text|json] [--list-rules] [--werror]
//              <config.esp_config>...
//   presp-lint --watch [--poll-ms <n>] [--max-polls <n>] [--ops-port <n>]
//              [--watch-log <file>] <config.esp_config>...
//
// Runs the built-in rule catalog (see `presp-lint --list-rules` or
// DESIGN.md §10) over each SoC configuration and prints the findings.
// Exits 0 when every configuration is clean, 1 on errors, 2 on usage.
//
// With --watch it instead keeps polling the configs for edits, re-lints
// changed files, and (with --ops-port) publishes each fresh report as a
// "lint" SSE event on an embedded ops server (DESIGN.md §16).
#include <algorithm>
#include <string>
#include <vector>

#include "lint/cli.hpp"
#include "ops/watch_cli.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (std::find(args.begin(), args.end(), "--watch") != args.end())
    return presp::ops::run_watch_cli(args, "presp-lint");
  return presp::lint::run_lint_cli(args, "presp-lint");
}
