// presp-lint: cross-layer static design-rule checker.
//
// Usage:
//   presp-lint [--format=text|json] [--list-rules] [--werror]
//              <config.esp_config>...
//
// Runs the built-in rule catalog (see `presp-lint --list-rules` or
// DESIGN.md §10) over each SoC configuration and prints the findings.
// Exits 0 when every configuration is clean, 1 on errors, 2 on usage.
#include <string>
#include <vector>

#include "lint/cli.hpp"

int main(int argc, char** argv) {
  return presp::lint::run_lint_cli(
      std::vector<std::string>(argv + 1, argv + argc), "presp-lint");
}
