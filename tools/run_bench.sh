#!/usr/bin/env sh
# Perf gate: builds bench_micro and runs its two machine-readable
# comparisons.
#
#   --exec-compare  parallel-vs-serial execution engine: re-runs the DPR
#                   flow and the WAMI pipeline at 1 and 8 pool threads,
#                   cross-checks output checksums, emits BENCH_exec.json
#                   (speedup, efficiency, work-steal counters, bitstream
#                   cache hit rate, metrics-registry snapshot, plus the
#                   lock-free-vs-mutex contention sweep and the warm/cold
#                   flow-cache comparison with `hardware_threads`).
#   --store-compare serial-vs-pipelined bitstream store: a repeated
#                   reconfiguration workload on one DFXC, comparing total
#                   simulated cycles for the combined transfer, the split
#                   fetch/program flow and the LRU cache on top; emits
#                   BENCH_store.json and fails if the pipelined flow is
#                   not faster.
#
# It also runs the bench_fleet soak (sharded DPR fleet under injected
# stalls/bursts), which emits BENCH_fleet.json (exact p50/p99/p999
# latency, shed rate, coalesce rate, breaker transitions) and fails on
# any lost completion, unexplained shed or determinism mismatch, and the
# bench_defrag soak (background repacker vs an identical repack-off
# replay), which emits BENCH_defrag.json (frag before/after, migration
# count, p99 on/off, bit_identical) and fails unless fragmentation
# strictly improved with bit-identical workload outcomes.
#
# Usage: tools/run_bench.sh
#          [out.json [store_out.json [fleet_out.json [defrag_out.json]]]]
# Environment:
#   BUILD_DIR    build directory to (re)use             (default: build)
#   BENCH        path to bench_micro; skips the build   (default: unset)
#   FLEET_BENCH  path to bench_fleet; skips the build   (default: unset)
#   DEFRAG_BENCH path to bench_defrag; skips the build  (default: unset)
set -eu

OUT=${1:-BENCH_exec.json}
STORE_OUT=${2:-BENCH_store.json}
FLEET_OUT=${3:-BENCH_fleet.json}
DEFRAG_OUT=${4:-BENCH_defrag.json}
BUILD_DIR=${BUILD_DIR:-build}

if [ -z "${BENCH:-}" ]; then
  # shellcheck disable=SC2086
  cmake -B "$BUILD_DIR" -S . ${CONFIG_FLAGS:-} >/dev/null
  cmake --build "$BUILD_DIR" --target bench_micro -j >/dev/null
  BENCH=$BUILD_DIR/bench/bench_micro
fi
if [ -z "${FLEET_BENCH:-}" ]; then
  cmake --build "$BUILD_DIR" --target bench_fleet -j >/dev/null
  FLEET_BENCH=$BUILD_DIR/bench/bench_fleet
fi
if [ -z "${DEFRAG_BENCH:-}" ]; then
  cmake --build "$BUILD_DIR" --target bench_defrag -j >/dev/null
  DEFRAG_BENCH=$BUILD_DIR/bench/bench_defrag
fi

if [ ! -x "$BENCH" ]; then
  echo "error: $BENCH not found or not executable" >&2
  exit 2
fi
if [ ! -x "$FLEET_BENCH" ]; then
  echo "error: $FLEET_BENCH not found or not executable" >&2
  exit 2
fi
if [ ! -x "$DEFRAG_BENCH" ]; then
  echo "error: $DEFRAG_BENCH not found or not executable" >&2
  exit 2
fi

"$BENCH" --exec-compare "$OUT"
"$BENCH" --store-compare "$STORE_OUT"
"$FLEET_BENCH" --json "$FLEET_OUT"
"$DEFRAG_BENCH" --json "$DEFRAG_OUT"

# The exec rows must carry the pool's steal/queue-depth observability
# fields, the store cache hit rate, the aggregated metrics snapshot
# (see src/trace/metrics.hpp), the host's hardware thread count, the
# lock-free-vs-mutex contention sweep and the flow-cache comparison.
for field in speedup efficiency steals max_queue_depth cache_hit_rate \
             metrics hardware_threads steal_failures \
             lockfree_speedup_at_8 warm_wall_reduction \
             modified_wall_reduction warm_matches_cold; do
  if ! grep -q "\"$field\"" "$OUT"; then
    echo "run_bench: $OUT is missing the \"$field\" field" >&2
    exit 1
  fi
done

json_num() {
  sed -n "s/.*\"$2\": *\\(-\\{0,1\\}[0-9.][0-9.eE+-]*\\).*/\\1/p" "$1" \
    | head -n 1
}

# Warm flow re-runs must be bit-identical and actually cheaper.
if ! grep -q '"warm_matches_cold": true' "$OUT"; then
  echo "run_bench: warm flow-cache run is not bit-identical to cold" >&2
  exit 1
fi
MODIFIED_REDUCTION=$(json_num "$OUT" modified_wall_reduction)
if ! awk "BEGIN{exit !($MODIFIED_REDUCTION >= 0.4)}"; then
  echo "run_bench: one-module-modified warm run saved only" \
       "$MODIFIED_REDUCTION of cold wall time (need >= 0.4)" >&2
  exit 1
fi

# The lock-free pool must beat the mutex baseline on the steal-heavy
# workload — but only on a host with real parallelism (the sweep is
# meaningless on a 1-2 core container, so warn instead of failing).
HW_THREADS=$(json_num "$OUT" hardware_threads)
SPEEDUP8=$(json_num "$OUT" lockfree_speedup_at_8)
if awk "BEGIN{exit !($HW_THREADS >= 4)}"; then
  if ! awk "BEGIN{exit !($SPEEDUP8 >= 1.5)}"; then
    echo "run_bench: lock-free pool only ${SPEEDUP8}x the mutex" \
         "baseline at 8 threads (need >= 1.5x on a >= 4-thread host)" >&2
    exit 1
  fi
else
  echo "run_bench: warning: only $HW_THREADS hardware thread(s);" \
       "skipping the 1.5x contention gate (speedup at 8: ${SPEEDUP8}x)"
fi

# The store comparison must carry the simulated-latency and cache fields.
for field in serial_cycles pipelined_cycles speedup cache_hit_rate \
             cache_evictions; do
  if ! grep -q "\"$field\"" "$STORE_OUT"; then
    echo "run_bench: $STORE_OUT is missing the \"$field\" field" >&2
    exit 1
  fi
done

# The fleet soak must carry the tail-latency and robustness fields.
for field in p999_cycles shed_rate coalesce_rate breaker_opens \
             deterministic; do
  if ! grep -q "\"$field\"" "$FLEET_OUT"; then
    echo "run_bench: $FLEET_OUT is missing the \"$field\" field" >&2
    exit 1
  fi
done

# The defrag soak must carry the fragmentation, migration and
# latency-impact fields, and the on/off runs must agree bit-for-bit.
for field in frag_before frag_after migrations p99_cycles_on \
             p99_cycles_off bit_identical; do
  if ! grep -q "\"$field\"" "$DEFRAG_OUT"; then
    echo "run_bench: $DEFRAG_OUT is missing the \"$field\" field" >&2
    exit 1
  fi
done
if ! grep -q '"bit_identical": true' "$DEFRAG_OUT"; then
  echo "run_bench: repacker-on workload is not bit-identical to" \
       "repacker-off" >&2
  exit 1
fi

echo "run_bench: results in $OUT, $STORE_OUT, $FLEET_OUT and $DEFRAG_OUT"
cat "$OUT"
cat "$STORE_OUT"
cat "$FLEET_OUT"
cat "$DEFRAG_OUT"
