#!/usr/bin/env sh
# Execution-engine perf gate: builds bench_micro and runs its
# parallel-vs-serial comparison (`--exec-compare`), which re-runs the DPR
# flow and the WAMI pipeline at 1 and 8 pool threads, cross-checks output
# checksums, and emits machine-readable BENCH_exec.json (speedup,
# efficiency, task count, work-steal counters, and a metrics-registry
# snapshot) to seed the perf trajectory.
#
# Usage: tools/run_bench.sh [out.json]
# Environment:
#   BUILD_DIR  build directory to (re)use             (default: build)
#   BENCH      path to bench_micro; skips the build   (default: unset)
set -eu

OUT=${1:-BENCH_exec.json}
BUILD_DIR=${BUILD_DIR:-build}

if [ -z "${BENCH:-}" ]; then
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" --target bench_micro -j >/dev/null
  BENCH=$BUILD_DIR/bench/bench_micro
fi

if [ ! -x "$BENCH" ]; then
  echo "error: $BENCH not found or not executable" >&2
  exit 2
fi

"$BENCH" --exec-compare "$OUT"

# The exec rows must carry the pool's steal/queue-depth observability
# fields plus the aggregated metrics snapshot (see src/trace/metrics.hpp).
for field in steals max_queue_depth metrics; do
  if ! grep -q "\"$field\"" "$OUT"; then
    echo "run_bench: $OUT is missing the \"$field\" field" >&2
    exit 1
  fi
done

echo "run_bench: results in $OUT"
cat "$OUT"
