#!/usr/bin/env sh
# Perf gate: builds bench_micro and runs its two machine-readable
# comparisons.
#
#   --exec-compare  parallel-vs-serial execution engine: re-runs the DPR
#                   flow and the WAMI pipeline at 1 and 8 pool threads,
#                   cross-checks output checksums, emits BENCH_exec.json
#                   (speedup, efficiency, work-steal counters, bitstream
#                   cache hit rate, metrics-registry snapshot).
#   --store-compare serial-vs-pipelined bitstream store: a repeated
#                   reconfiguration workload on one DFXC, comparing total
#                   simulated cycles for the combined transfer, the split
#                   fetch/program flow and the LRU cache on top; emits
#                   BENCH_store.json and fails if the pipelined flow is
#                   not faster.
#
# It also runs the bench_fleet soak (sharded DPR fleet under injected
# stalls/bursts), which emits BENCH_fleet.json (exact p50/p99/p999
# latency, shed rate, coalesce rate, breaker transitions) and fails on
# any lost completion, unexplained shed or determinism mismatch.
#
# Usage: tools/run_bench.sh [out.json [store_out.json [fleet_out.json]]]
# Environment:
#   BUILD_DIR    build directory to (re)use             (default: build)
#   BENCH        path to bench_micro; skips the build   (default: unset)
#   FLEET_BENCH  path to bench_fleet; skips the build   (default: unset)
set -eu

OUT=${1:-BENCH_exec.json}
STORE_OUT=${2:-BENCH_store.json}
FLEET_OUT=${3:-BENCH_fleet.json}
BUILD_DIR=${BUILD_DIR:-build}

if [ -z "${BENCH:-}" ]; then
  # shellcheck disable=SC2086
  cmake -B "$BUILD_DIR" -S . ${CONFIG_FLAGS:-} >/dev/null
  cmake --build "$BUILD_DIR" --target bench_micro -j >/dev/null
  BENCH=$BUILD_DIR/bench/bench_micro
fi
if [ -z "${FLEET_BENCH:-}" ]; then
  cmake --build "$BUILD_DIR" --target bench_fleet -j >/dev/null
  FLEET_BENCH=$BUILD_DIR/bench/bench_fleet
fi

if [ ! -x "$BENCH" ]; then
  echo "error: $BENCH not found or not executable" >&2
  exit 2
fi
if [ ! -x "$FLEET_BENCH" ]; then
  echo "error: $FLEET_BENCH not found or not executable" >&2
  exit 2
fi

"$BENCH" --exec-compare "$OUT"
"$BENCH" --store-compare "$STORE_OUT"
"$FLEET_BENCH" --json "$FLEET_OUT"

# The exec rows must carry the pool's steal/queue-depth observability
# fields, the store cache hit rate, and the aggregated metrics snapshot
# (see src/trace/metrics.hpp).
for field in speedup efficiency steals max_queue_depth cache_hit_rate \
             metrics; do
  if ! grep -q "\"$field\"" "$OUT"; then
    echo "run_bench: $OUT is missing the \"$field\" field" >&2
    exit 1
  fi
done

# The store comparison must carry the simulated-latency and cache fields.
for field in serial_cycles pipelined_cycles speedup cache_hit_rate \
             cache_evictions; do
  if ! grep -q "\"$field\"" "$STORE_OUT"; then
    echo "run_bench: $STORE_OUT is missing the \"$field\" field" >&2
    exit 1
  fi
done

# The fleet soak must carry the tail-latency and robustness fields.
for field in p999_cycles shed_rate coalesce_rate breaker_opens \
             deterministic; do
  if ! grep -q "\"$field\"" "$FLEET_OUT"; then
    echo "run_bench: $FLEET_OUT is missing the \"$field\" field" >&2
    exit 1
  fi
done

echo "run_bench: results in $OUT, $STORE_OUT and $FLEET_OUT"
cat "$OUT"
cat "$STORE_OUT"
cat "$FLEET_OUT"
