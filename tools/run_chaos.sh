#!/usr/bin/env sh
# Chaos determinism sweep: runs bench_chaos across a seed range, executes
# every seed batch twice and diffs the full output. Any nondeterminism in
# the fault plan, the simulator or the recovery path shows up as a diff;
# any lost frame or missed acceptance check shows up as a non-zero bench
# exit code.
#
# Usage: tools/run_chaos.sh [first_seed] [last_seed] [faults_per_seed]
# Environment: BENCH=path/to/bench_chaos (default: build/bench/bench_chaos)
set -eu

FIRST=${1:-1}
LAST=${2:-8}
FAULTS=${3:-96}
BENCH=${BENCH:-build/bench/bench_chaos}

if [ ! -x "$BENCH" ]; then
  echo "error: $BENCH not found or not executable (build it first:" >&2
  echo "  cmake --build build --target bench_chaos)" >&2
  exit 2
fi

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

failures=0
seed=$FIRST
while [ "$seed" -le "$LAST" ]; do
  # One seed per batch so a diff pinpoints the offending seed.
  if ! "$BENCH" "$seed" 1 "$FAULTS" >"$tmpdir/a.$seed" 2>&1; then
    echo "seed $seed: FAILED acceptance (see below)"
    cat "$tmpdir/a.$seed"
    failures=$((failures + 1))
    seed=$((seed + 1))
    continue
  fi
  "$BENCH" "$seed" 1 "$FAULTS" >"$tmpdir/b.$seed" 2>&1 || true
  if diff -u "$tmpdir/a.$seed" "$tmpdir/b.$seed" >"$tmpdir/d.$seed"; then
    echo "seed $seed: deterministic, acceptance ok"
  else
    echo "seed $seed: NONDETERMINISTIC"
    cat "$tmpdir/d.$seed"
    failures=$((failures + 1))
  fi
  seed=$((seed + 1))
done

if [ "$failures" -ne 0 ]; then
  echo "run_chaos: $failures seed(s) failed"
  exit 1
fi
echo "run_chaos: all seeds $FIRST..$LAST deterministic and accepted"
