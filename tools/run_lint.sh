#!/usr/bin/env sh
# Code-level static analysis: clang-tidy over every translation unit in
# compile_commands.json, plus a clang-format dry-run over the tree. This is
# the *code* half of the lint story; the *design* half is presp-lint (see
# tools/run_tier1.sh, which gates the shipped example configs on it).
#
# Both tools are optional in minimal containers: when clang-tidy or
# clang-format is not installed the corresponding stage is skipped with a
# notice (exit 0), so the script can run in CI images with and without the
# LLVM toolchain. When the tools are present, any finding is fatal.
#
# Usage: tools/run_lint.sh
# Environment:
#   BUILD_DIR    build directory with compile_commands.json (default: build)
#   CLANG_TIDY   clang-tidy binary (default: clang-tidy)
#   CLANG_FORMAT clang-format binary (default: clang-format)
set -eu

BUILD_DIR=${BUILD_DIR:-build}
CLANG_TIDY=${CLANG_TIDY:-clang-tidy}
CLANG_FORMAT=${CLANG_FORMAT:-clang-format}

cd "$(dirname "$0")/.."

status=0

if command -v "$CLANG_TIDY" >/dev/null 2>&1; then
  if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "run_lint: configuring $BUILD_DIR for compile_commands.json"
    cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  echo "== clang-tidy (compile_commands.json, WarningsAsErrors) =="
  # Every first-party TU; third-party code never enters src/tools/tests.
  files=$(find src tools tests -name '*.cpp' | sort)
  if ! "$CLANG_TIDY" -p "$BUILD_DIR" --quiet $files; then
    status=1
  fi
  # Focused concurrency pass over the layers the race detector guards:
  # the general run above uses the repo .clang-tidy profile; this one
  # forces the concurrency-* and bugprone-* families on so a profile
  # edit can never silently drop them for the lock-free core.
  echo "== clang-tidy (concurrency-*, bugprone-* over src/exec src/fleet) =="
  conc_files=$(find src/exec src/fleet src/racecheck -name '*.cpp' | sort)
  if ! "$CLANG_TIDY" -p "$BUILD_DIR" --quiet \
      --checks='-*,concurrency-*,bugprone-*' \
      --warnings-as-errors='concurrency-*,bugprone-*' $conc_files; then
    status=1
  fi
else
  echo "run_lint: clang-tidy not installed, skipping the tidy stage"
fi

if command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "== clang-format (dry run) =="
  if ! find src tools tests -name '*.cpp' -o -name '*.hpp' | sort |
      xargs "$CLANG_FORMAT" --dry-run --Werror; then
    status=1
  fi
else
  echo "run_lint: clang-format not installed, skipping the format stage"
fi

if [ "$status" -ne 0 ]; then
  echo "run_lint: findings above must be fixed"
  exit 1
fi
echo "run_lint: clean"
