// presp-racecheck: run workloads under the race detector across a sweep
// of schedule-fuzzer seeds and report findings as text/JSON/SARIF.
//
//   presp-racecheck --list
//   presp-racecheck --all --seeds 8 --format sarif --out races.sarif
//   presp-racecheck --workload racy-counter --seeds 1 --seed-base 42
//   presp-racecheck --all --expect --summary-json summary.json
//
// Every diagnostic's fix-hint ends with an exact reproduction command
// naming the first seed that reported it; detection is deterministic per
// workload (see racecheck/detector.hpp), so that one seed always
// reproduces the finding. --expect turns the run into a regression
// gate: racy corpus workloads must report their expected race.* rule,
// clean ones must stay silent (exit 2 on any mismatch).
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/diagnostic.hpp"
#include "racecheck/annot.hpp"
#include "racecheck/corpus.hpp"

namespace {

using presp::lint::Diagnostic;
using presp::racecheck::Workload;

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--list] [--all | --workload NAME]... [--seeds K]\n"
         "       [--seed-base S] [--format text|json|sarif] [--out FILE]\n"
         "       [--expect] [--summary-json FILE] [--stats]\n";
  return 1;
}

// Cross-seed identity: rule + anchored site + object. Deliberately NOT
// the message — it names logical-thread ids, which vary with OS
// scheduling across seeds, and one finding per (rule, site) with its
// first-detecting seed is what reproduction wants.
std::string diag_key(const Diagnostic& diag) {
  return diag.rule + "|" + diag.loc.file + "|" +
         std::to_string(diag.loc.line) + "|" + diag.loc.object;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  bool list = false;
  bool all = false;
  bool expect = false;
  bool stats = false;
  int seeds = 8;
  std::uint64_t seed_base = 1;
  std::string format = "text";
  std::string out_path;
  std::string summary_path;
  std::vector<std::string> names;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--list") {
      list = true;
    } else if (arg == "--all") {
      all = true;
    } else if (arg == "--workload") {
      names.push_back(value("--workload"));
    } else if (arg == "--seeds") {
      seeds = std::stoi(value("--seeds"));
    } else if (arg == "--seed-base") {
      seed_base = std::stoull(value("--seed-base"));
    } else if (arg == "--format") {
      format = value("--format");
    } else if (arg == "--out") {
      out_path = value("--out");
    } else if (arg == "--expect") {
      expect = true;
    } else if (arg == "--summary-json") {
      summary_path = value("--summary-json");
    } else if (arg == "--stats") {
      stats = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (format != "text" && format != "json" && format != "sarif")
    return usage(argv[0]);
  if (seeds < 1) {
    std::cerr << "--seeds must be >= 1\n";
    return 1;
  }

  const auto& corpus = presp::racecheck::corpus();
  if (list) {
    for (const Workload& w : corpus)
      std::cout << w.name << "\t" << (w.racy ? "racy" : "clean")
                << (w.expect_rule.empty() ? "" : "\t" + w.expect_rule)
                << "\t" << w.description << "\n";
    return 0;
  }

  std::vector<const Workload*> selected;
  if (all || names.empty()) {
    for (const Workload& w : corpus) selected.push_back(&w);
  } else {
    for (const std::string& name : names) {
      const Workload* w = presp::racecheck::find_workload(name);
      if (w == nullptr) {
        std::cerr << "unknown workload: " << name << " (try --list)\n";
        return 1;
      }
      selected.push_back(w);
    }
  }

  if (!presp::racecheck::hooks_compiled()) {
    std::cerr << "presp-racecheck: built with -DPRESP_RACECHECK=OFF; "
                 "annotation hooks are compiled out, skipping\n";
    if (!summary_path.empty())
      write_file(summary_path,
                 "{\"hooks_compiled\":false,\"workloads\":0,"
                 "\"racy_detected\":0,\"clean_silent\":0,"
                 "\"diagnostics\":0,\"expect_ok\":true}\n");
    return 0;
  }

  presp::lint::DiagnosticEngine engine;
  std::set<std::string> seen;
  int racy_total = 0;
  int racy_detected = 0;
  int clean_total = 0;
  int clean_silent = 0;
  bool expect_ok = true;
  std::uint64_t total_events = 0;

  for (const Workload* w : selected) {
    bool rule_seen = false;
    bool any_diag = false;
    for (int k = 0; k < seeds; ++k) {
      const std::uint64_t seed = seed_base + static_cast<std::uint64_t>(k);
      presp::racecheck::CorpusRun run =
          presp::racecheck::run_workload(*w, seed);
      total_events += run.stats.events;
      for (Diagnostic diag : run.diags) {
        any_diag = true;
        if (diag.rule == w->expect_rule) rule_seen = true;
        if (!seen.insert(diag_key(diag)).second) continue;
        if (!diag.fix_hint.empty()) diag.fix_hint += "; ";
        diag.fix_hint += "reproduce: presp-racecheck --workload " +
                         w->name + " --seeds 1 --seed-base " +
                         std::to_string(seed);
        engine.add(std::move(diag));
      }
    }
    if (w->racy) {
      ++racy_total;
      if (rule_seen) {
        ++racy_detected;
      } else {
        expect_ok = false;
        std::cerr << "EXPECTATION FAILED: " << w->name
                  << " did not report " << w->expect_rule << "\n";
      }
    } else {
      ++clean_total;
      if (!any_diag) {
        ++clean_silent;
      } else {
        expect_ok = false;
        std::cerr << "EXPECTATION FAILED: " << w->name
                  << " reported diagnostics but is a clean workload\n";
      }
    }
  }

  engine.sort();
  std::string report;
  if (format == "json")
    report = presp::lint::render_json(engine.diagnostics());
  else if (format == "sarif")
    report =
        presp::lint::render_sarif(engine.diagnostics(), "presp-racecheck");
  else
    report = presp::lint::render_text(engine.diagnostics());
  if (out_path.empty()) {
    std::cout << report;
    if (format == "text" && !report.empty() && report.back() != '\n')
      std::cout << "\n";
  } else if (!write_file(out_path, report)) {
    std::cerr << "failed to write " << out_path << "\n";
    return 1;
  }

  if (stats)
    std::cerr << "workloads=" << selected.size() << " seeds=" << seeds
              << " events=" << total_events
              << " diagnostics=" << engine.size() << "\n";

  if (!summary_path.empty()) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"hooks_compiled\":true,\"workloads\":%zu,"
                  "\"seeds\":%d,\"racy_detected\":%d,\"racy_total\":%d,"
                  "\"clean_silent\":%d,\"clean_total\":%d,"
                  "\"diagnostics\":%zu,\"expect_ok\":%s}\n",
                  selected.size(), seeds, racy_detected, racy_total,
                  clean_silent, clean_total, engine.size(),
                  expect_ok ? "true" : "false");
    if (!write_file(summary_path, buf)) {
      std::cerr << "failed to write " << summary_path << "\n";
      return 1;
    }
  }

  if (expect && !expect_ok) return 2;
  return 0;
}
