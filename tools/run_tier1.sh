#!/usr/bin/env sh
# Tier-1 verification: full build + ctest, a design-lint gate over every
# shipped example configuration, then sanitizer passes:
#
#   - presp-lint must report zero errors on examples/configs/*.esp_config
#     (the shipped designs are the lint suite's own clean fixtures);
#   - a trace smoke: presp-flow runs a shipped example with --trace, the
#     resulting Chrome JSON must summarize cleanly through presp-trace
#     with zero dropped events;
#   - an ASan+UBSan build runs the full ctest suite, so memory and
#     undefined-behavior bugs fail the gate even when the plain build
#     happens not to crash;
#   - a ThreadSanitizer build runs the exec unit tests, the
#     serial/parallel determinism test, and the trace tests (concurrent
#     emitters), so data races in the pool, the task graph, the log, the
#     pooled kernels, or the trace buffers fail the gate even when the
#     plain build happens to schedule around them.
#
# Usage: tools/run_tier1.sh
# Environment:
#   BUILD_DIR       plain build directory    (default: build)
#   ASAN_BUILD_DIR  ASan+UBSan build dir     (default: build-asan)
#   TSAN_BUILD_DIR  TSan build directory     (default: build-tsan)
#   SKIP_ASAN=1     skip the ASan+UBSan stage
#   SKIP_TSAN=1     skip the TSan stage
set -eu

BUILD_DIR=${BUILD_DIR:-build}
ASAN_BUILD_DIR=${ASAN_BUILD_DIR:-build-asan}
TSAN_BUILD_DIR=${TSAN_BUILD_DIR:-build-tsan}

echo "== tier-1: build + ctest =="
cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j
(cd "$BUILD_DIR" && ctest --output-on-failure -j)

echo "== tier-1: design lint (presp-lint over examples/configs) =="
LINT_BIN="$BUILD_DIR/tools/presp-lint"
# Rule rows are "<layer>.<name> ..."; skips the header and footer lines.
lint_rules=$("$LINT_BIN" --list-rules | grep -c '^[a-z]*\.')
lint_out=$("$LINT_BIN" examples/configs/*.esp_config) || {
  echo "$lint_out"
  echo "tier-1: presp-lint reported errors on the shipped examples"
  exit 1
}
lint_summary=$(printf '%s\n' "$lint_out" | tail -n 1)
echo "tier-1 lint summary: $lint_rules rule(s) checked, $lint_summary"

echo "== tier-1: trace smoke (presp-flow --trace + presp-trace) =="
TRACE_OUT="$BUILD_DIR/tier1_trace.json"
"$BUILD_DIR/tools/presp-flow" examples/configs/soc_2.esp_config \
    --trace "$TRACE_OUT" >/dev/null
trace_summary=$("$BUILD_DIR/tools/presp-trace" summarize "$TRACE_OUT")
printf '%s\n' "$trace_summary" | head -n 4
printf '%s\n' "$trace_summary" | grep -q 'dropped events: 0' || {
  echo "tier-1: trace smoke dropped events (buffer overflow?)"
  exit 1
}
"$BUILD_DIR/tools/presp-trace" inspect "$TRACE_OUT" >/dev/null
echo "tier-1 trace smoke: summarize + inspect clean, zero drops"

if [ "${SKIP_ASAN:-0}" = "1" ]; then
  echo "tier-1: ASan+UBSan stage skipped (SKIP_ASAN=1)"
else
  echo "== tier-1: AddressSanitizer + UBSan (full suite) =="
  cmake -B "$ASAN_BUILD_DIR" -S . \
      -DPRESP_SANITIZE=address,undefined >/dev/null
  cmake --build "$ASAN_BUILD_DIR" -j
  (cd "$ASAN_BUILD_DIR" && ctest --output-on-failure -j)
fi

if [ "${SKIP_TSAN:-0}" = "1" ]; then
  echo "tier-1: TSan stage skipped (SKIP_TSAN=1)"
else
  echo "== tier-1: ThreadSanitizer (exec engine + trace) =="
  cmake -B "$TSAN_BUILD_DIR" -S . -DPRESP_SANITIZE=thread >/dev/null
  cmake --build "$TSAN_BUILD_DIR" \
      --target exec_test exec_determinism_test trace_test -j
  "$TSAN_BUILD_DIR"/tests/exec_test
  "$TSAN_BUILD_DIR"/tests/exec_determinism_test
  "$TSAN_BUILD_DIR"/tests/trace_test
fi

echo "tier-1: all stages passed ($lint_rules lint rule(s), $lint_summary)"
