#!/usr/bin/env sh
# Tier-1 verification: full build + ctest, then a ThreadSanitizer pass over
# the execution engine. The TSan stage rebuilds only the exec unit tests
# and the serial/parallel determinism test in a separate build directory
# configured with -DPRESP_SANITIZE=thread, so data races in the pool, the
# task graph, the log, or the pooled kernels fail the gate even when the
# plain build happens to schedule around them.
#
# Usage: tools/run_tier1.sh
# Environment:
#   BUILD_DIR       plain build directory    (default: build)
#   TSAN_BUILD_DIR  TSan build directory     (default: build-tsan)
#   SKIP_TSAN=1     run only the plain stage
set -eu

BUILD_DIR=${BUILD_DIR:-build}
TSAN_BUILD_DIR=${TSAN_BUILD_DIR:-build-tsan}

echo "== tier-1: build + ctest =="
cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j
(cd "$BUILD_DIR" && ctest --output-on-failure -j)

if [ "${SKIP_TSAN:-0}" = "1" ]; then
  echo "tier-1: TSan stage skipped (SKIP_TSAN=1)"
  exit 0
fi

echo "== tier-1: ThreadSanitizer (exec engine) =="
cmake -B "$TSAN_BUILD_DIR" -S . -DPRESP_SANITIZE=thread >/dev/null
cmake --build "$TSAN_BUILD_DIR" --target exec_test exec_determinism_test -j
"$TSAN_BUILD_DIR"/tests/exec_test
"$TSAN_BUILD_DIR"/tests/exec_determinism_test

echo "tier-1: all stages passed"
