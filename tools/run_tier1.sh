#!/usr/bin/env sh
# Tier-1 verification, split into named stages so CI jobs and local runs
# share one entry point:
#
#   build      full plain build + the complete ctest suite
#   lint       presp-lint must report zero errors on every shipped
#              examples/configs/*.esp_config (the designs double as the
#              lint suite's clean fixtures)
#   trace      trace smoke: presp-flow runs a shipped example with
#              --trace and the Chrome JSON must summarize through
#              presp-trace with zero dropped events
#   workflows  .github/workflows/*.yml parse (actionlint when available,
#              else a PyYAML structural check) and ci.yml's jobs must
#              map 1:1 onto this script's stage names
#   fleet      short deterministic fleet soak (bench_fleet) under
#              injected shard stalls: zero lost completions, zero
#              unexplained sheds, breaker diversion and a bit-identical
#              replay are all hard failures
#   defrag     short defrag chaos soak (bench_defrag): the background
#              repacker must strictly improve the fragmentation ratio,
#              workload outcomes must be bit-identical repacker-on vs
#              repacker-off even with kRepackAbort faults armed, and the
#              repack-on replay must be deterministic; frag-before/after
#              and the migration count land in the summary
#   racecheck  seeded race-detector corpus gate (presp-racecheck): every
#              intentionally-racy workload must report its expected
#              race.* rule within 8 seeds, and the clean exec/runtime/
#              fleet/store workloads must stay silent across a 32-seed
#              schedule-fuzzer sweep; finding counts land in the summary
#   ops        live ops plane gate: the ops_test suite (HTTP endpoints,
#              SSE fan-out, snapshot-under-mutation), a fleet soak with
#              the embedded server live (8 SSE clients, one deliberately
#              slow — drops must be counted, the replay must stay
#              bit-identical) and a presp-lint --watch regression (an
#              injected config edit must be re-linted within one poll)
#   asan       AddressSanitizer+UBSan build running the full ctest suite
#   tsan       ThreadSanitizer build running the Chase-Lev deque stress
#              tests (owner pop vs concurrent thieves), the exec unit
#              tests, the serial/parallel determinism test, the trace
#              tests (concurrent emitters), the fleet tests, the ops
#              tests (server + registries under real threads) and the
#              dynamic-floorplan + repacker tests (compaction racing a
#              request-pool of allocator threads)
#
# Usage: tools/run_tier1.sh [--stage <name>]...
#   No --stage: every stage runs (minus SKIP_ASAN/SKIP_TSAN skips).
#   --stage may repeat; stages run in the order given and the script
#   exits non-zero if any selected stage fails.
#
# Every run writes a machine-readable per-stage summary (pass/fail +
# wall-clock seconds) to $TIER1_SUMMARY (default: tier1_summary.json).
#
# Environment:
#   BUILD_DIR       plain build directory    (default: build)
#   ASAN_BUILD_DIR  ASan+UBSan build dir     (default: build-asan)
#   TSAN_BUILD_DIR  TSan build directory     (default: build-tsan)
#   CONFIG_FLAGS    extra cmake configure flags for the plain build
#                   (CI passes -DCMAKE_BUILD_TYPE and the ccache launcher)
#   TIER1_SUMMARY   summary JSON path        (default: tier1_summary.json)
#   SKIP_ASAN=1     drop the asan stage from the default selection
#   SKIP_TSAN=1     drop the tsan stage from the default selection
set -u

BUILD_DIR=${BUILD_DIR:-build}
ASAN_BUILD_DIR=${ASAN_BUILD_DIR:-build-asan}
TSAN_BUILD_DIR=${TSAN_BUILD_DIR:-build-tsan}
CONFIG_FLAGS=${CONFIG_FLAGS:-}
TIER1_SUMMARY=${TIER1_SUMMARY:-tier1_summary.json}

ALL_STAGES="build lint trace workflows fleet defrag racecheck ops asan tsan"

# ----------------------------------------------------------------- stages
# Each stage body runs in a `set -e` subshell; any failing command fails
# the stage, and the runner records it without aborting later stages.

stage_build() {
  # shellcheck disable=SC2086  # CONFIG_FLAGS is intentionally word-split
  cmake -B "$BUILD_DIR" -S . $CONFIG_FLAGS >/dev/null
  cmake --build "$BUILD_DIR" -j
  (cd "$BUILD_DIR" && ctest --output-on-failure -j)
}

stage_lint() {
  LINT_BIN="$BUILD_DIR/tools/presp-lint"
  [ -x "$LINT_BIN" ] || {
    echo "tier-1: $LINT_BIN missing; run the build stage first" >&2
    return 1
  }
  # Rule rows are "<layer>.<name> ..."; skips the header and footer lines.
  lint_rules=$("$LINT_BIN" --list-rules | grep -c '^[a-z]*\.')
  lint_out=$("$LINT_BIN" examples/configs/*.esp_config) || {
    echo "$lint_out"
    echo "tier-1: presp-lint reported errors on the shipped examples" >&2
    return 1
  }
  lint_summary=$(printf '%s\n' "$lint_out" | tail -n 1)
  echo "tier-1 lint: $lint_rules rule(s) checked, $lint_summary"
}

stage_trace() {
  TRACE_OUT="$BUILD_DIR/tier1_trace.json"
  "$BUILD_DIR/tools/presp-flow" examples/configs/soc_2.esp_config \
      --trace "$TRACE_OUT" >/dev/null
  trace_summary=$("$BUILD_DIR/tools/presp-trace" summarize "$TRACE_OUT")
  printf '%s\n' "$trace_summary" | head -n 4
  printf '%s\n' "$trace_summary" | grep -q 'dropped events: 0' || {
    echo "tier-1: trace smoke dropped events (buffer overflow?)" >&2
    return 1
  }
  "$BUILD_DIR/tools/presp-trace" inspect "$TRACE_OUT" >/dev/null
  echo "tier-1 trace: summarize + inspect clean, zero drops"
}

stage_workflows() {
  WF_DIR=.github/workflows
  [ -d "$WF_DIR" ] || {
    echo "tier-1: no $WF_DIR directory" >&2
    return 1
  }
  for wf in "$WF_DIR"/*.yml; do
    if command -v actionlint >/dev/null 2>&1; then
      actionlint "$wf"
    elif command -v python3 >/dev/null 2>&1 &&
        python3 -c 'import yaml' 2>/dev/null; then
      python3 - "$wf" <<'PYEOF'
import sys
import yaml

path = sys.argv[1]
with open(path) as fh:
    doc = yaml.safe_load(fh)
assert isinstance(doc, dict), f"{path}: not a mapping"
# PyYAML parses the bare `on:` trigger key as boolean True.
assert "on" in doc or True in doc, f"{path}: no trigger (on:) block"
jobs = doc.get("jobs")
assert isinstance(jobs, dict) and jobs, f"{path}: no jobs"
for name, job in jobs.items():
    assert isinstance(job, dict), f"{path}: job {name} is not a mapping"
    assert "runs-on" in job or "uses" in job, \
        f"{path}: job {name} has neither runs-on nor uses"
    if "steps" in job:
        assert isinstance(job["steps"], list) and job["steps"], \
            f"{path}: job {name} has an empty steps list"
PYEOF
    else
      echo "tier-1: neither actionlint nor python3+pyyaml available" >&2
      return 1
    fi
    echo "tier-1 workflows: $wf parses"
  done

  # ci.yml's jobs and this script's stages must map 1:1: every stage
  # name appears as a --stage invocation, and every --stage invocation
  # names a real stage.
  CI_YML="$WF_DIR/ci.yml"
  [ -f "$CI_YML" ] || {
    echo "tier-1: $CI_YML missing" >&2
    return 1
  }
  for s in $ALL_STAGES; do
    grep -q -- "--stage $s" "$CI_YML" || {
      echo "tier-1: $CI_YML never invokes run_tier1.sh --stage $s" >&2
      return 1
    }
  done
  for used in $(grep -o -- '--stage [a-z]*' "$CI_YML" |
      awk '{print $2}' | sort -u); do
    case " $ALL_STAGES " in
      *" $used "*) ;;
      *)
        echo "tier-1: $CI_YML references unknown stage '$used'" >&2
        return 1
        ;;
    esac
  done
  echo "tier-1 workflows: ci.yml stages map 1:1 onto run_tier1.sh stages"
}

stage_fleet() {
  cmake --build "$BUILD_DIR" --target bench_fleet -j
  FLEET_JSON="$BUILD_DIR/tier1_fleet.json"
  # One seed, a short horizon: bench_fleet itself fails the stage on any
  # lost completion, unexplained shed, missing stall/diversion or a
  # determinism mismatch.
  "$BUILD_DIR/bench/bench_fleet" 1 1 200 --json "$FLEET_JSON"
  for field in p999_cycles shed_rate coalesce_rate; do
    grep -q "\"$field\"" "$FLEET_JSON" || {
      echo "tier-1: $FLEET_JSON is missing the \"$field\" field" >&2
      return 1
    }
  done
  echo "tier-1 fleet: soak clean, report fields present ($FLEET_JSON)"
}

stage_defrag() {
  cmake --build "$BUILD_DIR" --target bench_defrag -j
  DEFRAG_JSON="$BUILD_DIR/tier1_defrag.json"
  # One seed, a short horizon: bench_defrag itself fails the stage unless
  # fragmentation strictly improved, workload outcomes were bit-identical
  # repacker-on vs repacker-off under kRepackAbort chaos, and the
  # repack-on replay reproduced its digest.
  "$BUILD_DIR/bench/bench_defrag" 1 1 150 --json "$DEFRAG_JSON"
  for field in frag_before frag_after migrations p99_cycles_on \
      p99_cycles_off bit_identical; do
    grep -q "\"$field\"" "$DEFRAG_JSON" || {
      echo "tier-1: $DEFRAG_JSON is missing the \"$field\" field" >&2
      return 1
    }
  done
  # Surface frag-before/after and the migration count into
  # tier1_summary.json (runner merges this fragment into the stage row).
  frag_before=$(sed -n 's/.*"frag_before": \([0-9.e+-]*\).*/\1/p' \
      "$DEFRAG_JSON")
  frag_after=$(sed -n 's/.*"frag_after": \([0-9.e+-]*\).*/\1/p' \
      "$DEFRAG_JSON")
  migrations=$(sed -n 's/.*"migrations": \([0-9]*\).*/\1/p' "$DEFRAG_JSON")
  printf '"frag_before":%s,"frag_after":%s,"migrations":%s' \
      "${frag_before:-0}" "${frag_after:-0}" "${migrations:-0}" \
      > .tier1_stage_extra
  echo "tier-1 defrag: soak clean, frag $frag_before -> $frag_after," \
      "$migrations migrations ($DEFRAG_JSON)"
}

stage_racecheck() {
  cmake --build "$BUILD_DIR" --target presp-racecheck -j
  RC_BIN="$BUILD_DIR/tools/presp-racecheck"
  RC_SUMMARY="$BUILD_DIR/tier1_racecheck.json"
  RC_SARIF="$BUILD_DIR/tier1_racecheck.sarif"
  # Regression gate over the seeded corpus: every racy workload must
  # report its expected race.* rule within 8 seeds and every clean
  # workload must stay silent (presp-racecheck exits 2 on a mismatch).
  "$RC_BIN" --all --seeds 8 --expect --stats \
      --format sarif --out "$RC_SARIF" --summary-json "$RC_SUMMARY"
  if grep -q '"hooks_compiled":false' "$RC_SUMMARY"; then
    echo "tier-1 racecheck: hooks compiled out (-DPRESP_RACECHECK=OFF)," \
        "corpus gate skipped"
    return 0
  fi
  # Clean suite again under the wider sweep: the exec/runtime/fleet/store
  # instrumentation must stay race-clean under 32 perturbed schedules.
  clean_args=$("$RC_BIN" --list |
      awk -F'\t' '$2 == "clean" { printf "--workload %s ", $1 }')
  # shellcheck disable=SC2086  # one flag pair per clean workload
  "$RC_BIN" $clean_args --seeds 32 --expect >/dev/null
  # Surface the finding counts into tier1_summary.json (runner merges
  # this fragment into the stage row).
  sed 's/^{"hooks_compiled":true,//; s/}$//' "$RC_SUMMARY" \
      > .tier1_stage_extra
  echo "tier-1 racecheck: corpus gate clean ($RC_SUMMARY, $RC_SARIF)"
}

stage_ops() {
  cmake --build "$BUILD_DIR" --target ops_test bench_fleet presp-lint -j

  # Unit + endpoint suite: options, SSE ring/hub/framing, snapshot
  # consistency under writer threads, the server end to end (404/405,
  # the 503 connection cap, publish round-trips, slow-client drops) and
  # the lint watcher.
  "$BUILD_DIR"/tests/ops_test

  # Fleet soak with the ops overlay live: bench_fleet itself fails on
  # any endpoint error mid-run, on a slow SSE client whose drops never
  # got counted, and on a replay (no server) that is not bit-identical
  # to the observed run.
  OPS_JSON="$BUILD_DIR/tier1_ops_fleet.json"
  "$BUILD_DIR"/bench/bench_fleet 1 1 120 --ops-port 0 --json "$OPS_JSON"
  grep -q '"ops_enabled": true' "$OPS_JSON" || {
    echo "tier-1: $OPS_JSON does not record the ops overlay" >&2
    return 1
  }

  # Watch-mode lint regression: start presp-lint --watch on a copy of a
  # shipped config, inject a broken [ops] section mid-run, and require
  # the re-lint (with its findings) to land in the watch log before the
  # bounded poll loop exits.
  WATCH_DIR="$BUILD_DIR/tier1_ops_watch"
  rm -rf "$WATCH_DIR"
  mkdir -p "$WATCH_DIR"
  cp examples/configs/soc_2.esp_config "$WATCH_DIR/watched.esp_config"
  "$BUILD_DIR"/tools/presp-lint --watch "$WATCH_DIR/watched.esp_config" \
      --poll-ms 100 --max-polls 30 --watch-log "$WATCH_DIR/watch.log" &
  watch_pid=$!
  sleep 1
  printf '\n[ops]\nenabled = true\nport = 99999\n' \
      >> "$WATCH_DIR/watched.esp_config"
  wait "$watch_pid" || {
    echo "tier-1: presp-lint --watch exited non-zero" >&2
    return 1
  }
  # One record per report; the embedded findings JSON is multi-line.
  watch_reports=$(grep -c '^{"path":' "$WATCH_DIR/watch.log")
  [ "$watch_reports" -ge 2 ] || {
    echo "tier-1: watch log has $watch_reports report(s); the injected" \
        "edit was never re-linted" >&2
    return 1
  }
  grep -q '"errors":[1-9]' "$WATCH_DIR/watch.log" || {
    echo "tier-1: the injected ops.port error never reached the watch" \
        "log" >&2
    return 1
  }

  # Surface the soak's ops counters into tier1_summary.json.
  sse_dropped=$(sed -n 's/.*"ops_sse_dropped": \([0-9]*\).*/\1/p' \
      "$OPS_JSON")
  endpoint_checks=$(sed -n 's/.*"ops_endpoint_checks": \([0-9]*\).*/\1/p' \
      "$OPS_JSON")
  printf '"ops_sse_dropped":%s,"ops_endpoint_checks":%s,"watch_reports":%s' \
      "${sse_dropped:-0}" "${endpoint_checks:-0}" "$watch_reports" \
      > .tier1_stage_extra
  echo "tier-1 ops: soak + endpoints + watch-lint clean" \
      "($endpoint_checks endpoint checks, $sse_dropped slow-client" \
      "drops, $watch_reports watch reports)"
}

stage_asan() {
  cmake -B "$ASAN_BUILD_DIR" -S . \
      -DPRESP_SANITIZE=address,undefined >/dev/null
  cmake --build "$ASAN_BUILD_DIR" -j
  (cd "$ASAN_BUILD_DIR" && ctest --output-on-failure -j)
}

stage_tsan() {
  cmake -B "$TSAN_BUILD_DIR" -S . -DPRESP_SANITIZE=thread >/dev/null
  cmake --build "$TSAN_BUILD_DIR" \
      --target chase_lev_test exec_test exec_determinism_test trace_test \
      fleet_test ops_test dynamic_floorplan_test repacker_test -j
  "$TSAN_BUILD_DIR"/tests/chase_lev_test
  "$TSAN_BUILD_DIR"/tests/exec_test
  "$TSAN_BUILD_DIR"/tests/exec_determinism_test
  "$TSAN_BUILD_DIR"/tests/trace_test
  "$TSAN_BUILD_DIR"/tests/fleet_test
  "$TSAN_BUILD_DIR"/tests/ops_test
  "$TSAN_BUILD_DIR"/tests/dynamic_floorplan_test
  "$TSAN_BUILD_DIR"/tests/repacker_test
}

# ----------------------------------------------------------------- runner

usage() {
  echo "Usage: tools/run_tier1.sh [--stage <name>]..."
  echo "Stages: $ALL_STAGES"
}

SELECTED=""
while [ $# -gt 0 ]; do
  case "$1" in
    --stage)
      [ $# -ge 2 ] || {
        usage >&2
        exit 2
      }
      case " $ALL_STAGES " in
        *" $2 "*) SELECTED="$SELECTED $2" ;;
        *)
          echo "tier-1: unknown stage '$2' (stages: $ALL_STAGES)" >&2
          exit 2
          ;;
      esac
      shift 2
      ;;
    -h | --help)
      usage
      exit 0
      ;;
    *)
      echo "tier-1: unknown argument '$1'" >&2
      usage >&2
      exit 2
      ;;
  esac
done

if [ -z "$SELECTED" ]; then
  for s in $ALL_STAGES; do
    if [ "$s" = asan ] && [ "${SKIP_ASAN:-0}" = "1" ]; then
      echo "tier-1: asan stage skipped (SKIP_ASAN=1)"
      continue
    fi
    if [ "$s" = tsan ] && [ "${SKIP_TSAN:-0}" = "1" ]; then
      echo "tier-1: tsan stage skipped (SKIP_TSAN=1)"
      continue
    fi
    SELECTED="$SELECTED $s"
  done
fi

summary_rows=""
failed_stages=""
overall=0
for stage in $SELECTED; do
  echo "== tier-1 stage: $stage =="
  rm -f .tier1_stage_extra
  stage_start=$(date +%s)
  if (
    set -e
    "stage_$stage"
  ); then
    status=pass
  else
    status=fail
    overall=1
    failed_stages="$failed_stages $stage"
    echo "tier-1: stage '$stage' FAILED" >&2
  fi
  stage_seconds=$(($(date +%s) - stage_start))
  # A stage may leave extra JSON fields (e.g. racecheck finding counts)
  # in .tier1_stage_extra; merge them into its summary row.
  stage_extra=""
  if [ -s .tier1_stage_extra ]; then
    stage_extra=",$(tr -d '\n' < .tier1_stage_extra)"
    rm -f .tier1_stage_extra
  fi
  summary_rows="$summary_rows{\"name\":\"$stage\",\
\"status\":\"$status\",\"seconds\":$stage_seconds$stage_extra},"
done

[ $overall -eq 0 ] && passed=true || passed=false
printf '{"stages":[%s],"passed":%s}\n' "${summary_rows%,}" "$passed" \
    > "$TIER1_SUMMARY"
echo "tier-1: summary written to $TIER1_SUMMARY"

if [ $overall -ne 0 ]; then
  echo "tier-1: FAILED stages:$failed_stages" >&2
else
  echo "tier-1: all selected stages passed (${SELECTED# })"
fi
exit $overall
