// presp-trace: inspect, summarize, and convert saved .trace.json files
// produced by the --trace flags of presp-flow and the WAMI app.
#include <string>
#include <vector>

#include "trace/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return presp::trace::run_trace_cli(args);
}
