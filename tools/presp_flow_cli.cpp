// presp-flow: the command-line flow driver ("a single make target").
//
// Usage:
//   presp-flow <config.esp_config> [--no-physical] [--standard]
//              [--strategy serial|semi|fully] [--tau N]
//   presp-flow lint [--format=text|json] <config.esp_config>...
//
// Loads an ESP-style SoC configuration, registers the built-in
// accelerator libraries (characterization kernels + WAMI kernels), runs
// the PR-ESP flow against the configured device, and prints the
// implementation report including the floorplan and the comparison with
// the standard single-instance DPR flow.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "core/report.hpp"
#include "lint/cli.hpp"
#include "ops/server.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"
#include "floorplan/visualize.hpp"
#include "hls/library.hpp"
#include "hls/spec_io.hpp"
#include "util/config.hpp"
#include "netlist/config_io.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "wami/accelerators.hpp"

using namespace presp;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <config.esp_config> [--no-physical] [--standard]\n"
               "          [--strategy serial|semi|fully] [--tau N]\n"
               "          [--report <file>] [--out <dir>] [-v]\n"
               "          [--trace <out.json>] [--trace-categories <csv>]\n"
               "          [--cache-dir <dir>] [--cache-max-bytes <N>]\n"
               "          [--cache-stats] [--threads N] [--ops-port N]\n",
               argv0);
  return 2;
}

fabric::Device device_for(const std::string& name) {
  if (name == "vc707") return fabric::Device::vc707();
  if (name == "vcu118") return fabric::Device::vcu118();
  if (name == "vcu128") return fabric::Device::vcu128();
  throw InvalidArgument("unknown device '" + name +
                        "' (expected vc707|vcu118|vcu128)");
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  if (argc < 2) return usage(argv[0]);
  if (std::strcmp(argv[1], "lint") == 0)
    return lint::run_lint_cli(std::vector<std::string>(argv + 2, argv + argc),
                              std::string(argv[0]) + " lint");

  std::string config_path;
  std::string report_path;
  std::string trace_path;
  std::string trace_categories;
  core::FlowOptions options;
  bool run_standard = false;
  bool cache_stats = false;
  std::optional<std::string> cache_dir_flag;
  std::optional<long long> cache_max_bytes_flag;
  std::optional<int> threads_flag;
  std::optional<int> ops_port_flag;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--no-physical") {
      options.run_physical = false;
    } else if (arg == "--standard") {
      run_standard = true;
    } else if (arg == "-v") {
      set_log_level(LogLevel::kInfo);
    } else if (arg == "--strategy" && i + 1 < argc) {
      const std::string s = argv[++i];
      if (s == "serial") options.force_strategy = core::Strategy::kSerial;
      else if (s == "semi") options.force_strategy = core::Strategy::kSemiParallel;
      else if (s == "fully") options.force_strategy = core::Strategy::kFullyParallel;
      else return usage(argv[0]);
    } else if (arg == "--tau" && i + 1 < argc) {
      options.force_tau = std::atoi(argv[++i]);
    } else if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      options.artifacts_dir = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--trace-categories" && i + 1 < argc) {
      trace_categories = argv[++i];
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      cache_dir_flag = argv[++i];
    } else if (arg == "--cache-max-bytes" && i + 1 < argc) {
      cache_max_bytes_flag = std::atoll(argv[++i]);
    } else if (arg == "--cache-stats") {
      cache_stats = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads_flag = std::atoi(argv[++i]);
    } else if (arg == "--ops-port" && i + 1 < argc) {
      ops_port_flag = std::atoi(argv[++i]);
    } else if (!arg.empty() && arg[0] != '-' && config_path.empty()) {
      config_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (config_path.empty()) return usage(argv[0]);

  try {
    std::ifstream config_file(config_path);
    if (!config_file) {
      std::fprintf(stderr, "presp-flow: cannot read %s\n",
                   config_path.c_str());
      return 1;
    }
    std::ostringstream config_text;
    config_text << config_file.rdbuf();
    const auto raw = Config::parse(config_text.str());
    const auto config = netlist::SocConfig::from_config(raw);
    const auto device = device_for(config.device);

    // [exec] section defaults; command-line flags win.
    options.exec_threads = static_cast<int>(
        raw.get_int_or("exec", "threads", options.exec_threads));
    options.cache.dir = raw.get_or("exec", "cache_dir", options.cache.dir);
    options.cache.max_bytes = raw.get_int_or("exec", "cache_max_bytes",
                                             options.cache.max_bytes);
    if (threads_flag) options.exec_threads = *threads_flag;
    if (cache_dir_flag) options.cache.dir = *cache_dir_flag;
    if (cache_max_bytes_flag) options.cache.max_bytes = *cache_max_bytes_flag;

    // Live ops plane: [ops] section opts in; --ops-port forces it on.
    // The flow has no tile runtime, so /health reports null; /metrics,
    // /trace/summary and /events stream the exec engine's counters and
    // the live trace session. Stopped by the unique_ptr at scope exit.
    ops::OpsOptions ops_options = ops::OpsOptions::from_config(raw);
    if (ops_port_flag) {
      ops_options.enabled = true;
      ops_options.port = *ops_port_flag;
    }
    std::unique_ptr<ops::OpsServer> ops_server;
    if (ops_options.enabled) {
      ops_server = std::make_unique<ops::OpsServer>(ops_options);
      ops_server->start();
      std::printf("ops server on %s:%d\n", ops_options.bind.c_str(),
                  ops_server->port());
    }

    auto lib = netlist::ComponentLibrary::with_builtins();
    hls::register_characterization_kernels(lib);
    wami::register_wami_kernels(lib);
    // Custom accelerators defined next to the SoC ([accelerator <name>]).
    const auto custom = hls::register_kernels_from_config(raw, lib);
    for (const auto& spec : custom)
      std::printf("registered accelerator '%s' (%lld LUTs)\n",
                  spec.name.c_str(),
                  static_cast<long long>(
                      lib.get(spec.name).resources.luts));

    if (!trace_path.empty()) {
      trace::TraceConfig trace_config;
      if (!trace_categories.empty())
        trace_config.categories = trace::parse_categories(trace_categories);
      trace_config.sim_clock_mhz = config.clock_mhz;
      trace::TraceSession::instance().start(trace_config);
      trace::set_thread_name("main");
    }

    const core::PrEspFlow flow(device, lib, options);
    const auto result = flow.run(config);

    if (!trace_path.empty()) {
      const trace::TraceReport report =
          trace::TraceSession::instance().stop();
      trace::write_chrome_trace(report, trace_path);
      std::printf("trace: %zu events (%llu dropped) written to %s\n",
                  report.events.size(),
                  static_cast<unsigned long long>(report.dropped),
                  trace_path.c_str());
    }

    if (cache_stats) {
      if (result.cache_enabled) {
        const auto& cs = result.cache;
        std::printf(
            "cache %s: %llu hits, %llu misses, %llu stores, "
            "%llu evictions, %llu poisoned, %.1f MB on disk\n",
            options.cache.dir.c_str(),
            static_cast<unsigned long long>(cs.hits),
            static_cast<unsigned long long>(cs.misses),
            static_cast<unsigned long long>(cs.stores),
            static_cast<unsigned long long>(cs.evictions),
            static_cast<unsigned long long>(cs.poisoned),
            static_cast<double>(cs.bytes) / 1e6);
      } else {
        std::printf("cache: disabled (set --cache-dir or [exec] "
                    "cache_dir)\n");
      }
    }

    std::printf("design %s on %s\n", result.design.c_str(),
                device.name().c_str());
    std::printf("  class %s (kappa %.1f%%, alpha_av %.1f%%, gamma %.2f)\n",
                core::to_string(result.decision.design_class),
                result.metrics.kappa * 100, result.metrics.alpha_av * 100,
                result.metrics.gamma);
    std::printf("  strategy %s, tau=%d\n",
                core::to_string(result.decision.strategy),
                result.decision.tau);
    std::printf("  synth %.0f min, P&R %.0f min (t_static %.0f + omega "
                "%.0f), total %.0f min\n",
                result.synth_makespan_minutes, result.pnr_total_minutes,
                result.t_static_minutes, result.omega_minutes,
                result.total_minutes);
    if (options.run_physical) {
      std::printf("  physical: %s, fmax %.0f MHz (%s), full bitstream "
                  "%.1f MB\n",
                  result.physical_ok ? "routed" : "FAILED",
                  result.achieved_fmax_mhz,
                  result.timing_met ? "timing met" : "TIMING MISSED",
                  static_cast<double>(result.full_bitstream_bytes) / 1e6);
      TextTable table({"partition", "module", "LUTs", "pbs KB"});
      for (const auto& m : result.modules)
        table.add_row(
            {m.partition, m.module, TextTable::integer(m.utilization.luts),
             TextTable::num(
                 static_cast<double>(m.pbs_compressed_bytes) / 1024, 0)});
      std::printf("%s", table.render().c_str());
      std::printf("floorplan:\n%s",
                  floorplan::visualize(device, result.plan.pblocks)
                      .c_str());
    }
    if (!report_path.empty()) {
      core::write_flow_report(result, device, report_path);
      std::printf("report written to %s\n", report_path.c_str());
    }
    if (run_standard) {
      const auto standard = flow.run_standard(config);
      std::printf(
          "standard flow: synth %.0f + P&R %.0f = %.0f min "
          "(PR-ESP %+.1f%%)\n",
          standard.synth_minutes, standard.pnr_minutes,
          standard.total_minutes,
          100.0 * (standard.total_minutes - result.total_minutes) /
              standard.total_minutes);
    }
    return result.physical_ok || !options.run_physical ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "presp-flow: %s\n", e.what());
    return 1;
  }
}
