// The WAMI-App case study end to end: runs the full SoC simulation of
// SoC_Y (three reconfigurable tiles, Table VI mapping) processing a
// synthetic aerial-imagery stream with runtime partial reconfiguration,
// and verifies every frame bit-exactly against the software pipeline.
//
// Build and run:  ./build/examples/wami_app [frames]
#include <cstdio>
#include <cstdlib>

#include "util/log.hpp"
#include "wami/app.hpp"

using namespace presp;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kInfo);

  wami::WamiAppOptions options;
  options.frames = argc > 1 ? std::atoi(argv[1]) : 4;
  options.workload = {128, 128};
  options.lk_iterations = 2;
  options.scene.drift_x = 1.2;
  options.scene.drift_y = -0.7;
  options.scene.num_objects = 3;

  std::printf("WAMI application on SoC_Y: %d frames of %dx%d, %d LK "
              "iterations per frame\n",
              options.frames, options.workload.width,
              options.workload.height, options.lk_iterations);
  std::printf("tile mapping (Table VI): RT_1{1,3,7,12} RT_2{2,6,8} "
              "RT_3{4,9,10}; kernels 5,11 run in software\n\n");

  wami::WamiApp app('Y', options);
  const auto result = app.run();

  std::printf("%-6s %12s %12s %8s %10s\n", "frame", "ms", "joules",
              "reconf", "verified");
  for (std::size_t f = 0; f < result.frames.size(); ++f) {
    const auto& fr = result.frames[f];
    std::printf("%-6zu %12.2f %12.4f %8d %10s\n", f, fr.seconds * 1e3,
                fr.joules, fr.reconfigurations,
                fr.verified ? "yes" : "NO");
  }
  std::printf("\nsteady state: %.2f ms/frame, %.4f J/frame\n",
              result.seconds_per_frame * 1e3, result.joules_per_frame);
  std::printf("reconfigurations: %llu (%llu avoided), %.1f MB through the "
              "ICAP\n",
              static_cast<unsigned long long>(result.reconfigurations),
              static_cast<unsigned long long>(
                  result.reconfigurations_avoided),
              static_cast<double>(result.icap_bytes) / 1e6);
  std::printf("registration parameters after %d frames: tx=%.2f ty=%.2f\n",
              options.frames, result.params[4], result.params[5]);
  std::printf("hardware/software equivalence: %s\n",
              result.all_verified ? "bit-exact on every frame"
                                  : "MISMATCH DETECTED");

  const auto& manager_stats = app.manager().stats();
  std::printf(
      "runtime manager: prc wait %.2f ms, tile-lock wait %.2f ms, max "
      "queue depth %d\n",
      static_cast<double>(manager_stats.prc_wait_cycles) / 78e3,
      static_cast<double>(manager_stats.lock_wait_cycles) / 78e3,
      manager_stats.max_queue_depth);
  return result.all_verified ? 0 : 1;
}
