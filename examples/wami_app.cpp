// The WAMI-App case study end to end: runs the full SoC simulation of
// SoC_Y (three reconfigurable tiles, Table VI mapping) processing a
// synthetic aerial-imagery stream with runtime partial reconfiguration,
// and verifies every frame bit-exactly against the software pipeline.
//
// Build and run:
//   ./build/examples/wami_app [frames] [--trace out.json]
//                             [--cache-slots N] [--prefetch] [--serial]
//                             [--ops-port N]
//
// --cache-slots bounds kernel DRAM to N partial-bitstream slots (LRU,
// filled from the async source); --prefetch warms each tile's next
// kernel while the current one runs; --serial disables the pipelined
// fetch/program overlap (the legacy combined ICAP transfer).
// --ops-port serves live telemetry on 127.0.0.1:N while the app runs
// (0 = ephemeral): curl /metrics, /health (tile health + quarantine
// stats from the reconfiguration manager), /trace/summary, /events.
//
// With --trace, the run records the runtime manager's reconfiguration
// lifecycle, NoC channel depths and per-frame application spans on the
// sim-time timeline (plus host-side exec spans). Open the output in
// chrome://tracing / Perfetto, or summarize with presp-trace.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include <vector>

#include "ops/server.hpp"
#include "ops/sources.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"
#include "util/log.hpp"
#include "wami/app.hpp"
#include "wami/frame_generator.hpp"
#include "wami/pipeline.hpp"

using namespace presp;

int main(int argc, char** argv) {
  set_log_level(LogLevel::kInfo);

  wami::WamiAppOptions options;
  std::string trace_path;
  std::string trace_categories;
  int ops_port = -1;  // < 0: no ops server
  int frames = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-categories") == 0 &&
               i + 1 < argc) {
      trace_categories = argv[++i];
    } else if (std::strcmp(argv[i], "--cache-slots") == 0 && i + 1 < argc) {
      options.store.cache_slots = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--prefetch") == 0) {
      options.prefetch_next_kernel = true;
    } else if (std::strcmp(argv[i], "--serial") == 0) {
      options.manager.pipelined = false;
    } else if (std::strcmp(argv[i], "--ops-port") == 0 && i + 1 < argc) {
      ops_port = std::atoi(argv[++i]);
    } else {
      frames = std::atoi(argv[i]);
    }
  }
  options.frames = frames;
  options.workload = {128, 128};
  options.lk_iterations = 2;
  options.scene.drift_x = 1.2;
  options.scene.drift_y = -0.7;
  options.scene.num_objects = 3;

  std::printf("WAMI application on SoC_Y: %d frames of %dx%d, %d LK "
              "iterations per frame\n",
              options.frames, options.workload.width,
              options.workload.height, options.lk_iterations);
  std::printf("tile mapping (Table VI): RT_1{1,3,7,12} RT_2{2,6,8} "
              "RT_3{4,9,10}; kernels 5,11 run in software\n\n");

  if (!trace_path.empty()) {
    trace::TraceConfig trace_config;
    if (!trace_categories.empty())
      trace_config.categories = trace::parse_categories(trace_categories);
    trace::TraceSession::instance().start(trace_config);
    trace::set_thread_name("main");
  }

  wami::WamiApp app('Y', options);

  // Live ops overlay: /health reflects the reconfiguration manager's
  // tile-health registry while the frames run.
  std::unique_ptr<ops::OpsServer> ops_server;
  if (ops_port >= 0) {
    ops::OpsOptions ops_options;
    ops_options.enabled = true;
    ops_options.port = ops_port;
    ops_server = std::make_unique<ops::OpsServer>(ops_options);
    ops_server->set_health_source([&app] {
      auto& health = app.manager().health();
      return ops::tile_health_json(health.snapshot(), health.stats());
    });
    ops_server->start();
    std::printf("ops server on 127.0.0.1:%d (curl /metrics, /health, "
                "/trace/summary; stream /events)\n\n",
                ops_server->port());
  }

  const auto result = app.run();

  // Pooled software pipeline over the same scene: the same kernels on the
  // exec engine, so a traced run carries per-worker task spans on the
  // host timeline next to the SoC's reconfiguration spans in sim time.
  {
    wami::PipelineOptions pipeline_options;
    pipeline_options.lk_iterations = options.lk_iterations;
    pipeline_options.threads = 4;
    wami::WamiPipeline pipeline(pipeline_options);
    wami::FrameGenerator generator(options.scene);
    std::vector<wami::ImageU16> bayer_frames;
    bayer_frames.reserve(static_cast<std::size_t>(options.frames));
    for (int f = 0; f < options.frames; ++f)
      bayer_frames.push_back(generator.next_frame());
    long long changed = 0;
    for (const auto& fr : pipeline.process_batch(bayer_frames))
      changed += fr.changed_pixels;
    const auto pool_stats = pipeline.pool_stats();
    std::printf("software pipeline (%d worker threads): %d frames, %lld "
                "changed pixels, %llu pool tasks\n",
                pipeline_options.threads, options.frames, changed,
                static_cast<unsigned long long>(pool_stats.executed));
  }

  if (!trace_path.empty()) {
    const trace::TraceReport report = trace::TraceSession::instance().stop();
    trace::write_chrome_trace(report, trace_path);
    std::printf("trace: %zu events (%llu dropped) written to %s\n\n",
                report.events.size(),
                static_cast<unsigned long long>(report.dropped),
                trace_path.c_str());
  }

  std::printf("%-6s %12s %12s %8s %10s\n", "frame", "ms", "joules",
              "reconf", "verified");
  for (std::size_t f = 0; f < result.frames.size(); ++f) {
    const auto& fr = result.frames[f];
    std::printf("%-6zu %12.2f %12.4f %8d %10s\n", f, fr.seconds * 1e3,
                fr.joules, fr.reconfigurations,
                fr.verified ? "yes" : "NO");
  }
  std::printf("\nsteady state: %.2f ms/frame, %.4f J/frame\n",
              result.seconds_per_frame * 1e3, result.joules_per_frame);
  std::printf("reconfigurations: %llu (%llu avoided), %.1f MB through the "
              "ICAP\n",
              static_cast<unsigned long long>(result.reconfigurations),
              static_cast<unsigned long long>(
                  result.reconfigurations_avoided),
              static_cast<double>(result.icap_bytes) / 1e6);
  std::printf("registration parameters after %d frames: tx=%.2f ty=%.2f\n",
              options.frames, result.params[4], result.params[5]);
  std::printf("hardware/software equivalence: %s\n",
              result.all_verified ? "bit-exact on every frame"
                                  : "MISMATCH DETECTED");

  const auto& manager_stats = app.manager().stats();
  std::printf(
      "runtime manager: prc wait %.2f ms, tile-lock wait %.2f ms, max "
      "queue depth %d\n",
      static_cast<double>(manager_stats.prc_wait_cycles) / 78e3,
      static_cast<double>(manager_stats.lock_wait_cycles) / 78e3,
      manager_stats.max_queue_depth);
  if (options.store.cache_slots > 0) {
    const auto& ss = app.store().stats();
    std::printf(
        "bitstream cache: %d slots, %llu hits / %llu misses / %llu "
        "evictions, %.1f MB from source\n",
        options.store.cache_slots,
        static_cast<unsigned long long>(ss.hits),
        static_cast<unsigned long long>(ss.misses),
        static_cast<unsigned long long>(ss.evictions),
        static_cast<double>(ss.source_bytes) / 1e6);
  }
  return result.all_verified ? 0 : 1;
}
