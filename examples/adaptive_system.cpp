// Adaptive system demo: the runtime reconfiguration manager servicing a
// dynamic mix of accelerator requests from multiple software threads —
// the scenario DPR was designed for. Threads race for two reconfigurable
// tiles with different working sets; the manager schedules
// reconfigurations on the single DFX controller, locks devices, and swaps
// drivers. Compares against the bare-metal polling driver on the same
// request trace.
//
// Build and run:  ./build/examples/adaptive_system
#include <cstdio>
#include <vector>

#include "runtime/api.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "wami/accelerators.hpp"

using namespace presp;

namespace {

struct Request {
  int tile;
  std::string module;
  long long items;
};

std::vector<Request> make_trace(
    const std::vector<std::pair<int, std::vector<std::string>>>& tiles,
    int count, std::uint64_t seed) {
  // A skewed working set per tile: the first two members are "hot".
  Rng rng(seed);
  std::vector<Request> trace;
  for (int i = 0; i < count; ++i) {
    const auto& [tile, members] =
        tiles[static_cast<std::size_t>(rng.next_below(tiles.size()))];
    const std::size_t pick =
        rng.next_bool(0.7)
            ? rng.next_below(std::min<std::size_t>(2, members.size()))
            : rng.next_below(members.size());
    trace.push_back({tile, members[pick],
                     4'096 + static_cast<long long>(rng.next_below(8'192))});
  }
  return trace;
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);
  std::printf(
      "Adaptive system: 3 software threads, 2 reconfigurable tiles, a\n"
      "skewed 24-request trace over 8 WAMI kernels.\n\n");

  const auto registry =
      wami::wami_accelerator_registry(wami::WamiWorkload{64, 64});

  const auto config = netlist::SocConfig::parse(R"(
[soc]
name = adaptive
device = vc707
rows = 2
cols = 3

[tiles]
r0c0 = cpu
r0c1 = mem
r0c2 = aux
r1c0 = reconf:debayer,grayscale,gradient,warp,change_detection
r1c1 = reconf:steepest_descent,hessian,sd_update,warp,change_detection
r1c2 = empty
)");

  TextTable table({"driver", "makespan ms", "reconfigs", "avoided",
                   "prc wait ms", "lock wait ms"});
  for (const bool baremetal : {false, true}) {
    soc::Soc soc(config, registry);
    runtime::BitstreamStore store(soc.memory());
    runtime::ReconfigurationManager manager(soc, store);
    runtime::BareMetalDriver driver(soc, store);

    // Publish partial bitstreams for every (tile, member).
    for (const auto& tile : soc.reconf_tiles())
      for (const auto& acc :
           config.tiles[static_cast<std::size_t>(tile->index())]
               .accelerators)
        store.add(tile->index(), acc,
                  static_cast<std::size_t>(registry.get(acc).luts) * 11);

    const auto buf = soc.memory().allocate("buf", 8u << 20);
    std::vector<std::pair<int, std::vector<std::string>>> tile_members;
    for (const auto& tile : soc.reconf_tiles())
      tile_members.emplace_back(
          tile->index(),
          config.tiles[static_cast<std::size_t>(tile->index())]
              .accelerators);
    const auto trace = make_trace(tile_members, 24, 42);

    // Linux path: three application threads round-robin over the trace.
    // Bare-metal path: no locking, so a single thread walks the whole
    // trace sequentially.
    auto worker = [&](int id, int stride) -> sim::Process {
      for (std::size_t i = static_cast<std::size_t>(id); i < trace.size();
           i += static_cast<std::size_t>(stride)) {
        const Request& req = trace[i];
        soc::AccelTask task;
        task.src = buf;
        task.dst = buf + (4u << 20);
        task.items = req.items;
        sim::SimEvent done(soc.kernel());
        if (baremetal) {
          driver.run(req.tile, req.module, task, done);
        } else {
          manager.run(req.tile, req.module, task, done);
        }
        co_await done.wait();
      }
    };
    if (baremetal) {
      worker(0, 1);
    } else {
      for (int id = 0; id < 3; ++id) worker(id, 3);
    }
    soc.kernel().run();

    const double ms = static_cast<double>(soc.kernel().now()) / 78e3;
    if (baremetal) {
      table.add_row({"bare-metal (1 thread, poll)", TextTable::num(ms, 2),
                     TextTable::integer(static_cast<long long>(
                         driver.stats().reconfigurations)),
                     "-", "-", "-"});
    } else {
      const auto& stats = manager.stats();
      table.add_row(
          {"Linux manager (3 threads, IRQ)", TextTable::num(ms, 2),
           TextTable::integer(
               static_cast<long long>(stats.reconfigurations)),
           TextTable::integer(
               static_cast<long long>(stats.reconfigurations_avoided)),
           TextTable::num(static_cast<double>(stats.prc_wait_cycles) / 78e3,
                          2),
           TextTable::num(static_cast<double>(stats.lock_wait_cycles) / 78e3,
                          2)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "The manager extracts concurrency across tiles (threads overlap\n"
      "execution with reconfiguration on the other tile) while the PRC\n"
      "workqueue serializes ICAP access; hot kernels staying resident\n"
      "show up as avoided reconfigurations.\n");
  return 0;
}
