// Quickstart: describe a partially reconfigurable SoC in the ESP-style
// configuration format, run the full PR-ESP flow (elaboration, parallel
// out-of-context synthesis, DPR floorplanning, size-driven strategy
// selection, static + in-context P&R, bitstream generation), and print
// the resulting implementation summary.
//
// Build and run:  ./build/examples/quickstart
#include <cstdio>

#include "core/flow.hpp"
#include "floorplan/visualize.hpp"
#include "hls/estimator.hpp"
#include "hls/library.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

using namespace presp;

int main() {
  set_log_level(LogLevel::kInfo);

  // 1. A component library: ESP built-ins plus two accelerators from the
  // HLS flows (here: the characterization kernels; you can also describe
  // your own kernel with hls::KernelSpec and register it).
  auto lib = netlist::ComponentLibrary::with_builtins();
  hls::register_characterization_kernels(lib);

  // A custom accelerator, straight from a kernel description.
  hls::KernelSpec custom;
  custom.name = "my_filter";
  custom.pe_ops = {{hls::OpKind::kMac16, 4}};
  custom.num_pes = 16;
  custom.address_generators = 2;
  custom.fsm_states = 10;
  custom.scratchpad_bytes = 16 * 1024;
  hls::register_kernel(lib, custom);

  // 2. The SoC: a 2x3 grid with two reconfigurable tiles, one of which
  // time-shares three accelerators.
  const auto config = netlist::SocConfig::parse(R"(
[soc]
name = quickstart_soc
device = vc707
rows = 2
cols = 3
clock_mhz = 78

[tiles]
r0c0 = cpu:leon3
r0c1 = mem
r0c2 = aux
r1c0 = reconf:fft,sort,my_filter
r1c1 = reconf:gemm
r1c2 = empty
)");

  // 3. Run the flow ("a single make target").
  const auto device = fabric::Device::vc707();
  const core::PrEspFlow flow(device, lib, {});
  const auto result = flow.run(config);

  // 4. Report.
  std::printf("\ndesign: %s  (device %s)\n", result.design.c_str(),
              device.name().c_str());
  std::printf(
      "metrics: kappa=%.1f%%  alpha_av=%.1f%%  gamma=%.2f  -> class %s\n",
      result.metrics.kappa * 100, result.metrics.alpha_av * 100,
      result.metrics.gamma, core::to_string(result.decision.design_class));
  std::printf("strategy: %s (tau=%d)\n",
              core::to_string(result.decision.strategy),
              result.decision.tau);
  std::printf(
      "compile time: synth %.0f min + P&R %.0f min = %.0f min "
      "(t_static %.0f, omega %.0f)\n",
      result.synth_makespan_minutes, result.pnr_total_minutes,
      result.total_minutes, result.t_static_minutes, result.omega_minutes);
  std::printf(
      "physical implementation: %s, fmax %.0f MHz (target %.0f: %s), "
      "full bitstream %.1f MB\n\n",
      result.physical_ok ? "routed" : "FAILED", result.achieved_fmax_mhz,
      config.clock_mhz, result.timing_met ? "met" : "MISSED",
      static_cast<double>(result.full_bitstream_bytes) / 1e6);

  TextTable table({"partition", "module", "LUTs", "pbs raw KB",
                   "pbs compressed KB"});
  for (const auto& m : result.modules)
    table.add_row({m.partition, m.module,
                   TextTable::integer(m.utilization.luts),
                   TextTable::num(static_cast<double>(m.pbs_raw_bytes) / 1024,
                                  0),
                   TextTable::num(
                       static_cast<double>(m.pbs_compressed_bytes) / 1024,
                       0)});
  std::printf("%s\n", table.render().c_str());

  std::vector<std::string> names;
  for (const auto& [name, pblock] : result.pblocks) names.push_back(name);
  std::printf("floorplan:\n%s\n",
              floorplan::visualize(device, result.plan.pblocks, names,
                                   {3, true})
                  .c_str());

  const auto standard = flow.run_standard(config);
  std::printf(
      "standard single-instance DPR flow would take %.0f min "
      "(PR-ESP saves %.0f%%)\n",
      standard.total_minutes,
      100.0 * (standard.total_minutes - result.total_minutes) /
          standard.total_minutes);
  return 0;
}
