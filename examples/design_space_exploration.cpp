// Design-space exploration with the PR-ESP flow: sweep the number of
// reconfigurable tiles hosting a pool of accelerators and compare compile
// time (per strategy), floorplan waste, and reconfiguration granularity —
// the trade-off a system designer works through before committing to a
// tile count.
//
// Build and run:  ./build/examples/design_space_exploration
#include <cstdio>
#include <vector>

#include "core/flow.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "wami/accelerators.hpp"

using namespace presp;

namespace {

/// A SoC hosting the Lucas-Kanade kernel pool on `tiles` reconfigurable
/// tiles, members distributed round-robin.
netlist::SocConfig make_candidate(int tiles) {
  const std::vector<int> pool{3, 4, 6, 7, 8, 9, 10, 11};
  netlist::SocConfig soc;
  soc.name = "dse_" + std::to_string(tiles) + "t";
  soc.device = "vc707";
  soc.rows = tiles + 3 <= 6 ? 2 : 3;
  soc.cols = 3;
  soc.tiles.assign(static_cast<std::size_t>(soc.rows) * soc.cols,
                   netlist::TileSpec{});
  soc.tile(0, 0).type = netlist::TileType::kCpu;
  soc.tile(0, 1).type = netlist::TileType::kMem;
  soc.tile(0, 2).type = netlist::TileType::kAux;
  for (int t = 0; t < tiles; ++t) {
    auto& tile = soc.tiles[static_cast<std::size_t>(3 + t)];
    tile.type = netlist::TileType::kReconf;
    for (std::size_t k = 0; k < pool.size(); ++k)
      if (static_cast<int>(k) % tiles == t)
        tile.accelerators.push_back(
            wami::kernel_name(pool[k]));
  }
  soc.validate();
  return soc;
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);
  std::printf(
      "Design-space exploration: Lucas-Kanade kernel pool (8 kernels)\n"
      "mapped onto 1..4 reconfigurable tiles on the VC707.\n\n");

  const auto device = fabric::Device::vc707();
  const auto lib = wami::wami_library();
  core::FlowOptions opt;
  opt.run_physical = false;
  const core::PrEspFlow flow(device, lib, opt);

  TextTable table({"tiles", "class", "strategy", "compile min",
                   "vs standard", "pblock waste kLUT-eq",
                   "pbs images", "max members/tile"});
  for (int tiles = 1; tiles <= 4; ++tiles) {
    const auto config = make_candidate(tiles);
    const auto result = flow.run(config);
    const auto standard = flow.run_standard(config);
    int max_members = 0;
    for (const auto& t : config.tiles)
      max_members = std::max(max_members,
                             static_cast<int>(t.accelerators.size()));
    table.add_row(
        {TextTable::integer(tiles),
         core::to_string(result.decision.design_class),
         core::to_string(result.decision.strategy),
         TextTable::num(result.total_minutes, 0),
         TextTable::num(100.0 *
                            (standard.total_minutes - result.total_minutes) /
                            standard.total_minutes,
                        1) +
             "%",
         TextTable::num(result.plan.waste / 1000.0, 1),
         TextTable::integer(static_cast<long long>(result.modules.size())),
         TextTable::integer(max_members)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Fewer tiles -> smaller reconfigurable area and less pblock waste,\n"
      "but every kernel swap serializes on one partition (see the WAMI\n"
      "example). More tiles push the design toward Classes 1.2/2.1 where\n"
      "PR-ESP's parallel implementation wins the most compile time.\n");
  return 0;
}
