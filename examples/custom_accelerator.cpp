// The full user journey for a custom accelerator, no WAMI involved:
//
//   1. describe a FIR filter kernel for the mini-HLS estimator,
//   2. compile a SoC hosting it with the PR-ESP flow,
//   3. boot the simulated system (full bitstream + module preload),
//   4. stream a noisy signal through the accelerator at runtime,
//   5. verify the hardware output bit-exactly against the software
//      reference, then hot-swap the partition to a second kernel.
//
// Build and run:  ./build/examples/custom_accelerator
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/flow.hpp"
#include "hls/estimator.hpp"
#include "runtime/api.hpp"
#include "runtime/boot.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "wami/image.hpp"  // store/load helpers for the simulated DRAM

using namespace presp;

namespace {

constexpr int kTaps = 8;
constexpr float kCoeff[kTaps] = {0.05f, 0.10f, 0.15f, 0.20f,
                                 0.20f, 0.15f, 0.10f, 0.05f};

/// Software reference: 8-tap FIR (same arithmetic as the accelerator's
/// functional model).
std::vector<float> fir_reference(const std::vector<float>& in) {
  std::vector<float> out(in.size(), 0.0f);
  for (std::size_t i = 0; i < in.size(); ++i) {
    float acc = 0.0f;
    for (int t = 0; t < kTaps; ++t)
      if (i >= static_cast<std::size_t>(t)) acc += kCoeff[t] * in[i - t];
    out[i] = acc;
  }
  return out;
}

}  // namespace

int main() {
  set_log_level(LogLevel::kInfo);

  // 1. The kernels: an 8-tap FIR and a squarer (to demonstrate the swap).
  hls::KernelSpec fir;
  fir.name = "fir8";
  fir.flow = hls::HlsFlow::kVivadoHls;
  fir.pe_ops = {{hls::OpKind::kFMac, kTaps}};
  fir.num_pes = 4;
  fir.address_generators = 2;
  fir.fsm_states = 8;
  fir.scratchpad_bytes = 8 * 1024;
  fir.words_in_per_item = 0.5;
  fir.words_out_per_item = 0.5;

  hls::KernelSpec square;
  square.name = "square";
  square.pe_ops = {{hls::OpKind::kFMul, 1}};
  square.num_pes = 8;
  square.address_generators = 2;
  square.fsm_states = 4;

  auto lib = netlist::ComponentLibrary::with_builtins();
  const auto fir_synth = hls::register_kernel(lib, fir);
  const auto square_synth = hls::register_kernel(lib, square);
  std::printf("fir8: %lld LUTs, square: %lld LUTs\n",
              static_cast<long long>(fir_synth.resources.luts),
              static_cast<long long>(square_synth.resources.luts));

  // 2. Compile the hosting SoC.
  const auto config = netlist::SocConfig::parse(R"(
[soc]
name = dsp_node
device = vc707
rows = 2
cols = 2

[tiles]
r0c0 = cpu
r0c1 = mem
r1c0 = aux
r1c1 = reconf:fir8,square
)");
  const auto device = fabric::Device::vc707();
  core::FlowOptions flow_opt;
  flow_opt.pnr.placer.temperature_steps = 6;
  const core::PrEspFlow flow(device, lib, flow_opt);
  const auto impl = flow.run(config);
  std::printf("flow: %s, %.0f min, fmax %.0f MHz\n",
              core::to_string(impl.decision.strategy), impl.total_minutes,
              impl.achieved_fmax_mhz);

  // 3. The runtime system, with functional models for both kernels.
  soc::AcceleratorRegistry registry;
  {
    soc::AcceleratorSpec spec;
    spec.name = "fir8";
    spec.luts = fir_synth.resources.luts;
    spec.latency = fir_synth.latency;
    spec.compute = [](soc::MainMemory& mem, const soc::AccelTask& task) {
      const auto in = wami::load_from_memory<float>(
          mem, task.src, static_cast<std::size_t>(task.items));
      const auto out = fir_reference(in);
      wami::store_to_memory<float>(mem, task.dst, out);
    };
    registry.add(spec);
    soc::AcceleratorSpec sq;
    sq.name = "square";
    sq.luts = square_synth.resources.luts;
    sq.latency = square_synth.latency;
    sq.compute = [](soc::MainMemory& mem, const soc::AccelTask& task) {
      auto data = wami::load_from_memory<float>(
          mem, task.src, static_cast<std::size_t>(task.items));
      for (float& v : data) v *= v;
      wami::store_to_memory<float>(mem, task.dst, data);
    };
    registry.add(sq);
  }

  soc::Soc soc(config, registry);
  runtime::BitstreamStore store(soc.memory());
  runtime::ReconfigurationManager manager(soc, store);
  const int tile = soc.reconf_tiles()[0]->index();
  store.add(tile, "fir8", impl.module("RT_1", "fir8").pbs_compressed_bytes);
  store.add(tile, "square",
            impl.module("RT_1", "square").pbs_compressed_bytes);

  // 4. Boot, then stream data.
  constexpr int kSamples = 4'096;
  const auto src = soc.memory().allocate("signal", kSamples * 4);
  const auto dst = soc.memory().allocate("filtered", kSamples * 4);
  std::vector<float> signal(kSamples);
  Rng rng(17);
  for (int i = 0; i < kSamples; ++i)
    signal[static_cast<std::size_t>(i)] =
        std::sin(0.02 * i) * 100.0f +
        static_cast<float>(5.0 * rng.next_gaussian());
  wami::store_to_memory<float>(soc.memory(), src, signal);

  runtime::BootReport boot;
  bool fir_ok = false;
  bool square_ok = false;
  auto app = [&]() -> sim::Process {
    sim::SimEvent booted(soc.kernel());
    runtime::boot_system(soc, manager, impl.full_bitstream_bytes,
                         {{tile, "fir8"}}, &boot, booted);
    co_await booted.wait();

    soc::AccelTask task{src, dst, kSamples, 0};
    sim::SimEvent done(soc.kernel());
    manager.run(tile, "fir8", task, done);
    co_await done.wait();
    const auto hw = wami::load_from_memory<float>(soc.memory(), dst,
                                                  kSamples);
    fir_ok = hw == fir_reference(signal);

    // 5. Hot-swap to the squarer and reuse the same buffers.
    sim::SimEvent done2(soc.kernel());
    manager.run(tile, "square", task, done2);
    co_await done2.wait();
    auto expect = signal;
    for (float& v : expect) v *= v;
    square_ok =
        wami::load_from_memory<float>(soc.memory(), dst, kSamples) == expect;
  };
  app();
  soc.kernel().run();

  std::printf("boot: full config %.2f ms, preload %.2f ms\n",
              boot.full_config_seconds * 1e3, boot.preload_seconds * 1e3);
  std::printf("fir8 output %s, square output %s after hot swap\n",
              fir_ok ? "bit-exact" : "MISMATCH",
              square_ok ? "bit-exact" : "MISMATCH");
  std::printf("reconfigurations: %llu, total sim time %.2f ms\n",
              static_cast<unsigned long long>(
                  manager.stats().reconfigurations),
              soc.seconds() * 1e3);
  return fir_ok && square_ok ? 0 : 1;
}
