#include "lint/rules.hpp"

#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <optional>
#include <set>
#include <thread>

#include "bitstream/relocate.hpp"
#include "fleet/topology.hpp"
#include "lint/cycle.hpp"
#include "util/string_utils.hpp"

namespace presp::lint {

namespace {

/// Extracts "line N" from a parser message (Config::parse embeds one).
int extract_line(const std::string& message) {
  const std::size_t pos = message.find("line ");
  if (pos == std::string::npos) return 0;
  std::size_t i = pos + 5;
  long long line = 0;
  bool any = false;
  while (i < message.size() && message[i] >= '0' && message[i] <= '9') {
    line = line * 10 + (message[i] - '0');
    any = true;
    ++i;
  }
  return any && line > 0 && line < 1'000'000 ? static_cast<int>(line) : 0;
}

std::string tile_key(const netlist::SocConfig& config, int index) {
  return "r" + std::to_string(index / config.cols) + "c" +
         std::to_string(index % config.cols);
}

bool covers(const fabric::ResourceVec& have,
            const fabric::ResourceVec& need) {
  return have.luts >= need.luts && have.ffs >= need.ffs &&
         have.bram36 >= need.bram36 && have.dsp >= need.dsp;
}

std::string shortfall(const fabric::ResourceVec& have,
                      const fabric::ResourceVec& need) {
  std::string out;
  const auto add = [&out](const char* name, long long h, long long n) {
    if (h >= n) return;
    if (!out.empty()) out += ", ";
    out += std::string(name) + " " + std::to_string(n) + " > " +
           std::to_string(h);
  };
  add("LUT", have.luts, need.luts);
  add("FF", have.ffs, need.ffs);
  add("BRAM36", have.bram36, need.bram36);
  add("DSP", have.dsp, need.dsp);
  return out;
}

/// True when the pblock lies entirely on the device fabric (rules other
/// than floorplan.illegal-column skip off-fabric pblocks rather than
/// querying resources of columns that do not exist).
bool on_fabric(const fabric::Device& device, const fabric::Pblock& pblock) {
  return pblock.valid() && pblock.col_lo >= 0 &&
         pblock.col_hi < device.num_columns() && pblock.row_lo >= 0 &&
         pblock.row_hi < device.region_rows();
}

/// True when `route` is a well-formed mesh path from src to dst:
/// inclusive endpoints, every hop between 4-neighbour tiles.
bool valid_route(const RouteTable& table, const std::vector<int>& route,
                 int src, int dst) {
  if (route.empty() || route.front() != src || route.back() != dst)
    return false;
  for (std::size_t i = 0; i + 1 < route.size(); ++i) {
    const int a = route[i];
    const int b = route[i + 1];
    if (a < 0 || a >= table.num_tiles() || b < 0 || b >= table.num_tiles())
      return false;
    const int ar = a / table.cols;
    const int ac = a % table.cols;
    const int br = b / table.cols;
    const int bc = b % table.cols;
    const int manhattan = std::abs(ar - br) + std::abs(ac - bc);
    if (manhattan != 1) return false;
  }
  return true;
}

// ------------------------------------------------------ netlist rules

void check_unknown_accelerator(LintContext& ctx, DiagnosticEngine& engine) {
  const auto& config = ctx.soc();
  const auto& lib = ctx.library();
  for (int index = 0; index < static_cast<int>(config.tiles.size());
       ++index) {
    const auto& tile = config.tiles[static_cast<std::size_t>(index)];
    for (const std::string& name : tile.accelerators) {
      if (lib.has(name)) continue;
      const std::string key = tile_key(config, index);
      engine.add({"netlist.unknown-accelerator",
                  Severity::kError,
                  {ctx.file(), ctx.line_of("tiles", key), "tiles." + key},
                  "accelerator '" + name +
                      "' is not registered in the fabric library",
                  "register it with an [accelerator " + name +
                      "] section or use a built-in kernel"});
    }
  }
}

void check_duplicate_member(LintContext& ctx, DiagnosticEngine& engine) {
  const auto& config = ctx.soc();
  for (int index = 0; index < static_cast<int>(config.tiles.size());
       ++index) {
    const auto& tile = config.tiles[static_cast<std::size_t>(index)];
    std::set<std::string> seen;
    for (const std::string& name : tile.accelerators) {
      if (seen.insert(name).second) continue;
      const std::string key = tile_key(config, index);
      engine.add({"netlist.duplicate-member",
                  Severity::kError,
                  {ctx.file(), ctx.line_of("tiles", key), "tiles." + key},
                  "module '" + name +
                      "' is listed twice in the partition member set "
                      "(bitstream store keys are (tile, module))",
                  "drop the duplicate entry"});
    }
  }
}

void check_dangling_net(LintContext& ctx, DiagnosticEngine& engine) {
  const auto& nl = ctx.static_netlist().netlist;
  for (netlist::NetId n = 0; n < nl.num_nets(); ++n) {
    const auto& net = nl.net(n);
    const SourceLoc loc{ctx.file(), 0, "net." + net.name};
    if (net.driver == netlist::kInvalidCell ||
        net.driver >= nl.num_cells()) {
      engine.add({"netlist.dangling-net", Severity::kError, loc,
                  "net '" + net.name + "' has no live driver",
                  "connect the net or remove it from the netlist"});
      continue;
    }
    bool bad_sink = false;
    for (const netlist::CellId sink : net.sinks)
      bad_sink |= sink >= nl.num_cells();
    if (bad_sink)
      engine.add({"netlist.dangling-net", Severity::kError, loc,
                  "net '" + net.name + "' has a sink outside the netlist",
                  "connect the net or remove it from the netlist"});
    if (net.sinks.empty())
      engine.add({"netlist.dangling-net", Severity::kWarning, loc,
                  "net '" + net.name + "' drives no sinks",
                  "remove the unloaded net"});
  }
}

void check_width_mismatch(LintContext& ctx, DiagnosticEngine& engine) {
  // (a) Structural: every net carries a positive bus width.
  const auto& nl = ctx.static_netlist().netlist;
  for (netlist::NetId n = 0; n < nl.num_nets(); ++n) {
    const auto& net = nl.net(n);
    if (net.width < 1)
      engine.add({"netlist.width-mismatch",
                  Severity::kError,
                  {ctx.file(), 0, "net." + net.name},
                  "net '" + net.name + "' has non-positive width " +
                      std::to_string(net.width),
                  "set the bus width to at least 1"});
  }
  // (b) Interface: every accelerator member must match the common
  // reconfigurable wrapper interface (ESP's fixed socket contract; a
  // mismatch would leave dangling or truncated partition pins). CPU
  // cores moved into the reconfigurable part (paper SOC_4) are exempt:
  // they bring their own processor socket, not the accelerator wrapper.
  const auto& lib = ctx.library();
  const int wrapper_bits =
      lib.get(netlist::ComponentLibrary::kReconfWrapper).interface_bits;
  const auto& config = ctx.soc();
  for (const auto& partition : ctx.rtl().partitions()) {
    for (const std::string& module : partition.modules) {
      if (module == netlist::ComponentLibrary::kLeon3 ||
          module == netlist::ComponentLibrary::kCva6)
        continue;
      const int bits = lib.get(module).interface_bits;
      if (bits == wrapper_bits) continue;
      const std::string key = tile_key(config, partition.tile_index);
      engine.add({"netlist.width-mismatch",
                  Severity::kError,
                  {ctx.file(), ctx.line_of("tiles", key),
                   "partition." + partition.name},
                  "module '" + module + "' exposes a " +
                      std::to_string(bits) +
                      "-bit interface but the reconfigurable wrapper is " +
                      std::to_string(wrapper_bits) + "-bit",
                  "regenerate the module with the common wrapper "
                  "interface width"});
    }
  }
}

// ---------------------------------------------------- floorplan rules
//
// The overlap/capacity/column checks are written against the plain
// (plan, requests, device) triple so they run both from a full config
// (via LintContext) and against a saved .floorplan.json artifact (via
// lint_floorplan_artifact), producing identical diagnostics.

void floorplan_overlap_core(
    const floorplan::Floorplan& plan,
    const std::vector<floorplan::PartitionRequest>& requests,
    const std::string& file, DiagnosticEngine& engine) {
  for (std::size_t i = 0; i < plan.pblocks.size(); ++i) {
    for (std::size_t j = i + 1; j < plan.pblocks.size(); ++j) {
      if (!plan.pblocks[i].overlaps(plan.pblocks[j])) continue;
      const std::string a =
          i < requests.size() ? requests[i].name : std::to_string(i);
      const std::string b =
          j < requests.size() ? requests[j].name : std::to_string(j);
      engine.add({"floorplan.region-overlap",
                  Severity::kError,
                  {file, 0, "partition." + a},
                  "pblocks of partitions '" + a + "' " +
                      plan.pblocks[i].to_string() + " and '" + b + "' " +
                      plan.pblocks[j].to_string() + " overlap",
                  "re-run the floorplanner or separate the regions"});
    }
  }
}

void floorplan_capacity_core(
    const floorplan::Floorplan& plan,
    const std::vector<floorplan::PartitionRequest>& requests,
    const fabric::Device& device, const std::string& file,
    DiagnosticEngine& engine) {
  for (std::size_t i = 0;
       i < plan.pblocks.size() && i < requests.size(); ++i) {
    if (!on_fabric(device, plan.pblocks[i])) continue;
    const auto enclosed = fabric::pblock_resources(device, plan.pblocks[i]);
    if (covers(enclosed, requests[i].demand)) continue;
    engine.add({"floorplan.region-capacity",
                Severity::kError,
                {file, 0, "partition." + requests[i].name},
                "partition '" + requests[i].name + "' demands more than "
                    "its pblock " + plan.pblocks[i].to_string() +
                    " encloses (" +
                    shortfall(enclosed, requests[i].demand) + ")",
                "grow the pblock or shrink the partition's largest member"});
  }
}

void floorplan_column_core(
    const floorplan::Floorplan& plan,
    const std::vector<floorplan::PartitionRequest>& requests,
    const fabric::Device& device, const std::string& file,
    DiagnosticEngine& engine) {
  for (std::size_t i = 0; i < plan.pblocks.size(); ++i) {
    const auto& pblock = plan.pblocks[i];
    const std::string name =
        i < requests.size() ? requests[i].name : std::to_string(i);
    if (!on_fabric(device, pblock)) {
      engine.add({"floorplan.illegal-column",
                  Severity::kError,
                  {file, 0, "partition." + name},
                  "pblock " + pblock.to_string() + " of partition '" +
                      name + "' lies outside the device fabric",
                  "clamp the region to the device grid"});
      continue;
    }
    for (int col = pblock.col_lo; col <= pblock.col_hi; ++col) {
      const auto type = device.column_type(col);
      if (fabric::Device::reconfigurable_column(type)) continue;
      engine.add({"floorplan.illegal-column",
                  Severity::kError,
                  {file, 0, "partition." + name},
                  "pblock of partition '" + name + "' spans the " +
                      std::string(fabric::to_string(type)) + " column " +
                      std::to_string(col) +
                      " (clock/IO columns cannot be reconfigured)",
                  "move or split the region so it only covers "
                  "CLB/BRAM/DSP columns"});
      break;  // one diagnostic per pblock is enough
    }
  }
}

void check_region_overlap(LintContext& ctx, DiagnosticEngine& engine) {
  floorplan_overlap_core(ctx.floorplan(), ctx.partition_requests(),
                         ctx.file(), engine);
}

void check_region_capacity(LintContext& ctx, DiagnosticEngine& engine) {
  floorplan_capacity_core(ctx.floorplan(), ctx.partition_requests(),
                          ctx.device(), ctx.file(), engine);
}

void check_member_footprint(LintContext& ctx, DiagnosticEngine& engine) {
  const auto& plan = ctx.floorplan();
  const auto& device = ctx.device();
  const auto& lib = ctx.library();
  const auto& rtl = ctx.rtl();
  for (std::size_t p = 0;
       p < rtl.partitions().size() && p < plan.pblocks.size(); ++p) {
    const auto& partition = rtl.partitions()[p];
    if (!on_fabric(device, plan.pblocks[p])) continue;
    const auto enclosed =
        fabric::pblock_resources(device, plan.pblocks[p]);
    for (const std::string& module : partition.modules) {
      const auto need = netlist::SocRtl::module_resources(lib, module);
      if (covers(enclosed, need)) continue;
      engine.add({"floorplan.member-footprint",
                  Severity::kError,
                  {ctx.file(), 0, "partition." + partition.name},
                  "member '" + module + "' of partition '" +
                      partition.name + "' does not fit its pblock " +
                      plan.pblocks[p].to_string() + " (" +
                      shortfall(enclosed, need) + ")",
                  "size the region for the largest member (including the "
                  "reconfigurable wrapper)"});
    }
  }
}

void check_illegal_column(LintContext& ctx, DiagnosticEngine& engine) {
  floorplan_column_core(ctx.floorplan(), ctx.partition_requests(),
                        ctx.device(), ctx.file(), engine);
}

void check_icap_unreachable(LintContext& ctx, DiagnosticEngine& engine) {
  const auto& config = ctx.soc();
  const auto aux_tiles = config.tiles_of(netlist::TileType::kAux);
  if (aux_tiles.empty()) {
    engine.add({"floorplan.icap-unreachable",
                Severity::kError,
                {ctx.file(), ctx.line_of_section("tiles"), "tiles"},
                "no AUX tile hosts the ICAP/DFX controller",
                "add exactly one aux tile to the grid"});
    return;
  }
  const int aux = aux_tiles.front();
  const auto& table = ctx.routes();
  for (const auto& partition : ctx.rtl().partitions()) {
    const int tile = partition.tile_index;
    const bool to_aux =
        valid_route(table, table.route(tile, aux), tile, aux);
    const bool from_aux =
        valid_route(table, table.route(aux, tile), aux, tile);
    if (to_aux && from_aux) continue;
    const std::string key = tile_key(config, tile);
    engine.add({"floorplan.icap-unreachable",
                Severity::kError,
                {ctx.file(), ctx.line_of("tiles", key), "tiles." + key},
                "reconfigurable tile " + key +
                    " has no valid NoC route " +
                    (to_aux ? "from" : "to") +
                    " the ICAP/DFXC (aux) tile " + tile_key(config, aux),
                "fix the route function or move the tile inside the mesh"});
  }
}

void check_relocatable_footprint(LintContext& ctx,
                                 DiagnosticEngine& engine) {
  // Footprint compatibility only constrains the *runtime* repacker,
  // which migrates modules across the static floorplan's regions. A
  // design that never opted into repacking ([runtime] repack_* keys)
  // loses nothing from per-region images, and the fleet repacker
  // allocates its own uniform full-height regions per shard, so the
  // static partitions don't bind it either.
  if (!ctx.plan().repack_declared) return;
  const auto& plan = ctx.floorplan();
  const auto& device = ctx.device();
  const auto& partitions = ctx.rtl().partitions();
  // A module hosted by several partitions gets one partial bitstream per
  // region — unless the regions share a column footprint, in which case
  // a single relocatable image (frame-address rebasing) serves them all.
  std::map<std::string, std::vector<std::size_t>> hosts;
  for (std::size_t p = 0;
       p < partitions.size() && p < plan.pblocks.size(); ++p) {
    if (!on_fabric(device, plan.pblocks[p])) continue;
    for (const std::string& module : partitions[p].modules)
      hosts[module].push_back(p);
  }
  std::set<std::pair<std::size_t, std::size_t>> reported;
  for (const auto& [module, where] : hosts) {
    for (std::size_t i = 1; i < where.size(); ++i) {
      const std::size_t a = where[0];
      const std::size_t b = where[i];
      if (bitstream::compatible_footprint(device, plan.pblocks[a],
                                          plan.pblocks[b]))
        continue;
      if (!reported.insert({a, b}).second) continue;
      engine.add({"floorplan.relocatable-footprint",
                  Severity::kWarning,
                  {ctx.file(), 0, "partition." + partitions[b].name},
                  "module '" + module + "' is hosted by partitions '" +
                      partitions[a].name + "' " +
                      bitstream::footprint_signature(device, plan.pblocks[a])
                          .to_string() +
                      " and '" + partitions[b].name + "' " +
                      bitstream::footprint_signature(device, plan.pblocks[b])
                          .to_string() +
                      " whose column footprints differ: its partial "
                      "bitstream cannot be relocated between them and the "
                      "repacker cannot migrate it",
                  "size both pblocks over the same column-type sequence "
                  "and clock-region height so one relocatable image "
                  "serves every host region"});
    }
  }
}

// ---------------------------------------------------------- noc rules

void check_noc_deadlock(LintContext& ctx, DiagnosticEngine& engine) {
  const auto& table = ctx.routes();
  const long long tiles = table.num_tiles();
  // Channel dependency graph: one node per directed link (a -> b),
  // an edge when some route traverses link L1 immediately before L2.
  std::map<long long, std::set<long long>> edges;
  for (const auto& route : table.routes) {
    for (std::size_t i = 0; i + 2 < route.size(); ++i) {
      const long long l1 = route[i] * tiles + route[i + 1];
      const long long l2 = route[i + 1] * tiles + route[i + 2];
      edges[l1].insert(l2);
    }
  }
  // Iterative three-colour DFS for a cycle.
  std::map<long long, int> colour;  // 0 white, 1 grey, 2 black
  std::vector<long long> stack;
  const auto link_name = [&](long long link) {
    return "(" + std::to_string(link / tiles) + "->" +
           std::to_string(link % tiles) + ")";
  };
  for (const auto& [start, _] : edges) {
    if (colour[start] != 0) continue;
    std::vector<std::pair<long long, bool>> work{{start, false}};
    while (!work.empty()) {
      auto [link, done] = work.back();
      work.pop_back();
      if (done) {
        colour[link] = 2;
        if (!stack.empty() && stack.back() == link) stack.pop_back();
        continue;
      }
      if (colour[link] == 2) continue;
      colour[link] = 1;
      stack.push_back(link);
      work.push_back({link, true});
      const auto it = edges.find(link);
      if (it == edges.end()) continue;
      for (const long long next : it->second) {
        if (colour[next] == 1) {
          // Back edge: reconstruct the cycle from the grey stack.
          std::string cycle;
          bool in_cycle = false;
          int shown = 0;
          for (const long long l : stack) {
            if (l == next) in_cycle = true;
            if (!in_cycle) continue;
            if (shown++ > 8) {
              cycle += " -> ...";
              break;
            }
            cycle += (cycle.empty() ? "" : " -> ") + link_name(l);
          }
          cycle += " -> " + link_name(next);
          engine.add({"noc.deadlock",
                      Severity::kError,
                      {ctx.file(), 0, "noc"},
                      "the route function admits a channel dependency "
                      "cycle: " + cycle,
                      "use dimension-ordered (XY) routing or add virtual "
                      "channels"});
          return;
        }
        if (colour[next] == 0) work.push_back({next, false});
      }
    }
    stack.clear();
  }
}

void check_queue_gating(LintContext& ctx, DiagnosticEngine& engine) {
  const auto& rtl = ctx.rtl();
  const auto& config = ctx.soc();
  const auto has_block = [](const netlist::TileRtl& tile,
                            const char* block) {
    return std::find(tile.static_blocks.begin(), tile.static_blocks.end(),
                     block) != tile.static_blocks.end();
  };
  for (const auto& partition : rtl.partitions()) {
    const auto& tile =
        rtl.tiles()[static_cast<std::size_t>(partition.tile_index)];
    if (has_block(tile, netlist::ComponentLibrary::kDecoupler)) continue;
    const std::string key = tile_key(config, partition.tile_index);
    engine.add({"noc.queue-gating",
                Severity::kError,
                {ctx.file(), ctx.line_of("tiles", key), "tiles." + key},
                "reconfigurable tile " + key +
                    " has no PR decoupler: NoC traffic is not gated "
                    "during reconfiguration",
                "instantiate pr_decoupler in the tile's static socket"});
  }
  for (const auto& tile : rtl.tiles()) {
    if (tile.type != netlist::TileType::kAux) continue;
    if (has_block(tile, netlist::ComponentLibrary::kDfxController) &&
        has_block(tile, netlist::ComponentLibrary::kIcapWrapper))
      continue;
    const std::string key = tile_key(config, tile.index);
    engine.add({"noc.queue-gating",
                Severity::kError,
                {ctx.file(), ctx.line_of("tiles", key), "tiles." + key},
                "aux tile " + key +
                    " lacks the DFX controller / ICAP wrapper pair",
                "keep dfx_controller and icap_wrapper in the aux tile"});
  }
}

// ------------------------------------------------------ runtime rules

void check_missing_bitstream(LintContext& ctx, DiagnosticEngine& engine) {
  const auto& plan = ctx.plan();
  if (plan.threads.empty()) return;
  const auto& manifest = ctx.manifest();
  const auto& config = ctx.soc();
  for (const auto& thread : plan.threads) {
    for (const auto& chain : thread.chains) {
      for (const auto& request : chain.requests) {
        const auto it = manifest.find(request.tile);
        const std::string key = tile_key(config, request.tile);
        const SourceLoc loc{ctx.file(), thread.line,
                            "runtime." + thread.name};
        if (it == manifest.end()) {
          engine.add({"runtime.missing-bitstream", Severity::kError, loc,
                      thread.name + " requests module '" + request.module +
                          "' on tile " + key +
                          ", which hosts no reconfigurable partition",
                      "target a reconf tile or add the tile to the "
                      "[bitstreams] manifest"});
          continue;
        }
        if (std::find(it->second.begin(), it->second.end(),
                      request.module) != it->second.end())
          continue;
        engine.add({"runtime.missing-bitstream", Severity::kError, loc,
                    thread.name + " requests module '" + request.module +
                        "' on tile " + key +
                        " but no partial bitstream for it is in the "
                        "store manifest",
                    "add '" + request.module +
                        "' to the tile's member set or to the "
                        "[bitstreams] manifest"});
      }
    }
  }
}

void check_lock_order(LintContext& ctx, DiagnosticEngine& engine) {
  const auto& plan = ctx.plan();
  const auto& config = ctx.soc();
  struct Edge {
    int dst;
    const PlanThread* thread;
  };
  std::map<int, std::vector<Edge>> edges;
  for (const auto& thread : plan.threads) {
    for (const auto& chain : thread.chains) {
      for (std::size_t i = 0; i < chain.requests.size(); ++i) {
        for (std::size_t j = i + 1; j < chain.requests.size(); ++j) {
          const int a = chain.requests[i].tile;
          const int b = chain.requests[j].tile;
          if (a == b) {
            engine.add(
                {"runtime.lock-order",
                 Severity::kError,
                 {ctx.file(), thread.line, "runtime." + thread.name},
                 thread.name + " re-acquires the lock of tile " +
                     tile_key(config, a) +
                     " while still holding it (tile locks are not "
                     "reentrant: the chain deadlocks itself)",
                 "split the chain with ',' so the first request "
                 "releases the tile before the second"});
            continue;
          }
          edges[a].push_back({b, &thread});
        }
      }
    }
  }
  // Cycle search shared with the racecheck lock-order pass
  // (lint/cycle.hpp): map tile ids onto dense vertices and look for one
  // closed walk — a cycle means two threads can each hold a lock the
  // other needs.
  std::vector<int> tiles;
  std::map<int, int> vertex_of;
  auto vertex = [&](int tile) {
    const auto [it, fresh] =
        vertex_of.try_emplace(tile, static_cast<int>(tiles.size()));
    if (fresh) tiles.push_back(tile);
    return it->second;
  };
  for (const auto& [src, outs] : edges) {
    vertex(src);
    for (const Edge& e : outs) vertex(e.dst);
  }
  std::vector<std::vector<int>> adjacency(tiles.size());
  for (const auto& [src, outs] : edges)
    for (const Edge& e : outs)
      adjacency[static_cast<std::size_t>(vertex_of[src])].push_back(
          vertex_of[e.dst]);
  const std::vector<int> walk = find_cycle(adjacency);
  if (walk.empty()) return;
  std::string cycle;
  std::set<int> cycle_tiles;
  for (std::size_t i = 0; i < walk.size(); ++i) {
    const int tile = tiles[static_cast<std::size_t>(walk[i])];
    if (i + 1 < walk.size()) cycle_tiles.insert(tile);
    cycle += (cycle.empty() ? "" : " -> ") + tile_key(config, tile);
  }
  std::set<std::string> threads;
  const PlanThread* anchor = nullptr;
  for (const auto& [src, outs] : edges) {
    if (cycle_tiles.count(src) == 0U) continue;
    for (const Edge& e : outs)
      if (cycle_tiles.count(e.dst) != 0U) {
        threads.insert(e.thread->name);
        if (anchor == nullptr) anchor = e.thread;
      }
  }
  if (anchor == nullptr) return;
  engine.add({"runtime.lock-order",
              Severity::kWarning,
              {ctx.file(), anchor->line, "runtime." + anchor->name},
              "tile locks are acquired in conflicting orders "
              "across threads (" +
                  join({threads.begin(), threads.end()}, ", ") +
                  "): potential deadlock cycle " + cycle,
              "acquire tile locks in one global order (e.g. "
              "ascending tile index) in every thread"});
}

void check_retry_budget(LintContext& ctx, DiagnosticEngine& engine) {
  const auto& plan = ctx.plan();
  if (!plan.declared) return;
  const int line = ctx.line_of_section("runtime");
  const SourceLoc loc{ctx.file(), line, "runtime"};
  if (plan.retry_budget < 1)
    engine.add({"runtime.retry-budget", Severity::kWarning, loc,
                "retry_budget " + std::to_string(plan.retry_budget) +
                    " disables watchdog recovery: the first hang "
                    "quarantines the tile",
                "set retry_budget to at least 1"});
  if (plan.max_attempts < 1)
    engine.add({"runtime.retry-budget", Severity::kWarning, loc,
                "max_attempts " + std::to_string(plan.max_attempts) +
                    " prevents any reconfiguration attempt",
                "set max_attempts to at least 1"});
  if (plan.backoff_base_cycles <= 0)
    engine.add({"runtime.retry-budget", Severity::kWarning, loc,
                "backoff_base_cycles " +
                    std::to_string(plan.backoff_base_cycles) +
                    " disables exponential backoff (hot retry loop)",
                "use a positive backoff base (default 10000 cycles)"});
  else if (plan.retry_budget > 1) {
    const int base_bits = std::bit_width(
        static_cast<unsigned long long>(plan.backoff_base_cycles));
    if (base_bits + plan.retry_budget - 1 > 62)
      engine.add({"runtime.retry-budget", Severity::kWarning, loc,
                  "backoff_base_cycles << (retry_budget - 1) overflows: "
                  "the last retry's backoff wraps negative",
                  "lower retry_budget or backoff_base_cycles so the "
                  "shifted backoff stays below 2^62 cycles"});
  }
  if (plan.watchdog_reconf_margin < 1.0)
    engine.add({"runtime.retry-budget", Severity::kWarning, loc,
                "watchdog_reconf_margin " +
                    std::to_string(plan.watchdog_reconf_margin) +
                    " arms the watchdog below the nominal ICAP streaming "
                    "time: healthy reconfigurations will fire it",
                "use a margin of at least 1.0 (default 8.0)"});
}

void check_store_capacity(LintContext& ctx, DiagnosticEngine& engine) {
  const auto& plan = ctx.plan();
  if (!plan.declared || plan.store_cache_slots == 0) return;
  const int line = ctx.line_of_section("runtime");
  const SourceLoc loc{ctx.file(), line, "runtime"};
  if (plan.store_cache_slots < 0) {
    engine.add({"runtime.store-capacity", Severity::kError, loc,
                "store_cache_slots " +
                    std::to_string(plan.store_cache_slots) +
                    " is negative",
                "use 0 for the eager store or a positive slot count"});
    return;
  }
  if (plan.store_cache_slots == 1)
    engine.add({"runtime.store-capacity", Severity::kWarning, loc,
                "store_cache_slots 1 degrades the fetch/program overlap "
                "to serial: the single slot stays pinned across a "
                "request's fetch and program stages, so the next "
                "request's fetch cannot start until it completes",
                "use at least 2 cache slots (double buffer)"});
  if (plan.store_slot_bytes <= 0) return;
  // A slot must hold the largest partial bitstream any manifest entry can
  // ask for; estimated at ~11 bytes of compressed frames per LUT (the
  // Table VI range for WAMI-sized kernels).
  const auto& lib = ctx.library();
  long long largest = 0;
  std::string largest_module;
  for (const auto& [tile, modules] : ctx.manifest()) {
    for (const std::string& module : modules) {
      try {
        const auto need = netlist::SocRtl::module_resources(lib, module);
        const long long bytes = static_cast<long long>(need.luts) * 11;
        if (bytes > largest) {
          largest = bytes;
          largest_module = module;
        }
      } catch (const std::exception&) {
        // Unknown accelerator: netlist.unknown-accelerator owns that.
      }
    }
  }
  if (largest > plan.store_slot_bytes)
    engine.add({"runtime.store-capacity", Severity::kError, loc,
                "store_slot_bytes " +
                    std::to_string(plan.store_slot_bytes) +
                    " cannot hold module '" + largest_module + "' (~" +
                    std::to_string(largest) +
                    " B estimated at 11 B/LUT): every acquire of it "
                    "would abort the runtime",
                "raise store_slot_bytes to at least " +
                    std::to_string(largest) +
                    " or leave it 0 to size slots from the largest "
                    "registered image"});
}

// -------------------------------------------------------- fleet rules
// The [fleet] section is parsed leniently by FleetTopology::from_config
// (FleetManager re-validates and throws); these rules are where
// misconfigurations get file/line diagnostics before anything runs.

/// Parses the [fleet] section, reporting a malformed section under
/// `fleet.topology`. Returns nullopt when the section is absent (every
/// fleet rule is then a no-op) or unparseable.
std::optional<fleet::FleetTopology> fleet_topology(LintContext& ctx,
                                                   DiagnosticEngine& engine) {
  const int line = ctx.line_of_section("fleet");
  if (line == 0) return std::nullopt;
  try {
    return fleet::FleetTopology::from_config(ctx.raw());
  } catch (const ConfigError& e) {
    engine.add({"fleet.topology",
                Severity::kError,
                {ctx.file(), line, "fleet"},
                std::string("malformed [fleet] section: ") + e.what(),
                "QoS class rows are 'weight, tokens_per_quantum, burst, "
                "queue_bound, deadline_quanta'"});
    return std::nullopt;
  }
}

SourceLoc fleet_loc(LintContext& ctx, const std::string& key) {
  int line = ctx.line_of("fleet", key);
  if (line == 0) line = ctx.line_of_section("fleet");
  return {ctx.file(), line, "fleet"};
}

void check_fleet_topology(LintContext& ctx, DiagnosticEngine& engine) {
  const auto topo = fleet_topology(ctx, engine);
  if (!topo) return;
  if (topo->shards < 1)
    engine.add({"fleet.topology", Severity::kError, fleet_loc(ctx, "shards"),
                "shards " + std::to_string(topo->shards) +
                    " leaves the fleet without a single SoC instance",
                "use at least one shard"});
  if (topo->quantum_cycles <= 0)
    engine.add({"fleet.topology", Severity::kError,
                fleet_loc(ctx, "quantum_cycles"),
                "quantum_cycles " + std::to_string(topo->quantum_cycles) +
                    " stalls the fleet clock",
                "use a positive scheduling quantum (default 4000 cycles)"});
  if (topo->coalesce_limit < 0)
    engine.add({"fleet.topology", Severity::kError,
                fleet_loc(ctx, "coalesce_limit"),
                "coalesce_limit " + std::to_string(topo->coalesce_limit) +
                    " is negative",
                "use 0 to disable coalescing or a positive follower cap"});
  if (topo->service_estimate_cycles <= 0)
    engine.add({"fleet.topology", Severity::kError,
                fleet_loc(ctx, "service_estimate_cycles"),
                "service_estimate_cycles " +
                    std::to_string(topo->service_estimate_cycles) +
                    " disables reject-early deadline shedding",
                "estimate one reconfiguration's cycles (default 120000)"});
}

void check_fleet_class_weights(LintContext& ctx, DiagnosticEngine& engine) {
  const auto topo = fleet_topology(ctx, engine);
  if (!topo) return;
  double weight_sum = 0.0;
  for (int c = 0; c < fleet::kNumQosClasses; ++c) {
    const fleet::QosClassParams& cls = topo->classes[c];
    const std::string key = std::string("class_") +
                            to_string(static_cast<fleet::QosClass>(c));
    if (cls.weight < 0.0)
      engine.add({"fleet.class-weights", Severity::kError,
                  fleet_loc(ctx, key),
                  key + " weight " + std::to_string(cls.weight) +
                      " is negative",
                  "QoS weights are non-negative relative shares"});
    else if (cls.weight == 0.0)
      engine.add({"fleet.class-weights", Severity::kWarning,
                  fleet_loc(ctx, key),
                  key + " weight 0 starves the class: its queue only "
                        "drains when every other class is empty",
                  "give every live class a positive weight"});
    weight_sum += std::max(cls.weight, 0.0);
  }
  if (weight_sum <= 0.0)
    engine.add({"fleet.class-weights", Severity::kError,
                fleet_loc(ctx, "class_standard"),
                "QoS class weights sum to zero: the dispatcher can never "
                "pick a queue",
                "give at least one class a positive weight"});
}

void check_fleet_queue_bounds(LintContext& ctx, DiagnosticEngine& engine) {
  const auto topo = fleet_topology(ctx, engine);
  if (!topo) return;
  for (int c = 0; c < fleet::kNumQosClasses; ++c) {
    const fleet::QosClassParams& cls = topo->classes[c];
    const std::string key = std::string("class_") +
                            to_string(static_cast<fleet::QosClass>(c));
    const SourceLoc loc = fleet_loc(ctx, key);
    if (cls.queue_bound <= 0)
      engine.add({"fleet.queue-bounds", Severity::kError, loc,
                  key + " queue_bound " + std::to_string(cls.queue_bound) +
                      " sheds every admission (kQueueFull)",
                  "bound the queue with a positive depth"});
    if (cls.deadline_quanta <= 0)
      engine.add({"fleet.queue-bounds", Severity::kError, loc,
                  key + " deadline_quanta " +
                      std::to_string(cls.deadline_quanta) +
                      " expires requests at submit time",
                  "use a positive per-class deadline"});
    if (cls.tokens_per_quantum <= 0.0)
      engine.add({"fleet.queue-bounds", Severity::kWarning, loc,
                  key + " tokens_per_quantum " +
                      std::to_string(cls.tokens_per_quantum) +
                      " never refills the bucket: the class is "
                      "permanently throttled",
                  "use a positive refill rate"});
    else if (cls.burst < cls.tokens_per_quantum)
      engine.add({"fleet.queue-bounds", Severity::kWarning, loc,
                  key + " burst " + std::to_string(cls.burst) +
                      " is below tokens_per_quantum: refill overflows "
                      "the bucket every quantum",
                  "set burst to at least one quantum's refill"});
  }
}

void check_fleet_breaker(LintContext& ctx, DiagnosticEngine& engine) {
  const auto topo = fleet_topology(ctx, engine);
  if (!topo) return;
  const fleet::BreakerOptions& breaker = topo->breaker;
  if (breaker.failure_threshold <= 0.0 || breaker.failure_threshold > 1.0)
    engine.add({"fleet.breaker", Severity::kError,
                fleet_loc(ctx, "breaker_failure_threshold"),
                "breaker_failure_threshold " +
                    std::to_string(breaker.failure_threshold) +
                    " is outside (0, 1]",
                "the threshold is a failure fraction of the window"});
  if (breaker.window < 1 || breaker.window > 64)
    engine.add({"fleet.breaker", Severity::kError,
                fleet_loc(ctx, "breaker_window"),
                "breaker_window " + std::to_string(breaker.window) +
                    " is outside [1, 64]",
                "the outcome window is a 64-bit ring"});
  if (breaker.open_base_cycles <= 0 ||
      breaker.open_max_cycles < breaker.open_base_cycles)
    engine.add({"fleet.breaker", Severity::kError,
                fleet_loc(ctx, "breaker_open_base_cycles"),
                "breaker backoff interval [" +
                    std::to_string(breaker.open_base_cycles) + ", " +
                    std::to_string(breaker.open_max_cycles) + "] is empty",
                "use 0 < breaker_open_base_cycles <= "
                "breaker_open_max_cycles"});
  if (breaker.half_open_probes < 1)
    engine.add({"fleet.breaker", Severity::kError,
                fleet_loc(ctx, "breaker_half_open_probes"),
                "breaker_half_open_probes " +
                    std::to_string(breaker.half_open_probes) +
                    " means an open breaker can never re-close",
                "allow at least one probe"});
  if (breaker.open_base_cycles > 0 &&
      breaker.open_base_cycles < topo->quantum_cycles)
    engine.add({"fleet.breaker", Severity::kWarning,
                fleet_loc(ctx, "breaker_open_base_cycles"),
                "breaker_open_base_cycles " +
                    std::to_string(breaker.open_base_cycles) +
                    " is shorter than one scheduling quantum: an open "
                    "breaker half-opens on the very next dispatch pass",
                "back off for at least one quantum (" +
                    std::to_string(topo->quantum_cycles) + " cycles)"});
}

void check_repacker_bounds(LintContext& ctx, DiagnosticEngine& engine) {
  const auto& plan = ctx.plan();
  // [runtime] repack_* knobs (runtime::RepackerOptions).
  if (plan.declared && plan.repack_declared) {
    const SourceLoc loc{ctx.file(), ctx.line_of_section("runtime"),
                        "runtime"};
    if (plan.repack_interval_cycles <= 0)
      engine.add({"runtime.repacker-bounds", Severity::kError, loc,
                  "repack_interval_cycles " +
                      std::to_string(plan.repack_interval_cycles) +
                      " makes the repacker spin every cycle, starving the "
                      "DFXC request path",
                  "use a positive interval (default 2000000 cycles)"});
    if (plan.repack_max_migrations < 1)
      engine.add({"runtime.repacker-bounds", Severity::kError, loc,
                  "repack_max_migrations " +
                      std::to_string(plan.repack_max_migrations) +
                      " means a pass can never migrate anything",
                  "allow at least one migration per pass"});
    if (plan.repack_migration_budget < 1)
      engine.add({"runtime.repacker-bounds", Severity::kError, loc,
                  "repack_migration_budget " +
                      std::to_string(plan.repack_migration_budget) +
                      " aborts every pass before its first migration",
                  "use a positive migration budget"});
    else if (plan.repack_migration_budget > plan.retry_budget)
      engine.add({"runtime.repacker-bounds", Severity::kWarning, loc,
                  "repack_migration_budget " +
                      std::to_string(plan.repack_migration_budget) +
                      " exceeds retry_budget " +
                      std::to_string(plan.retry_budget) +
                      ": background compaction out-retries the foreground "
                      "request path",
                  "keep the migration budget at or below retry_budget"});
  }
  // [fleet] repack knobs (per-shard repackers). Malformed sections are
  // fleet.topology's diagnostic; stay silent on them here.
  if (ctx.line_of_section("fleet") == 0) return;
  std::optional<fleet::FleetTopology> topo;
  try {
    topo = fleet::FleetTopology::from_config(ctx.raw());
  } catch (const ConfigError&) {
    return;
  }
  if (!topo->repack) return;
  if (topo->repack_interval_cycles <= 0)
    engine.add({"runtime.repacker-bounds", Severity::kError,
                fleet_loc(ctx, "repack_interval_cycles"),
                "repack_interval_cycles " +
                    std::to_string(topo->repack_interval_cycles) +
                    " makes every shard's repacker spin, starving its "
                    "DFXC request path",
                "use a positive interval (default 2000000 cycles)"});
  if (topo->repack_frag_threshold < 0.0 ||
      topo->repack_frag_threshold >= 1.0)
    engine.add({"runtime.repacker-bounds", Severity::kError,
                fleet_loc(ctx, "repack_frag_threshold"),
                "repack_frag_threshold " +
                    std::to_string(topo->repack_frag_threshold) +
                    " is outside [0, 1): the fragmentation ratio can "
                    "never exceed it",
                "use a threshold in [0, 1) (default 0.05)"});
  if (topo->repack_max_migrations < 1)
    engine.add({"runtime.repacker-bounds", Severity::kError,
                fleet_loc(ctx, "repack_max_migrations"),
                "repack_max_migrations " +
                    std::to_string(topo->repack_max_migrations) +
                    " means a repack pass can never migrate anything",
                "allow at least one migration per pass"});
  if (topo->repack_migration_budget < 1)
    engine.add({"runtime.repacker-bounds", Severity::kError,
                fleet_loc(ctx, "repack_migration_budget"),
                "repack_migration_budget " +
                    std::to_string(topo->repack_migration_budget) +
                    " aborts every pass before its first migration",
                "use a positive migration budget"});
  else if (topo->repack_migration_budget > plan.retry_budget)
    engine.add({"runtime.repacker-bounds", Severity::kWarning,
                fleet_loc(ctx, "repack_migration_budget"),
                "repack_migration_budget " +
                    std::to_string(topo->repack_migration_budget) +
                    " exceeds the runtime retry_budget " +
                    std::to_string(plan.retry_budget) +
                    ": background compaction out-retries the foreground "
                    "request path",
                "keep the migration budget at or below retry_budget"});
}

// ---------------------------------------------------------- ops rules
// The [ops] section configures the embedded telemetry server
// (ops::OpsOptions). The lint layer reads the raw keys directly (the ops
// library sits above lint in the dependency stack), so defaults here
// must mirror ops/options.hpp.

SourceLoc ops_loc(LintContext& ctx, const std::string& key) {
  int line = ctx.line_of("ops", key);
  if (line == 0) line = ctx.line_of_section("ops");
  return {ctx.file(), line, "ops"};
}

void check_ops_port(LintContext& ctx, DiagnosticEngine& engine) {
  const Config& config = ctx.raw();
  if (config.keys("ops").empty()) return;
  const long long port = config.get_int_or("ops", "port", 0);
  if (port < 0 || port > 65535)
    engine.add({"ops.port", Severity::kError, ops_loc(ctx, "port"),
                "ops port " + std::to_string(port) +
                    " is outside [0, 65535]",
                "use a TCP port (0 = ephemeral)"});
  else if (port > 0 && port < 1024)
    engine.add({"ops.port", Severity::kWarning, ops_loc(ctx, "port"),
                "ops port " + std::to_string(port) +
                    " is privileged (< 1024): binding needs root",
                "use an unprivileged port >= 1024"});
  const std::string bind = config.get_or("ops", "bind", "127.0.0.1");
  bool dotted_quad = !bind.empty();
  int dots = 0;
  for (const char c : bind) {
    if (c == '.') ++dots;
    else if (c < '0' || c > '9') dotted_quad = false;
  }
  if (!dotted_quad || dots != 3)
    engine.add({"ops.port", Severity::kError, ops_loc(ctx, "bind"),
                "ops bind address '" + bind +
                    "' is not an IPv4 dotted quad",
                "use e.g. 127.0.0.1 (loopback) or 0.0.0.0"});
}

void check_ops_sse_bounds(LintContext& ctx, DiagnosticEngine& engine) {
  const Config& config = ctx.raw();
  if (config.keys("ops").empty()) return;
  const long long buffer =
      config.get_int_or("ops", "sse_buffer_events", 64);
  if (buffer < 1)
    engine.add({"ops.sse-bounds", Severity::kError,
                ops_loc(ctx, "sse_buffer_events"),
                "sse_buffer_events " + std::to_string(buffer) +
                    " leaves SSE clients without a single event slot",
                "use a positive per-client ring capacity"});
  else if (buffer > 65536)
    engine.add({"ops.sse-bounds", Severity::kWarning,
                ops_loc(ctx, "sse_buffer_events"),
                "sse_buffer_events " + std::to_string(buffer) +
                    " buffers unbounded amounts of telemetry per slow "
                    "client",
                "keep the ring small; drops are counted, not fatal"});
  const long long interval =
      config.get_int_or("ops", "publish_interval_ms", 50);
  if (interval < 1)
    engine.add({"ops.sse-bounds", Severity::kError,
                ops_loc(ctx, "publish_interval_ms"),
                "publish_interval_ms " + std::to_string(interval) +
                    " spins the snapshot pump without pause",
                "use a positive publish interval"});
  const long long workers = config.get_int_or("ops", "workers", 4);
  const long long conns =
      config.get_int_or("ops", "max_connections", 16);
  if (workers < 1)
    engine.add({"ops.sse-bounds", Severity::kError, ops_loc(ctx, "workers"),
                "ops workers " + std::to_string(workers) +
                    " cannot serve any connection",
                "use at least one worker"});
  if (conns < 1)
    engine.add({"ops.sse-bounds", Severity::kError,
                ops_loc(ctx, "max_connections"),
                "max_connections " + std::to_string(conns) +
                    " rejects every connection with 503",
                "allow at least one connection"});
  // An SSE client occupies a worker for its whole subscription, so
  // connections far beyond the worker count queue behind the pool and
  // plain GETs starve. The shipped 16:4 default ratio is the accepted
  // ceiling; warn past it.
  if (workers >= 1 && conns > 4 * workers)
    engine.add({"ops.sse-bounds", Severity::kWarning,
                ops_loc(ctx, "max_connections"),
                "max_connections " + std::to_string(conns) +
                    " is more than 4x the " + std::to_string(workers) +
                    " workers: SSE subscribers can occupy every worker "
                    "and queue further requests",
                "size workers to the expected SSE client count"});
}

void check_ops_disabled_by_default(LintContext& ctx,
                                   DiagnosticEngine& engine) {
  const Config& config = ctx.raw();
  if (config.keys("ops").empty()) return;
  bool enabled = false;
  try {
    enabled = config.get_bool_or("ops", "enabled", false);
  } catch (const Error& e) {
    engine.add({"ops.disabled-by-default", Severity::kError,
                ops_loc(ctx, "enabled"),
                std::string("malformed [ops] enabled flag: ") + e.what(),
                "use enabled = true|false"});
    return;
  }
  if (!enabled) {
    // The section exists but the master switch is off (or missing): the
    // server never starts, which is easy to misread as "configured".
    engine.add({"ops.disabled-by-default", Severity::kWarning,
                ops_loc(ctx, "enabled"),
                "[ops] section present but enabled is false (the server "
                "is opt-in and will not start)",
                "set enabled = true to open the telemetry port"});
    return;
  }
  const std::string bind = config.get_or("ops", "bind", "127.0.0.1");
  if (bind != "127.0.0.1")
    engine.add({"ops.disabled-by-default", Severity::kWarning,
                ops_loc(ctx, "bind"),
                "ops server enabled on non-loopback bind '" + bind +
                    "': telemetry (metrics, health, traces) is exposed "
                    "to the network",
                "bind to 127.0.0.1 unless the deployment needs remote "
                "scrapes"});
}

// --------------------------------------------------------- exec rules

void check_undefined_dep(LintContext& ctx, DiagnosticEngine& engine) {
  const auto& graph = ctx.task_graph();
  for (const auto& task : graph.tasks) {
    for (const std::string& dep : task.deps) {
      if (graph.find(dep) != nullptr) continue;
      engine.add({"exec.undefined-dep",
                  Severity::kError,
                  {ctx.file(), task.line, "tasks." + task.name},
                  "task '" + task.name + "' depends on undefined task '" +
                      dep + "'",
                  "declare the dependency in [tasks] or drop it"});
    }
  }
}

/// Tasks that sit on a dependency cycle (can reach themselves).
std::set<std::string> cycle_members(const TaskGraphSpec& graph) {
  std::set<std::string> members;
  for (const auto& task : graph.tasks) {
    // DFS from task over deps; if we reach task again it is on a cycle.
    std::vector<const TaskSpec*> work;
    std::set<std::string> visited;
    const TaskSpec* start = &task;
    work.push_back(start);
    bool cyclic = false;
    while (!work.empty() && !cyclic) {
      const TaskSpec* cur = work.back();
      work.pop_back();
      for (const std::string& dep : cur->deps) {
        if (dep == start->name) {
          cyclic = true;
          break;
        }
        if (!visited.insert(dep).second) continue;
        if (const TaskSpec* next = graph.find(dep)) work.push_back(next);
      }
    }
    if (cyclic) members.insert(task.name);
  }
  return members;
}

void check_graph_cycle(LintContext& ctx, DiagnosticEngine& engine) {
  const auto& graph = ctx.task_graph();
  const auto members = cycle_members(graph);
  if (members.empty()) return;
  const TaskSpec* anchor = graph.find(*members.begin());
  engine.add({"exec.graph-cycle",
              Severity::kError,
              {ctx.file(), anchor != nullptr ? anchor->line : 0,
               "tasks." + *members.begin()},
              "task graph has a dependency cycle among {" +
                  join({members.begin(), members.end()}, ", ") +
                  "}: none of these tasks can ever start",
              "break the cycle; TaskGraph::add only accepts "
              "already-added dependencies"});
}

void check_unreachable_task(LintContext& ctx, DiagnosticEngine& engine) {
  const auto& graph = ctx.task_graph();
  if (graph.tasks.empty()) return;
  const auto members = cycle_members(graph);
  // Fixpoint: a task is runnable when every dep exists and is runnable.
  std::set<std::string> runnable;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& task : graph.tasks) {
      if (runnable.count(task.name) != 0U) continue;
      bool ready = true;
      for (const std::string& dep : task.deps) {
        if (graph.find(dep) == nullptr || runnable.count(dep) == 0U) {
          ready = false;
          break;
        }
      }
      if (ready) {
        runnable.insert(task.name);
        changed = true;
      }
    }
  }
  for (const auto& task : graph.tasks) {
    if (runnable.count(task.name) != 0U) continue;
    if (members.count(task.name) != 0U) continue;  // flagged as cycle
    bool direct_undefined = false;
    for (const std::string& dep : task.deps)
      direct_undefined |= graph.find(dep) == nullptr;
    if (direct_undefined) continue;  // flagged as undefined-dep
    engine.add({"exec.unreachable-task",
                Severity::kWarning,
                {ctx.file(), task.line, "tasks." + task.name},
                "task '" + task.name +
                    "' can never become ready: it depends (transitively) "
                    "on a cycle or an undefined task",
                "fix the upstream dependency problem"});
  }
}

/// Nearest existing ancestor of `path` (the path itself when it exists).
std::filesystem::path nearest_existing(std::filesystem::path path) {
  std::error_code ec;
  while (!path.empty() && !std::filesystem::exists(path, ec)) {
    const std::filesystem::path parent = path.parent_path();
    if (parent == path) break;
    path = parent;
  }
  return path.empty() ? std::filesystem::current_path(ec) : path;
}

void check_exec_cache_dir_writable(LintContext& ctx,
                                   DiagnosticEngine& engine) {
  const Config& raw = ctx.raw();
  if (!raw.has("exec", "cache_dir")) return;
  const int line = ctx.line_of("exec", "cache_dir");
  const std::string dir = raw.get_or("exec", "cache_dir", "");
  if (dir.empty()) {
    engine.add({"exec.cache-dir-writable",
                Severity::kError,
                {ctx.file(), line, "exec"},
                "cache_dir is set but empty: the flow cache would be "
                "silently disabled",
                "remove the key or point it at a writable directory"});
    return;
  }
  // The flow creates missing directories itself, so only the nearest
  // existing ancestor has to be a writable directory at lint time.
  std::error_code ec;
  const std::filesystem::path anchor = nearest_existing(dir);
  if (std::filesystem::exists(anchor, ec) &&
      !std::filesystem::is_directory(anchor, ec)) {
    engine.add({"exec.cache-dir-writable",
                Severity::kError,
                {ctx.file(), line, "exec"},
                "cache_dir '" + dir + "' cannot be created: '" +
                    anchor.string() + "' exists and is not a directory",
                "point cache_dir below an existing directory"});
    return;
  }
  if (::access(anchor.c_str(), W_OK | X_OK) != 0) {
    engine.add({"exec.cache-dir-writable",
                Severity::kError,
                {ctx.file(), line, "exec"},
                "cache_dir '" + dir + "' is not writable (nearest "
                "existing ancestor '" + anchor.string() +
                    "' denies write access)",
                "choose a directory the flow can create files in"});
  }
}

void check_exec_cache_size_bounds(LintContext& ctx,
                                  DiagnosticEngine& engine) {
  const Config& raw = ctx.raw();
  if (!raw.has("exec", "cache_max_bytes")) return;
  const int line = ctx.line_of("exec", "cache_max_bytes");
  long long max_bytes = 0;
  try {
    max_bytes = raw.get_int("exec", "cache_max_bytes");
  } catch (const Error& e) {
    engine.add({"exec.cache-size-bounds",
                Severity::kError,
                {ctx.file(), line, "exec"},
                std::string("cache_max_bytes: ") + e.what(),
                "use a byte count (0 or negative means unbounded)"});
    return;
  }
  // A single static-region checkpoint (routing usage vector) already
  // runs to hundreds of kilobytes; caps below 1 MiB just thrash.
  constexpr long long kMinUseful = 1LL << 20;
  if (max_bytes > 0 && max_bytes < kMinUseful) {
    engine.add({"exec.cache-size-bounds",
                Severity::kError,
                {ctx.file(), line, "exec"},
                "cache_max_bytes " + std::to_string(max_bytes) +
                    " is smaller than a single checkpoint: every store "
                    "would immediately evict",
                "use at least " + std::to_string(kMinUseful) +
                    " (1 MiB), or 0 for unbounded"});
  }
  if (!raw.has("exec", "cache_dir")) {
    engine.add({"exec.cache-size-bounds",
                Severity::kWarning,
                {ctx.file(), line, "exec"},
                "cache_max_bytes has no effect: cache_dir is not set, so "
                "the flow cache is disabled",
                "set [exec] cache_dir to enable the cache"});
  }
}

/// Host hardware-thread count, overridable for deterministic tests.
unsigned lint_hardware_threads() {
  if (const char* env = std::getenv("PRESP_LINT_HW_THREADS")) {
    const long long value = std::atoll(env);
    if (value > 0) return static_cast<unsigned>(value);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void check_exec_racecheck_overhead(LintContext& ctx,
                                   DiagnosticEngine& engine) {
  const Config& raw = ctx.raw();
  if (!raw.get_bool_or("exec", "racecheck", false)) return;
  if (!raw.has("exec", "threads")) return;
  const long long threads = raw.get_int_or("exec", "threads", 1);
  const unsigned hw = lint_hardware_threads();
  if (threads <= static_cast<long long>(hw)) return;
  // Every annotation funnels through one detector mutex, so racecheck
  // serializes oversubscribed workers that would otherwise time-slice —
  // the run degenerates to a convoy and tells you nothing extra: the
  // detector's verdicts are schedule-independent anyway.
  engine.add({"exec.racecheck-overhead",
              Severity::kWarning,
              {ctx.file(), ctx.line_of("exec", "threads"), "exec"},
              "racecheck is enabled with " + std::to_string(threads) +
                  " threads on a " + std::to_string(hw) +
                  "-hardware-thread host: annotation hooks serialize on "
                  "the detector lock, so oversubscription only adds "
                  "convoy overhead without finding more races",
              "lower [exec] threads to at most " + std::to_string(hw) +
                  " while racecheck is on (detection does not depend on "
                  "the schedule), or rely on the seeded fuzzer for "
                  "interleaving coverage"});
}

// ------------------------------------------------- artifact-gate rules

void force_parse(LintContext& ctx, DiagnosticEngine&) {
  ctx.soc();
  ctx.library();
  ctx.plan();
  ctx.task_graph();
  ctx.manifest();
}

void force_device(LintContext& ctx, DiagnosticEngine&) { ctx.device(); }

void force_floorplan(LintContext& ctx, DiagnosticEngine&) {
  ctx.floorplan();
}

}  // namespace

// ----------------------------------------------------------- registry

void RuleRegistry::add(RuleInfo info, CheckFn check) {
  infos_.push_back(std::move(info));
  checks_.push_back(std::move(check));
}

const RuleInfo* RuleRegistry::find(const std::string& id) const {
  for (const RuleInfo& info : infos_)
    if (info.id == id) return &info;
  return nullptr;
}

std::size_t RuleRegistry::num_checks() const {
  return static_cast<std::size_t>(
      std::count_if(checks_.begin(), checks_.end(),
                    [](const CheckFn& fn) { return fn != nullptr; }));
}

void RuleRegistry::run(LintContext& context,
                       DiagnosticEngine& engine) const {
  for (std::size_t i = 0; i < checks_.size(); ++i) {
    if (!checks_[i]) continue;
    try {
      checks_[i](context, engine);
    } catch (const ArtifactError& e) {
      if (engine.has_rule(e.rule())) continue;
      const RuleInfo* info = find(e.rule());
      engine.add({e.rule(),
                  info != nullptr ? info->severity : Severity::kError,
                  {context.file(), extract_line(e.what()), ""},
                  e.what(),
                  ""});
    } catch (const Error& e) {
      // Defensive: a rule tripped over an inconsistent artifact. Report
      // it under the rule's own id instead of aborting the whole run.
      engine.add({infos_[i].id,
                  infos_[i].severity,
                  {context.file(), 0, ""},
                  e.what(),
                  ""});
    }
  }
  engine.sort();
}

const RuleRegistry& RuleRegistry::builtin() {
  static const RuleRegistry registry = [] {
    RuleRegistry r;
    // config
    r.add({"config.parse", "config",
           "configuration parses and passes structural validation",
           Severity::kError},
          force_parse);
    r.add({"config.unknown-device", "config",
           "the target device names a supported board model",
           Severity::kError},
          force_device);
    // netlist
    r.add({"netlist.unknown-accelerator", "netlist",
           "every referenced accelerator exists in the fabric library",
           Severity::kError},
          check_unknown_accelerator);
    r.add({"netlist.duplicate-member", "netlist",
           "no module is listed twice in one partition member set",
           Severity::kError},
          check_duplicate_member);
    r.add({"netlist.dangling-net", "netlist",
           "every net has a live driver and at least one sink",
           Severity::kError},
          check_dangling_net);
    r.add({"netlist.width-mismatch", "netlist",
           "net widths are positive and partition members match the "
           "common wrapper interface width",
           Severity::kError},
          check_width_mismatch);
    // floorplan
    r.add({"floorplan.infeasible", "floorplan",
           "a legal floorplan exists for the partition demands",
           Severity::kError},
          force_floorplan);
    r.add({"floorplan.region-overlap", "floorplan",
           "PR region pblocks are pairwise disjoint", Severity::kError},
          check_region_overlap);
    r.add({"floorplan.region-capacity", "floorplan",
           "every pblock encloses its partition's resource demand",
           Severity::kError},
          check_region_capacity);
    r.add({"floorplan.member-footprint", "floorplan",
           "every partition member (plus wrapper) fits its region",
           Severity::kError},
          check_member_footprint);
    r.add({"floorplan.illegal-column", "floorplan",
           "pblocks avoid clocking-spine and I/O columns and stay on "
           "the fabric",
           Severity::kError},
          check_illegal_column);
    r.add({"floorplan.icap-unreachable", "floorplan",
           "every PR tile has valid NoC routes to and from the "
           "ICAP/DFXC aux tile",
           Severity::kError},
          check_icap_unreachable);
    r.add({"floorplan.relocatable-footprint", "floorplan",
           "partitions sharing a module have footprint-compatible "
           "pblocks so one relocatable bitstream serves them",
           Severity::kWarning},
          check_relocatable_footprint);
    // noc
    r.add({"noc.deadlock", "noc",
           "the route function's channel dependency graph is acyclic "
           "(static deadlock freedom)",
           Severity::kError},
          check_noc_deadlock);
    r.add({"noc.queue-gating", "noc",
           "every reconfigurable tile is decoupler-gated and the aux "
           "tile hosts the DFXC/ICAP pair",
           Severity::kError},
          check_queue_gating);
    // runtime
    r.add({"runtime.missing-bitstream", "runtime",
           "every planned reconfiguration has a partial bitstream in "
           "the store manifest",
           Severity::kError},
          check_missing_bitstream);
    r.add({"runtime.lock-order", "runtime",
           "tile locks are acquired in a consistent global order "
           "(no deadlock cycles across request chains)",
           Severity::kWarning},
          check_lock_order);
    r.add({"runtime.retry-budget", "runtime",
           "watchdog retry budget and backoff tuning are sane",
           Severity::kWarning},
          check_retry_budget);
    r.add({"runtime.store-capacity", "runtime",
           "the bitstream cache holds the largest partial bitstream and "
           "enough slots for fetch/program overlap",
           Severity::kWarning},
          check_store_capacity);
    r.add({"runtime.repacker-bounds", "runtime",
           "defragmentation repacker interval, migration caps and budget "
           "are sane and defer to the foreground retry budget",
           Severity::kWarning},
          check_repacker_bounds);
    // fleet
    r.add({"fleet.topology", "fleet",
           "the [fleet] section parses and the shard/quantum/coalesce "
           "parameters can actually run",
           Severity::kError},
          check_fleet_topology);
    r.add({"fleet.class-weights", "fleet",
           "QoS class weights are non-negative and at least one class "
           "can be dispatched",
           Severity::kError},
          check_fleet_class_weights);
    r.add({"fleet.queue-bounds", "fleet",
           "per-class queues are bounded, deadlines are positive and "
           "token buckets can refill",
           Severity::kError},
          check_fleet_queue_bounds);
    r.add({"fleet.breaker", "fleet",
           "circuit-breaker threshold, window, backoff interval and "
           "probe budget are sane",
           Severity::kError},
          check_fleet_breaker);
    // ops
    r.add({"ops.port", "ops",
           "the telemetry server's port is a valid TCP port and the bind "
           "address parses as IPv4",
           Severity::kError},
          check_ops_port);
    r.add({"ops.sse-bounds", "ops",
           "SSE ring capacity, publish interval, worker and connection "
           "caps are positive and sized together",
           Severity::kError},
          check_ops_sse_bounds);
    r.add({"ops.disabled-by-default", "ops",
           "a configured [ops] section actually enables the server, and "
           "an enabled server does not bind off-loopback unnoticed",
           Severity::kWarning},
          check_ops_disabled_by_default);
    // exec
    r.add({"exec.undefined-dep", "exec",
           "task-graph dependencies name declared tasks",
           Severity::kError},
          check_undefined_dep);
    r.add({"exec.graph-cycle", "exec",
           "the task graph is acyclic (submittable to TaskGraph)",
           Severity::kError},
          check_graph_cycle);
    r.add({"exec.unreachable-task", "exec",
           "every task can eventually become ready", Severity::kWarning},
          check_unreachable_task);
    r.add({"exec.cache-dir-writable", "exec",
           "[exec] cache_dir points at a creatable, writable directory",
           Severity::kError},
          check_exec_cache_dir_writable);
    r.add({"exec.cache-size-bounds", "exec",
           "[exec] cache_max_bytes is a sane byte budget and paired "
           "with cache_dir",
           Severity::kError},
          check_exec_cache_size_bounds);
    r.add({"exec.racecheck-overhead", "exec",
           "racecheck is not combined with thread oversubscription "
           "(annotations serialize on the detector lock)",
           Severity::kWarning},
          check_exec_racecheck_overhead);
    // race (catalog-only: emitted by racecheck::Detector)
    r.add({"race.data-race", "race",
           "two annotated accesses, at least one a write, unordered by "
           "happens-before",
           Severity::kError});
    r.add({"race.lockset", "race",
           "accesses are ordered today but no single lock guards them "
           "(inconsistent lock discipline)",
           Severity::kWarning});
    r.add({"race.lock-order", "race",
           "observed + declared lock acquisition graph is acyclic "
           "(no latent deadlock)",
           Severity::kWarning});
    // pnr (catalog-only: emitted by pnr::verify_placement)
    r.add({"pnr.unplaced-cell", "pnr",
           "every cell has a valid placement location", Severity::kError});
    r.add({"pnr.out-of-bounds", "pnr",
           "placed cells stay inside the device grid", Severity::kError});
    r.add({"pnr.illegal-column", "pnr",
           "logic never lands on the clocking spine", Severity::kError});
    r.add({"pnr.outside-region", "pnr",
           "constrained cells stay inside their region", Severity::kError});
    r.add({"pnr.inside-keepout", "pnr",
           "movable cells avoid keepout rectangles", Severity::kError});
    r.add({"pnr.capacity-overflow", "pnr",
           "per-cell LUT usage stays within site capacity",
           Severity::kError});
    return r;
  }();
  return registry;
}

std::vector<Diagnostic> lint_config_text(const std::string& text,
                                         const std::string& file) {
  LintContext context(text, file);
  DiagnosticEngine engine;
  RuleRegistry::builtin().run(context, engine);
  return engine.diagnostics();
}

std::vector<Diagnostic> lint_floorplan_artifact(
    const floorplan::FloorplanArtifact& artifact, const std::string& file) {
  DiagnosticEngine engine;
  floorplan_overlap_core(artifact.plan, artifact.requests, file, engine);
  const std::string& name = artifact.device;
  std::optional<fabric::Device> device;
  if (name == "vc707") device = fabric::Device::vc707();
  else if (name == "vcu118") device = fabric::Device::vcu118();
  else if (name == "vcu128") device = fabric::Device::vcu128();
  else
    engine.add({"config.unknown-device",
                Severity::kError,
                {file, 0, "device"},
                "unknown device '" + name +
                    "' (expected vc707|vcu118|vcu128); skipping "
                    "device-dependent floorplan checks",
                "regenerate the artifact with a supported board"});
  if (device) {
    floorplan_capacity_core(artifact.plan, artifact.requests, *device, file,
                            engine);
    floorplan_column_core(artifact.plan, artifact.requests, *device, file,
                          engine);
  }
  engine.sort();
  return engine.diagnostics();
}

}  // namespace presp::lint
