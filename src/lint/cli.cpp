#include "lint/cli.hpp"

#include <cstdio>

#include "lint/context.hpp"
#include "lint/diagnostic.hpp"
#include "lint/rules.hpp"
#include "util/error.hpp"

namespace presp::lint {

namespace {

int usage(const std::string& program) {
  std::fprintf(stderr,
               "usage: %s [--format=text|json] [--list-rules] [--werror]\n"
               "       %*s <config.esp_config>...\n",
               program.c_str(), static_cast<int>(program.size()), "");
  return 2;
}

void list_rules() {
  const RuleRegistry& registry = RuleRegistry::builtin();
  std::printf("%-28s %-10s %-8s %s\n", "rule", "layer", "severity",
              "description");
  for (const RuleInfo& info : registry.rules())
    std::printf("%-28s %-10s %-8s %s\n", info.id.c_str(),
                info.layer.c_str(), to_string(info.severity),
                info.description.c_str());
  std::printf("%zu rules (%zu checked against configurations)\n",
              registry.rules().size(), registry.num_checks());
}

}  // namespace

int run_lint_cli(const std::vector<std::string>& args,
                 const std::string& program) {
  bool json = false;
  bool werror = false;
  std::vector<std::string> configs;
  for (const std::string& arg : args) {
    if (arg == "--format=text") {
      json = false;
    } else if (arg == "--format=json") {
      json = true;
    } else if (arg == "--list-rules") {
      list_rules();
      return 0;
    } else if (arg == "--werror") {
      werror = true;
    } else if (!arg.empty() && arg[0] != '-') {
      configs.push_back(arg);
    } else {
      return usage(program);
    }
  }
  if (configs.empty()) return usage(program);

  DiagnosticEngine engine;
  for (const std::string& path : configs) {
    try {
      LintContext context = LintContext::from_file(path);
      RuleRegistry::builtin().run(context, engine);
    } catch (const Error& e) {
      // from_file failures (unreadable path) are findings too.
      engine.add({"config.parse",
                  Severity::kError,
                  {path, 0, ""},
                  e.what(),
                  ""});
    }
  }
  engine.sort();

  if (json)
    std::printf("%s", render_json(engine.diagnostics()).c_str());
  else
    std::printf("%s", render_text(engine.diagnostics()).c_str());

  if (engine.has_errors()) return 1;
  if (werror && engine.count(Severity::kWarning) > 0) return 1;
  return 0;
}

}  // namespace presp::lint
