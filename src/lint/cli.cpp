#include "lint/cli.hpp"

#include <cstdio>

#include "floorplan/floorplan_io.hpp"
#include "lint/context.hpp"
#include "lint/diagnostic.hpp"
#include "lint/rules.hpp"
#include "util/error.hpp"

namespace presp::lint {

namespace {

enum class Format { kText, kJson, kSarif };

int usage(const std::string& program) {
  std::fprintf(stderr,
               "usage: %s [--format text|json|sarif] [--list-rules]\n"
               "       %*s [--werror] [--floorplan <plan.floorplan.json>]...\n"
               "       %*s <config.esp_config>...\n",
               program.c_str(), static_cast<int>(program.size()), "",
               static_cast<int>(program.size()), "");
  return 2;
}

void list_rules() {
  const RuleRegistry& registry = RuleRegistry::builtin();
  std::printf("%-28s %-10s %-8s %s\n", "rule", "layer", "severity",
              "description");
  for (const RuleInfo& info : registry.rules())
    std::printf("%-28s %-10s %-8s %s\n", info.id.c_str(),
                info.layer.c_str(), to_string(info.severity),
                info.description.c_str());
  std::printf("%zu rules (%zu checked against configurations)\n",
              registry.rules().size(), registry.num_checks());
}

bool parse_format(const std::string& name, Format& format) {
  if (name == "text") format = Format::kText;
  else if (name == "json") format = Format::kJson;
  else if (name == "sarif") format = Format::kSarif;
  else return false;
  return true;
}

}  // namespace

int run_lint_cli(const std::vector<std::string>& args,
                 const std::string& program) {
  Format format = Format::kText;
  bool werror = false;
  std::vector<std::string> configs;
  std::vector<std::string> floorplans;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--format=", 0) == 0) {
      if (!parse_format(arg.substr(9), format)) return usage(program);
    } else if (arg == "--format" && i + 1 < args.size()) {
      if (!parse_format(args[++i], format)) return usage(program);
    } else if (arg == "--floorplan" && i + 1 < args.size()) {
      floorplans.push_back(args[++i]);
    } else if (arg == "--list-rules") {
      list_rules();
      return 0;
    } else if (arg == "--werror") {
      werror = true;
    } else if (!arg.empty() && arg[0] != '-') {
      configs.push_back(arg);
    } else {
      return usage(program);
    }
  }
  if (configs.empty() && floorplans.empty()) return usage(program);

  DiagnosticEngine engine;
  for (const std::string& path : configs) {
    try {
      LintContext context = LintContext::from_file(path);
      RuleRegistry::builtin().run(context, engine);
    } catch (const Error& e) {
      // from_file failures (unreadable path) are findings too.
      engine.add({"config.parse",
                  Severity::kError,
                  {path, 0, ""},
                  e.what(),
                  ""});
    }
  }
  for (const std::string& path : floorplans) {
    try {
      const floorplan::FloorplanArtifact artifact =
          floorplan::read_floorplan_json(path);
      for (Diagnostic diag : lint_floorplan_artifact(artifact, path))
        engine.add(std::move(diag));
    } catch (const Error& e) {
      // Unreadable or malformed artifacts are findings too.
      engine.add({"config.parse",
                  Severity::kError,
                  {path, 0, ""},
                  e.what(),
                  ""});
    }
  }
  engine.sort();

  switch (format) {
    case Format::kText:
      std::printf("%s", render_text(engine.diagnostics()).c_str());
      break;
    case Format::kJson:
      std::printf("%s", render_json(engine.diagnostics()).c_str());
      break;
    case Format::kSarif:
      std::printf("%s", render_sarif(engine.diagnostics()).c_str());
      break;
  }

  if (engine.has_errors()) return 1;
  if (werror && engine.count(Severity::kWarning) > 0) return 1;
  return 0;
}

}  // namespace presp::lint
