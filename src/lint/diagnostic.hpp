// Unified diagnostics engine for PR-ESP's static design-rule checkers.
//
// Every static check in the platform — the cross-layer config lint rules,
// the independent placement verifier, the config parsers' negative paths —
// reports through one Diagnostic type so tools can aggregate, filter and
// serialize findings uniformly. A diagnostic names the rule that fired,
// its severity, where in the source artifact it anchors (file / line /
// object path such as "tiles.r1c0"), a human message and a structured
// fix-hint.
//
// This header is deliberately dependency-light (util only) so low-level
// libraries like pnr can emit diagnostics without pulling in the lint
// rule engine.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace presp::lint {

enum class Severity : std::uint8_t { kError, kWarning, kInfo };

const char* to_string(Severity severity);
Severity severity_from_string(const std::string& text);

/// Location of a finding inside a source artifact. `file` is the config
/// or artifact path ("<memory>" for in-memory checks), `line` the
/// 1-based line when known (0 = unknown), `object` a dotted path naming
/// the object the rule fired on ("tiles.r1c0", "partition.RT_2",
/// "cell.mem_u12", ...).
struct SourceLoc {
  std::string file;
  int line = 0;
  std::string object;

  bool operator==(const SourceLoc&) const = default;
};

struct Diagnostic {
  /// Rule id, "<layer>.<rule>" ("floorplan.region-overlap", ...).
  std::string rule;
  Severity severity = Severity::kError;
  SourceLoc loc;
  std::string message;
  /// Structured suggestion for fixing the finding ("" if none).
  std::string fix_hint;

  bool operator==(const Diagnostic&) const = default;
};

/// Collects diagnostics from many rules. Exact duplicates (same rule,
/// location and message) are dropped so cascading artifact failures do
/// not multiply.
class DiagnosticEngine {
 public:
  /// Returns true when the diagnostic was added (false = duplicate).
  bool add(Diagnostic diag);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  bool empty() const { return diags_.empty(); }
  std::size_t size() const { return diags_.size(); }

  std::size_t count(Severity severity) const;
  bool has_errors() const { return count(Severity::kError) > 0; }
  /// True when any diagnostic with rule id `rule` was recorded.
  bool has_rule(const std::string& rule) const;

  /// Stable sort by (file, line, rule) for deterministic reports.
  void sort();

 private:
  std::vector<Diagnostic> diags_;
};

// ------------------------------------------------------------ reporters

/// Compiler-style text report, one finding per line plus indented
/// fix-hints:  file:line: error: [rule] message
std::string render_text(const std::vector<Diagnostic>& diags);

/// JSON report: {"diagnostics":[...], "errors":N, "warnings":N,
/// "infos":N}. Stable field order; strings are escaped.
std::string render_json(const std::vector<Diagnostic>& diags);

/// Parses render_json() output back into diagnostics (round-trip is
/// asserted in tests; tools consume the JSON downstream). Throws
/// presp::ConfigError on malformed input.
std::vector<Diagnostic> parse_json(const std::string& text);

/// SARIF 2.1.0 report (one run, driver `tool_name`) for CI annotation
/// uploads. Severities map error -> "error", warning -> "warning",
/// info -> "note"; fix-hints ride in each result's property bag.
std::string render_sarif(const std::vector<Diagnostic>& diags,
                         const std::string& tool_name = "presp-lint");

}  // namespace presp::lint
