// Command-line driver for the cross-layer design-rule checker. Shared
// between the standalone `presp-lint` binary and the `lint` subcommand
// of `presp-flow`.
#pragma once

#include <string>
#include <vector>

namespace presp::lint {

/// Runs the lint driver over `args` (program arguments, argv[0] already
/// stripped). Returns the process exit code: 0 when every configuration
/// is clean (warnings allowed), 1 when any error-severity diagnostic
/// fired or a file could not be processed, 2 on usage errors.
///
///   presp-lint [--format=text|json] [--list-rules] [--werror]
///              <config.esp_config>...
int run_lint_cli(const std::vector<std::string>& args,
                 const std::string& program = "presp-lint");

}  // namespace presp::lint
