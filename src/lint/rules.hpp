// Cross-layer static design-rule registry.
//
// Every rule declares its id ("<layer>.<name>"), layer, documentation
// string and default severity; its check receives the LintContext and
// reports through the DiagnosticEngine. Rules whose findings are emitted
// by other subsystems (the pnr placement verifier) are registered as
// catalog-only entries so one registry documents the complete rule set.
//
// The built-in catalog spans the stack (see DESIGN.md §10):
//   config    parse/validate failures, unknown target device
//   netlist   unknown accelerators, duplicate partition members,
//             dangling nets, interface width mismatches
//   floorplan pblock overlap, capacity, member footprint, illegal
//             columns, ICAP reachability, infeasibility
//   noc       route-function deadlock freedom (channel dependency
//             graph), decoupler/queue gating coverage
//   runtime   bitstream manifest coverage, lock-acquisition ordering,
//             retry/backoff tuning
//   fleet     [fleet] topology sanity, QoS class weights and queue
//             bounds, circuit-breaker tuning
//   ops       [ops] telemetry-server port/bind sanity, SSE buffer
//             bounds, disabled-by-default check
//   exec      task-graph cycles, undefined dependencies, unreachable
//             tasks
//   pnr       placement legality (emitted by pnr::verify_placement)
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "floorplan/floorplan_io.hpp"
#include "lint/context.hpp"
#include "lint/diagnostic.hpp"

namespace presp::lint {

struct RuleInfo {
  std::string id;
  std::string layer;
  std::string description;
  Severity severity = Severity::kError;
};

class RuleRegistry {
 public:
  using CheckFn = std::function<void(LintContext&, DiagnosticEngine&)>;

  /// Registers a rule. A null `check` adds a catalog-only entry (the
  /// rule's diagnostics are produced elsewhere, e.g. by pnr::verify).
  void add(RuleInfo info, CheckFn check = nullptr);

  const std::vector<RuleInfo>& rules() const { return infos_; }
  const RuleInfo* find(const std::string& id) const;
  /// Rules that run against a LintContext (non-catalog-only).
  std::size_t num_checks() const;

  /// Runs every checked rule. Artifact materialization failures are
  /// converted into one diagnostic under the failing artifact's rule id
  /// (unless that rule already reported more precisely).
  void run(LintContext& context, DiagnosticEngine& engine) const;

  /// The built-in cross-layer rule catalog.
  static const RuleRegistry& builtin();

 private:
  std::vector<RuleInfo> infos_;
  std::vector<CheckFn> checks_;
};

/// Convenience: runs the built-in catalog over one configuration text
/// and returns the sorted diagnostics.
std::vector<Diagnostic> lint_config_text(const std::string& text,
                                         const std::string& file = "<memory>");

/// Lints a saved floorplan artifact (see floorplan/floorplan_io.hpp)
/// without a full configuration: runs the artifact-level subset of the
/// floorplan rules (region-overlap, region-capacity, illegal-column)
/// against it. An unknown device name is itself a diagnostic
/// (config.unknown-device) and skips the device-dependent checks.
/// `file` anchors the diagnostics (the artifact's path).
std::vector<Diagnostic> lint_floorplan_artifact(
    const floorplan::FloorplanArtifact& artifact,
    const std::string& file = "<memory>");

}  // namespace presp::lint
