// Shared cycle detection for the static analyses.
//
// PR 3 grew two independent DFS cycle detectors (the runtime lock-order
// rule and the NoC channel-dependency check); the racecheck lock-order
// pass is a third client. This header factors the common core: an
// iterative three-colour DFS over a small adjacency-list digraph that
// returns the first cycle found as an explicit node sequence, so every
// caller can render "a -> b -> ... -> a" without re-deriving it from
// colouring state.
//
// Header-only and dependency-light (no lint types) so low-level
// libraries can use it without linking the rule engine.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace presp::lint {

/// Finds one cycle in the digraph `adjacency` (adjacency[i] lists the
/// successors of node i; successors outside [0, n) are ignored). Returns
/// the cycle as a closed node walk [a, b, ..., a] — at least two entries,
/// first == last; a self-loop yields [a, a]. Returns {} when acyclic.
/// Deterministic: nodes are explored in ascending index order and each
/// successor list in declaration order, so the same graph always reports
/// the same cycle.
inline std::vector<int> find_cycle(
    const std::vector<std::vector<int>>& adjacency) {
  const int n = static_cast<int>(adjacency.size());
  // 0 = white (unvisited), 1 = grey (on the DFS stack), 2 = black (done).
  std::vector<int> colour(static_cast<std::size_t>(n), 0);
  std::vector<int> stack;  // grey path from the DFS root
  for (int start = 0; start < n; ++start) {
    if (colour[static_cast<std::size_t>(start)] != 0) continue;
    std::vector<std::pair<int, bool>> work{{start, false}};
    while (!work.empty()) {
      const auto [node, done] = work.back();
      work.pop_back();
      if (done) {
        colour[static_cast<std::size_t>(node)] = 2;
        if (!stack.empty() && stack.back() == node) stack.pop_back();
        continue;
      }
      if (colour[static_cast<std::size_t>(node)] == 2) continue;
      if (colour[static_cast<std::size_t>(node)] == 1) continue;
      colour[static_cast<std::size_t>(node)] = 1;
      stack.push_back(node);
      work.push_back({node, true});
      for (const int next : adjacency[static_cast<std::size_t>(node)]) {
        if (next < 0 || next >= n) continue;
        if (colour[static_cast<std::size_t>(next)] == 1) {
          // Back edge: the cycle is the grey-stack suffix from `next`.
          std::vector<int> cycle;
          bool in_cycle = false;
          for (const int g : stack) {
            if (g == next) in_cycle = true;
            if (in_cycle) cycle.push_back(g);
          }
          cycle.push_back(next);
          return cycle;
        }
        if (colour[static_cast<std::size_t>(next)] == 0)
          work.push_back({next, false});
      }
    }
    stack.clear();
  }
  return {};
}

}  // namespace presp::lint
