// Lazily-materialized artifact context for the cross-layer lint rules.
//
// A LintContext wraps one SoC configuration text and produces, on first
// request, every artifact a rule may need: the parsed Config and
// SocConfig, the component library (builtins + characterization + WAMI +
// custom [accelerator] sections), the elaborated RTL hierarchy, the
// synthesized static netlist, the DPR floorplan, the NoC route tables,
// the runtime reconfiguration plan ([runtime] section) and the exec task
// graph ([tasks] section). Artifacts are cached; materialization failures
// throw ArtifactError carrying the rule id the failure reports under, so
// the rule runner can convert them into diagnostics exactly once.
//
// Tests inject seeded-violation fixtures through the override_* setters,
// which bypass derivation for a single artifact while the rest of the
// pipeline still materializes normally.
//
// Optional config sections understood by the lint layer:
//
//   [runtime]
//   # request sequences, one key per software thread; ',' separates
//   # independent requests, '+' chains requests whose tile locks are
//   # held simultaneously (nested acquisition).
//   thread_main = r1c0:conv2d, r1c1:gemm + r1c0:fft
//   retry_budget = 3
//   max_attempts = 3
//   backoff_base_cycles = 10000
//   watchdog_reconf_margin = 8.0
//   # defragmentation repacker knobs (runtime.repacker-bounds)
//   repack_interval_cycles = 2000000
//   repack_migration_budget = 2
//
//   [bitstreams]
//   # explicit BitstreamStore manifest; defaults to every reconfigurable
//   # tile's member set when absent.
//   r1c0 = conv2d, gemm
//
//   [tasks]
//   # task = comma-separated dependencies ("" = source task)
//   synth_static =
//   pnr_static = synth_static
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fabric/device.hpp"
#include "floorplan/floorplanner.hpp"
#include "netlist/components.hpp"
#include "netlist/rtl.hpp"
#include "netlist/soc_config.hpp"
#include "synth/synthesis.hpp"
#include "util/config.hpp"
#include "util/error.hpp"

namespace presp::lint {

/// Artifact materialization failure; reported under rule id `rule()`.
class ArtifactError : public Error {
 public:
  ArtifactError(std::string rule, const std::string& what)
      : Error(what), rule_(std::move(rule)) {}
  const std::string& rule() const { return rule_; }

 private:
  std::string rule_;
};

// ------------------------------------------------- runtime plan artifact

struct PlanRequest {
  int row = -1;
  int col = -1;
  int tile = -1;  // row-major grid index
  std::string module;
};

/// '+'-chained requests: the issuing thread acquires each request's tile
/// lock in order and holds all of them until the chain completes.
struct PlanChain {
  std::vector<PlanRequest> requests;
};

struct PlanThread {
  std::string name;
  int line = 0;  // config line of the thread key
  std::vector<PlanChain> chains;
};

/// Static model of the runtime manager's workload: per-thread request
/// sequences plus the retry/backoff tuning knobs (defaulted from
/// runtime::ManagerOptions when the [runtime] section omits them).
struct ReconfPlan {
  std::vector<PlanThread> threads;
  int retry_budget = 0;
  int max_attempts = 0;
  long long backoff_base_cycles = 0;
  double watchdog_reconf_margin = 0.0;
  /// Bitstream-store residency: 0 = eager (every image DRAM-resident),
  /// > 0 = LRU cache with that many slots (runtime::StoreOptions).
  int store_cache_slots = 0;
  /// Bytes per cache slot; 0 = sized to the largest registered image.
  long long store_slot_bytes = 0;
  /// Defragmentation repacker knobs (repack_* keys in [runtime];
  /// defaulted from runtime::RepackerOptions). repack_declared is set
  /// when any repack_* key appears.
  bool repack_declared = false;
  long long repack_interval_cycles = 0;
  double repack_frag_threshold = 0.0;
  int repack_max_migrations = 0;
  int repack_migration_budget = 0;
  /// True when the config carries a [runtime] section at all.
  bool declared = false;
};

// ------------------------------------------------------ exec artifact

struct TaskSpec {
  std::string name;
  std::vector<std::string> deps;
  int line = 0;
};

struct TaskGraphSpec {
  std::vector<TaskSpec> tasks;
  bool declared = false;

  const TaskSpec* find(const std::string& name) const;
};

// ------------------------------------------------------- NoC artifact

/// All-pairs route table over the SoC mesh (the static NoC routing
/// function, materialized so deadlock analysis can walk every path).
struct RouteTable {
  int rows = 0;
  int cols = 0;
  /// routes[src * rows*cols + dst]; each is inclusive of both endpoints.
  std::vector<std::vector<int>> routes;

  int num_tiles() const { return rows * cols; }
  const std::vector<int>& route(int src, int dst) const;
};

// ----------------------------------------------------------- context

class LintContext {
 public:
  /// `file` names the source in diagnostics ("<memory>" for tests).
  explicit LintContext(std::string config_text,
                       std::string file = "<memory>");

  /// Reads the file and constructs a context for it. Throws
  /// InvalidArgument when the file cannot be read.
  static LintContext from_file(const std::string& path);

  const std::string& file() const { return file_; }
  const std::string& text() const { return text_; }

  // Artifact accessors; each throws ArtifactError on failure.
  const Config& raw();                        // config.parse
  const netlist::SocConfig& soc();            // config.parse
  const netlist::ComponentLibrary& library(); // config.parse
  const fabric::Device& device();             // config.unknown-device
  const netlist::SocRtl& rtl();               // netlist.unknown-accelerator
  const synth::Checkpoint& static_netlist();  // config.parse
  const floorplan::Floorplan& floorplan();    // floorplan.infeasible
  /// Partition sizing requests the floorplan was planned for (same
  /// order as floorplan().pblocks).
  const std::vector<floorplan::PartitionRequest>& partition_requests();
  const RouteTable& routes();                 // config.parse
  const ReconfPlan& plan();                   // config.parse
  const TaskGraphSpec& task_graph();          // config.parse
  /// Partial-bitstream manifest: modules available per tile ([bitstreams]
  /// section, else derived from the reconfigurable tiles' member sets).
  const std::map<int, std::vector<std::string>>& manifest();

  // Fixture injection (tests): replaces one artifact.
  void override_netlist(netlist::Netlist nl);
  void override_floorplan(floorplan::Floorplan plan,
                          std::vector<floorplan::PartitionRequest> requests);
  void override_routes(RouteTable routes);
  void override_rtl(netlist::SocRtl rtl);
  void override_plan(ReconfPlan plan);
  void override_task_graph(TaskGraphSpec spec);

  /// 1-based config line of `key` in `[section]` (0 if not found);
  /// anchors diagnostics into the source text.
  int line_of(const std::string& section, const std::string& key) const;
  /// 1-based line of the [section] header itself (0 if not found).
  int line_of_section(const std::string& section) const;

 private:
  ReconfPlan parse_plan();
  TaskGraphSpec parse_task_graph();

  std::string text_;
  std::string file_;

  std::optional<Config> raw_;
  std::optional<netlist::SocConfig> soc_;
  std::optional<netlist::ComponentLibrary> library_;
  std::optional<fabric::Device> device_;
  std::optional<netlist::SocRtl> rtl_;
  std::optional<synth::Checkpoint> static_netlist_;
  std::optional<floorplan::Floorplan> floorplan_;
  std::optional<std::vector<floorplan::PartitionRequest>> requests_;
  std::optional<RouteTable> routes_;
  std::optional<ReconfPlan> plan_;
  std::optional<TaskGraphSpec> task_graph_;
  std::optional<std::map<int, std::vector<std::string>>> manifest_;
};

}  // namespace presp::lint
