#include "lint/diagnostic.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace presp::lint {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kInfo: return "info";
  }
  return "?";
}

Severity severity_from_string(const std::string& text) {
  if (text == "error") return Severity::kError;
  if (text == "warning") return Severity::kWarning;
  if (text == "info") return Severity::kInfo;
  throw ConfigError("unknown severity '" + text + "'");
}

bool DiagnosticEngine::add(Diagnostic diag) {
  for (const Diagnostic& existing : diags_)
    if (existing == diag) return false;
  diags_.push_back(std::move(diag));
  return true;
}

std::size_t DiagnosticEngine::count(Severity severity) const {
  return static_cast<std::size_t>(
      std::count_if(diags_.begin(), diags_.end(),
                    [severity](const Diagnostic& d) {
                      return d.severity == severity;
                    }));
}

bool DiagnosticEngine::has_rule(const std::string& rule) const {
  return std::any_of(diags_.begin(), diags_.end(),
                     [&rule](const Diagnostic& d) { return d.rule == rule; });
}

void DiagnosticEngine::sort() {
  std::stable_sort(diags_.begin(), diags_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.loc.file != b.loc.file)
                       return a.loc.file < b.loc.file;
                     if (a.loc.line != b.loc.line)
                       return a.loc.line < b.loc.line;
                     return a.rule < b.rule;
                   });
}

// ------------------------------------------------------------ reporters

std::string render_text(const std::vector<Diagnostic>& diags) {
  std::ostringstream os;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) ++errors;
    if (d.severity == Severity::kWarning) ++warnings;
    os << (d.loc.file.empty() ? "<memory>" : d.loc.file);
    if (d.loc.line > 0) os << ':' << d.loc.line;
    os << ": " << to_string(d.severity) << ": [" << d.rule << "] "
       << d.message;
    if (!d.loc.object.empty()) os << " (" << d.loc.object << ")";
    os << '\n';
    if (!d.fix_hint.empty()) os << "    hint: " << d.fix_hint << '\n';
  }
  os << errors << " error(s), " << warnings << " warning(s), "
     << diags.size() - errors - warnings << " info(s)\n";
  return os.str();
}

namespace {

void append_escaped(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Minimal JSON reader for the diagnostic report schema: objects, arrays,
/// strings and non-negative integers.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            value <<= 4;
            if (h >= '0' && h <= '9') value += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              value += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              value += static_cast<unsigned>(h - 'A' + 10);
            else fail("malformed \\u escape");
          }
          // The writer only emits \u00XX for control bytes.
          out += static_cast<char>(value & 0xFF);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  long long integer() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
      ++pos_;
    if (pos_ == start) fail("expected integer");
    return std::stoll(text_.substr(start, pos_ - start));
  }

  /// Skips any JSON value (used for ignorable summary fields).
  void skip_value() {
    skip_ws();
    if (pos_ >= text_.size()) fail("expected value");
    const char c = text_[pos_];
    if (c == '"') {
      string();
    } else if (c == '{' || c == '[') {
      const char close = c == '{' ? '}' : ']';
      expect(c);
      if (consume(close)) return;
      do {
        if (c == '{') {
          string();
          expect(':');
        }
        skip_value();
      } while (consume(','));
      expect(close);
    } else {
      integer();
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r'))
      ++pos_;
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw ConfigError("malformed diagnostics JSON at offset " +
                      std::to_string(pos_) + ": " + why);
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string render_json(const std::vector<Diagnostic>& diags) {
  std::string out = "{\n  \"diagnostics\": [";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"rule\": ";
    append_escaped(out, d.rule);
    out += ", \"severity\": ";
    append_escaped(out, to_string(d.severity));
    out += ", \"file\": ";
    append_escaped(out, d.loc.file);
    out += ", \"line\": " + std::to_string(d.loc.line);
    out += ", \"object\": ";
    append_escaped(out, d.loc.object);
    out += ", \"message\": ";
    append_escaped(out, d.message);
    out += ", \"fix_hint\": ";
    append_escaped(out, d.fix_hint);
    out += "}";
  }
  if (!diags.empty()) out += "\n  ";
  out += "],\n";
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t infos = 0;
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) ++errors;
    else if (d.severity == Severity::kWarning) ++warnings;
    else ++infos;
  }
  out += "  \"errors\": " + std::to_string(errors) + ",\n";
  out += "  \"warnings\": " + std::to_string(warnings) + ",\n";
  out += "  \"infos\": " + std::to_string(infos) + "\n}\n";
  return out;
}

std::string render_sarif(const std::vector<Diagnostic>& diags,
                         const std::string& tool_name) {
  const auto sarif_level = [](Severity severity) -> const char* {
    switch (severity) {
      case Severity::kError: return "error";
      case Severity::kWarning: return "warning";
      case Severity::kInfo: return "note";
    }
    return "none";
  };

  std::string out =
      "{\n"
      "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
      "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": ";
  append_escaped(out, tool_name);
  out += ",\n          \"rules\": [";
  // Deduplicated, first-appearance-ordered rule table; results reference
  // it by index so viewers can group findings per rule.
  std::vector<std::string> rule_ids;
  for (const Diagnostic& d : diags)
    if (std::find(rule_ids.begin(), rule_ids.end(), d.rule) ==
        rule_ids.end())
      rule_ids.push_back(d.rule);
  for (std::size_t i = 0; i < rule_ids.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "            {\"id\": ";
    append_escaped(out, rule_ids[i]);
    out += "}";
  }
  if (!rule_ids.empty()) out += "\n          ";
  out +=
      "]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    const std::size_t rule_index = static_cast<std::size_t>(
        std::find(rule_ids.begin(), rule_ids.end(), d.rule) -
        rule_ids.begin());
    out += i == 0 ? "\n" : ",\n";
    out += "        {\"ruleId\": ";
    append_escaped(out, d.rule);
    out += ", \"ruleIndex\": " + std::to_string(rule_index);
    out += ", \"level\": \"";
    out += sarif_level(d.severity);
    out += "\", \"message\": {\"text\": ";
    append_escaped(out, d.message);
    out += "}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": ";
    append_escaped(out, d.loc.file.empty() ? "<memory>" : d.loc.file);
    out += "}";
    if (d.loc.line > 0)
      out += ", \"region\": {\"startLine\": " + std::to_string(d.loc.line) +
             "}";
    out += "}";
    if (!d.loc.object.empty()) {
      out += ", \"logicalLocations\": [{\"fullyQualifiedName\": ";
      append_escaped(out, d.loc.object);
      out += "}]";
    }
    out += "}]";
    if (!d.fix_hint.empty()) {
      out += ", \"properties\": {\"fixHint\": ";
      append_escaped(out, d.fix_hint);
      out += "}";
    }
    out += "}";
  }
  if (!diags.empty()) out += "\n      ";
  out +=
      "]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

std::vector<Diagnostic> parse_json(const std::string& text) {
  JsonReader r(text);
  std::vector<Diagnostic> diags;
  r.expect('{');
  if (r.consume('}')) return diags;
  do {
    const std::string key = r.string();
    r.expect(':');
    if (key != "diagnostics") {
      r.skip_value();
      continue;
    }
    r.expect('[');
    if (r.consume(']')) continue;
    do {
      Diagnostic d;
      r.expect('{');
      if (!r.consume('}')) {
        do {
          const std::string field = r.string();
          r.expect(':');
          if (field == "rule") d.rule = r.string();
          else if (field == "severity")
            d.severity = severity_from_string(r.string());
          else if (field == "file") d.loc.file = r.string();
          else if (field == "line")
            d.loc.line = static_cast<int>(r.integer());
          else if (field == "object") d.loc.object = r.string();
          else if (field == "message") d.message = r.string();
          else if (field == "fix_hint") d.fix_hint = r.string();
          else r.skip_value();
        } while (r.consume(','));
        r.expect('}');
      }
      diags.push_back(std::move(d));
    } while (r.consume(','));
    r.expect(']');
  } while (r.consume(','));
  r.expect('}');
  return diags;
}

}  // namespace presp::lint
