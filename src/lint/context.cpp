#include "lint/context.hpp"

#include <fstream>
#include <sstream>

#include "hls/library.hpp"
#include "hls/spec_io.hpp"
#include "noc/noc.hpp"
#include "runtime/manager.hpp"
#include "runtime/repacker.hpp"
#include "util/string_utils.hpp"
#include "wami/accelerators.hpp"

namespace presp::lint {

namespace {

/// Parses a "r<R>c<C>" tile key; throws ConfigError on malformed input.
std::pair<int, int> parse_tile_key(const std::string& key) {
  if (key.size() < 4 || key[0] != 'r')
    throw ConfigError("malformed tile key '" + key + "' (want r<R>c<C>)");
  const std::size_t cpos = key.find('c', 1);
  if (cpos == std::string::npos)
    throw ConfigError("malformed tile key '" + key + "' (want r<R>c<C>)");
  const int row = static_cast<int>(parse_int(key.substr(1, cpos - 1)));
  const int col = static_cast<int>(parse_int(key.substr(cpos + 1)));
  return {row, col};
}

}  // namespace

const TaskSpec* TaskGraphSpec::find(const std::string& name) const {
  for (const TaskSpec& t : tasks)
    if (t.name == name) return &t;
  return nullptr;
}

const std::vector<int>& RouteTable::route(int src, int dst) const {
  PRESP_REQUIRE(src >= 0 && src < num_tiles() && dst >= 0 &&
                    dst < num_tiles(),
                "route endpoints out of range");
  return routes[static_cast<std::size_t>(src) *
                    static_cast<std::size_t>(num_tiles()) +
                static_cast<std::size_t>(dst)];
}

LintContext::LintContext(std::string config_text, std::string file)
    : text_(std::move(config_text)), file_(std::move(file)) {}

LintContext LintContext::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw InvalidArgument("cannot read configuration '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return LintContext(text.str(), path);
}

const Config& LintContext::raw() {
  if (!raw_) {
    try {
      raw_ = Config::parse(text_);
    } catch (const Error& e) {
      throw ArtifactError("config.parse", e.what());
    }
  }
  return *raw_;
}

const netlist::SocConfig& LintContext::soc() {
  if (!soc_) {
    const Config& cfg = raw();
    try {
      soc_ = netlist::SocConfig::from_config(cfg);
    } catch (const Error& e) {
      throw ArtifactError("config.parse", e.what());
    }
  }
  return *soc_;
}

const netlist::ComponentLibrary& LintContext::library() {
  if (!library_) {
    const Config& cfg = raw();
    try {
      auto lib = netlist::ComponentLibrary::with_builtins();
      hls::register_characterization_kernels(lib);
      wami::register_wami_kernels(lib);
      hls::register_kernels_from_config(cfg, lib);
      library_ = std::move(lib);
    } catch (const Error& e) {
      throw ArtifactError("config.parse", e.what());
    }
  }
  return *library_;
}

const fabric::Device& LintContext::device() {
  if (!device_) {
    const std::string& name = soc().device;
    if (name == "vc707") device_ = fabric::Device::vc707();
    else if (name == "vcu118") device_ = fabric::Device::vcu118();
    else if (name == "vcu128") device_ = fabric::Device::vcu128();
    else
      throw ArtifactError("config.unknown-device",
                          "unknown device '" + name +
                              "' (expected vc707|vcu118|vcu128)");
  }
  return *device_;
}

const netlist::SocRtl& LintContext::rtl() {
  if (!rtl_) {
    try {
      rtl_ = netlist::elaborate(soc(), library());
    } catch (const ArtifactError&) {
      throw;
    } catch (const Error& e) {
      throw ArtifactError("netlist.unknown-accelerator", e.what());
    }
  }
  return *rtl_;
}

const synth::Checkpoint& LintContext::static_netlist() {
  if (!static_netlist_) {
    try {
      static_netlist_ =
          synth::Synthesizer(library(), synth::SynthOptions{})
              .synthesize_static(rtl());
    } catch (const ArtifactError&) {
      throw;
    } catch (const Error& e) {
      throw ArtifactError("config.parse", e.what());
    }
  }
  return *static_netlist_;
}

const floorplan::Floorplan& LintContext::floorplan() {
  if (!floorplan_) {
    const netlist::SocRtl& soc_rtl = rtl();
    const synth::Checkpoint& static_ckpt = static_netlist();
    try {
      std::vector<floorplan::PartitionRequest> requests;
      for (int p = 0; p < static_cast<int>(soc_rtl.partitions().size());
           ++p)
        requests.push_back({soc_rtl.partitions()[static_cast<std::size_t>(p)]
                                .name,
                            soc_rtl.partition_demand(library(), p)});
      floorplan::FloorplanOptions options;
      options.refine = false;  // lint needs legality, not minimal waste
      floorplan_ = floorplan::Floorplanner(device()).plan(
          requests, static_ckpt.utilization, options);
      requests_ = std::move(requests);
    } catch (const ArtifactError&) {
      throw;
    } catch (const Error& e) {
      throw ArtifactError("floorplan.infeasible", e.what());
    }
  }
  return *floorplan_;
}

const std::vector<floorplan::PartitionRequest>&
LintContext::partition_requests() {
  floorplan();
  return *requests_;
}

const RouteTable& LintContext::routes() {
  if (!routes_) {
    const netlist::SocConfig& config = soc();
    RouteTable table;
    table.rows = config.rows;
    table.cols = config.cols;
    const int tiles = table.num_tiles();
    table.routes.reserve(static_cast<std::size_t>(tiles) *
                         static_cast<std::size_t>(tiles));
    for (int src = 0; src < tiles; ++src)
      for (int dst = 0; dst < tiles; ++dst)
        table.routes.push_back(
            noc::xy_route(table.rows, table.cols, src, dst));
    routes_ = std::move(table);
  }
  return *routes_;
}

ReconfPlan LintContext::parse_plan() {
  const Config& cfg = raw();
  const netlist::SocConfig& config = soc();

  ReconfPlan plan;
  const runtime::ManagerOptions defaults;
  plan.retry_budget = defaults.retry_budget;
  plan.max_attempts = defaults.max_attempts;
  plan.backoff_base_cycles = defaults.backoff_base_cycles;
  plan.watchdog_reconf_margin = defaults.watchdog_reconf_margin;
  const runtime::RepackerOptions repack_defaults;
  plan.repack_interval_cycles = repack_defaults.interval_cycles;
  plan.repack_frag_threshold = repack_defaults.frag_threshold;
  plan.repack_max_migrations = repack_defaults.max_migrations_per_pass;
  plan.repack_migration_budget = repack_defaults.migration_budget;

  const auto keys = cfg.keys("runtime");
  if (keys.empty()) return plan;
  plan.declared = true;

  for (const std::string& key : keys) {
    const std::string& value = cfg.get("runtime", key);
    try {
      if (starts_with(key, "thread")) {
        PlanThread thread;
        thread.name = key;
        thread.line = line_of("runtime", key);
        for (const std::string& chain_text : split(value, ',')) {
          PlanChain chain;
          for (const std::string& token : split(chain_text, '+')) {
            const std::string request_text{trim(token)};
            if (request_text.empty()) continue;
            const std::size_t colon = request_text.find(':');
            if (colon == std::string::npos)
              throw ConfigError("malformed request '" + request_text +
                                "' (want r<R>c<C>:<module>)");
            PlanRequest request;
            const auto [row, col] =
                parse_tile_key(request_text.substr(0, colon));
            request.row = row;
            request.col = col;
            if (row < 0 || row >= config.rows || col < 0 ||
                col >= config.cols)
              throw ConfigError("request tile r" + std::to_string(row) +
                                "c" + std::to_string(col) +
                                " outside the grid");
            request.tile = row * config.cols + col;
            request.module =
                std::string(trim(request_text.substr(colon + 1)));
            if (request.module.empty())
              throw ConfigError("request '" + request_text +
                                "' names no module");
            chain.requests.push_back(std::move(request));
          }
          if (!chain.requests.empty())
            thread.chains.push_back(std::move(chain));
        }
        plan.threads.push_back(std::move(thread));
      } else if (key == "retry_budget") {
        plan.retry_budget = static_cast<int>(parse_int(value));
      } else if (key == "max_attempts") {
        plan.max_attempts = static_cast<int>(parse_int(value));
      } else if (key == "backoff_base_cycles") {
        plan.backoff_base_cycles = parse_int(value);
      } else if (key == "watchdog_reconf_margin") {
        plan.watchdog_reconf_margin = parse_double(value);
      } else if (key == "store_cache_slots") {
        plan.store_cache_slots = static_cast<int>(parse_int(value));
      } else if (key == "store_slot_bytes") {
        plan.store_slot_bytes = parse_int(value);
      } else if (key == "repack_interval_cycles") {
        plan.repack_interval_cycles = parse_int(value);
        plan.repack_declared = true;
      } else if (key == "repack_frag_threshold") {
        plan.repack_frag_threshold = parse_double(value);
        plan.repack_declared = true;
      } else if (key == "repack_max_migrations") {
        plan.repack_max_migrations = static_cast<int>(parse_int(value));
        plan.repack_declared = true;
      } else if (key == "repack_migration_budget") {
        plan.repack_migration_budget = static_cast<int>(parse_int(value));
        plan.repack_declared = true;
      } else {
        throw ConfigError("unknown [runtime] key '" + key + "'");
      }
    } catch (const ConfigError& e) {
      throw ArtifactError("config.parse",
                          "[runtime] " + key + ": " + e.what());
    }
  }
  return plan;
}

const ReconfPlan& LintContext::plan() {
  if (!plan_) plan_ = parse_plan();
  return *plan_;
}

TaskGraphSpec LintContext::parse_task_graph() {
  const Config& cfg = raw();
  TaskGraphSpec spec;
  const auto keys = cfg.keys("tasks");
  if (keys.empty()) return spec;
  spec.declared = true;
  for (const std::string& key : keys) {
    TaskSpec task;
    task.name = key;
    task.line = line_of("tasks", key);
    for (const std::string& dep : split(cfg.get("tasks", key), ',')) {
      const std::string name{trim(dep)};
      if (!name.empty()) task.deps.push_back(name);
    }
    spec.tasks.push_back(std::move(task));
  }
  return spec;
}

const TaskGraphSpec& LintContext::task_graph() {
  if (!task_graph_) task_graph_ = parse_task_graph();
  return *task_graph_;
}

const std::map<int, std::vector<std::string>>& LintContext::manifest() {
  if (!manifest_) {
    const Config& cfg = raw();
    const netlist::SocConfig& config = soc();
    std::map<int, std::vector<std::string>> manifest;
    const auto keys = cfg.keys("bitstreams");
    if (!keys.empty()) {
      for (const std::string& key : keys) {
        try {
          const auto [row, col] = parse_tile_key(key);
          if (row < 0 || row >= config.rows || col < 0 ||
              col >= config.cols)
            throw ConfigError("tile key '" + key + "' outside the grid");
          auto& modules = manifest[row * config.cols + col];
          for (const std::string& m : split(cfg.get("bitstreams", key), ',')) {
            const std::string name{trim(m)};
            if (!name.empty()) modules.push_back(name);
          }
        } catch (const ConfigError& e) {
          throw ArtifactError("config.parse",
                              std::string("[bitstreams] ") + e.what());
        }
      }
    } else {
      for (int index = 0; index < static_cast<int>(config.tiles.size());
           ++index) {
        const netlist::TileSpec& tile =
            config.tiles[static_cast<std::size_t>(index)];
        if (tile.type == netlist::TileType::kReconf) {
          manifest[index] = tile.accelerators;
        } else if (tile.type == netlist::TileType::kCpu &&
                   tile.cpu_in_reconfigurable_partition) {
          manifest[index] = {tile.cpu_core == netlist::CpuCore::kLeon3
                                 ? netlist::ComponentLibrary::kLeon3
                                 : netlist::ComponentLibrary::kCva6};
        }
      }
    }
    manifest_ = std::move(manifest);
  }
  return *manifest_;
}

// -------------------------------------------------- fixture injection

void LintContext::override_netlist(netlist::Netlist nl) {
  synth::Checkpoint ckpt;
  ckpt.name = nl.name();
  ckpt.utilization = nl.total_resources();
  ckpt.netlist = std::move(nl);
  static_netlist_ = std::move(ckpt);
}

void LintContext::override_floorplan(
    floorplan::Floorplan plan,
    std::vector<floorplan::PartitionRequest> requests) {
  floorplan_ = std::move(plan);
  requests_ = std::move(requests);
}

void LintContext::override_routes(RouteTable routes) {
  routes_ = std::move(routes);
}

void LintContext::override_rtl(netlist::SocRtl rtl) {
  rtl_ = std::move(rtl);
}

void LintContext::override_plan(ReconfPlan plan) { plan_ = std::move(plan); }

void LintContext::override_task_graph(TaskGraphSpec spec) {
  task_graph_ = std::move(spec);
}

// --------------------------------------------------- source locations

int LintContext::line_of(const std::string& section,
                         const std::string& key) const {
  std::istringstream is(text_);
  std::string raw_line;
  std::string current;
  int line_no = 0;
  while (std::getline(is, raw_line)) {
    ++line_no;
    std::string_view line = trim(raw_line);
    if (line.empty() || line.front() == '#' || line.front() == ';') continue;
    if (line.front() == '[' && line.back() == ']') {
      current = std::string(trim(line.substr(1, line.size() - 2)));
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) continue;
    if (current == section &&
        std::string(trim(line.substr(0, eq))) == key)
      return line_no;
  }
  return 0;
}

int LintContext::line_of_section(const std::string& section) const {
  std::istringstream is(text_);
  std::string raw_line;
  int line_no = 0;
  while (std::getline(is, raw_line)) {
    ++line_no;
    std::string_view line = trim(raw_line);
    if (line.size() >= 2 && line.front() == '[' && line.back() == ']' &&
        std::string(trim(line.substr(1, line.size() - 2))) == section)
      return line_no;
  }
  return 0;
}

}  // namespace presp::lint
