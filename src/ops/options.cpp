#include "ops/options.hpp"

#include "util/error.hpp"

namespace presp::ops {

OpsOptions OpsOptions::from_config(const Config& config) {
  OpsOptions opts;
  const std::string s = "ops";
  opts.enabled = config.get_bool_or(s, "enabled", opts.enabled);
  opts.bind = config.get_or(s, "bind", opts.bind);
  opts.port = static_cast<int>(config.get_int_or(s, "port", opts.port));
  opts.workers =
      static_cast<int>(config.get_int_or(s, "workers", opts.workers));
  opts.max_connections = static_cast<int>(
      config.get_int_or(s, "max_connections", opts.max_connections));
  opts.sse_buffer_events = static_cast<int>(
      config.get_int_or(s, "sse_buffer_events", opts.sse_buffer_events));
  opts.publish_interval_ms = static_cast<int>(
      config.get_int_or(s, "publish_interval_ms", opts.publish_interval_ms));
  return opts;
}

void OpsOptions::validate() const {
  PRESP_REQUIRE(port >= 0 && port <= 65535,
                "ops port must be in [0, 65535]");
  PRESP_REQUIRE(workers >= 1, "ops server needs at least one worker");
  PRESP_REQUIRE(max_connections >= 1,
                "ops server needs at least one connection slot");
  PRESP_REQUIRE(sse_buffer_events >= 1,
                "ops SSE buffer must hold at least one event");
  PRESP_REQUIRE(publish_interval_ms >= 1,
                "ops publish interval must be positive");
  PRESP_REQUIRE(!bind.empty(), "ops bind address must not be empty");
}

}  // namespace presp::ops
