#include "ops/watch.hpp"

#include "lint/context.hpp"
#include "lint/diagnostic.hpp"
#include "lint/rules.hpp"
#include "util/error.hpp"

namespace presp::ops {

namespace fs = std::filesystem;

LintWatcher::LintWatcher(std::vector<std::string> paths, Callback callback)
    : paths_(std::move(paths)), callback_(std::move(callback)) {
  for (const std::string& path : paths_) seen_[path] = fingerprint(path);
}

LintWatcher::Fingerprint LintWatcher::fingerprint(const std::string& path) {
  Fingerprint fp;
  std::error_code ec;
  fp.exists = fs::exists(path, ec) && !ec;
  if (!fp.exists) return fp;
  fp.mtime = fs::last_write_time(path, ec);
  fp.size = fs::file_size(path, ec);
  return fp;
}

void LintWatcher::lint_file(const std::string& path) {
  lint::DiagnosticEngine engine;
  try {
    lint::LintContext context = lint::LintContext::from_file(path);
    lint::RuleRegistry::builtin().run(context, engine);
  } catch (const Error& e) {
    engine.add({"config.parse",
                lint::Severity::kError,
                {path, 0, ""},
                e.what(),
                ""});
  }
  engine.sort();
  Report report;
  report.path = path;
  report.findings_json = lint::render_json(engine.diagnostics());
  report.errors = engine.count(lint::Severity::kError);
  report.warnings = engine.count(lint::Severity::kWarning);
  ++reports_;
  if (callback_) callback_(report);
}

int LintWatcher::lint_all() {
  for (const std::string& path : paths_) {
    seen_[path] = fingerprint(path);
    lint_file(path);
  }
  return static_cast<int>(paths_.size());
}

int LintWatcher::poll_once() {
  int relinted = 0;
  for (const std::string& path : paths_) {
    const Fingerprint fp = fingerprint(path);
    if (fp == seen_[path]) continue;
    seen_[path] = fp;
    lint_file(path);
    ++relinted;
  }
  return relinted;
}

}  // namespace presp::ops
