// Driver for `presp-lint --watch`: baseline-lints the given configs,
// then polls them for edits and re-lints the changed ones, printing each
// report and (with --ops-port) publishing it as a "lint" SSE event on an
// embedded OpsServer so /events subscribers see config edits re-checked
// live. Lives in the ops library (not lint) because it composes
// LintWatcher with OpsServer; the presp-lint binary dispatches here when
// --watch is present.
#pragma once

#include <string>
#include <vector>

namespace presp::ops {

/// Runs the watch loop over `args` (argv[0] stripped, `--watch` may or
/// may not still be present). Flags:
///
///   --poll-ms <n>     poll interval (default 200)
///   --max-polls <n>   exit after n polls (default 0 = run forever);
///                     tests and the tier-1 ops stage use this
///   --ops-port <n>    serve /events etc. on 127.0.0.1:<n> (0 =
///                     ephemeral; the bound port is printed)
///   --watch-log <f>   append one JSON line per lint report to <f>
///   <config>...       .esp_config files to watch
///
/// Watch mode is a monitor: the exit code is 0 on a clean run (even if
/// findings were reported), 2 on usage errors.
int run_watch_cli(const std::vector<std::string>& args,
                  const std::string& program = "presp-lint");

}  // namespace presp::ops
