// Minimal blocking HTTP/1.1 plumbing for the ops plane: just enough
// protocol to serve GET endpoints and SSE streams to curl, a browser
// EventSource, or a Prometheus scraper — no external dependency, POSIX
// sockets only. Connections are one-shot ("Connection: close"); an SSE
// response keeps its socket open until the client disconnects or the
// server stops.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

namespace presp::ops {

struct HttpRequest {
  std::string method;   // "GET"
  std::string target;   // "/metrics" (query string kept verbatim)
  std::string version;  // "HTTP/1.1"
  /// Header names lower-cased; values trimmed.
  std::map<std::string, std::string> headers;
};

/// Reads one request head (start line + headers) from `fd`. Bounded at
/// 16 KiB; returns false on EOF, timeout, malformed input or overflow.
/// Request bodies are not supported (every ops endpoint is a GET).
bool read_http_request(int fd, HttpRequest* out);

/// Serializes a complete one-shot response (status line, Content-Type,
/// Content-Length, Connection: close, body).
std::string http_response(int status, const std::string& content_type,
                          const std::string& body);

const char* status_reason(int status);

/// Blocking full-buffer send; returns false once the peer is gone.
bool send_all(int fd, const char* data, std::size_t size);
inline bool send_all(int fd, const std::string& data) {
  return send_all(fd, data.data(), data.size());
}

/// Creates a listening TCP socket on `bind_addr:port` (port 0 picks an
/// ephemeral port). Returns the fd and stores the actual port in
/// `*actual_port`. Throws presp::Error on failure.
int listen_on(const std::string& bind_addr, int port, int backlog,
              int* actual_port);

/// Connects to 127.0.0.1:`port`, issues `GET target` and returns the
/// response body (headers stripped). Status goes to `*status`. Returns
/// false on connect/parse failure. Test/bench helper, not a general
/// client: responses are read until EOF (the server closes per request).
bool http_get(int port, const std::string& target, int* status,
              std::string* body, int timeout_ms = 5000);

struct SseStreamResult {
  bool connected = false;
  std::uint64_t events = 0;     // complete SSE events parsed
  std::string last_event;       // "event:" field of the newest one
  std::string last_data;
};

/// Test/bench SSE subscriber: connects to 127.0.0.1:`port`, issues
/// `GET target` and keeps parsing events until the server closes the
/// stream or `max_ms` passes. `read_delay_ms` sleeps between reads to
/// emulate a slow consumer; `rcvbuf_bytes` (when > 0) shrinks SO_RCVBUF
/// before connecting so a slow consumer's TCP window fills quickly and
/// the server-side ring demonstrably overflows (drop-and-count).
/// `hurry`, when set true by the caller, cancels the read delay so an
/// artificially slow client drains its TCP backlog at full speed after
/// the phase under test is over (it may hold minutes worth of reads).
SseStreamResult sse_stream(int port, const std::string& target,
                           int read_delay_ms = 0, int max_ms = 60000,
                           int rcvbuf_bytes = 0,
                           const std::atomic<bool>* hurry = nullptr);

}  // namespace presp::ops
