#include "ops/watch_cli.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "ops/server.hpp"
#include "ops/watch.hpp"
#include "util/error.hpp"

namespace presp::ops {

namespace {

int usage(const std::string& program) {
  std::fprintf(stderr,
               "usage: %s --watch [--poll-ms <n>] [--max-polls <n>]\n"
               "       %*s [--ops-port <n>] [--watch-log <file>]\n"
               "       %*s <config.esp_config>...\n",
               program.c_str(), static_cast<int>(program.size()), "",
               static_cast<int>(program.size()), "");
  return 2;
}

bool parse_int(const std::string& text, int* out) {
  try {
    std::size_t pos = 0;
    const int value = std::stoi(text, &pos);
    if (pos != text.size()) return false;
    *out = value;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

void json_escape_into(std::string& out, const std::string& text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
}

std::string report_json(const LintWatcher::Report& report) {
  std::string out = "{\"path\":\"";
  json_escape_into(out, report.path);
  out += "\",\"errors\":" + std::to_string(report.errors);
  out += ",\"warnings\":" + std::to_string(report.warnings);
  out += ",\"findings\":" + report.findings_json + "}";
  return out;
}

}  // namespace

int run_watch_cli(const std::vector<std::string>& args,
                  const std::string& program) {
  int poll_ms = 200;
  int max_polls = 0;
  int ops_port = -1;  // < 0: no server
  std::string watch_log;
  std::vector<std::string> configs;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--watch") {
      continue;
    } else if (arg == "--poll-ms" && i + 1 < args.size()) {
      if (!parse_int(args[++i], &poll_ms) || poll_ms < 1)
        return usage(program);
    } else if (arg == "--max-polls" && i + 1 < args.size()) {
      if (!parse_int(args[++i], &max_polls) || max_polls < 0)
        return usage(program);
    } else if (arg == "--ops-port" && i + 1 < args.size()) {
      if (!parse_int(args[++i], &ops_port) || ops_port < 0)
        return usage(program);
    } else if (arg == "--watch-log" && i + 1 < args.size()) {
      watch_log = args[++i];
    } else if (!arg.empty() && arg[0] != '-') {
      configs.push_back(arg);
    } else {
      return usage(program);
    }
  }
  if (configs.empty()) return usage(program);

  std::unique_ptr<OpsServer> server;
  if (ops_port >= 0) {
    OpsOptions options;
    options.enabled = true;
    options.bind = "127.0.0.1";
    options.port = ops_port;
    // Findings should reach /events subscribers within roughly one poll
    // interval, so pump at least that often.
    options.publish_interval_ms = poll_ms < 50 ? poll_ms : 50;
    try {
      server = std::make_unique<OpsServer>(options);
      server->start();
    } catch (const Error& e) {
      std::fprintf(stderr, "%s: cannot start ops server: %s\n",
                   program.c_str(), e.what());
      return 2;
    }
    std::printf("watching %zu config(s); ops server on 127.0.0.1:%d\n",
                configs.size(), server->port());
  } else {
    std::printf("watching %zu config(s)\n", configs.size());
  }
  std::fflush(stdout);

  auto on_report = [&](const LintWatcher::Report& report) {
    std::printf("[watch] %s: %zu error(s), %zu warning(s)\n",
                report.path.c_str(), report.errors, report.warnings);
    std::fflush(stdout);
    const std::string line = report_json(report);
    if (!watch_log.empty()) {
      std::ofstream log(watch_log, std::ios::app);
      log << line << "\n";
    }
    if (server) server->publish("lint", line);
  };
  LintWatcher watcher(configs, on_report);
  watcher.lint_all();

  for (int poll = 0; max_polls == 0 || poll < max_polls; ++poll) {
    std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
    watcher.poll_once();
  }

  if (server) {
    // Let the pump drain any just-published report before tearing down
    // the SSE streams mid-event.
    std::this_thread::sleep_for(std::chrono::milliseconds(
        2 * server->options().publish_interval_ms));
    server->stop();
  }
  return 0;
}

}  // namespace presp::ops
