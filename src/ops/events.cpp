#include "ops/events.hpp"

#include <algorithm>
#include <chrono>

#include "racecheck/annot.hpp"

namespace presp::ops {

SseRing::SseRing(std::size_t capacity)
    : slots_(std::max<std::size_t>(capacity, 1)) {}

bool SseRing::push(SseEvent event) {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  if (head - tail >= slots_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // The acquire-load of tail_ above is what licenses reusing the slot
  // the consumer freed; mirror that edge for racecheck.
  annot::AtomicConsume(&tail_, "ops.sse.ring-free");
  PRESP_RC_WRITE(&slots_[head % slots_.size()], "ops.sse.slot");
  slots_[head % slots_.size()] = std::move(event);
  // Release-publish the slot to the consumer (racecheck sees the same
  // edge through the annotation pair).
  annot::AtomicPublish(this, "ops.sse.ring");
  head_.store(head + 1, std::memory_order_release);
  return true;
}

bool SseRing::pop(SseEvent* out) {
  const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  if (tail == head) return false;
  annot::AtomicConsume(this, "ops.sse.ring");
  PRESP_RC_READ(&slots_[tail % slots_.size()], "ops.sse.slot");
  *out = std::move(slots_[tail % slots_.size()]);
  // Release the slot back to the producer (paired with the consume in
  // push() the same way the release-store below pairs with its acquire).
  annot::AtomicPublish(&tail_, "ops.sse.ring-free");
  tail_.store(tail + 1, std::memory_order_release);
  return true;
}

bool SseClient::wait_pop(SseEvent* out, int timeout_ms) {
  if (ring.pop(out)) return true;
  bool popped = false;
  std::unique_lock<std::mutex> lock(wake_mutex);
  wake_cv.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
    if (!open.load(std::memory_order_relaxed)) return true;
    popped = ring.pop(out);
    return popped;
  });
  // Cover the timeout race where the event landed after the last
  // predicate evaluation but before the wait expired.
  return popped || ring.pop(out);
}

std::shared_ptr<SseClient> SseHub::subscribe() {
  auto client = std::make_shared<SseClient>(capacity_);
  std::lock_guard<std::mutex> lock(clients_mutex_);
  clients_.push_back(client);
  return client;
}

void SseHub::unsubscribe(const std::shared_ptr<SseClient>& client) {
  std::lock_guard<std::mutex> lock(clients_mutex_);
  departed_dropped_.fetch_add(client->ring.dropped(),
                              std::memory_order_relaxed);
  clients_.erase(std::remove(clients_.begin(), clients_.end(), client),
                 clients_.end());
}

void SseHub::publish(std::string event, std::string data) {
  SseEvent e;
  e.event = std::move(event);
  e.data = std::move(data);
  e.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  published_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(clients_mutex_);
  for (const auto& client : clients_) {
    client->ring.push(e);
    // Bare notify: the producer never takes a client's wake mutex, so a
    // consumer stuck in a slow socket write cannot transitively stall
    // the pump. The consumer's timed wait covers the lost-wakeup window.
    client->wake_cv.notify_one();
  }
}

void SseHub::close_all() {
  std::lock_guard<std::mutex> lock(clients_mutex_);
  for (const auto& client : clients_) {
    client->open.store(false, std::memory_order_relaxed);
    client->wake_cv.notify_one();
  }
}

int SseHub::clients() const {
  std::lock_guard<std::mutex> lock(clients_mutex_);
  return static_cast<int>(clients_.size());
}

std::uint64_t SseHub::dropped() const {
  std::uint64_t total = departed_dropped_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(clients_mutex_);
  for (const auto& client : clients_) total += client->ring.dropped();
  return total;
}

std::string sse_frame(const SseEvent& event) {
  std::string out;
  out += "id: " + std::to_string(event.id) + "\n";
  if (!event.event.empty()) out += "event: " + event.event + "\n";
  out += "data: " + event.data + "\n\n";
  return out;
}

void SseParser::feed(const char* data, std::size_t size) {
  buffer_.append(data, size);
}

bool SseParser::next(SseEvent* out) {
  for (;;) {
    const std::size_t end = buffer_.find("\n\n");
    if (end == std::string::npos) return false;
    const std::string block = buffer_.substr(0, end);
    buffer_.erase(0, end + 2);
    *out = SseEvent{};
    bool has_field = false;
    std::size_t pos = 0;
    while (pos < block.size()) {
      std::size_t eol = block.find('\n', pos);
      if (eol == std::string::npos) eol = block.size();
      const std::string line = block.substr(pos, eol - pos);
      pos = eol + 1;
      if (line.rfind("id: ", 0) == 0) {
        out->id = std::stoull(line.substr(4));
        has_field = true;
      } else if (line.rfind("event: ", 0) == 0) {
        out->event = line.substr(7);
        has_field = true;
      } else if (line.rfind("data: ", 0) == 0) {
        out->data = line.substr(6);
        has_field = true;
      }
    }
    // Blocks with no fields (": comment" handshakes, keep-alives) are
    // not events; keep scanning.
    if (has_field) return true;
  }
}

}  // namespace presp::ops
