#include "ops/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <chrono>

#include "ops/sources.hpp"
#include "racecheck/annot.hpp"
#include "trace/metrics.hpp"

namespace presp::ops {

namespace {

constexpr int kAcceptPollMs = 100;
constexpr int kRequestTimeoutMs = 2000;

trace::Counter& counter(const char* name) {
  return trace::MetricsRegistry::global().counter(name);
}

void set_recv_timeout(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

}  // namespace

OpsServer::OpsServer(OpsOptions options)
    : options_(std::move(options)),
      hub_(static_cast<std::size_t>(
          options_.sse_buffer_events > 0 ? options_.sse_buffer_events : 1)) {
  options_.validate();
}

OpsServer::~OpsServer() { stop(); }

void OpsServer::start() {
  if (!options_.enabled || running_.load(std::memory_order_relaxed)) return;
  listen_fd_ = listen_on(options_.bind, options_.port,
                         options_.max_connections, &port_);
  stopping_.store(false, std::memory_order_relaxed);
  exec::ThreadPool::Options pool;
  pool.threads = options_.workers;
  pool.pin_workers = false;  // server workers mostly block on sockets
  workers_ = std::make_unique<exec::ThreadPool>(pool);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { accept_loop(); });
  pump_ = std::thread([this] { pump_loop(); });
}

void OpsServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // Wake the pump immediately and tell SSE consumers to bail.
  inbox_cv_.notify_all();
  hub_.close_all();
  // Shut down every live connection so blocked reads/writes return.
  {
    std::lock_guard<std::mutex> lock(fds_mutex_);
    for (const int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  if (pump_.joinable()) pump_.join();
  // The pool destructor drains the (now unblocked) connection handlers.
  workers_.reset();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void OpsServer::publish(std::string event, std::string data) {
  SseEvent e;
  e.event = std::move(event);
  e.data = std::move(data);
  {
    std::lock_guard<std::mutex> lock(inbox_mutex_);
    inbox_.push_back(std::move(e));
  }
  inbox_cv_.notify_one();
}

OpsServer::Stats OpsServer::stats() const {
  Stats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.sse_clients = sse_clients_.load(std::memory_order_relaxed);
  s.sse_published = hub_.published();
  s.sse_dropped = hub_.dropped();
  return s;
}

void OpsServer::track(int fd, bool add) {
  std::lock_guard<std::mutex> lock(fds_mutex_);
  if (add) {
    open_fds_.insert(fd);
  } else {
    open_fds_.erase(fd);
  }
}

void OpsServer::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kAcceptPollMs);
    if (ready <= 0) continue;  // timeout (re-check stop flag) or EINTR
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (active_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      // Bounded connections: refuse immediately rather than queueing
      // unbounded work behind the pool.
      rejected_.fetch_add(1, std::memory_order_relaxed);
      counter("ops.http.rejected").add();
      const std::string resp =
          http_response(503, "application/json",
                        "{\"error\":\"connection limit reached\"}");
      send_all(fd, resp);
      ::close(fd);
      continue;
    }
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    track(fd, true);
    workers_->submit([this, fd] {
      handle_connection(fd);
      track(fd, false);
      ::close(fd);
      active_connections_.fetch_sub(1, std::memory_order_relaxed);
    });
  }
}

std::string OpsServer::respond(const HttpRequest& request, bool* is_sse) {
  *is_sse = false;
  if (request.method != "GET")
    return http_response(405, "application/json",
                        "{\"error\":\"only GET is supported\"}");
  // Strip any query string: the endpoints take no parameters.
  std::string path = request.target;
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  if (path == "/" || path == "/index") {
    return http_response(
        200, "application/json",
        "{\"endpoints\":[\"/metrics\",\"/metrics/prometheus\","
        "\"/health\",\"/trace/summary\",\"/events\"]}");
  }
  if (path == "/metrics") {
    return http_response(200, "application/json",
                         trace::MetricsRegistry::global().snapshot_json());
  }
  if (path == "/metrics/prometheus") {
    return http_response(200, "text/plain; version=0.0.4",
                         trace::MetricsRegistry::global().prometheus_text());
  }
  if (path == "/health") {
    const std::string body =
        health_source_ ? health_source_() : "{\"health\":null}";
    return http_response(200, "application/json", body);
  }
  if (path == "/trace/summary") {
    return http_response(200, "application/json", trace_summary_json());
  }
  if (path == "/events") {
    *is_sse = true;
    return "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n"
           "Cache-Control: no-cache\r\nConnection: close\r\n\r\n";
  }
  return http_response(404, "application/json",
                       "{\"error\":\"no such endpoint\"}");
}

void OpsServer::handle_connection(int fd) {
  set_recv_timeout(fd, kRequestTimeoutMs);
  HttpRequest request;
  if (!read_http_request(fd, &request)) return;
  requests_.fetch_add(1, std::memory_order_relaxed);
  counter("ops.http.requests").add();
  bool is_sse = false;
  const std::string head = respond(request, &is_sse);
  if (!send_all(fd, head)) return;
  if (is_sse) handle_sse(fd);
}

void OpsServer::handle_sse(int fd) {
  const annot::Scope scope("ops.sse.consumer");
  sse_clients_.fetch_add(1, std::memory_order_relaxed);
  trace::MetricsRegistry::global().gauge("ops.sse.clients").set(
      static_cast<double>(hub_.clients() + 1));
  const std::shared_ptr<SseClient> client = hub_.subscribe();
  // Opening handshake so EventSource clients see the stream is live.
  send_all(fd, std::string(": presp ops stream\n\n"));
  SseEvent event;
  while (running_.load(std::memory_order_acquire) &&
         client->open.load(std::memory_order_relaxed)) {
    if (!client->wait_pop(&event, kAcceptPollMs)) continue;
    if (!send_all(fd, sse_frame(event))) break;  // client went away
  }
  hub_.unsubscribe(client);
  trace::MetricsRegistry::global().gauge("ops.sse.clients").set(
      static_cast<double>(hub_.clients()));
}

void OpsServer::pump_loop() {
  const annot::Scope scope("ops.sse.pump");
  trace::MetricsSnapshot prev = trace::MetricsRegistry::global().snapshot();
  std::string prev_health;
  while (running_.load(std::memory_order_acquire)) {
    // Sleep until the next tick or an external publish arrives.
    std::vector<SseEvent> pending;
    {
      std::unique_lock<std::mutex> lock(inbox_mutex_);
      inbox_cv_.wait_for(
          lock, std::chrono::milliseconds(options_.publish_interval_ms),
          [this] {
            return !inbox_.empty() ||
                   !running_.load(std::memory_order_acquire);
          });
      pending.swap(inbox_);
    }
    if (!running_.load(std::memory_order_acquire)) break;
    for (SseEvent& e : pending) {
      hub_.publish(std::move(e.event), std::move(e.data));
      counter("ops.sse.published").add();
    }
    // Metrics deltas since the last tick.
    trace::MetricsSnapshot cur = trace::MetricsRegistry::global().snapshot();
    const std::string delta = metrics_delta_json(prev, cur);
    if (delta != "{}") {
      hub_.publish("metrics", delta);
      counter("ops.sse.published").add();
    }
    prev = std::move(cur);
    // Health / breaker transitions: publish only when the rendered state
    // changes, so an idle fleet stays silent on the wire.
    if (health_source_) {
      std::string health = health_source_();
      if (health != prev_health) {
        hub_.publish("health", health);
        counter("ops.sse.published").add();
        prev_health = std::move(health);
      }
    }
    trace::MetricsRegistry::global().gauge("ops.sse.dropped").set(
        static_cast<double>(hub_.dropped()));
  }
}

}  // namespace presp::ops
