// Watch-mode lint: polls a set of .esp_config files for modification
// (mtime + size) and re-lints the ones that changed, delivering each
// fresh report to a callback — the presp-lint --watch CLI prints it and,
// when an ops server is attached, publishes it as a "lint" SSE event so
// a dashboard watching /events sees config edits re-checked live.
//
// The watcher is deliberately a plain synchronous class (poll_once() does
// one scan); the CLI owns the sleep loop. That keeps it unit-testable
// without timing dependence and lets callers drive it from any thread.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace presp::ops {

class LintWatcher {
 public:
  struct Report {
    std::string path;
    /// lint::render_json() of the file's current findings.
    std::string findings_json;
    std::size_t errors = 0;
    std::size_t warnings = 0;
  };
  using Callback = std::function<void(const Report&)>;

  LintWatcher(std::vector<std::string> paths, Callback callback);

  /// Lints every watched file unconditionally (the baseline pass the
  /// CLI runs before entering the poll loop). Returns files linted.
  int lint_all();
  /// Re-lints files whose mtime or size moved since the last scan (a
  /// deleted file reports a config.parse finding once). Returns the
  /// number of files re-linted.
  int poll_once();

  /// Total re-lint passes delivered to the callback (lint_all +
  /// changed files), for loop-exit conditions in tests and CI.
  std::uint64_t reports() const { return reports_; }

 private:
  struct Fingerprint {
    std::filesystem::file_time_type mtime{};
    std::uintmax_t size = 0;
    bool exists = false;

    bool operator==(const Fingerprint&) const = default;
  };

  static Fingerprint fingerprint(const std::string& path);
  void lint_file(const std::string& path);

  std::vector<std::string> paths_;
  Callback callback_;
  std::map<std::string, Fingerprint> seen_;
  std::uint64_t reports_ = 0;
};

}  // namespace presp::ops
