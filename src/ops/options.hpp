// Configuration of the embedded ops server, parsed from the `[ops]`
// section of an .esp_config file:
//
//   [ops]
//   enabled = true          # default false: no sockets unless asked
//   bind = 127.0.0.1        # loopback by default
//   port = 9180             # 0 = pick an ephemeral port
//   workers = 4             # connection-handler threads
//   max_connections = 16    # concurrent connections (incl. SSE clients)
//   sse_buffer_events = 64  # per-client bounded ring (drop-and-count)
//   publish_interval_ms = 50
//
// from_config() is lenient (defaults for every key) — the presp-lint
// `ops.*` rule pack reports misconfigurations with file/line diagnostics;
// validate() throws on values the server cannot run with.
#pragma once

#include <string>

#include "util/config.hpp"

namespace presp::ops {

struct OpsOptions {
  /// Master switch. The server must be opt-in: a telemetry port that
  /// opens by default is a misconfiguration the lint rules flag.
  bool enabled = false;
  std::string bind = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (the bench/tests use this to
  /// avoid collisions; OpsServer::port() reports the actual one).
  int port = 0;
  /// Connection-handler threads (an SSE client occupies one for its
  /// whole subscription).
  int workers = 4;
  /// Concurrent connections; excess accepts get an immediate 503.
  int max_connections = 16;
  /// Per-SSE-client bounded event ring. A slow client overflows its own
  /// ring (dropped events are counted); the pump never blocks.
  int sse_buffer_events = 64;
  /// Pump period between snapshot diffs pushed to /events.
  int publish_interval_ms = 50;

  /// Reads the `[ops]` section (missing keys keep defaults; a missing
  /// section returns the disabled default).
  static OpsOptions from_config(const Config& config);

  /// Throws presp::InvalidArgument on unusable values (port outside
  /// [0, 65535], non-positive workers/connections/buffer/interval).
  void validate() const;
};

}  // namespace presp::ops
