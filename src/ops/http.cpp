#include "ops/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "ops/events.hpp"
#include "util/error.hpp"

namespace presp::ops {

namespace {

constexpr std::size_t kMaxRequestBytes = 16 * 1024;

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

void set_socket_timeout(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool parse_request_head(const std::string& head, HttpRequest* out) {
  std::size_t pos = head.find("\r\n");
  if (pos == std::string::npos) return false;
  const std::string start = head.substr(0, pos);
  std::size_t sp1 = start.find(' ');
  std::size_t sp2 = start.find(' ', sp1 == std::string::npos ? 0 : sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return false;
  out->method = start.substr(0, sp1);
  out->target = start.substr(sp1 + 1, sp2 - sp1 - 1);
  out->version = start.substr(sp2 + 1);
  if (out->method.empty() || out->target.empty() || out->target[0] != '/')
    return false;
  pos += 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string line = head.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) break;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;  // tolerate junk headers
    out->headers[lower(trim(line.substr(0, colon)))] =
        trim(line.substr(colon + 1));
  }
  return true;
}

}  // namespace

bool read_http_request(int fd, HttpRequest* out) {
  std::string buffer;
  char chunk[1024];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;  // EOF, timeout or error
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.find("\r\n\r\n") != std::string::npos) break;
    if (buffer.size() > kMaxRequestBytes) return false;
  }
  return parse_request_head(buffer, out);
}

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string http_response(int status, const std::string& content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    status_reason(status) + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

bool send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

int listen_on(const std::string& bind_addr, int port, int backlog,
              int* actual_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  PRESP_REQUIRE(fd >= 0, "ops: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw InvalidArgument("ops: bad bind address '" + bind_addr + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0) {
    const int err = errno;
    ::close(fd);
    throw Error("ops: cannot listen on " + bind_addr + ":" +
                std::to_string(port) + " (" + std::strerror(err) + ")");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  if (actual_port != nullptr) *actual_port = ntohs(bound.sin_port);
  return fd;
}

bool http_get(int port, const std::string& target, int* status,
              std::string* body, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  set_socket_timeout(fd, timeout_ms);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  if (!send_all(fd, request)) {
    ::close(fd);
    return false;
  }
  std::string raw;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    raw.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos || raw.rfind("HTTP/", 0) != 0)
    return false;
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > raw.size()) return false;
  if (status != nullptr) *status = std::stoi(raw.substr(sp + 1, 3));
  if (body != nullptr) *body = raw.substr(head_end + 4);
  return true;
}

SseStreamResult sse_stream(int port, const std::string& target,
                           int read_delay_ms, int max_ms,
                           int rcvbuf_bytes,
                           const std::atomic<bool>* hurry) {
  SseStreamResult result;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return result;
  if (rcvbuf_bytes > 0)
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                 sizeof(rcvbuf_bytes));
  set_socket_timeout(fd, 250);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return result;
  }
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Accept: text/event-stream\r\n\r\n";
  if (!send_all(fd, request)) {
    ::close(fd);
    return result;
  }
  result.connected = true;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(max_ms);
  SseParser parser;
  std::string head;
  bool in_body = false;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (std::chrono::steady_clock::now() >= deadline) break;
      continue;
    }
    if (n <= 0) break;  // server closed the stream
    std::size_t offset = 0;
    if (!in_body) {
      head.append(chunk, static_cast<std::size_t>(n));
      const std::size_t head_end = head.find("\r\n\r\n");
      if (head_end == std::string::npos) continue;
      in_body = true;
      parser.feed(head.data() + head_end + 4, head.size() - head_end - 4);
      offset = static_cast<std::size_t>(n);  // already consumed via head
    }
    if (offset < static_cast<std::size_t>(n))
      parser.feed(chunk + offset, static_cast<std::size_t>(n) - offset);
    SseEvent event;
    while (parser.next(&event)) {
      ++result.events;
      result.last_event = event.event;
      result.last_data = event.data;
    }
    if (std::chrono::steady_clock::now() >= deadline) break;
    if (read_delay_ms > 0 &&
        !(hurry != nullptr && hurry->load(std::memory_order_relaxed)))
      std::this_thread::sleep_for(std::chrono::milliseconds(read_delay_ms));
  }
  ::close(fd);
  return result;
}

}  // namespace presp::ops
