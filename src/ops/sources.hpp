// JSON renderers behind the ops endpoints. Pure functions from snapshot
// structs to compact JSON, so they are unit-testable without a socket
// and reusable by the pump (which embeds the same fragments in SSE
// events).
#pragma once

#include <map>
#include <string>

#include "fleet/fleet.hpp"
#include "runtime/health.hpp"
#include "trace/metrics.hpp"

namespace presp::ops {

/// /health body for a fleet: breaker + tile-health state per shard, the
/// class queue depths and tenant bucket fills.
std::string fleet_health_json(const fleet::FleetOpsSnapshot& snap);

/// /health body for a single runtime (wami_app, presp-flow): the tile
/// health map plus the registry's cumulative stats.
std::string tile_health_json(const std::map<int, runtime::TileHealth>& tiles,
                             const runtime::TileHealthStats& stats);

/// /trace/summary body from the live session (non-destructive snapshot);
/// {"active":false} when no session is armed.
std::string trace_summary_json(std::size_t top_n = 10);

/// Counter deltas between two metrics snapshots, plus current gauge
/// values: {"counters":{only changed},"gauges":{...}}. Empty object
/// string "{}" when nothing moved (the pump then skips the publish).
std::string metrics_delta_json(const trace::MetricsSnapshot& prev,
                               const trace::MetricsSnapshot& cur);

}  // namespace presp::ops
