// SSE fan-out hub: the bridge between the ops server's snapshot pump
// (one producer thread) and its subscribed clients (one consumer thread
// each, a server worker writing to a socket).
//
// Isolation contract — the whole point of this file: a slow or stuck
// client must never block the pump or starve other clients. Each client
// owns a bounded single-producer/single-consumer ring; the pump's
// publish() pushes into every ring lock-free and, when a ring is full,
// drops the event for that client and counts it (the same overflow
// semantics as trace::TraceBuffer). The only locks are the subscriber
// list (contended solely by subscribe/unsubscribe, never by slow
// consumers) and each client's wakeup mutex, which the producer never
// acquires — it uses a bare notify after the lock-free push.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace presp::ops {

struct SseEvent {
  std::string event;  // SSE "event:" field ("metrics", "breaker", "lint")
  std::string data;   // single-line payload (JSON)
  std::uint64_t id = 0;
};

/// Bounded SPSC ring of SseEvents. push() is the producer side (the
/// pump), pop() the consumer side (the client's server worker); neither
/// blocks. Indices are monotonically increasing; slot = index % capacity.
class SseRing {
 public:
  explicit SseRing(std::size_t capacity);

  /// False (and counts a drop) when the ring is full.
  bool push(SseEvent event);
  /// False when the ring is empty.
  bool pop(SseEvent* out);

  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return slots_.size(); }

 private:
  std::vector<SseEvent> slots_;
  /// Producer-written publish cursor; consumer acquires it.
  std::atomic<std::uint64_t> head_{0};
  /// Consumer-written consume cursor; producer acquires it (full check).
  std::atomic<std::uint64_t> tail_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// One subscriber: its ring plus the wakeup channel its consumer sleeps
/// on. The producer only ever touches `ring` and `cv.notify_one()`.
struct SseClient {
  explicit SseClient(std::size_t capacity) : ring(capacity) {}

  SseRing ring;
  std::mutex wake_mutex;
  std::condition_variable wake_cv;
  /// Cleared by the hub on close_all() so blocked consumers exit.
  std::atomic<bool> open{true};

  /// Blocks the consumer until an event arrives, the client is closed,
  /// or `timeout_ms` passes. Returns true when an event was popped.
  bool wait_pop(SseEvent* out, int timeout_ms);
};

class SseHub {
 public:
  explicit SseHub(std::size_t ring_capacity) : capacity_(ring_capacity) {}

  std::shared_ptr<SseClient> subscribe();
  void unsubscribe(const std::shared_ptr<SseClient>& client);
  /// Pushes one event to every subscriber (drop-and-count per full
  /// ring) and wakes their consumers. Producer-side only.
  void publish(std::string event, std::string data);
  /// Marks every client closed and wakes its consumer (shutdown path).
  void close_all();

  int clients() const;
  std::uint64_t published() const {
    return published_.load(std::memory_order_relaxed);
  }
  /// Events dropped across all subscribers, including already-departed
  /// ones (their tallies are folded in at unsubscribe).
  std::uint64_t dropped() const;

 private:
  std::size_t capacity_;
  mutable std::mutex clients_mutex_;
  std::vector<std::shared_ptr<SseClient>> clients_;
  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> departed_dropped_{0};
  std::atomic<std::uint64_t> next_id_{1};
};

/// Renders one event in SSE wire framing:
///   id: <id>\nevent: <event>\ndata: <data>\n\n
std::string sse_frame(const SseEvent& event);

/// Incremental parser for an SSE byte stream (test/bench client side).
/// Feed raw socket bytes; complete events come back in arrival order.
class SseParser {
 public:
  void feed(const char* data, std::size_t size);
  bool next(SseEvent* out);

 private:
  std::string buffer_;
};

}  // namespace presp::ops
