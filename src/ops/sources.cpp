#include "ops/sources.hpp"

#include <cstdio>

#include "fleet/breaker.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

namespace presp::ops {

namespace {

void append_double(std::string& out, double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v < 1e15 && v > -1e15) {
    out += std::to_string(static_cast<long long>(v));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

/// Minimal JSON string escape (quotes, backslashes, control chars) —
/// span/module names are code-chosen but may contain spaces or '->'.
void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string fleet_health_json(const fleet::FleetOpsSnapshot& snap) {
  std::string out = "{\"now\":" + std::to_string(snap.now);
  out += ",\"submitted\":" + std::to_string(snap.stats.submitted);
  out += ",\"completed\":" + std::to_string(snap.stats.completed());
  out += ",\"shed\":" + std::to_string(snap.stats.shed_total);
  out += ",\"shed_by_reason\":{";
  for (int e = 1; e < fleet::kNumFleetErrors; ++e) {
    if (e > 1) out += ',';
    out += '"';
    out += fleet::to_string(static_cast<fleet::FleetError>(e));
    out += "\":" + std::to_string(snap.stats.shed_by_reason[e]);
  }
  out += "},\"queued\":{";
  for (int c = 0; c < fleet::kNumQosClasses; ++c) {
    if (c > 0) out += ',';
    out += '"';
    out += fleet::to_string(static_cast<fleet::QosClass>(c));
    out += "\":" + std::to_string(snap.queued[c]);
  }
  out += "},\"shards\":[";
  for (std::size_t s = 0; s < snap.shards.size(); ++s) {
    const auto& shard = snap.shards[s];
    if (s > 0) out += ',';
    out += "{\"shard\":" + std::to_string(s);
    out += ",\"breaker\":\"";
    out += fleet::to_string(shard.breaker);
    out += "\",\"inflight\":" + std::to_string(shard.inflight);
    out += ",\"tiles\":{";
    bool first = true;
    for (const auto& [tile, health] : shard.tile_health) {
      if (!first) out += ',';
      first = false;
      out += '"' + std::to_string(tile) + "\":{\"health\":\"";
      out += runtime::to_string(health);
      out += '"';
      const auto it = shard.tile_breakers.find(tile);
      if (it != shard.tile_breakers.end()) {
        out += ",\"breaker\":\"";
        out += fleet::to_string(it->second);
        out += '"';
      }
      out += '}';
    }
    // Tile breakers can exist for tiles the health registry never saw
    // (forced open before any recorded fault).
    for (const auto& [tile, state] : shard.tile_breakers) {
      if (shard.tile_health.count(tile) != 0) continue;
      if (!first) out += ',';
      first = false;
      out += '"' + std::to_string(tile) + "\":{\"breaker\":\"";
      out += fleet::to_string(state);
      out += "\"}";
    }
    out += "}}";
  }
  out += "],\"tenants\":{";
  bool first = true;
  for (const auto& [tenant, tokens] : snap.tenant_tokens) {
    if (!first) out += ',';
    first = false;
    out += '"' + std::to_string(tenant) + "\":";
    append_double(out, tokens);
  }
  out += "}}";
  return out;
}

std::string tile_health_json(const std::map<int, runtime::TileHealth>& tiles,
                             const runtime::TileHealthStats& stats) {
  std::string out = "{\"tiles\":{";
  bool first = true;
  for (const auto& [tile, health] : tiles) {
    if (!first) out += ',';
    first = false;
    out += '"' + std::to_string(tile) + "\":\"";
    out += runtime::to_string(health);
    out += '"';
  }
  out += "},\"failures\":" + std::to_string(stats.failures);
  out += ",\"quarantines\":" + std::to_string(stats.quarantines);
  out += ",\"rehabilitations\":" + std::to_string(stats.rehabilitations);
  out += "}";
  return out;
}

std::string trace_summary_json(std::size_t top_n) {
  if (!trace::active()) return "{\"active\":false}";
  const trace::TraceReport report = trace::TraceSession::instance().snapshot();
  const trace::ParsedTrace parsed =
      trace::parse_chrome_trace(trace::chrome_trace_json(report));
  const trace::TraceSummary summary = trace::summarize(parsed, top_n);
  std::string out = "{\"active\":true";
  out += ",\"total_events\":" + std::to_string(summary.total_events);
  out += ",\"spans\":" + std::to_string(summary.spans);
  out += ",\"instants\":" + std::to_string(summary.instants);
  out += ",\"counters\":" + std::to_string(summary.counters);
  out += ",\"dropped\":" + std::to_string(summary.dropped);
  out += ",\"host_extent_us\":";
  append_double(out, summary.host_extent_us);
  out += ",\"sim_extent_us\":";
  append_double(out, summary.sim_extent_us);
  out += ",\"categories\":{";
  for (std::size_t i = 0; i < summary.categories.size(); ++i) {
    if (i > 0) out += ',';
    append_json_string(out, summary.categories[i].cat);
    out += ":" + std::to_string(summary.categories[i].events);
  }
  out += "},\"top_spans\":[";
  for (std::size_t i = 0; i < summary.top_spans.size(); ++i) {
    const trace::SpanStat& span = summary.top_spans[i];
    if (i > 0) out += ',';
    out += "{\"name\":";
    append_json_string(out, span.name);
    out += ",\"cat\":";
    append_json_string(out, span.cat);
    out += ",\"count\":" + std::to_string(span.count);
    out += ",\"total_us\":";
    append_double(out, span.total_us);
    out += ",\"self_us\":";
    append_double(out, span.self_us);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string metrics_delta_json(const trace::MetricsSnapshot& prev,
                               const trace::MetricsSnapshot& cur) {
  std::string counters;
  for (const auto& [name, value] : cur.counters) {
    const auto it = prev.counters.find(name);
    const std::uint64_t before = it == prev.counters.end() ? 0 : it->second;
    if (value == before) continue;
    if (!counters.empty()) counters += ',';
    counters += '"' + name + "\":" + std::to_string(value - before);
  }
  std::string gauges;
  for (const auto& [name, sample] : cur.gauges) {
    const auto it = prev.gauges.find(name);
    if (it != prev.gauges.end() && it->second.value == sample.value) continue;
    if (!gauges.empty()) gauges += ',';
    gauges += '"' + name + "\":";
    append_double(gauges, sample.value);
  }
  if (counters.empty() && gauges.empty()) return "{}";
  return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges + "}}";
}

}  // namespace presp::ops
