// The embedded ops server (DESIGN.md §16): a dependency-free HTTP/1.1
// endpoint surface over the observability subsystems that already exist
// in-process —
//
//   GET /            endpoint catalog
//   GET /metrics     MetricsRegistry JSON snapshot
//   GET /metrics/prometheus   Prometheus text exposition
//   GET /health      TileHealthRegistry / fleet breaker states
//   GET /trace/summary        live TraceSession span summary
//   GET /events      SSE stream of periodic deltas (metrics diffs,
//                    breaker transitions) and externally published
//                    events (watch-mode lint findings)
//
// Threading: one acceptor thread (poll()-timeout loop for graceful
// shutdown), one pump thread (periodic snapshot diffs -> SseHub), and an
// exec::ThreadPool of connection workers. A plain GET occupies a worker
// for one request/response; an SSE client occupies one until it
// disconnects. Connections beyond max_connections get an immediate 503.
//
// Observer contract: handlers only ever read snapshots (MetricsRegistry
// copies, FleetOpsSnapshot, TraceSession::snapshot) — they never touch
// live scheduler state, so serving traffic cannot perturb a fleet run's
// virtual-time results (the bench_fleet replay gate proves it).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "exec/thread_pool.hpp"
#include "ops/events.hpp"
#include "ops/http.hpp"
#include "ops/options.hpp"

namespace presp::ops {

class OpsServer {
 public:
  struct Stats {
    std::uint64_t requests = 0;       // HTTP requests served (incl. SSE)
    std::uint64_t rejected = 0;       // 503s at the connection cap
    std::uint64_t sse_clients = 0;    // subscriptions over the lifetime
    std::uint64_t sse_published = 0;  // events fanned out by the pump
    std::uint64_t sse_dropped = 0;    // per-client ring overflows
  };

  /// `health_source` supplies the /health body (endpoint returns
  /// {"health":null} when absent). It runs on a server worker, so it
  /// must be thread-safe (the snapshot accessors all are).
  explicit OpsServer(OpsOptions options);
  ~OpsServer();
  OpsServer(const OpsServer&) = delete;
  OpsServer& operator=(const OpsServer&) = delete;

  void set_health_source(std::function<std::string()> source) {
    health_source_ = std::move(source);
  }

  /// Binds, spawns acceptor/pump/workers. Throws presp::Error when the
  /// port cannot be bound. No-op when options.enabled is false.
  void start();
  /// Graceful shutdown: stops accepting, closes every live connection,
  /// drains the workers. Idempotent; also run by the destructor.
  void stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }
  /// Actual bound port (differs from options().port when that was 0).
  int port() const { return port_; }
  const OpsOptions& options() const { return options_; }

  /// Publishes an externally produced event ("lint" findings from the
  /// watch loop) to /events subscribers. Thread-safe; delivered by the
  /// pump within one publish interval.
  void publish(std::string event, std::string data);

  Stats stats() const;

 private:
  void accept_loop();
  void pump_loop();
  void handle_connection(int fd);
  void handle_sse(int fd);
  std::string respond(const HttpRequest& request, bool* is_sse);
  void track(int fd, bool add);

  OpsOptions options_;
  std::function<std::string()> health_source_;
  SseHub hub_;
  std::unique_ptr<exec::ThreadPool> workers_;
  std::thread acceptor_;
  std::thread pump_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<int> active_connections_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> sse_clients_{0};
  /// Live sockets, so stop() can shutdown() them under the workers.
  std::mutex fds_mutex_;
  std::set<int> open_fds_;
  /// Pump inbox for publish(): drained into the hub each pump tick (or
  /// immediately on wake), so external producers never touch the hub's
  /// fan-out path concurrently with the pump.
  std::mutex inbox_mutex_;
  std::condition_variable inbox_cv_;
  std::vector<SseEvent> inbox_;
};

}  // namespace presp::ops
