// Regression corpus for the race detector: intentionally-racy
// micro-workloads the detector MUST flag (with the right race.* rule and
// both access sites), and clean workloads it must stay silent on.
//
// Every racy workload races only at the *annotation* level — the
// underlying shared state uses std::atomic — so the corpus binaries stay
// UB-free and ASan/TSan-clean while racecheck still reports. Detection
// is schedule-independent (happens-before edges come from semantic
// events, not timing), so each workload's verdict is identical under
// every fuzzer seed; the seed sweep exercises different interleavings of
// the same verdict.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "lint/diagnostic.hpp"
#include "racecheck/detector.hpp"

namespace presp::racecheck {

struct Workload {
  std::string name;
  std::string description;
  bool racy = false;
  /// The rule id this workload must trigger (racy workloads only).
  std::string expect_rule;
  std::function<void()> fn;
};

/// The full corpus, racy workloads first, stable order.
const std::vector<Workload>& corpus();

/// Lookup by name; null when unknown.
const Workload* find_workload(const std::string& name);

struct CorpusRun {
  std::uint64_t seed = 0;
  std::vector<lint::Diagnostic> diags;
  DetectorStats stats;
};

/// Runs one workload under a fresh fuzzing Session with `seed` and
/// returns its diagnostics. Throws if another session is installed.
CorpusRun run_workload(const Workload& workload, std::uint64_t seed);

bool has_rule(const std::vector<lint::Diagnostic>& diags,
              const std::string& rule);

}  // namespace presp::racecheck
