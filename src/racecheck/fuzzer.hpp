// Seeded PCT-style schedule fuzzer.
//
// Every annotation point (racecheck/annot.hpp) doubles as a preemption
// point: the fuzzer perturbs the calling thread with seeded yields and
// short sleeps, plus periodic "change points" (after PCT — Burckhardt et
// al., ASPLOS'10) where the current thread is demoted with a longer
// sleep so a different thread wins the next race window. All decisions
// derive from one 64-bit seed through per-thread xoshiro streams, so a
// seed identifies a schedule-perturbation pattern and test sweeps can
// replay it exactly.
//
// Detection itself is schedule-independent (see detector.hpp): the
// fuzzer's job is to vary which code paths and interleavings *execute*
// (lost wakeups, destroy-while-notify windows, cancellation timing),
// not to make the detector lucky.
#pragma once

#include <atomic>
#include <cstdint>

namespace presp::racecheck {

class ScheduleFuzzer {
 public:
  struct Options {
    std::uint64_t seed = 1;
    double yield_probability = 0.20;  // std::this_thread::yield
    double sleep_probability = 0.04;  // short randomized sleep
    int max_sleep_us = 50;
    // Every Nth global event is a change point: the thread hitting it is
    // demoted with a max-length sleep. The phase offset is seeded.
    int change_period = 97;
  };

  explicit ScheduleFuzzer(const Options& opts);
  ScheduleFuzzer(const ScheduleFuzzer&) = delete;
  ScheduleFuzzer& operator=(const ScheduleFuzzer&) = delete;

  /// Perturbs the calling thread (possibly a no-op). Called outside any
  /// detector lock so sleeps never serialize the whole workload.
  void perturb();

  std::uint64_t seed() const { return opts_.seed; }
  std::uint64_t events() const {
    return events_.load(std::memory_order_relaxed);
  }

 private:
  Options opts_;
  std::uint64_t change_offset_;
  std::atomic<std::uint64_t> events_{0};
  std::atomic<std::uint32_t> streams_{0};
};

}  // namespace presp::racecheck
