#include "racecheck/corpus.hpp"

#include <atomic>
#include <filesystem>
#include <mutex>
#include <thread>

#include "exec/task_graph.hpp"
#include "exec/thread_pool.hpp"
#include "fleet/fleet.hpp"
#include "ops/events.hpp"
#include "racecheck/annot.hpp"
#include "racecheck/session.hpp"
#include "runtime/bitstream_source.hpp"
#include "util/error.hpp"

namespace presp::racecheck {

namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------ racy workloads

// Unsynchronized counter: N tasks increment one location with no lock,
// no graph edge and no publish/consume. The canonical write/write race.
void racy_counter() {
  exec::ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&counter] {
      const annot::Scope scope("corpus.racy-counter");
      PRESP_RC_WRITE(&counter, "corpus.counter");
      counter.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.wait_idle();
}

// One writer task, one reader task, nothing ordering them.
void racy_read_write() {
  exec::ThreadPool pool(2);
  std::atomic<int> value{0};
  pool.submit([&value] {
    const annot::Scope scope("corpus.writer");
    PRESP_RC_WRITE(&value, "corpus.value");
    value.store(1, std::memory_order_relaxed);
  });
  pool.submit([&value] {
    const annot::Scope scope("corpus.reader");
    PRESP_RC_READ(&value, "corpus.value");
    (void)value.load(std::memory_order_relaxed);
  });
  pool.wait_idle();
}

// The producer publishes correctly, but the consumer spins on the raw
// flag and never calls AtomicConsume: the half-annotated hand-off.
void racy_publish_no_consume() {
  exec::ThreadPool pool(2);
  std::atomic<int> flag{0};
  std::atomic<int> payload{0};
  pool.submit([&] {
    const annot::Scope scope("corpus.producer");
    PRESP_RC_WRITE(&payload, "corpus.payload");
    payload.store(42, std::memory_order_relaxed);
    annot::AtomicPublish(&flag, "corpus.flag");
    flag.store(1, std::memory_order_release);
  });
  pool.submit([&] {
    const annot::Scope scope("corpus.consumer");
    while (flag.load(std::memory_order_acquire) != 1)
      std::this_thread::yield();
    // BUG: missing annot::AtomicConsume(&flag, "corpus.flag").
    PRESP_RC_READ(&payload, "corpus.payload");
    (void)payload.load(std::memory_order_relaxed);
  });
  pool.wait_idle();
}

// Two phases, structurally ordered (wait_idle between them), each
// guarding the variable with a DIFFERENT lock. No data race today, but
// the lock discipline is inconsistent: the lockset intersection is
// empty, so one refactor away from a real race.
void racy_two_locks() {
  exec::ThreadPool pool(2);
  std::mutex lock_a;
  std::mutex lock_b;
  std::atomic<int> data{0};
  pool.submit([&] {
    const annot::LockGuard<std::mutex> guard(lock_a, "corpus.lock-a");
    PRESP_RC_WRITE(&data, "corpus.split-guarded");
    data.fetch_add(1, std::memory_order_relaxed);
  });
  pool.wait_idle();
  pool.submit([&] {
    const annot::LockGuard<std::mutex> guard(lock_b, "corpus.lock-b");
    PRESP_RC_WRITE(&data, "corpus.split-guarded");
    data.fetch_add(1, std::memory_order_relaxed);
  });
  pool.wait_idle();
}

// The PR 2 TaskGroup bug, resurrected at annotation level: the original
// wait() returned as soon as the bare counter hit zero, so the waiter
// could destroy the group while the last task was still inside
// notify — here the waiter spins on the counter (real acquire/release,
// so the binary is sound) and "destroys" without any annotated edge
// ordering it after the task's final group touch.
void racy_group_destroy_notify() {
  exec::ThreadPool pool(2);
  struct BuggyGroup {
    std::atomic<int> remaining{1};
  } group;
  pool.submit([&group] {
    const annot::Scope scope("corpus.group-task");
    PRESP_RC_WRITE(&group, "corpus.group");  // last touch before "notify"
    group.remaining.store(0, std::memory_order_release);
  });
  while (group.remaining.load(std::memory_order_acquire) != 0)
    std::this_thread::yield();
  {
    const annot::Scope scope("corpus.group-destroy");
    PRESP_RC_WRITE(&group, "corpus.group");  // the premature destroy
  }
  pool.wait_idle();
}

// Conflicting acquisition orders across two (structurally ordered, so
// never actually deadlocking) tasks: the lock-order pass must flag the
// a -> b -> a cycle even though the deadlock never fired.
void racy_lock_order() {
  exec::ThreadPool pool(2);
  std::mutex lock_a;
  std::mutex lock_b;
  pool.submit([&] {
    const annot::LockGuard<std::mutex> outer(lock_a, "corpus.order-a");
    const annot::LockGuard<std::mutex> inner(lock_b, "corpus.order-b");
  });
  pool.wait_idle();
  pool.submit([&] {
    const annot::LockGuard<std::mutex> outer(lock_b, "corpus.order-b");
    const annot::LockGuard<std::mutex> inner(lock_a, "corpus.order-a");
  });
  pool.wait_idle();
}

// ----------------------------------------------------- clean workloads

// Same counter as racy_counter, consistently guarded by one lock.
void clean_counter_locked() {
  exec::ThreadPool pool(3);
  std::mutex mutex;
  int counter = 0;
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] {
      const annot::LockGuard<std::mutex> guard(mutex,
                                               "corpus.counter-lock");
      PRESP_RC_WRITE(&counter, "corpus.locked-counter");
      ++counter;
    });
  }
  pool.wait_idle();
  PRESP_RC_READ(&counter, "corpus.locked-counter");
  PRESP_REQUIRE(counter == 8, "clean-counter-locked lost an increment");
}

// The fully-annotated publish/consume hand-off racy_publish_no_consume
// gets wrong.
void clean_publish_consume() {
  exec::ThreadPool pool(2);
  std::atomic<int> chan{0};
  int payload = 0;
  pool.submit([&] {
    const annot::Scope scope("corpus.producer");
    PRESP_RC_WRITE(&payload, "corpus.handoff");
    payload = 7;
    annot::AtomicPublish(&chan, "corpus.chan");
    chan.store(1, std::memory_order_release);
  });
  pool.submit([&] {
    const annot::Scope scope("corpus.consumer");
    while (chan.load(std::memory_order_acquire) != 1)
      std::this_thread::yield();
    annot::AtomicConsume(&chan, "corpus.chan");
    PRESP_RC_READ(&payload, "corpus.handoff");
    PRESP_REQUIRE(payload == 7, "clean-publish-consume lost the payload");
  });
  pool.wait_idle();
}

// A dependency chain through TaskGraph: graph edges are happens-before
// edges, so serial mutation along the chain is clean.
void clean_graph_chain() {
  exec::ThreadPool pool(2);
  exec::TaskGraph graph;
  int acc = 0;
  const exec::TaskId a = graph.add("a", [&acc] {
    PRESP_RC_WRITE(&acc, "corpus.chain");
    acc = 1;
  });
  const exec::TaskId b = graph.add(
      "b",
      [&acc] {
        PRESP_RC_WRITE(&acc, "corpus.chain");
        acc += 2;
      },
      {a});
  graph.add(
      "c",
      [&acc] {
        PRESP_RC_READ(&acc, "corpus.chain");
        PRESP_REQUIRE(acc == 3, "clean-graph-chain saw a stale value");
      },
      {b});
  graph.run(&pool);
}

// Deterministically-chunked parallel_for with per-chunk partials: each
// chunk owns its slot, the group join orders the final reduction.
void clean_parallel_for() {
  exec::ThreadPool pool(3);
  std::vector<long long> partial(8, 0);
  exec::parallel_for(&pool, 0, 64, 8,
                     [&partial](long long lo, long long hi) {
                       long long* slot = &partial[lo / 8];
                       PRESP_RC_WRITE(slot, "corpus.partial");
                       for (long long i = lo; i < hi; ++i) *slot += i;
                     });
  long long total = 0;
  for (long long& slot : partial) {
    PRESP_RC_READ(&slot, "corpus.partial");
    total += slot;
  }
  PRESP_REQUIRE(total == 64 * 63 / 2, "clean-parallel-for wrong sum");
}

// The async bitstream store path: store + pool-backed fetch with the
// library's own Scope/publish annotations, consumed by the waiter.
void clean_store_read() {
  const fs::path dir =
      fs::temp_directory_path() / "presp-racecheck-store";
  fs::create_directories(dir);
  exec::ThreadPool pool(2);
  runtime::FileBitstreamSource source(dir.string(), &pool);
  source.store(0, "corpus_mod", std::vector<std::uint8_t>(256, 0xAB));
  auto future = source.fetch(0, "corpus_mod");
  const std::vector<std::uint8_t> data = future.get();
  annot::AtomicConsume(&source, "store.read");
  PRESP_REQUIRE(data.size() == 256 && data[0] == 0xAB,
                "clean-store-read bad payload");
  pool.wait_idle();
  fs::remove_all(dir);
}

// A few fleet quanta on the (single-threaded-by-contract) manager: all
// annotated fleet.state accesses land on one logical thread.
void clean_fleet_quantum() {
  static const char* kSoc = R"(
[soc]
name = racecheck_fleet
device = vc707
rows = 2
cols = 3

[tiles]
r0c0 = cpu
r0c1 = mem
r0c2 = aux
r1c0 = reconf:acc_a
r1c1 = empty
r1c2 = empty
)";
  soc::AcceleratorRegistry registry;
  soc::AcceleratorSpec spec;
  spec.name = "acc_a";
  spec.luts = 12'000;
  spec.latency.items_per_beat = 1;
  spec.latency.ii = 2;
  spec.latency.startup_cycles = 30;
  spec.latency.words_in_per_item = 1.0;
  spec.latency.words_out_per_item = 0.5;
  registry.add(spec);

  fleet::FleetTopology topo;
  topo.shards = 1;
  topo.quantum_cycles = 4'000;
  topo.classes[0] = {8.0, 4.0, 8.0, 16, 600};
  topo.classes[1] = {4.0, 4.0, 16.0, 32, 2'000};
  topo.classes[2] = {1.0, 4.0, 32.0, 64, 8'000};

  fleet::FleetManager manager(topo, netlist::SocConfig::parse(kSoc),
                              registry);
  manager.add_module("acc_a", 140'000);
  fleet::FleetRequest request;
  request.id = 1;
  request.module = "acc_a";
  request.items = 64;
  manager.submit(std::move(request));
  // Drain to idle: an in-flight reconfiguration owns live coroutine
  // frames inside the runtime manager, so stopping mid-run would leak
  // them (and LeakSanitizer rightly objects).
  for (int i = 0; i < 200 && !manager.idle(); ++i) manager.run_quanta(1);
  PRESP_REQUIRE(manager.idle(), "fleet workload did not drain");
}

// The ops plane's SPSC event ring: pump-side pushes carry their own
// publish annotation, consumer-side pops the matching consume, so the
// non-atomic payload strings hand over cleanly. The consumer treats
// producer-side drops as delivered (the ring's overflow contract).
void clean_ops_sse_ring() {
  exec::ThreadPool pool(2);
  ops::SseRing ring(4);
  constexpr int kEvents = 64;
  pool.submit([&ring] {
    const annot::Scope scope("corpus.sse-pump");
    for (int i = 0; i < kEvents; ++i) {
      ops::SseEvent event;
      event.id = static_cast<std::uint64_t>(i + 1);
      event.event = "metrics";
      event.data = std::to_string(i);
      ring.push(std::move(event));  // full ring drops-and-counts
    }
  });
  pool.submit([&ring] {
    const annot::Scope scope("corpus.sse-consumer");
    ops::SseEvent out;
    std::uint64_t received = 0;
    while (received + ring.dropped() <
           static_cast<std::uint64_t>(kEvents)) {
      if (ring.pop(&out))
        ++received;
      else
        std::this_thread::yield();
    }
    PRESP_REQUIRE(received > 0, "sse consumer received nothing");
  });
  pool.wait_idle();
  PRESP_REQUIRE(ring.dropped() < static_cast<std::uint64_t>(kEvents),
                "sse ring dropped every event");
}

}  // namespace

const std::vector<Workload>& corpus() {
  static const std::vector<Workload> kCorpus = {
      {"racy-counter", "unsynchronized multi-task counter increments",
       true, "race.data-race", racy_counter},
      {"racy-read-write", "unordered writer and reader tasks", true,
       "race.data-race", racy_read_write},
      {"racy-publish-no-consume",
       "publish without the matching consume on the hand-off", true,
       "race.data-race", racy_publish_no_consume},
      {"racy-two-locks",
       "same variable guarded by two different locks in two phases",
       true, "race.lockset", racy_two_locks},
      {"racy-group-destroy-notify",
       "PR 2 TaskGroup destroy-while-notify bug at annotation level",
       true, "race.data-race", racy_group_destroy_notify},
      {"racy-lock-order",
       "conflicting lock acquisition orders that never deadlocked", true,
       "race.lock-order", racy_lock_order},
      {"clean-counter-locked", "counter consistently guarded by one lock",
       false, "", clean_counter_locked},
      {"clean-publish-consume", "fully annotated publish/consume hand-off",
       false, "", clean_publish_consume},
      {"clean-graph-chain", "TaskGraph dependency chain mutation", false,
       "", clean_graph_chain},
      {"clean-parallel-for", "chunked parallel_for with per-chunk slots",
       false, "", clean_parallel_for},
      {"clean-store-read", "async bitstream store fetch through the pool",
       false, "", clean_store_read},
      {"clean-fleet-quantum", "single-threaded fleet quanta", false, "",
       clean_fleet_quantum},
      {"clean-ops-sse-ring",
       "ops SSE ring publish/consume with slot reuse and drops", false,
       "", clean_ops_sse_ring},
  };
  return kCorpus;
}

const Workload* find_workload(const std::string& name) {
  for (const Workload& workload : corpus())
    if (workload.name == name) return &workload;
  return nullptr;
}

CorpusRun run_workload(const Workload& workload, std::uint64_t seed) {
  Session::Options options;
  options.fuzz = true;
  options.seed = seed;
  Session session(options);
  PRESP_REQUIRE(session.install(),
                "racecheck: another session is already installed");
  workload.fn();
  CorpusRun run;
  run.seed = seed;
  run.diags = session.finish();
  run.stats = session.stats();
  return run;
}

bool has_rule(const std::vector<lint::Diagnostic>& diags,
              const std::string& rule) {
  for (const lint::Diagnostic& diag : diags)
    if (diag.rule == rule) return true;
  return false;
}

}  // namespace presp::racecheck
