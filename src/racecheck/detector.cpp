#include "racecheck/detector.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <thread>

#include "lint/cycle.hpp"

namespace presp::racecheck {

namespace {

std::uint64_t current_thread_key() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

std::string join_scopes(const std::vector<const char*>& scopes) {
  std::string out;
  for (const char* s : scopes) {
    if (s == nullptr) continue;
    if (!out.empty()) out += " > ";
    out += s;
  }
  return out;
}

std::string ptr_name(const char* name, const void* ptr,
                     const char* prefix) {
  if (name != nullptr && name[0] != '\0') return name;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "@%p", ptr);
  return std::string(prefix) + buf;
}

}  // namespace

std::string AccessSite::to_string() const {
  std::string out = file != nullptr ? std::string(file) : "<annot>";
  out += ":" + std::to_string(line);
  out += " by logical thread " + std::to_string(slot);
  if (!scopes.empty()) out += " [" + scopes + "]";
  return out;
}

// -------------------------------------------------------- thread/frame

Detector::ThreadState& Detector::self_locked() {
  ThreadState& state = threads_[current_thread_key()];
  if (state.frames.empty()) {
    Frame frame;
    frame.slot = alloc_slot_locked();
    frame.uid = ++next_uid_;
    frame.vc.set(frame.slot, 1);
    state.frames.push_back(std::move(frame));
  }
  return state;
}

Detector::Frame& Detector::frame_locked() {
  return self_locked().current();
}

int Detector::alloc_slot_locked() {
  // Fresh slots first: the retired-clock floor in task_begin creates an
  // artificial happens-before edge between the two occupants of a reused
  // slot (it must, to keep their epoch ranges disjoint), so reusing a
  // slot forfeits detection between those occupants. Under the budget
  // every logical thread gets its own slot and detection is exact.
  if (static_cast<std::size_t>(next_slot_) < max_slots_) {
    const int slot = next_slot_++;
    stats_.slots = next_slot_;
    return slot;
  }
  // Budget exhausted: recycle retired slots rather than growing without
  // bound (the documented completeness trade-off, in play only after
  // max_slots logical threads).
  if (!free_slots_.empty()) {
    const int slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  return next_slot_++ % static_cast<int>(max_slots_);
}

void Detector::retire_slot_locked(int slot, std::uint64_t clock) {
  const auto i = static_cast<std::size_t>(slot);
  if (i >= retired_clock_.size()) retired_clock_.resize(i + 1, 0);
  retired_clock_[i] = std::max(retired_clock_[i], clock);
  free_slots_.push_back(slot);
}

int Detector::thread_slot() {
  std::lock_guard<std::mutex> lock(mutex_);
  return frame_locked().slot;
}

void Detector::task_create(const void* task) {
  std::lock_guard<std::mutex> lock(mutex_);
  Frame& frame = frame_locked();
  TaskRecord& record = tasks_[task];
  record.spawn = frame.vc;
  record.has_spawn = true;
  // Tick so the creator's post-spawn accesses are not covered by the
  // snapshot (spawn is a one-way edge).
  frame.vc.tick(frame.slot);
}

void Detector::task_begin(const void* task, const char* label) {
  std::lock_guard<std::mutex> lock(mutex_);
  ThreadState& state = self_locked();
  Frame frame;
  frame.slot = alloc_slot_locked();
  frame.uid = ++next_uid_;
  const auto it = tasks_.find(task);
  if (it != tasks_.end() && it->second.has_spawn)
    frame.vc = it->second.spawn;
  const auto i = static_cast<std::size_t>(frame.slot);
  const std::uint64_t floor =
      i < retired_clock_.size() ? retired_clock_[i] : 0;
  frame.vc.set(frame.slot,
               std::max(frame.vc.get(frame.slot), floor) + 1);
  if (label != nullptr) frame.scopes.push_back(label);
  state.frames.push_back(std::move(frame));
  ++stats_.tasks;
}

void Detector::task_end(const void* task) {
  std::lock_guard<std::mutex> lock(mutex_);
  ThreadState& state = self_locked();
  if (state.frames.size() <= 1) return;  // unmatched (mid-flight install)
  Frame& frame = state.current();
  retire_slot_locked(frame.slot, frame.vc.get(frame.slot));
  state.frames.pop_back();
  tasks_.erase(task);
}

void Detector::scope_push(const char* label) {
  std::lock_guard<std::mutex> lock(mutex_);
  frame_locked().scopes.push_back(label);
}

void Detector::scope_pop() {
  std::lock_guard<std::mutex> lock(mutex_);
  Frame& frame = frame_locked();
  if (!frame.scopes.empty()) frame.scopes.pop_back();
}

// ------------------------------------------------------- sync events

std::string Detector::lock_name_locked(const void* lock) {
  const auto it = locks_.find(lock);
  return it != locks_.end() ? it->second.name : "lock?";
}

void Detector::add_order_edge_locked(const std::string& from,
                                     const std::string& to) {
  auto& outs = order_edges_[from];
  if (std::find(outs.begin(), outs.end(), to) == outs.end())
    outs.push_back(to);
  order_edges_.try_emplace(to);  // ensure the node exists
}

void Detector::acquire_lock(const void* lock, const char* name,
                            const char* /*file*/, int /*line*/) {
  std::lock_guard<std::mutex> guard(mutex_);
  ++stats_.sync_ops;
  Frame& frame = frame_locked();
  LockState& state = locks_[lock];
  if (state.name.empty()) state.name = ptr_name(name, lock, "lock");
  for (const void* held : frame.held)
    add_order_edge_locked(lock_name_locked(held), state.name);
  order_edges_.try_emplace(state.name);
  frame.vc.join(state.vc);
  frame.held.push_back(lock);
}

void Detector::release_lock(const void* lock) {
  std::lock_guard<std::mutex> guard(mutex_);
  ++stats_.sync_ops;
  Frame& frame = frame_locked();
  const auto it =
      std::find(frame.held.rbegin(), frame.held.rend(), lock);
  if (it == frame.held.rend()) return;  // unpaired release: ignore
  frame.held.erase(std::next(it).base());
  LockState& state = locks_[lock];
  state.vc = frame.vc;
  frame.vc.tick(frame.slot);
}

void Detector::atomic_publish(const void* obj, const char* name) {
  std::lock_guard<std::mutex> guard(mutex_);
  ++stats_.sync_ops;
  Frame& frame = frame_locked();
  SyncState& state = syncs_[obj];
  if (state.name.empty()) state.name = ptr_name(name, obj, "sync");
  state.vc.join(frame.vc);
  frame.vc.tick(frame.slot);
}

void Detector::atomic_consume(const void* obj, const char* name) {
  std::lock_guard<std::mutex> guard(mutex_);
  ++stats_.sync_ops;
  Frame& frame = frame_locked();
  SyncState& state = syncs_[obj];
  if (state.name.empty()) state.name = ptr_name(name, obj, "sync");
  frame.vc.join(state.vc);
}

void Detector::declare_nesting(const char* outer, const char* inner) {
  std::lock_guard<std::mutex> guard(mutex_);
  add_order_edge_locked(outer != nullptr ? outer : "outer?",
                        inner != nullptr ? inner : "inner?");
}

// ----------------------------------------------------------- accesses

AccessSite Detector::site_here_locked(const char* file, int line) {
  Frame& frame = frame_locked();
  AccessSite site;
  site.file = file;
  site.line = line;
  site.slot = frame.slot;
  site.scopes = join_scopes(frame.scopes);
  return site;
}

void Detector::report_race_locked(const VarState& var, const char* kind,
                                  const AccessSite& prev,
                                  const AccessSite& here) {
  ++stats_.data_races;
  lint::Diagnostic diag;
  diag.rule = "race.data-race";
  diag.severity = lint::Severity::kError;
  diag.loc = {here.file != nullptr ? here.file : "<annot>", here.line,
              "race." + var.name};
  diag.message = std::string("annotated ") + kind + " race on '" +
                 var.name + "': access at " + here.to_string() +
                 " is unordered with access at " + prev.to_string();
  diag.fix_hint =
      "order the two accesses: guard both with one lock, add a "
      "TaskGraph dependency, or pair an AtomicPublish with an "
      "AtomicConsume on the hand-off";
  diags_.push_back(std::move(diag));
}

void Detector::update_lockset_locked(VarState& var, const Frame& frame) {
  if (!frame.held.empty()) var.ever_locked = true;
  if (!var.lockset_init) {
    var.lockset = frame.held;
    std::sort(var.lockset.begin(), var.lockset.end());
    var.lockset_init = true;
    return;
  }
  std::vector<const void*> held = frame.held;
  std::sort(held.begin(), held.end());
  std::vector<const void*> out;
  std::set_intersection(var.lockset.begin(), var.lockset.end(),
                        held.begin(), held.end(),
                        std::back_inserter(out));
  var.lockset = std::move(out);
}

void Detector::check_write_locked(VarState& var, Frame& frame,
                                  const AccessSite& here) {
  if (!var.raced) {
    if (var.write.valid() && var.write.slot != frame.slot &&
        !frame.vc.covers(var.write)) {
      report_race_locked(var, "write/write", var.write_site, here);
      var.raced = true;
    } else if (var.read_shared && !frame.vc.covers(var.read_vc)) {
      report_race_locked(var, "read/write", var.read_site, here);
      var.raced = true;
    } else if (var.read.valid() && var.read.slot != frame.slot &&
               !frame.vc.covers(var.read)) {
      report_race_locked(var, "read/write", var.read_site, here);
      var.raced = true;
    }
  }
  var.write = {frame.slot, frame.vc.get(frame.slot)};
  var.write_site = here;
  // This write dominates every previously-checked read.
  var.read = {};
  var.read_vc.clear();
  var.read_shared = false;
}

void Detector::check_read_locked(VarState& var, Frame& frame,
                                 const AccessSite& here) {
  if (!var.raced && var.write.valid() && var.write.slot != frame.slot &&
      !frame.vc.covers(var.write)) {
    report_race_locked(var, "write/read", var.write_site, here);
    var.raced = true;
  }
  const Epoch now{frame.slot, frame.vc.get(frame.slot)};
  if (var.read_shared) {
    var.read_vc.set(frame.slot, now.clock);
  } else if (!var.read.valid() || var.read.slot == frame.slot ||
             frame.vc.covers(var.read)) {
    var.read = now;
  } else {
    // Concurrent readers: inflate to the vector form (FastTrack).
    var.read_vc.clear();
    var.read_vc.set(var.read.slot, var.read.clock);
    var.read_vc.set(now.slot, now.clock);
    var.read_shared = true;
    var.read = {};
  }
  var.read_site = here;
}

void Detector::write(const void* addr, const char* name, const char* file,
                     int line) {
  std::lock_guard<std::mutex> guard(mutex_);
  ++stats_.accesses;
  Frame& frame = frame_locked();
  VarState& var = vars_[addr];
  if (var.name.empty()) var.name = ptr_name(name, addr, "var");
  if (var.first_uid == 0)
    var.first_uid = frame.uid;
  else if (var.first_uid != frame.uid)
    var.multi_thread = true;
  var.any_write = true;
  update_lockset_locked(var, frame);
  check_write_locked(var, frame, site_here_locked(file, line));
}

void Detector::read(const void* addr, const char* name, const char* file,
                    int line) {
  std::lock_guard<std::mutex> guard(mutex_);
  ++stats_.accesses;
  Frame& frame = frame_locked();
  VarState& var = vars_[addr];
  if (var.name.empty()) var.name = ptr_name(name, addr, "var");
  if (var.first_uid == 0)
    var.first_uid = frame.uid;
  else if (var.first_uid != frame.uid)
    var.multi_thread = true;
  // No lockset update: lock discipline is tracked across writes only
  // (see VarState::lockset).
  check_read_locked(var, frame, site_here_locked(file, line));
}

// ----------------------------------------------------------- finalize

std::vector<lint::Diagnostic> Detector::finish() {
  std::lock_guard<std::mutex> guard(mutex_);
  if (!finalized_) {
    finalized_ = true;
    // Eraser-style lockset fallback: flag variables whose accesses were
    // happens-before ordered (no data race) but where the lock
    // discipline is inconsistent — locks were held on some accesses yet
    // no single lock covers all of them. Purely structure-ordered
    // variables (never_locked) are the task-parallel idiom and stay
    // clean.
    for (const auto& [addr, var] : vars_) {
      (void)addr;
      if (var.raced || !var.any_write || !var.multi_thread) continue;
      if (!var.ever_locked || !var.lockset.empty()) continue;
      ++stats_.lockset_reports;
      const AccessSite& site =
          var.write_site.valid() ? var.write_site : var.read_site;
      lint::Diagnostic diag;
      diag.rule = "race.lockset";
      diag.severity = lint::Severity::kWarning;
      diag.loc = {site.file != nullptr ? site.file : "<annot>",
                  site.line, "race." + var.name};
      diag.message =
          "inconsistent locking on '" + var.name +
          "': multiple logical threads access it, locks are held on "
          "some accesses, but no single lock guards all of them "
          "(current ordering comes from task structure only; last "
          "write at " +
          site.to_string() + ")";
      diag.fix_hint =
          "guard every access to '" + var.name +
          "' with the same lock, or drop the partial locking and "
          "order the accesses structurally";
      diags_.push_back(std::move(diag));
    }
    // Lock-order pass over the merged dynamic + declared acquisition
    // graph (cycle search shared with the PR 3 lint rules).
    std::vector<std::string> names;
    names.reserve(order_edges_.size());
    for (const auto& [name, outs] : order_edges_) {
      (void)outs;
      names.push_back(name);
    }
    std::map<std::string, int> index;
    for (std::size_t i = 0; i < names.size(); ++i)
      index[names[i]] = static_cast<int>(i);
    std::vector<std::vector<int>> adjacency(names.size());
    for (const auto& [name, outs] : order_edges_)
      for (const std::string& to : outs)
        adjacency[static_cast<std::size_t>(index[name])].push_back(
            index[to]);
    const std::vector<int> cycle = lint::find_cycle(adjacency);
    if (!cycle.empty()) {
      ++stats_.lock_order_reports;
      std::string path;
      for (const int node : cycle) {
        if (!path.empty()) path += " -> ";
        path += names[static_cast<std::size_t>(node)];
      }
      lint::Diagnostic diag;
      diag.rule = "race.lock-order";
      diag.severity = lint::Severity::kWarning;
      diag.loc = {"<annot>", 0, "race.lock-order"};
      diag.message =
          "locks are acquired in conflicting orders across logical "
          "threads: potential deadlock cycle " +
          path + " (observed from held-set edges and declared nesting; "
          "the deadlock need not have fired)";
      diag.fix_hint =
          "acquire these locks in one global order in every thread, or "
          "split the critical sections so they never nest";
      diags_.push_back(std::move(diag));
    }
  }
  return diags_;
}

DetectorStats Detector::stats() const {
  std::lock_guard<std::mutex> guard(mutex_);
  DetectorStats out = stats_;
  out.events = events_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace presp::racecheck
