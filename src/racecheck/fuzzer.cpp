#include "racecheck/fuzzer.hpp"

#include <chrono>
#include <thread>

#include "util/rng.hpp"

namespace presp::racecheck {

namespace {

// Per-thread RNG stream, rebound when a different fuzzer (new seed)
// shows up. Stream indices are handed out in first-use order, so the
// exact schedule depends on OS scheduling — but every *decision* a
// stream makes is a pure function of (seed, stream index), which is
// what seed replay needs.
struct ThreadStream {
  const ScheduleFuzzer* owner = nullptr;
  Rng rng{1};
};

thread_local ThreadStream t_stream;

}  // namespace

ScheduleFuzzer::ScheduleFuzzer(const Options& opts) : opts_(opts) {
  Rng rng(opts_.seed);
  change_offset_ =
      opts_.change_period > 0
          ? rng.next_below(static_cast<std::uint64_t>(opts_.change_period))
          : 0;
}

void ScheduleFuzzer::perturb() {
  if (t_stream.owner != this) {
    t_stream.owner = this;
    const std::uint32_t index =
        streams_.fetch_add(1, std::memory_order_relaxed);
    t_stream.rng.reseed(opts_.seed ^
                        (0x9e3779b97f4a7c15ULL * (index + 1)));
  }
  const std::uint64_t event =
      events_.fetch_add(1, std::memory_order_relaxed);
  if (opts_.change_period > 0 &&
      event % static_cast<std::uint64_t>(opts_.change_period) ==
          change_offset_) {
    // Change point: demote the current thread for a full window.
    std::this_thread::sleep_for(
        std::chrono::microseconds(opts_.max_sleep_us));
    return;
  }
  const double u = t_stream.rng.next_double();
  if (u < opts_.sleep_probability) {
    std::this_thread::sleep_for(std::chrono::microseconds(
        1 + t_stream.rng.next_below(
                static_cast<std::uint64_t>(opts_.max_sleep_us))));
  } else if (u < opts_.sleep_probability + opts_.yield_probability) {
    std::this_thread::yield();
  }
}

}  // namespace presp::racecheck
