// racecheck::Session — one race-detection run.
//
// A Session owns a Detector (and optionally a ScheduleFuzzer) and, while
// installed, receives every presp::annot call process-wide through the
// hook functions defined in session.cpp. Typical shape:
//
//   racecheck::Session session({.fuzz = true, .seed = 42});
//   session.install();
//   { exec::ThreadPool pool(...); /* run the workload */ }
//   session.uninstall();
//   for (const auto& diag : session.finish()) ...
//
// Lifetime contract: install() before starting the threads you want
// instrumented, uninstall() only after they are quiescent (joined, or
// provably outside annotated code). Hooks dereference the installed
// session without further synchronization — the exec layer honours this
// by reading annotations only between pool construction and join.
// Install/uninstall themselves are idempotent and check-fail-free, and
// only one session can be installed at a time (install() returns false
// if another session holds the slot).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "lint/diagnostic.hpp"
#include "racecheck/annot.hpp"
#include "racecheck/detector.hpp"
#include "racecheck/fuzzer.hpp"

namespace presp::racecheck {

class Session {
 public:
  struct Options {
    bool fuzz = false;           // enable the schedule fuzzer
    std::uint64_t seed = 1;      // fuzzer seed (ignored unless fuzz)
    ScheduleFuzzer::Options fuzzer;  // tuning; .seed is overridden
    std::size_t max_slots = 4096;
  };

  Session();
  explicit Session(Options opts);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Makes this the process-wide session annotations report to. Returns
  /// false (and does nothing) if a different session is installed.
  bool install();
  /// Stops receiving annotations. Safe to call when not installed.
  void uninstall();
  bool installed() const;

  Detector& detector() { return detector_; }
  ScheduleFuzzer* fuzzer() { return fuzzer_.get(); }
  std::uint64_t seed() const { return opts_.seed; }

  /// finish() = uninstall + finalize passes + all diagnostics.
  std::vector<lint::Diagnostic> finish();
  DetectorStats stats() const { return detector_.stats(); }

  /// The currently-installed session (null when racecheck is off).
  static Session* current() {
    return detail::g_session.load(std::memory_order_acquire);
  }

 private:
  Options opts_;
  Detector detector_;
  std::unique_ptr<ScheduleFuzzer> fuzzer_;
};

}  // namespace presp::racecheck
