// FastTrack-style happens-before race detector with an Eraser-style
// lockset fallback and a lock-order (deadlock-potential) pass.
//
// The detector consumes the annotation stream (racecheck/annot.hpp):
// task spawn/begin/end from the exec layer, lock acquire/release,
// atomic publish/consume, and explicit read/write access annotations.
// Each logical thread — an OS thread, or a task while it executes — owns
// a dense slot and a vector clock; accesses are checked with FastTrack
// epochs (write epoch + adaptive read epoch/vector per variable), so the
// common already-ordered path compares one integer.
//
// Three analyses report through lint::Diagnostic:
//   race.data-race   two accesses to one annotated variable, at least
//                    one a write, unordered by happens-before (error)
//   race.lockset     accesses are HB-ordered today, but the lockset
//                    intersection is empty even though locks were in
//                    play — inconsistent lock discipline that only task
//                    structure is protecting (warning, finalize-time)
//   race.lock-order  the observed + declared lock acquisition graph has
//                    a cycle: a deadlock that never fired (warning,
//                    finalize-time; cycle search shared with the PR 3
//                    lint rules via lint/cycle.hpp)
//
// Soundness notes: only *annotated* accesses are checked, and
// happens-before edges come only from *semantic* events (spawn, join,
// lock, publish/consume) — never from observed timing — so a race
// between two annotated, unsynchronized accesses is reported on every
// run regardless of the actual interleaving; the seeded schedule fuzzer
// exists to vary which code paths execute, not to make detection lucky.
// Every logical thread gets a fresh slot until max_slots have been
// handed out; past that, retired slots are recycled, which trades away
// detection between the two occupants of a reused slot (4096 logical
// threads, far above any corpus workload).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "lint/diagnostic.hpp"
#include "racecheck/vector_clock.hpp"

namespace presp::racecheck {

/// One annotated access, kept per variable for the race report's "both
/// sites" requirement.
struct AccessSite {
  const char* file = nullptr;
  int line = 0;
  int slot = -1;
  std::string scopes;  // annotation-stack at access time, "a > b > c"

  bool valid() const { return slot >= 0; }
  std::string to_string() const;
};

struct DetectorStats {
  std::uint64_t events = 0;        // annotation calls processed
  std::uint64_t accesses = 0;      // read/write annotations
  std::uint64_t sync_ops = 0;      // lock + publish/consume operations
  std::uint64_t tasks = 0;         // task frames begun
  std::uint64_t data_races = 0;    // race.data-race diagnostics
  std::uint64_t lockset_reports = 0;
  std::uint64_t lock_order_reports = 0;
  int slots = 0;                   // logical threads ever registered
};

class Detector {
 public:
  explicit Detector(std::size_t max_slots = 4096)
      : max_slots_(max_slots) {}
  Detector(const Detector&) = delete;
  Detector& operator=(const Detector&) = delete;

  // ---- logical-thread lifecycle (all thread-safe) ----
  /// Registers (or re-resolves) the calling OS thread; returns its slot.
  int thread_slot();
  void task_create(const void* task);
  void task_begin(const void* task, const char* label);
  void task_end(const void* task);
  void scope_push(const char* label);
  void scope_pop();

  // ---- synchronization events ----
  void acquire_lock(const void* lock, const char* name, const char* file,
                    int line);
  void release_lock(const void* lock);
  void atomic_publish(const void* obj, const char* name);
  void atomic_consume(const void* obj, const char* name);
  void declare_nesting(const char* outer, const char* inner);

  // ---- accesses ----
  void read(const void* addr, const char* name, const char* file,
            int line);
  void write(const void* addr, const char* name, const char* file,
             int line);

  void count_event() { events_.fetch_add(1, std::memory_order_relaxed); }

  /// Runs the finalize-time passes (lockset fallback, lock-order cycle
  /// search) and returns every diagnostic collected. Idempotent per
  /// pass: calling twice does not duplicate finalize findings.
  std::vector<lint::Diagnostic> finish();

  DetectorStats stats() const;

 private:
  struct Frame {
    int slot = -1;
    /// Never-recycled logical-thread identity (slots are recycled, so
    /// two tasks can share a slot; multi-thread tracking must not).
    std::uint64_t uid = 0;
    VectorClock vc;
    std::vector<const void*> held;  // locks, acquisition order
    std::vector<const char*> scopes;
  };
  struct ThreadState {
    std::vector<Frame> frames;  // frames.back() = current logical thread
    Frame& current() { return frames.back(); }
  };
  struct VarState {
    std::string name;
    Epoch write;
    AccessSite write_site;
    Epoch read;           // valid when reads are totally ordered so far
    VectorClock read_vc;  // inflated form once reads go concurrent
    bool read_shared = false;
    AccessSite read_site;  // most recent read
    // Eraser lockset: intersection of locks held across all WRITE
    // accesses. Reads are exempt — an unlocked read after a join (the
    // post-wait_idle reduction pattern) is ordinary task-parallel code,
    // and a genuinely unordered read is the data-race pass's job.
    std::vector<const void*> lockset;
    bool lockset_init = false;
    bool ever_locked = false;   // some write held at least one lock
    bool any_write = false;
    std::uint64_t first_uid = 0;  // first accessing frame (0 = none yet)
    bool multi_thread = false;    // accessed by >1 logical thread
    bool raced = false;  // a data race was already reported on this var
  };
  struct LockState {
    VectorClock vc;
    std::string name;
  };
  struct SyncState {
    VectorClock vc;
    std::string name;
  };
  struct TaskRecord {
    VectorClock spawn;  // creator's clock at submit time
    bool has_spawn = false;
  };

  ThreadState& self_locked();          // requires mutex_ held
  Frame& frame_locked();               // requires mutex_ held
  int alloc_slot_locked();
  void retire_slot_locked(int slot, std::uint64_t clock);
  AccessSite site_here_locked(const char* file, int line);
  std::string lock_name_locked(const void* lock);
  void add_order_edge_locked(const std::string& from,
                             const std::string& to);
  void report_race_locked(const VarState& var, const char* kind,
                          const AccessSite& prev,
                          const AccessSite& here);
  void check_write_locked(VarState& var, Frame& frame,
                          const AccessSite& here);
  void check_read_locked(VarState& var, Frame& frame,
                         const AccessSite& here);
  void update_lockset_locked(VarState& var, const Frame& frame);

  mutable std::mutex mutex_;
  std::size_t max_slots_;
  int next_slot_ = 0;
  std::uint64_t next_uid_ = 0;
  std::vector<int> free_slots_;             // retired task slots
  std::vector<std::uint64_t> retired_clock_;  // last clock per slot
  std::map<std::uint64_t, ThreadState> threads_;  // by OS thread hash
  std::map<const void*, TaskRecord> tasks_;
  std::map<const void*, VarState> vars_;
  std::map<const void*, LockState> locks_;
  std::map<const void*, SyncState> syncs_;
  // Lock-order graph over lock *names* (dynamic held-set edges from real
  // threads + declared nesting edges from coroutine domains).
  std::map<std::string, std::vector<std::string>> order_edges_;
  std::vector<lint::Diagnostic> diags_;
  bool finalized_ = false;

  std::atomic<std::uint64_t> events_{0};
  DetectorStats stats_{};
};

}  // namespace presp::racecheck
