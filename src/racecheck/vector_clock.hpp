// Vector clocks and FastTrack epochs for the dynamic race detector.
//
// A VectorClock maps logical-thread slots (workers, in-flight tasks, sim
// processes) to Lamport clocks; an Epoch is FastTrack's compressed
// "slot@clock" form of a single access, which lets the common
// same-thread / already-ordered access paths compare one integer instead
// of joining full vectors. Slots are dense small integers handed out by
// the detector, so a plain growable vector beats any map here.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace presp::racecheck {

/// One access in compressed form: the accessing slot and that slot's
/// clock at access time. clock == 0 means "no such access yet".
struct Epoch {
  int slot = 0;
  std::uint64_t clock = 0;

  bool valid() const { return clock != 0; }
  bool operator==(const Epoch&) const = default;
};

class VectorClock {
 public:
  VectorClock() = default;

  std::uint64_t get(int slot) const {
    const auto i = static_cast<std::size_t>(slot);
    return i < clocks_.size() ? clocks_[i] : 0;
  }

  void set(int slot, std::uint64_t value) {
    const auto i = static_cast<std::size_t>(slot);
    if (i >= clocks_.size()) clocks_.resize(i + 1, 0);
    clocks_[i] = value;
  }

  void tick(int slot) { set(slot, get(slot) + 1); }

  /// Component-wise maximum (the happens-before join).
  void join(const VectorClock& other) {
    if (other.clocks_.size() > clocks_.size())
      clocks_.resize(other.clocks_.size(), 0);
    for (std::size_t i = 0; i < other.clocks_.size(); ++i)
      clocks_[i] = std::max(clocks_[i], other.clocks_[i]);
  }

  /// True when the access `epoch` happened before (or at) this clock:
  /// FastTrack's "epoch <= VC" test.
  bool covers(const Epoch& epoch) const {
    return epoch.clock <= get(epoch.slot);
  }

  /// True when every component of `other` is <= this clock (used for the
  /// inflated read-vector vs writer check).
  bool covers(const VectorClock& other) const {
    for (std::size_t i = 0; i < other.clocks_.size(); ++i)
      if (other.clocks_[i] > get(static_cast<int>(i))) return false;
    return true;
  }

  void clear() { clocks_.clear(); }
  std::size_t size() const { return clocks_.size(); }

  std::string to_string() const {
    std::string out = "[";
    for (std::size_t i = 0; i < clocks_.size(); ++i) {
      if (clocks_[i] == 0) continue;
      if (out.size() > 1) out += " ";
      out += std::to_string(i) + "@" + std::to_string(clocks_[i]);
    }
    return out + "]";
  }

 private:
  std::vector<std::uint64_t> clocks_;
};

}  // namespace presp::racecheck
