#include "racecheck/session.hpp"

namespace presp::racecheck {

Session::Session() : Session(Options()) {}

Session::Session(Options opts)
    : opts_(opts), detector_(opts.max_slots) {
  if (opts_.fuzz) {
    ScheduleFuzzer::Options fopts = opts_.fuzzer;
    fopts.seed = opts_.seed;
    fuzzer_ = std::make_unique<ScheduleFuzzer>(fopts);
  }
}

Session::~Session() { uninstall(); }

bool Session::install() {
  Session* expected = nullptr;
  return detail::g_session.compare_exchange_strong(
             expected, this, std::memory_order_acq_rel) ||
         expected == this;
}

void Session::uninstall() {
  Session* expected = this;
  detail::g_session.compare_exchange_strong(expected, nullptr,
                                            std::memory_order_acq_rel);
}

bool Session::installed() const { return current() == this; }

std::vector<lint::Diagnostic> Session::finish() {
  uninstall();
  return detector_.finish();
}

#if !defined(PRESP_RACECHECK_DISABLED)

namespace detail {

namespace {

/// One acquire load per hook; the session stays alive for the duration
/// per the lifetime contract in session.hpp. The fuzzer perturbs BEFORE
/// the detector takes its lock so injected sleeps never serialize every
/// instrumented thread behind the detector mutex.
inline Session* live() {
  return g_session.load(std::memory_order_acquire);
}

inline void pre(Session* s) {
  s->detector().count_event();
  if (ScheduleFuzzer* f = s->fuzzer()) f->perturb();
}

}  // namespace

void hook_acquire_lock(const void* lock, const char* name,
                       const char* file, int line) {
  if (Session* s = live()) {
    pre(s);
    s->detector().acquire_lock(lock, name, file, line);
  }
}

void hook_release_lock(const void* lock) {
  if (Session* s = live()) {
    pre(s);
    s->detector().release_lock(lock);
  }
}

void hook_atomic_publish(const void* obj, const char* name) {
  if (Session* s = live()) {
    pre(s);
    s->detector().atomic_publish(obj, name);
  }
}

void hook_atomic_consume(const void* obj, const char* name) {
  if (Session* s = live()) {
    pre(s);
    s->detector().atomic_consume(obj, name);
  }
}

void hook_declare_nesting(const char* outer, const char* inner) {
  if (Session* s = live()) {
    s->detector().count_event();
    s->detector().declare_nesting(outer, inner);
  }
}

void hook_read(const void* addr, const char* name, const char* file,
               int line) {
  if (Session* s = live()) {
    pre(s);
    s->detector().read(addr, name, file, line);
  }
}

void hook_write(const void* addr, const char* name, const char* file,
                int line) {
  if (Session* s = live()) {
    pre(s);
    s->detector().write(addr, name, file, line);
  }
}

void hook_task_create(const void* task) {
  if (Session* s = live()) {
    pre(s);
    s->detector().task_create(task);
  }
}

void hook_task_begin(const void* task, const char* label) {
  if (Session* s = live()) {
    pre(s);
    s->detector().task_begin(task, label);
  }
}

void hook_task_end(const void* task) {
  if (Session* s = live()) {
    pre(s);
    s->detector().task_end(task);
  }
}

void hook_event(EventKind /*kind*/) {
  if (Session* s = live()) pre(s);
}

void hook_scope_push(const char* label) {
  if (Session* s = live()) {
    s->detector().count_event();
    s->detector().scope_push(label);
  }
}

void hook_scope_pop() {
  if (Session* s = live()) {
    s->detector().count_event();
    s->detector().scope_pop();
  }
}

}  // namespace detail

#endif  // PRESP_RACECHECK_DISABLED

}  // namespace presp::racecheck
