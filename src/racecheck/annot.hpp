// presp::annot — the racecheck annotation surface.
//
// Concurrency-relevant code declares its synchronization intent through
// these calls; the dynamic race detector (racecheck/session.hpp) turns
// them into happens-before edges, lockset updates and lock-order graph
// edges, and the schedule fuzzer uses each call as a seeded preemption
// point. The vocabulary:
//
//   AcquireLock / ReleaseLock    a critical section on `lock` (any
//                                address identifying the lock object)
//   AtomicPublish / AtomicConsume a release/acquire hand-off through a
//                                lock-free publication point `obj`
//   DeclareLockNesting           a statically-known "outer is held while
//                                inner is acquired" fact, for domains
//                                (the sim kernel's coroutine semaphores)
//                                where a dynamic held-set would conflate
//                                interleaved logical processes
//   PRESP_RC_READ / PRESP_RC_WRITE  an access to annotated shared state
//                                (captures file:line for race reports)
//   Scope                        a RAII label pushed onto the thread's
//                                annotation stack; race reports quote
//                                the stack of both access sites
//
// Everything here is a no-op unless a racecheck::Session is installed
// (one relaxed atomic load — the same disabled-path contract as
// trace::enabled). Building with -DPRESP_RACECHECK=OFF defines
// PRESP_RACECHECK_DISABLED and compiles every annotation out entirely.
#pragma once

#include <atomic>

namespace presp::racecheck {

class Session;

namespace detail {

/// The installed session; null = racecheck off. The single relaxed load
/// of this is the entire disabled-path cost of every annotation.
inline std::atomic<Session*> g_session{nullptr};

#if !defined(PRESP_RACECHECK_DISABLED)
// Out-of-line hook bodies (racecheck/session.cpp). Only reached when a
// session is installed.
void hook_acquire_lock(const void* lock, const char* name,
                       const char* file, int line);
void hook_release_lock(const void* lock);
void hook_atomic_publish(const void* obj, const char* name);
void hook_atomic_consume(const void* obj, const char* name);
void hook_declare_nesting(const char* outer, const char* inner);
void hook_read(const void* addr, const char* name, const char* file,
               int line);
void hook_write(const void* addr, const char* name, const char* file,
                int line);
void hook_task_create(const void* task);
void hook_task_begin(const void* task, const char* label);
void hook_task_end(const void* task);
/// Pure event/preemption points with no happens-before semantics.
enum class EventKind { kSteal, kPark, kUnpark, kGraphEdge };
void hook_event(EventKind kind);
void hook_scope_push(const char* label);
void hook_scope_pop();
#endif

}  // namespace detail

/// True when a session is installed and annotations are live.
inline bool enabled() {
  return detail::g_session.load(std::memory_order_relaxed) != nullptr;
}

/// True when annotation hooks were compiled in (-DPRESP_RACECHECK=ON,
/// the default). Tests and the CLI use this to skip gracefully in
/// compiled-out builds.
constexpr bool hooks_compiled() {
#if defined(PRESP_RACECHECK_DISABLED)
  return false;
#else
  return true;
#endif
}

}  // namespace presp::racecheck

namespace presp::annot {

#if defined(PRESP_RACECHECK_DISABLED)

inline void AcquireLock(const void*, const char*, const char* = nullptr,
                        int = 0) {}
inline void ReleaseLock(const void*) {}
inline void AtomicPublish(const void*, const char* = nullptr) {}
inline void AtomicConsume(const void*, const char* = nullptr) {}
inline void DeclareLockNesting(const char*, const char*) {}
inline void OnRead(const void*, const char*, const char*, int) {}
inline void OnWrite(const void*, const char*, const char*, int) {}
inline void OnTaskCreate(const void*) {}
inline void OnTaskBegin(const void*, const char* = nullptr) {}
inline void OnTaskEnd(const void*) {}
inline void OnSteal() {}
inline void OnPark() {}
inline void OnUnpark() {}
inline void OnGraphEdge() {}

class Scope {
 public:
  explicit Scope(const char*) {}
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;
};

#else

inline void AcquireLock(const void* lock, const char* name,
                        const char* file = nullptr, int line = 0) {
  if (racecheck::enabled())
    racecheck::detail::hook_acquire_lock(lock, name, file, line);
}
inline void ReleaseLock(const void* lock) {
  if (racecheck::enabled()) racecheck::detail::hook_release_lock(lock);
}
inline void AtomicPublish(const void* obj, const char* name = nullptr) {
  if (racecheck::enabled())
    racecheck::detail::hook_atomic_publish(obj, name);
}
inline void AtomicConsume(const void* obj, const char* name = nullptr) {
  if (racecheck::enabled())
    racecheck::detail::hook_atomic_consume(obj, name);
}
inline void DeclareLockNesting(const char* outer, const char* inner) {
  if (racecheck::enabled())
    racecheck::detail::hook_declare_nesting(outer, inner);
}
inline void OnRead(const void* addr, const char* name, const char* file,
                   int line) {
  if (racecheck::enabled())
    racecheck::detail::hook_read(addr, name, file, line);
}
inline void OnWrite(const void* addr, const char* name, const char* file,
                    int line) {
  if (racecheck::enabled())
    racecheck::detail::hook_write(addr, name, file, line);
}
inline void OnTaskCreate(const void* task) {
  if (racecheck::enabled()) racecheck::detail::hook_task_create(task);
}
inline void OnTaskBegin(const void* task, const char* label = nullptr) {
  if (racecheck::enabled())
    racecheck::detail::hook_task_begin(task, label);
}
inline void OnTaskEnd(const void* task) {
  if (racecheck::enabled()) racecheck::detail::hook_task_end(task);
}
inline void OnSteal() {
  if (racecheck::enabled())
    racecheck::detail::hook_event(racecheck::detail::EventKind::kSteal);
}
inline void OnPark() {
  if (racecheck::enabled())
    racecheck::detail::hook_event(racecheck::detail::EventKind::kPark);
}
inline void OnUnpark() {
  if (racecheck::enabled())
    racecheck::detail::hook_event(racecheck::detail::EventKind::kUnpark);
}
inline void OnGraphEdge() {
  if (racecheck::enabled())
    racecheck::detail::hook_event(
        racecheck::detail::EventKind::kGraphEdge);
}

/// RAII annotation-stack label; race reports quote the stack of both
/// access sites ("pipeline > stage:pnr > task:route").
class Scope {
 public:
  explicit Scope(const char* label) : armed_(racecheck::enabled()) {
    if (armed_) racecheck::detail::hook_scope_push(label);
  }
  ~Scope() {
    if (armed_) racecheck::detail::hook_scope_pop();
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  bool armed_;
};

#endif  // PRESP_RACECHECK_DISABLED

/// Annotates + performs a std::mutex-style critical section in one RAII
/// object (lock first, annotate second, so the annotation order matches
/// the real acquisition order).
template <typename Mutex>
class LockGuard {
 public:
  LockGuard(Mutex& mutex, const char* name, const char* file = nullptr,
            int line = 0)
      : mutex_(mutex) {
    mutex_.lock();
    AcquireLock(&mutex_, name, file, line);
  }
  ~LockGuard() {
    ReleaseLock(&mutex_);
    mutex_.unlock();
  }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

}  // namespace presp::annot

/// Access annotations with captured source location. `addr` identifies
/// the shared object (any stable address), `name` is the human label
/// race reports use.
#define PRESP_RC_READ(addr, name) \
  ::presp::annot::OnRead((addr), (name), __FILE__, __LINE__)
#define PRESP_RC_WRITE(addr, name) \
  ::presp::annot::OnWrite((addr), (name), __FILE__, __LINE__)
