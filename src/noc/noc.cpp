#include "noc/noc.hpp"

#include <algorithm>
#include <memory>
#include <string>

#include "trace/trace.hpp"
#include "util/error.hpp"

namespace presp::noc {

const char* to_string(Plane plane) {
  switch (plane) {
    case Plane::kCoherenceReq: return "coh-req";
    case Plane::kCoherenceRsp: return "coh-rsp";
    case Plane::kDmaReq: return "dma-req";
    case Plane::kDmaRsp: return "dma-rsp";
    case Plane::kInterrupt: return "irq";
    case Plane::kConfig: return "config";
  }
  return "?";
}

Noc::Noc(sim::Kernel& kernel, int rows, int cols, NocOptions options)
    : kernel_(kernel), rows_(rows), cols_(cols), options_(options) {
  PRESP_REQUIRE(rows_ > 0 && cols_ > 0, "NoC grid must be non-empty");
  PRESP_REQUIRE(options_.router_delay >= 1 && options_.cycles_per_flit >= 1,
                "NoC timing parameters must be positive");
  // 4 outgoing directions per tile per plane (indexes for N/E/S/W), dense.
  links_.resize(static_cast<std::size_t>(kNumPlanes) * num_tiles() * 4);
  mailboxes_.reserve(static_cast<std::size_t>(kNumPlanes) * num_tiles());
  for (int i = 0; i < kNumPlanes * num_tiles(); ++i)
    mailboxes_.push_back(std::make_unique<sim::Mailbox<Packet>>(kernel_));
}

sim::Mailbox<Packet>& Noc::rx(int tile, Plane plane) {
  PRESP_REQUIRE(tile >= 0 && tile < num_tiles(), "tile index out of range");
  return *mailboxes_[static_cast<std::size_t>(plane) *
                         static_cast<std::size_t>(num_tiles()) +
                     static_cast<std::size_t>(tile)];
}

std::size_t Noc::link_index(Plane plane, int from, int to) const {
  const int fr = from / cols_;
  const int fc = from % cols_;
  const int tr = to / cols_;
  const int tc = to % cols_;
  int dir = -1;
  if (tr == fr - 1 && tc == fc) dir = 0;       // north
  else if (tr == fr && tc == fc + 1) dir = 1;  // east
  else if (tr == fr + 1 && tc == fc) dir = 2;  // south
  else if (tr == fr && tc == fc - 1) dir = 3;  // west
  PRESP_ASSERT_MSG(dir >= 0, "link between non-adjacent tiles");
  return (static_cast<std::size_t>(plane) *
              static_cast<std::size_t>(num_tiles()) +
          static_cast<std::size_t>(from)) *
             4 +
         static_cast<std::size_t>(dir);
}

std::vector<int> xy_route(int rows, int cols, int src, int dst) {
  PRESP_REQUIRE(rows > 0 && cols > 0, "mesh dimensions must be positive");
  PRESP_REQUIRE(src >= 0 && src < rows * cols && dst >= 0 &&
                    dst < rows * cols,
                "route endpoints out of range");
  std::vector<int> path{src};
  int cur = src;
  // X first (columns), then Y (rows): ESP's dimension-ordered routing.
  while (cur % cols != dst % cols) {
    cur += (dst % cols > cur % cols) ? 1 : -1;
    path.push_back(cur);
  }
  while (cur / cols != dst / cols) {
    cur += (dst / cols > cur / cols) ? cols : -cols;
    path.push_back(cur);
  }
  return path;
}

std::vector<int> Noc::route(int src, int dst) const {
  return xy_route(rows_, cols_, src, dst);
}

sim::Time Noc::zero_load_latency(int hops, int flits) const {
  return static_cast<sim::Time>(hops) * options_.router_delay +
         static_cast<sim::Time>(flits) * options_.cycles_per_flit;
}

void Noc::send(const Packet& packet_in) {
  Packet packet = packet_in;
  PRESP_REQUIRE(packet.flits >= 1, "packet needs at least one flit");
  if (injector_ != nullptr &&
      injector_->on_noc_packet(static_cast<int>(packet.plane))) {
    packet.poisoned = true;
    ++stats_[static_cast<std::size_t>(packet.plane)].poisoned;
  }
  const auto path = route(packet.src, packet.dst);
  const sim::Time serialization =
      static_cast<sim::Time>(packet.flits) * options_.cycles_per_flit;

  sim::Time head = kernel_.now();
  for (std::size_t hop = 0; hop + 1 < path.size(); ++hop) {
    Link& link = links_[link_index(packet.plane, path[hop], path[hop + 1])];
    // Head flit: router pipeline, then wait for the link to free.
    head = std::max(head + options_.router_delay, link.busy_until);
    // Wormhole: the link is held until the tail flit has crossed.
    link.busy_until = head + serialization;
  }
  const sim::Time deliver = head + serialization;

  auto& stats = stats_[static_cast<std::size_t>(packet.plane)];
  ++stats.packets;
  stats.flits += static_cast<std::uint64_t>(packet.flits);
  const std::uint64_t latency = deliver - kernel_.now();
  stats.total_latency += latency;
  stats.max_latency = std::max(stats.max_latency, latency);

  const auto plane_index = static_cast<std::size_t>(packet.plane);
  ++inflight_[plane_index];
  if (trace::enabled(trace::Category::kNoc)) {
    const std::uint32_t track =
        trace::kTrackNocBase + static_cast<std::uint32_t>(plane_index);
    trace::set_sim_track_name(
        track, std::string("noc ") + to_string(packet.plane));
    if (packet.poisoned) {
      trace::sim_instant(trace::Category::kNoc, "noc.poisoned",
                         kernel_.now(), track);
    }
    trace::sim_counter(trace::Category::kNoc,
                       std::string("noc.") + to_string(packet.plane) +
                           ".inflight",
                       kernel_.now(), track,
                       static_cast<double>(inflight_[plane_index]));
  }

  auto& box = rx(packet.dst, packet.plane);
  kernel_.schedule(deliver - kernel_.now(), [this, &box, packet] {
    box.send(packet);
    const auto plane = static_cast<std::size_t>(packet.plane);
    --inflight_[plane];
    if (trace::enabled(trace::Category::kNoc)) {
      const std::uint32_t track =
          trace::kTrackNocBase + static_cast<std::uint32_t>(plane);
      const std::string prefix =
          std::string("noc.") + to_string(packet.plane);
      trace::sim_counter(trace::Category::kNoc, prefix + ".inflight",
                         kernel_.now(), track,
                         static_cast<double>(inflight_[plane]));
      trace::sim_counter(trace::Category::kNoc, prefix + ".rx_depth",
                         kernel_.now(), track,
                         static_cast<double>(box.size()));
    }
  });
}

}  // namespace presp::noc
