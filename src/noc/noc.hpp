// Multi-plane packet-switched 2D-mesh NoC (the ESP interconnect).
//
// ESP separates traffic classes onto physical planes so coherence, DMA and
// control traffic never block each other; we model the six ESP planes.
// Routing is dimension-ordered (XY). Transport is modeled at packet
// granularity with wormhole pipelining: the head flit pays one router
// delay per hop, each traversed link is then held for the packet's
// serialization time, and later packets queue behind via per-link
// busy-until bookkeeping. This captures serialization and contention —
// the effects that matter to accelerator DMA and reconfiguration traffic —
// at event counts proportional to packets, not flits.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fault/fault.hpp"
#include "sim/kernel.hpp"

namespace presp::noc {

enum class Plane : std::uint8_t {
  kCoherenceReq = 0,
  kCoherenceRsp,
  kDmaReq,
  kDmaRsp,
  kInterrupt,
  kConfig,
};
inline constexpr int kNumPlanes = 6;

const char* to_string(Plane plane);

/// Dimension-ordered (X-then-Y) route on a rows x cols mesh as a list of
/// tile indices from src to dst (inclusive). This is the static route
/// function the routers implement; Noc::route delegates here and the lint
/// layer builds its channel-dependency graphs from it.
std::vector<int> xy_route(int rows, int cols, int src, int dst);

struct Packet {
  Plane plane = Plane::kConfig;
  int src = -1;  // tile index (row-major)
  int dst = -1;
  /// Payload size in flits (one flit = 64-bit word + header share).
  int flits = 1;
  /// Opaque routing tag interpreted by the receiving tile.
  std::uint64_t tag = 0;
  /// Optional payload word (register value, address, ...).
  std::uint64_t payload = 0;
  /// Set by fault injection: the packet's payload failed its link-level
  /// check. Receivers decide the recovery (drop + watchdog for
  /// interrupts, CRC retry for DMA data, ECC-correct for config).
  bool poisoned = false;
};

struct NocOptions {
  /// Per-hop router pipeline latency in cycles.
  int router_delay = 4;
  /// Cycles per flit on a link (link width = one flit).
  int cycles_per_flit = 1;
};

struct NocStats {
  std::uint64_t packets = 0;
  std::uint64_t flits = 0;
  std::uint64_t total_latency = 0;  // sum of send->deliver cycles
  std::uint64_t max_latency = 0;
  /// Packets poisoned by fault injection on this plane.
  std::uint64_t poisoned = 0;
};

class Noc {
 public:
  Noc(sim::Kernel& kernel, int rows, int cols, NocOptions options = {});

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int num_tiles() const { return rows_ * cols_; }

  /// Receive mailbox of one tile on one plane.
  sim::Mailbox<Packet>& rx(int tile, Plane plane);

  /// Injects a packet; it is delivered to rx(dst, plane) after the modeled
  /// traversal time.
  void send(const Packet& packet);

  /// XY route as a list of tile indices from src to dst (inclusive).
  std::vector<int> route(int src, int dst) const;

  /// Zero-load latency for a packet of `flits` across `hops` links.
  sim::Time zero_load_latency(int hops, int flits) const;

  const NocStats& stats(Plane plane) const {
    return stats_[static_cast<std::size_t>(plane)];
  }

  /// Attaches a fault injector; every sent packet is offered to its
  /// kNocCorrupt hook. Null detaches.
  void set_fault_injector(fault::FaultInjector* injector) {
    injector_ = injector;
  }

 private:
  struct Link {
    sim::Time busy_until = 0;
  };
  /// Directed link id between adjacent tiles on one plane.
  std::size_t link_index(Plane plane, int from, int to) const;

  sim::Kernel& kernel_;
  int rows_;
  int cols_;
  NocOptions options_;
  fault::FaultInjector* injector_ = nullptr;
  std::vector<Link> links_;
  std::vector<std::unique_ptr<sim::Mailbox<Packet>>> mailboxes_;
  std::array<NocStats, kNumPlanes> stats_{};
  /// Packets sent but not yet delivered, per plane (trace counter).
  std::array<int, kNumPlanes> inflight_{};
};

}  // namespace presp::noc
