// Content-hashed incremental flow artifact cache.
//
// The PR-ESP flow recomputes synthesis and P&R from scratch on every
// invocation, even when only one OoC module changed since the last run.
// This cache keys every cacheable stage result on a stable 64-bit
// content hash of everything that determines it — the netlist-generator
// inputs (the config text and each referenced module's library resource
// vector stand in for source RTL), the target device, the physical
// constraints (pblock rectangles, floorplan/placer/router options), the
// chosen strategy, and a tool-version tag — and persists the result
// under a cache directory as hash-verified blobs (bitstream/artifact_io
// `PFC1` format). A warm re-run that touches one accelerator therefore
// reuses every other module's synthesized/routed artifacts and skips
// their synthesis and in-context P&R entirely.
//
// Three entry kinds, chained by key so invalidation composes:
//
//   static-meta (key = H(synth inputs))
//       static checkpoint utilization — enough to floorplan without
//       re-synthesizing the static netlist.
//   static-pnr  (key = H(static-meta key, pblocks, P&R options))
//       static run outcome + the accumulated RoutingState usage vector,
//       so partition runs can negotiate against the locked static routes
//       without re-running static P&R.
//   module      (key = H(module synth inputs, its pblock, static-pnr
//       key, strategy/tau))
//       the module's utilization, route outcome and partial bitstream.
//
// Changing a module's RTL inputs invalidates that module only; changing
// the device, a constraint, the strategy or any tool version invalidates
// everything downstream of it via the key chain.
//
// Eviction is LRU by file modification time under a byte-size cap:
// loads touch their entry, stores evict oldest-first until the cache
// fits. Corrupt, truncated or mis-keyed entries are rejected on load
// (counted as `poisoned`), removed, and treated as misses.
//
// Not thread-safe: the flow probes and stores entries from its driver
// thread only (cache hits are resolved before the task graphs are
// built), which also keeps warm-run results bit-identical to cold runs
// at any pool width.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bitstream/bitstream.hpp"
#include "fabric/resources.hpp"

namespace presp::core {

/// Bump to invalidate every existing cache entry (algorithm changes in
/// synth/, pnr/, floorplan/ or this file's serialization are the usual
/// reasons).
inline constexpr const char* kFlowCacheToolVersion = "presp-flow-cache/1";

struct FlowCacheOptions {
  std::string dir;  // empty = caching disabled
  /// LRU size cap over all entry files; <= 0 means unbounded.
  long long max_bytes = 256ll << 20;
};

struct FlowCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t evictions = 0;
  /// Entries rejected on load (corrupt payload, bad magic, key mismatch).
  std::uint64_t poisoned = 0;
  long long bytes = 0;  // current on-disk footprint
};

/// Cached static synthesis metadata (enough to floorplan + model).
struct StaticMetaEntry {
  fabric::ResourceVec utilization;
};

/// Cached static P&R outcome, including the routing state partition runs
/// negotiate against.
struct StaticPnrEntry {
  bool ok = false;
  double fmax_mhz = 0.0;
  std::uint64_t full_bitstream_bytes = 0;
  std::int32_t cols = 0;
  std::int32_t rows = 0;
  std::vector<std::int32_t> usage;  // RoutingState edge usage, edge order
};

/// Cached per-module stage result: OoC synthesis + in-context P&R +
/// partial bitstream generation, all keyed as one unit.
struct ModuleEntry {
  fabric::ResourceVec utilization;
  bool routed = false;
  double fmax_mhz = 0.0;
  bitstream::Bitstream pbs;
};

class FlowCache {
 public:
  /// Creates the directory if needed and indexes existing entries.
  /// Throws InvalidArgument when the directory cannot be created.
  explicit FlowCache(FlowCacheOptions options);

  /// Incremental FNV-1a key builder: fold fields one at a time with
  /// field separators so adjacent fields can't alias ("ab"+"c" vs
  /// "a"+"bc"). Start from `seed_key()` and chain.
  class KeyBuilder {
   public:
    KeyBuilder();
    KeyBuilder& add(const std::string& field);
    KeyBuilder& add(long long value);
    KeyBuilder& add(double value);
    std::uint64_t finish() const { return hash_; }

   private:
    std::uint64_t hash_;
  };

  std::optional<StaticMetaEntry> load_static_meta(std::uint64_t key);
  void store_static_meta(std::uint64_t key, const StaticMetaEntry& entry);

  std::optional<StaticPnrEntry> load_static_pnr(std::uint64_t key);
  void store_static_pnr(std::uint64_t key, const StaticPnrEntry& entry);

  std::optional<ModuleEntry> load_module(std::uint64_t key);
  void store_module(std::uint64_t key, const ModuleEntry& entry);

  const FlowCacheStats& stats() const { return stats_; }
  const std::string& dir() const { return options_.dir; }

 private:
  std::string path_for(std::uint64_t key) const;
  std::optional<std::string> load(std::uint64_t key, std::uint32_t kind);
  void store(std::uint64_t key, std::uint32_t kind, std::string payload);
  /// Oldest-mtime-first eviction until the footprint fits max_bytes.
  void evict_to_fit();
  void touch(const std::string& path);
  /// Drops a corrupt/mis-keyed entry and accounts it as poisoned + miss.
  void reject(const std::string& path, const std::string& why);

  FlowCacheOptions options_;
  FlowCacheStats stats_;
};

}  // namespace presp::core
