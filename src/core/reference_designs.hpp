// The four characterization SoCs of paper Section IV, one per design
// class, all targeting the VC707:
//
//   SOC_1 (Class 1.1): 4x5 grid, 16 reconfigurable MAC tiles
//   SOC_2 (Class 1.2): 3x3 grid, conv2d / gemm / fft / sort tiles
//   SOC_3 (Class 1.3): SOC_2 variant with conv2d / gemm / sort only
//   SOC_4 (Class 2.1): SOC_2 with the CPU tile moved into the
//                      reconfigurable part to shrink the static region
//
// The static part of all four is a single MEM, AUX and Leon3 CPU tile.
#pragma once

#include "netlist/components.hpp"
#include "netlist/soc_config.hpp"

namespace presp::core {

netlist::SocConfig characterization_soc(int index);  // 1..4

/// Component library with the five characterization accelerators
/// registered (builtins + HLS kernels).
netlist::ComponentLibrary characterization_library();

}  // namespace presp::core
