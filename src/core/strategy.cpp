#include "core/strategy.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace presp::core {

const char* to_string(Strategy strategy) {
  switch (strategy) {
    case Strategy::kSerial: return "serial";
    case Strategy::kSemiParallel: return "semi-parallel";
    case Strategy::kFullyParallel: return "fully-parallel";
  }
  return "?";
}

namespace {

StrategyDecision make_decision(Strategy strategy, int tau,
                               DesignClass cls,
                               const StrategyInputs& in,
                               const RuntimeModel& model) {
  StrategyDecision d;
  d.strategy = strategy;
  d.design_class = cls;
  if (strategy == Strategy::kSerial) {
    d.tau = 1;
    d.groups.emplace_back();
    for (std::size_t i = 0; i < in.module_luts.size(); ++i)
      d.groups.front().push_back(i);
    d.predicted_minutes = model.predict_serial(
        in.metrics.static_luts, in.static_region_luts, in.module_luts);
    return d;
  }
  d.tau = tau;
  d.groups = balanced_groups(in.module_luts, tau);
  std::vector<std::vector<long long>> group_luts;
  group_luts.reserve(d.groups.size());
  for (const auto& group : d.groups) {
    std::vector<long long> luts;
    for (const std::size_t i : group) luts.push_back(in.module_luts[i]);
    group_luts.push_back(std::move(luts));
  }
  d.predicted_minutes = model.predict_parallel(
      in.metrics.static_luts, in.static_region_luts, group_luts);
  return d;
}

}  // namespace

StrategyDecision choose_strategy_oracle(const StrategyInputs& inputs,
                                        const RuntimeModel& model,
                                        const ClassificationBands& bands) {
  PRESP_REQUIRE(!inputs.module_luts.empty(),
                "strategy choice needs at least one reconfigurable module");
  const DesignClass cls = classify(inputs.metrics, bands);
  const int n = static_cast<int>(inputs.module_luts.size());
  StrategyDecision best =
      make_decision(Strategy::kSerial, 1, cls, inputs, model);
  for (int tau = 2; tau <= n; ++tau) {
    const Strategy strategy = tau == n ? Strategy::kFullyParallel
                                       : Strategy::kSemiParallel;
    const auto candidate = make_decision(strategy, tau, cls, inputs, model);
    if (candidate.predicted_minutes < best.predicted_minutes)
      best = candidate;
  }
  return best;
}

StrategyDecision choose_strategy(const StrategyInputs& inputs,
                                 const RuntimeModel& model,
                                 int default_semi_tau,
                                 const ClassificationBands& bands) {
  PRESP_REQUIRE(!inputs.module_luts.empty(),
                "strategy choice needs at least one reconfigurable module");
  PRESP_REQUIRE(default_semi_tau >= 2, "semi-parallel needs tau >= 2");
  const DesignClass cls = classify(inputs.metrics, bands);
  const int n = static_cast<int>(inputs.module_luts.size());

  switch (cls) {
    case DesignClass::kClass11:
    case DesignClass::kClass22:
      return make_decision(Strategy::kSerial, 1, cls, inputs, model);
    case DesignClass::kClass13:
      // kappa ~ alpha with gamma ~ 1 would be serial (Table I row 1), but
      // Class 1.3 implies kappa >> alpha: semi-parallel.
      if (n < 2)
        return make_decision(Strategy::kSerial, 1, cls, inputs, model);
      return make_decision(Strategy::kSemiParallel,
                           std::min(default_semi_tau, n), cls, inputs,
                           model);
    case DesignClass::kClass21:
      return make_decision(Strategy::kFullyParallel, n, cls, inputs, model);
    case DesignClass::kClass12: {
      // "semi/fully-parallel": consult the model.
      if (n < 2)
        return make_decision(Strategy::kSerial, 1, cls, inputs, model);
      const auto semi = make_decision(Strategy::kSemiParallel,
                                      std::min(default_semi_tau, n), cls,
                                      inputs, model);
      const auto fully =
          make_decision(Strategy::kFullyParallel, n, cls, inputs, model);
      return fully.predicted_minutes <= semi.predicted_minutes ? fully
                                                               : semi;
    }
  }
  throw LogicError("unreachable strategy class");
}

}  // namespace presp::core
