// The size-driven P&R parallelism strategy algorithm (paper Table I).
//
//                     gamma < 1    gamma ~ 1       gamma > 1
//   kappa ~ alpha_av      -          serial        fully-parallel
//   kappa >> alpha_av   serial    semi-parallel    semi/fully-parallel
//   kappa << alpha_av     -          serial        fully-parallel
//
// The two empty cells are impossible conditions. The (Group 1, gamma > 1)
// cell lists both semi- and fully-parallel; there the algorithm consults
// the runtime model to pick the cheaper of tau = 2 and tau = N — the
// "further understanding of the behavior of the CAD tool" the paper builds
// its characterization for.
#pragma once

#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/runtime_model.hpp"

namespace presp::core {

enum class Strategy { kSerial, kSemiParallel, kFullyParallel };

const char* to_string(Strategy strategy);

struct StrategyDecision {
  Strategy strategy = Strategy::kSerial;
  /// Number of parallel P&R instances (1 for serial, N for fully-parallel).
  int tau = 1;
  DesignClass design_class = DesignClass::kClass11;
  /// Module indices per parallel instance (single group when serial).
  std::vector<std::vector<std::size_t>> groups;
  /// Model-predicted P&R makespan in minutes.
  double predicted_minutes = 0.0;
};

struct StrategyInputs {
  SizeMetrics metrics;
  /// LUTs of every module to implement (across all partitions).
  std::vector<long long> module_luts;
  /// LUT capacity left to the static part after floorplanning.
  long long static_region_luts = 0;
};

/// Runs the Table I algorithm. `default_semi_tau` is the tau used for
/// semi-parallel cells (the paper's evaluation fixes tau = 2).
StrategyDecision choose_strategy(const StrategyInputs& inputs,
                                 const RuntimeModel& model,
                                 int default_semi_tau = 2,
                                 const ClassificationBands& bands = {});

/// Extension beyond the paper's fixed tau: exhaustively evaluates every
/// (strategy, tau) schedule with the runtime model and returns the
/// cheapest. The class label is still computed (for reporting), but the
/// Table I mapping is bypassed — this is the model-oracle upper bound the
/// ablation benches compare the classifier against.
StrategyDecision choose_strategy_oracle(const StrategyInputs& inputs,
                                        const RuntimeModel& model,
                                        const ClassificationBands& bands = {});

}  // namespace presp::core
