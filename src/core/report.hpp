// Human-readable implementation report for a flow run — what the real
// flow prints at the end of its make target and drops next to the
// bitstreams.
#pragma once

#include <string>

#include "core/flow.hpp"

namespace presp::core {

/// Renders the full report: design identity, metrics/class/strategy,
/// per-stage compile times, physical results (fmax, bitstreams) and the
/// per-module implementation table.
std::string flow_report(const FlowResult& result,
                        const fabric::Device& device);

/// Writes flow_report() to a file; throws InvalidArgument on I/O errors.
void write_flow_report(const FlowResult& result,
                       const fabric::Device& device,
                       const std::string& path);

}  // namespace presp::core
