// Empirical CAD runtime model (paper Section IV, "Vivado
// Characterization").
//
// The paper characterizes Vivado 2019.2 across four SoCs and builds an
// approximate model correlating design size with P&R runtime under
// different parallelism configurations. We re-derive the same functional
// forms by fitting the published Table III data points (the authors'
// machine is unavailable, so the published minutes *are* the
// characterization data):
//
//   g(u)            = 1 + cong * u^2                    congestion factor
//   t_static(Ls,us) = ts0 + ts1 * (Ls/1k)^ts_exp * g(us)
//   r(L,u)          = r1 * (L/1k)^r_exp * g(u)          in-context module
//   C_ctx(Ls)       = ctx1 * (Ls/1k)                    per-instance load
//   m(L)            = m1 * (L/1k)^m_exp                 serial marginal
//   t_synth(L)      = syn0 + syn1 * (L/1k)              one synthesis run
//
// where Ls = static LUTs, us = static utilization of the fabric left over
// after floorplanning, and u = (Ls + L)/device LUTs for an in-context run.
// Composition:
//   T_serial   = t_static + sum_i m(L_i)                       (tau = 1)
//   T_parallel = t_static + max_g [C_ctx + sum_{i in g} r(L_i, u_i)]
//   T_standard = mono_factor * T_serial     (single-instance joint run)
// Fit quality against Table III is reported by bench_ablation_model and
// recorded in EXPERIMENTS.md (within ~15% on every published cell, exact
// strategy winners preserved for all four characterization SoCs).
#pragma once

#include <vector>

#include "fabric/device.hpp"

namespace presp::core {

struct RuntimeModelConstants {
  double cong = 2.22;
  double ts0 = 3.0, ts1 = 0.55, ts_exp = 1.05;
  double r1 = 0.553, r_exp = 1.13;
  double ctx1 = 0.164;
  double m1 = 0.24, m_exp = 1.35;
  double syn0 = 18.0, syn1 = 0.33;
  /// Joint single-instance standard-flow discount vs composed serial.
  double mono_factor = 0.88;
  /// Machine contention: each concurrent Vivado instance beyond
  /// `contention_free_tau` slows every in-context run by this fraction
  /// (the paper's 16-core / 64 GB machine comfortably fits two heavy
  /// in-context implementations; beyond that they compete for cores and
  /// memory bandwidth).
  double contention = 0.08;
  int contention_free_tau = 2;
};

/// All returned durations are CPU minutes (the unit of every paper table).
class RuntimeModel {
 public:
  explicit RuntimeModel(const fabric::Device& device,
                        RuntimeModelConstants constants = {})
      : device_luts_(static_cast<double>(device.total().luts)),
        c_(constants) {}

  const RuntimeModelConstants& constants() const { return c_; }

  double congestion(double utilization) const;

  /// Static-part pre-route (placeholder hard-macros in the pblocks).
  /// `static_region_luts` is the LUT capacity left outside all pblocks.
  double static_pnr(long long static_luts,
                    long long static_region_luts) const;

  /// One module implemented in-context with the locked static part, with
  /// `tau` Vivado instances running concurrently on the machine.
  double in_context_module(long long module_luts, long long static_luts,
                           int tau = 1) const;

  /// Per-Vivado-instance context-loading overhead.
  double context_overhead(long long static_luts) const;

  /// Marginal cost of one module inside a single serial run.
  double serial_marginal(long long module_luts) const;

  /// One synthesis run (out-of-context or full, same engine).
  double synthesis(long long luts) const;

  // ---- composed predictions -------------------------------------------

  /// tau = 1: one instance implements static + all modules.
  double predict_serial(long long static_luts, long long static_region_luts,
                        const std::vector<long long>& module_luts) const;

  /// Parallel instances, one per group; returns the makespan.
  double predict_parallel(
      long long static_luts, long long static_region_luts,
      const std::vector<std::vector<long long>>& groups) const;

  /// Standard Xilinx DPR flow: everything in one joint Vivado run.
  double predict_standard(long long static_luts,
                          long long static_region_luts,
                          const std::vector<long long>& module_luts) const;

 private:
  double device_luts_;
  RuntimeModelConstants c_;
};

/// Balanced grouping for semi-parallel implementation: longest-processing-
/// time bin packing of modules into `tau` groups, minimizing the largest
/// group's in-context time. Returns indices into `module_luts`.
std::vector<std::vector<std::size_t>> balanced_groups(
    const std::vector<long long>& module_luts, int tau);

}  // namespace presp::core
