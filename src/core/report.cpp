#include "core/report.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace presp::core {

std::string flow_report(const FlowResult& result,
                        const fabric::Device& device) {
  std::ostringstream os;
  os << "PR-ESP implementation report\n";
  os << "============================\n";
  os << "design:   " << result.design << "\n";
  os << "device:   " << device.name() << "\n";
  os << "metrics:  kappa " << TextTable::num(result.metrics.kappa * 100, 1)
     << "%  alpha_av " << TextTable::num(result.metrics.alpha_av * 100, 1)
     << "%  gamma " << TextTable::num(result.metrics.gamma, 2) << "  ("
     << result.metrics.num_partitions << " partitions)\n";
  os << "class:    " << to_string(result.decision.design_class) << "\n";
  os << "strategy: " << to_string(result.decision.strategy)
     << " (tau=" << result.decision.tau << ")\n\n";

  os << "compile time (minutes)\n";
  os << "  synthesis (parallel OoC makespan): "
     << TextTable::num(result.synth_makespan_minutes, 1) << "\n";
  os << "  static pre-route:                  "
     << TextTable::num(result.t_static_minutes, 1) << "\n";
  os << "  max parallel instance (omega):     "
     << TextTable::num(result.omega_minutes, 1) << "\n";
  os << "  P&R total:                         "
     << TextTable::num(result.pnr_total_minutes, 1) << "\n";
  os << "  flow total:                        "
     << TextTable::num(result.total_minutes, 1) << "\n\n";

  if (result.full_bitstream_bytes > 0) {
    os << "physical implementation\n";
    os << "  routed: " << (result.physical_ok ? "yes" : "NO") << "\n";
    os << "  fmax:   " << TextTable::num(result.achieved_fmax_mhz, 1)
       << " MHz (" << (result.timing_met ? "timing met" : "TIMING MISSED")
       << ")\n";
    os << "  full bitstream: "
       << TextTable::num(
              static_cast<double>(result.full_bitstream_bytes) / 1e6, 1)
       << " MB\n\n";
  }

  if (!result.modules.empty()) {
    TextTable table({"partition", "module", "pblock", "synth min",
                     "pnr min", "pbs KB"});
    for (const auto& m : result.modules) {
      const auto it = result.pblocks.find(m.partition);
      table.add_row(
          {m.partition, m.module,
           it != result.pblocks.end() ? it->second.to_string() : "-",
           TextTable::num(m.synth_minutes, 1),
           TextTable::num(m.pnr_minutes, 1),
           m.pbs_compressed_bytes > 0
               ? TextTable::num(
                     static_cast<double>(m.pbs_compressed_bytes) / 1024, 0)
               : "-"});
    }
    os << table.render();
  }
  return os.str();
}

void write_flow_report(const FlowResult& result,
                       const fabric::Device& device,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out)
    throw InvalidArgument("cannot write report to '" + path + "'");
  out << flow_report(result, device);
  if (!out) throw InvalidArgument("write to '" + path + "' failed");
}

}  // namespace presp::core
