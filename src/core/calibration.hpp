// Runtime-model calibration: the paper's characterization methodology as
// a reusable tool.
//
// "We performed an exhaustive characterization of the Vivado tool. We
// built an empirical model that correlates the size of a DPR design
// against the total compilation time for P&R under different parallelism
// configurations."
//
// Given observations — (design sizes, parallelism schedule, measured
// minutes) triples from any CAD tool — fit_constants() recovers the
// RuntimeModelConstants that minimize squared relative error, via cyclic
// coordinate descent with golden-section line search on each constant.
// This is how a user retargets PR-ESP's strategy algorithm to their own
// tool/machine: run a handful of designs, feed the measurements in, and
// the strategy table re-tunes itself.
#pragma once

#include <vector>

#include "core/runtime_model.hpp"

namespace presp::core {

/// One measured compilation: a schedule over a design and its wall-clock.
struct Observation {
  long long static_luts = 0;
  long long static_region_luts = 0;
  /// Module LUTs per parallel instance; one group = serial run.
  std::vector<std::vector<long long>> groups;
  bool serial = false;  // single joint run (tau = 1)
  double measured_minutes = 0.0;
};

struct CalibrationOptions {
  int sweeps = 60;               // coordinate-descent passes
  double search_span = 4.0;      // multiplicative bracket per constant
  double tolerance = 1e-4;       // golden-section termination
  /// Constants to fit; the rest stay at their seed values. Order matters
  /// only for reporting.
  bool fit_exponents = false;    // also fit ts_exp/r_exp/m_exp
};

struct CalibrationResult {
  RuntimeModelConstants constants;
  /// Mean absolute percentage error over the observations, before/after.
  double initial_mape = 0.0;
  double final_mape = 0.0;
  int evaluations = 0;
};

/// Model prediction for one observation under given constants.
double predict_observation(const fabric::Device& device,
                           const RuntimeModelConstants& constants,
                           const Observation& observation);

/// MAPE of a constant set over a sample.
double calibration_error(const fabric::Device& device,
                         const RuntimeModelConstants& constants,
                         const std::vector<Observation>& observations);

/// Fits the scale constants (and optionally exponents) to the sample,
/// starting from `seed`. Requires at least 4 observations.
CalibrationResult fit_constants(const fabric::Device& device,
                                const std::vector<Observation>& observations,
                                RuntimeModelConstants seed = {},
                                const CalibrationOptions& options = {});

}  // namespace presp::core
