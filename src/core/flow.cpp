#include "core/flow.hpp"

#include "bitstream/artifact_io.hpp"

#include <algorithm>
#include <limits>
#include <memory>

#include "exec/task_graph.hpp"
#include "exec/thread_pool.hpp"
#include "floorplan/floorplan_io.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace presp::core {

const ModuleImplementation& FlowResult::module(
    const std::string& partition, const std::string& module_name) const {
  for (const ModuleImplementation& m : modules)
    if (m.partition == partition && m.module == module_name) return m;
  throw InvalidArgument("module '" + module_name + "' in partition '" +
                        partition + "' was not implemented by this flow run");
}

PrEspFlow::PrEspFlow(const fabric::Device& device,
                     const netlist::ComponentLibrary& lib,
                     FlowOptions options)
    : device_(device),
      lib_(lib),
      options_(std::move(options)),
      model_(device, options_.model) {}

namespace {
/// LPT priority for a synthesis/P&R task: bigger netlists first.
int lut_priority(long long luts) {
  return static_cast<int>(std::min<long long>(
      luts, std::numeric_limits<int>::max()));
}

void add_resources(FlowCache::KeyBuilder& kb, const fabric::ResourceVec& r) {
  kb.add(static_cast<long long>(r.luts))
      .add(static_cast<long long>(r.ffs))
      .add(static_cast<long long>(r.bram36))
      .add(static_cast<long long>(r.dsp));
}

void add_pblock(FlowCache::KeyBuilder& kb, const fabric::Pblock& pb) {
  kb.add(static_cast<long long>(pb.col_lo))
      .add(static_cast<long long>(pb.col_hi))
      .add(static_cast<long long>(pb.row_lo))
      .add(static_cast<long long>(pb.row_hi));
}
}  // namespace

FlowResult PrEspFlow::run(const netlist::SocConfig& config) const {
  FlowResult result;
  result.design = config.name;

  // 1. Parse + elaborate: separates reconfigurable tiles from the static
  // part.
  trace::begin(trace::Category::kFlow, "flow:elaborate");
  const netlist::SocRtl rtl = netlist::elaborate(config, lib_);
  result.metrics = compute_metrics(rtl, lib_, device_);
  trace::end(trace::Category::kFlow, "flow:elaborate");

  // Task-parallel execution substrate. With exec_threads <= 1 the graphs
  // below run serially on this thread in the same (priority, insertion)
  // order the parallel scheduler uses at each release point; every task
  // writes its own preallocated slot and reductions fold in job order, so
  // the FlowResult is bit-identical at any pool width.
  std::unique_ptr<exec::ThreadPool> pool;
  if (options_.exec_threads > 1)
    pool = std::make_unique<exec::ThreadPool>(options_.exec_threads);
  result.exec.threads = pool ? pool->threads() : 1;

  struct MemberJob {
    int partition_index;
    std::string module;
    long long luts;
  };
  std::vector<MemberJob> jobs;
  for (int p = 0; p < static_cast<int>(rtl.partitions().size()); ++p)
    for (const std::string& module : rtl.partitions()[p].modules)
      jobs.push_back(
          {p, module, netlist::SocRtl::module_resources(lib_, module).luts});

  // Content-hashed incremental cache (core/flow_cache.hpp). Every probe
  // and store happens on this (driver) thread, before the corresponding
  // task graph is built: only cache *misses* become tasks, so warm runs
  // execute a strict subset of the cold run's graph and produce
  // bit-identical results at any pool width.
  std::unique_ptr<FlowCache> cache;
  if (!options_.cache.dir.empty())
    cache = std::make_unique<FlowCache>(options_.cache);
  result.cache_enabled = cache != nullptr;

  // Stage key 1: static synthesis. Hashes everything that determines the
  // static checkpoint — the configuration text (grid, tile types, member
  // *names*; black boxes depend on partition structure, not member
  // contents), the static part's library resources, the synthesis options
  // and the device. Member module resource changes do NOT touch this key.
  std::uint64_t static_synth_key = 0;
  std::optional<StaticMetaEntry> static_meta;
  if (cache) {
    FlowCache::KeyBuilder kb;
    kb.add("static-synth").add(device_.name()).add(config.to_config_text());
    add_resources(kb, rtl.static_resources(lib_));
    kb.add(static_cast<long long>(options_.synth.cluster_luts))
        .add(options_.synth.rent_edges_per_cell)
        .add(static_cast<long long>(options_.synth.seed));
    static_synth_key = kb.finish();
    static_meta = cache->load_static_meta(static_synth_key);
  }

  // 2. Parallel out-of-context synthesis. One task for the static netlist
  // and one per (partition, member), longest-expected first (LPT). Each
  // OoC synthesis is seeded by module name, so concurrent execution
  // cannot change its output. With caching enabled the member synths are
  // deferred until after the floorplan, when their cache keys are known
  // (a cached member needs no checkpoint at all); the static synth runs
  // now only when its utilization is not already cached (the floorplanner
  // needs it).
  const synth::Synthesizer synthesizer(lib_, options_.synth);
  synth::Checkpoint static_ckpt;
  bool have_static_ckpt = false;
  std::vector<synth::Checkpoint> ooc_ckpts(jobs.size());
  {
    const trace::TraceScope span(trace::Category::kFlow, "flow:synth");
    exec::TaskGraph synth_graph;
    if (!cache || !static_meta) {
      synth_graph.add(
          "synth:static",
          [&] { static_ckpt = synthesizer.synthesize_static(rtl); }, {},
          lut_priority(result.metrics.static_luts));
      have_static_ckpt = true;
    }
    if (!cache && options_.run_physical) {
      for (std::size_t j = 0; j < jobs.size(); ++j)
        synth_graph.add(
            "synth:" + jobs[j].module,
            [&, j] {
              ooc_ckpts[j] =
                  synthesizer.synthesize_module_ooc(jobs[j].module);
            },
            {}, lut_priority(jobs[j].luts));
    }
    synth_graph.run(pool.get());
    result.exec.tasks += synth_graph.size();
    result.exec.synth_wall_seconds = synth_graph.makespan_seconds();
    result.exec.busy_seconds += synth_graph.busy_seconds();
  }
  if (cache && have_static_ckpt && !static_meta)
    cache->store_static_meta(static_synth_key, {static_ckpt.utilization});
  const fabric::ResourceVec static_util =
      have_static_ckpt ? static_ckpt.utilization : static_meta->utilization;

  const double static_synth = model_.synthesis(static_util.luts);
  result.synth_makespan_minutes = static_synth;
  for (const MemberJob& job : jobs)
    result.synth_makespan_minutes =
        std::max(result.synth_makespan_minutes, model_.synthesis(job.luts));

  // 3. DPR floorplanning.
  std::vector<floorplan::PartitionRequest> requests;
  for (int p = 0; p < static_cast<int>(rtl.partitions().size()); ++p)
    requests.push_back(
        {rtl.partitions()[p].name, rtl.partition_demand(lib_, p)});
  {
    const trace::TraceScope span(trace::Category::kFlow, "flow:floorplan");
    const floorplan::Floorplanner planner(device_);
    result.plan = planner.plan(requests, static_util, options_.floorplan);
    for (std::size_t p = 0; p < requests.size(); ++p)
      result.pblocks[requests[p].name] = result.plan.pblocks[p];
    if (!options_.artifacts_dir.empty()) {
      // The saved plan is what `presp-lint --floorplan` checks offline.
      // config.device is the board key ("vc707"), which the lint side can
      // map back to a fabric::Device; device_.name() is the part string.
      floorplan::FloorplanArtifact artifact{config.name, config.device,
                                            requests, result.plan};
      floorplan::write_floorplan_json(
          artifact,
          options_.artifacts_dir + "/" + config.name + ".floorplan.json");
    }
  }
  const long long static_region_luts = result.plan.static_capacity.luts;

  // 4. Strategy selection (Table I + runtime model), unless forced.
  std::vector<long long> module_luts;
  for (const MemberJob& job : jobs) module_luts.push_back(job.luts);
  trace::begin(trace::Category::kFlow, "flow:strategy");
  if (options_.force_strategy) {
    const Strategy strategy = *options_.force_strategy;
    const int n = static_cast<int>(jobs.size());
    int tau = 1;
    if (strategy == Strategy::kSemiParallel)
      tau = std::min(options_.force_tau.value_or(options_.semi_tau), n);
    else if (strategy == Strategy::kFullyParallel)
      tau = options_.force_tau.value_or(n);
    StrategyDecision d;
    d.strategy = strategy;
    d.tau = tau;
    d.design_class = classify(result.metrics);
    if (strategy == Strategy::kSerial) {
      d.groups.emplace_back();
      for (std::size_t i = 0; i < jobs.size(); ++i)
        d.groups.front().push_back(i);
    } else {
      d.groups = balanced_groups(module_luts, tau);
    }
    result.decision = d;
  } else {
    StrategyInputs inputs;
    inputs.metrics = result.metrics;
    inputs.module_luts = module_luts;
    inputs.static_region_luts = static_region_luts;
    result.decision =
        choose_strategy(inputs, model_, options_.semi_tau);
  }
  trace::end(trace::Category::kFlow, "flow:strategy");

  // 5. P&R. Physical engines run once; CPU minutes come from the model
  // composed per the chosen schedule.
  const ScheduleEval eval = evaluate_schedule(
      model_, result.metrics.static_luts, static_region_luts, module_luts,
      result.decision.strategy, result.decision.tau);
  result.t_static_minutes = eval.t_static;
  result.omega_minutes = eval.omega;
  result.pnr_total_minutes = eval.total;
  result.decision.predicted_minutes = eval.total;
  result.total_minutes = result.synth_makespan_minutes + eval.total;

  pnr::PnrEngine engine(device_, options_.pnr);
  pnr::RoutingState static_state = engine.make_state();
  const bitstream::BitstreamGenerator bitgen(device_);

  // Stage keys 2 and 3: static P&R and per-member implementation. The
  // static key chains the synth key with the floorplan *outcome* (pblock
  // rectangles — hashing the outcome rather than the demands maximizes
  // reuse when a member changes without moving the floorplan) and every
  // P&R knob; each member key chains the static key with the member's
  // own synthesis inputs, its pblock and the schedule choice. Changing a
  // member's library entry therefore invalidates exactly that member.
  std::uint64_t static_pnr_key = 0;
  std::optional<StaticPnrEntry> static_pnr_hit;
  std::vector<std::uint64_t> module_keys(jobs.size(), 0);
  std::vector<std::optional<ModuleEntry>> module_hits(jobs.size());
  if (cache && options_.run_physical) {
    FlowCache::KeyBuilder kb;
    kb.add("static-pnr").add(static_cast<long long>(static_synth_key));
    for (std::size_t p = 0; p < requests.size(); ++p) {
      kb.add(requests[p].name);
      add_pblock(kb, result.plan.pblocks[p]);
    }
    kb.add(static_cast<long long>(options_.pnr.placer.moves_per_cell))
        .add(static_cast<long long>(options_.pnr.placer.temperature_steps))
        .add(options_.pnr.placer.initial_temperature_factor)
        .add(options_.pnr.placer.cooling)
        .add(static_cast<long long>(options_.pnr.placer.seed))
        .add(static_cast<long long>(options_.pnr.router.max_iterations))
        .add(options_.pnr.router.congestion_penalty)
        .add(options_.pnr.router.history_increment)
        .add(static_cast<long long>(options_.pnr.h_capacity))
        .add(static_cast<long long>(options_.pnr.v_capacity));
    static_pnr_key = kb.finish();
    static_pnr_hit = cache->load_static_pnr(static_pnr_key);
    // Belt and braces: a cached routing state must match this device's
    // grid exactly or the entry is unusable.
    if (static_pnr_hit &&
        (static_pnr_hit->usage.size() != static_state.num_edges() ||
         static_pnr_hit->cols != static_state.num_cols() ||
         static_pnr_hit->rows != static_state.num_rows()))
      static_pnr_hit.reset();

    for (std::size_t j = 0; j < jobs.size(); ++j) {
      FlowCache::KeyBuilder mk;
      mk.add("module").add(static_cast<long long>(static_pnr_key));
      mk.add(jobs[j].module);
      add_resources(
          mk, netlist::SocRtl::module_resources(lib_, jobs[j].module));
      add_pblock(mk, result.plan.pblocks[static_cast<std::size_t>(
                         jobs[j].partition_index)]);
      mk.add(to_string(result.decision.strategy))
          .add(static_cast<long long>(result.decision.tau));
      module_keys[j] = mk.finish();
      module_hits[j] = cache->load_module(module_keys[j]);
    }

    // Second synthesis wave: only what the misses actually need.
    exec::TaskGraph synth_graph;
    if (!static_pnr_hit && !have_static_ckpt) {
      synth_graph.add(
          "synth:static",
          [&] { static_ckpt = synthesizer.synthesize_static(rtl); }, {},
          lut_priority(result.metrics.static_luts));
      have_static_ckpt = true;
    }
    for (std::size_t j = 0; j < jobs.size(); ++j)
      if (!module_hits[j])
        synth_graph.add(
            "synth:" + jobs[j].module,
            [&, j] {
              ooc_ckpts[j] =
                  synthesizer.synthesize_module_ooc(jobs[j].module);
            },
            {}, lut_priority(jobs[j].luts));
    if (synth_graph.size() > 0) {
      const trace::TraceScope span(trace::Category::kFlow, "flow:synth");
      synth_graph.run(pool.get());
      result.exec.tasks += synth_graph.size();
      result.exec.synth_wall_seconds += synth_graph.makespan_seconds();
      result.exec.busy_seconds += synth_graph.busy_seconds();
    }
  }

  // Model-attributed per-member fields (pure math — filled up front so the
  // physical tasks below only touch their own preallocated slot).
  result.modules.resize(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    ModuleImplementation& impl = result.modules[j];
    impl.partition =
        rtl.partitions()[static_cast<std::size_t>(jobs[j].partition_index)]
            .name;
    impl.module = jobs[j].module;
    impl.synth_minutes = model_.synthesis(jobs[j].luts);
    impl.pnr_minutes = result.decision.strategy == Strategy::kSerial
                           ? model_.serial_marginal(jobs[j].luts)
                           : model_.in_context_module(
                                 jobs[j].luts, result.metrics.static_luts,
                                 result.decision.tau);
  }

  if (options_.run_physical) {
    const trace::TraceScope span(trace::Category::kFlow, "flow:pnr");
    // The P&R task graph mirrors the chosen schedule: the static run
    // gates everything (partition runs negotiate against its routing
    // state); each Table-I group is a serial chain of in-context member
    // runs ("one Vivado instance"); the tau groups run concurrently.
    // run_partition copies the static routing state, so every member sees
    // the identical context regardless of interleaving.
    std::vector<char> run_ok(jobs.size() + 1, 1);
    std::vector<double> run_fmax(jobs.size() + 1, 1e9);
    const std::size_t kStaticSlot = jobs.size();
    // Fresh partial bitstreams are retained for cache stores.
    std::vector<bitstream::Bitstream> fresh_pbs(cache ? jobs.size() : 0);

    // Replay cached stage results on the driver thread (fixed job order)
    // before any task runs; the task graph below contains misses only.
    if (static_pnr_hit) {
      run_ok[kStaticSlot] = static_pnr_hit->ok ? 1 : 0;
      run_fmax[kStaticSlot] = static_pnr_hit->fmax_mhz;
      result.full_bitstream_bytes =
          static_cast<std::size_t>(static_pnr_hit->full_bitstream_bytes);
      for (std::size_t e = 0; e < static_pnr_hit->usage.size(); ++e)
        if (static_pnr_hit->usage[e] != 0)
          static_state.add_usage(e, static_pnr_hit->usage[e]);
    }
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (!module_hits[j]) continue;
      const ModuleEntry& hit = *module_hits[j];
      ModuleImplementation& impl = result.modules[j];
      impl.utilization = hit.utilization;
      impl.routed = hit.routed;
      impl.pbs_raw_bytes = hit.pbs.raw_bytes();
      impl.pbs_compressed_bytes = hit.pbs.compressed_bytes();
      run_ok[j] = hit.routed ? 1 : 0;
      run_fmax[j] = hit.fmax_mhz;
      if (!options_.artifacts_dir.empty())
        bitstream::write_bitstream(
            hit.pbs,
            options_.artifacts_dir + "/" +
                bitstream::pbs_filename(config.name, impl.partition,
                                        jobs[j].module));
    }

    exec::TaskGraph pnr_graph;
    std::optional<exec::TaskId> static_task;
    if (!static_pnr_hit)
      static_task = pnr_graph.add(
          "pnr:static",
          [&] {
            const pnr::PnrRun run =
                engine.run_static(static_ckpt, result.pblocks, static_state);
            run_ok[kStaticSlot] = run.success() ? 1 : 0;
            run_fmax[kStaticSlot] = run.route.achieved_fmax_mhz;
            result.full_bitstream_bytes =
                bitgen
                    .full(config.name, static_ckpt.netlist,
                          run.place.placement)
                    .raw_bytes();
          },
          {}, std::numeric_limits<int>::max());

    for (const auto& group : result.decision.groups) {
      long long group_luts = 0;
      for (const std::size_t j : group) group_luts += jobs[j].luts;
      std::optional<exec::TaskId> prev = static_task;
      for (const std::size_t j : group) {
        if (module_hits[j]) continue;  // cached member: not in the chain
        std::vector<exec::TaskId> deps;
        if (prev) deps.push_back(*prev);
        prev = pnr_graph.add(
            "pnr:" + jobs[j].module,
            [&, j] {
              ModuleImplementation& impl = result.modules[j];
              const synth::Checkpoint& ooc = ooc_ckpts[j];
              impl.utilization = ooc.utilization;
              const fabric::Pblock& pblock =
                  result.plan.pblocks[static_cast<std::size_t>(
                      jobs[j].partition_index)];
              const pnr::PnrRun run =
                  engine.run_partition(ooc, pblock, static_state);
              impl.routed = run.success();
              run_ok[j] = impl.routed ? 1 : 0;
              run_fmax[j] = run.route.achieved_fmax_mhz;
              const bitstream::Bitstream pbs =
                  bitgen.partial(config.name, jobs[j].module, pblock,
                                 ooc.netlist, run.place.placement);
              impl.pbs_raw_bytes = pbs.raw_bytes();
              impl.pbs_compressed_bytes = pbs.compressed_bytes();
              if (!options_.artifacts_dir.empty())
                bitstream::write_bitstream(
                    pbs, options_.artifacts_dir + "/" +
                             bitstream::pbs_filename(
                                 config.name, impl.partition,
                                 jobs[j].module));
              if (cache) fresh_pbs[j] = pbs;
            },
            std::move(deps), lut_priority(group_luts));
      }
    }
    pnr_graph.run(pool.get());
    result.exec.tasks += pnr_graph.size();
    result.exec.pnr_wall_seconds = pnr_graph.makespan_seconds();
    result.exec.busy_seconds += pnr_graph.busy_seconds();

    // Persist fresh stage results (driver thread, after the graph).
    if (cache) {
      if (!static_pnr_hit) {
        StaticPnrEntry entry;
        entry.ok = run_ok[kStaticSlot] != 0;
        entry.fmax_mhz = run_fmax[kStaticSlot];
        entry.full_bitstream_bytes = result.full_bitstream_bytes;
        entry.cols = static_state.num_cols();
        entry.rows = static_state.num_rows();
        entry.usage.resize(static_state.num_edges());
        for (std::size_t e = 0; e < static_state.num_edges(); ++e)
          entry.usage[e] = static_state.usage(e);
        cache->store_static_pnr(static_pnr_key, entry);
      }
      for (std::size_t j = 0; j < jobs.size(); ++j) {
        if (module_hits[j]) continue;
        ModuleEntry entry;
        entry.utilization = result.modules[j].utilization;
        entry.routed = result.modules[j].routed;
        entry.fmax_mhz = run_fmax[j];
        entry.pbs = std::move(fresh_pbs[j]);
        cache->store_module(module_keys[j], entry);
      }
    }

    // Deterministic reductions, in fixed slot order (static, then jobs).
    bool physical_ok = run_ok[kStaticSlot] != 0;
    double fmax = run_fmax[kStaticSlot];
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      physical_ok = physical_ok && run_ok[j] != 0;
      fmax = std::min(fmax, run_fmax[j]);
    }
    result.physical_ok = physical_ok;
    result.achieved_fmax_mhz = fmax;
    result.timing_met = fmax >= config.clock_mhz;
  }

  if (pool) {
    const exec::ThreadPool::Stats pool_stats = pool->stats();
    result.exec.steals = pool_stats.stolen;
    result.exec.steal_failures = pool_stats.steal_failures;
    result.exec.parks = pool_stats.parks;
    result.exec.max_queue_depth = pool_stats.max_queue_depth;
  }
  if (cache) result.cache = cache->stats();
  result.exec.wall_seconds =
      result.exec.synth_wall_seconds + result.exec.pnr_wall_seconds;
  if (result.exec.wall_seconds > 0.0)
    result.exec.measured_speedup =
        result.exec.busy_seconds / result.exec.wall_seconds;
  const double serial_pnr_minutes = model_.predict_serial(
      result.metrics.static_luts, static_region_luts, module_luts);
  if (eval.total > 0.0)
    result.exec.model_speedup = serial_pnr_minutes / eval.total;

  PRESP_INFO("flow") << config.name << ": class "
                     << to_string(result.decision.design_class)
                     << ", strategy "
                     << to_string(result.decision.strategy) << " (tau="
                     << result.decision.tau << "), P&R "
                     << result.pnr_total_minutes << " min, total "
                     << result.total_minutes << " min; exec "
                     << result.exec.tasks << " tasks on "
                     << result.exec.threads << " threads, measured "
                     << result.exec.measured_speedup << "x vs modeled "
                     << result.exec.model_speedup << "x";
  return result;
}

StandardFlowResult PrEspFlow::run_standard(
    const netlist::SocConfig& config) const {
  const netlist::SocRtl rtl = netlist::elaborate(config, lib_);
  const SizeMetrics metrics = compute_metrics(rtl, lib_, device_);

  std::vector<long long> module_luts;
  long long member_total = 0;
  for (const auto& partition : rtl.partitions())
    for (const std::string& module : partition.modules) {
      const long long luts =
          netlist::SocRtl::module_resources(lib_, module).luts;
      module_luts.push_back(luts);
      member_total += luts;
    }

  // The standard flow still floorplans (manually, in practice); pblock
  // area matches ours, so reuse the floorplanner for the static region.
  std::vector<floorplan::PartitionRequest> requests;
  for (int p = 0; p < static_cast<int>(rtl.partitions().size()); ++p)
    requests.push_back(
        {rtl.partitions()[p].name, rtl.partition_demand(lib_, p)});
  const floorplan::Floorplanner planner(device_);
  const floorplan::Floorplan plan = planner.plan(
      requests, rtl.static_resources(lib_), options_.floorplan);

  StandardFlowResult result;
  result.design = config.name;
  // Single Vivado instance: synthesis of the whole design...
  result.synth_minutes =
      model_.synthesis(metrics.static_luts + member_total);
  // ...then a joint serial DPR implementation.
  result.pnr_minutes = model_.predict_standard(
      metrics.static_luts, plan.static_capacity.luts, module_luts);
  result.total_minutes = result.synth_minutes + result.pnr_minutes;
  return result;
}

ScheduleEval evaluate_schedule(const RuntimeModel& model,
                               long long static_luts,
                               long long static_region_luts,
                               const std::vector<long long>& module_luts,
                               Strategy strategy, int tau) {
  ScheduleEval eval;
  eval.t_static = model.static_pnr(static_luts, static_region_luts);
  if (strategy == Strategy::kSerial || module_luts.empty()) {
    eval.total =
        model.predict_serial(static_luts, static_region_luts, module_luts);
    return eval;
  }
  const int n = static_cast<int>(module_luts.size());
  const int effective_tau =
      strategy == Strategy::kFullyParallel ? n : std::min(tau, n);
  const auto groups = balanced_groups(module_luts, effective_tau);
  std::vector<std::vector<long long>> group_luts;
  for (const auto& group : groups) {
    std::vector<long long> luts;
    for (const std::size_t i : group) luts.push_back(module_luts[i]);
    group_luts.push_back(std::move(luts));
  }
  eval.total = model.predict_parallel(static_luts, static_region_luts,
                                      group_luts);
  eval.omega = eval.total - eval.t_static;
  return eval;
}

}  // namespace presp::core
