// The PR-ESP FPGA flow (paper Fig. 1) and the standard-flow baseline.
//
// run() executes the full pipeline on an SoC configuration:
//   1. parse + elaborate (static / reconfigurable separation),
//   2. parallel out-of-context synthesis (static netlist with black boxes,
//      one OoC checkpoint per partition member),
//   3. DPR floorplanning (pblock per partition),
//   4. size-driven strategy selection (Table I + runtime model),
//   5. static-part P&R with placeholder macros, then per-instance
//      in-context P&R of every partition member per the chosen grouping,
//   6. full + partial (compressed) bitstream generation.
//
// Physical P&R (placer/router) runs once per design; the *CPU minutes*
// reported for every stage come from the calibrated runtime model, exactly
// as the real flow's minutes come from Vivado. evaluate_schedule() exposes
// the model composition so benches can sweep tau without re-running the
// physical engines.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bitstream/bitstream.hpp"
#include "core/flow_cache.hpp"
#include "core/runtime_model.hpp"
#include "core/strategy.hpp"
#include "floorplan/floorplanner.hpp"
#include "pnr/engine.hpp"
#include "synth/synthesis.hpp"

namespace presp::core {

struct FlowOptions {
  synth::SynthOptions synth;
  floorplan::FloorplanOptions floorplan;
  pnr::PnrOptions pnr;
  RuntimeModelConstants model;
  /// Worker threads for the flow's task graphs (OoC synthesis fan-out and
  /// the strategy-shaped P&R schedule). <= 1 executes the identical graphs
  /// serially on the calling thread; results are bit-identical either way.
  int exec_threads = 0;
  int semi_tau = 2;  // the paper's evaluation fixes tau = 2 for semi-par
  /// Override Table I (used by the parallelism sweeps of Tables III/IV).
  std::optional<Strategy> force_strategy;
  std::optional<int> force_tau;
  /// Skip the placer/router (model-only run; bitstreams are not produced).
  bool run_physical = true;
  /// When set (and run_physical), every partial bitstream is written to
  /// this directory as a .pbs artifact (see bitstream/artifact_io.hpp).
  std::string artifacts_dir;
  /// Content-hashed incremental artifact cache (core/flow_cache.hpp).
  /// cache.dir empty = caching disabled; a warm run with an unchanged
  /// stage key skips that stage's synthesis/P&R entirely and replays the
  /// cached artifact, with results bit-identical to a cold run.
  FlowCacheOptions cache;
};

struct ModuleImplementation {
  std::string partition;
  std::string module;
  fabric::ResourceVec utilization;
  /// In-context P&R minutes attributed to this module by the model.
  double pnr_minutes = 0.0;
  double synth_minutes = 0.0;
  bool routed = false;
  std::size_t pbs_raw_bytes = 0;
  std::size_t pbs_compressed_bytes = 0;
};

/// Measured (host wall-clock) execution of the flow's task graphs, the
/// empirical counterpart of the analytical runtime model: the modeled
/// schedule predicts CPU *minutes* per Vivado run, the exec report records
/// how the actual task graph executed on this machine's pool.
struct FlowExecReport {
  int threads = 1;        // pool width used (1 = serial reference)
  std::size_t tasks = 0;  // synthesis + P&R graph nodes executed
  double synth_wall_seconds = 0.0;  // synthesis graph makespan
  double pnr_wall_seconds = 0.0;    // P&R graph makespan
  double wall_seconds = 0.0;        // sum of graph makespans
  double busy_seconds = 0.0;        // serial-equivalent work in the graphs
  /// Tasks the pool's workers obtained by stealing (0 for serial runs).
  std::uint64_t steals = 0;
  /// Steal probes that found the victim's deque empty or lost the race.
  std::uint64_t steal_failures = 0;
  /// Times a worker parked on the idle condition variable.
  std::uint64_t parks = 0;
  /// High-water mark of the pool's pending-task count.
  std::uint64_t max_queue_depth = 0;
  /// busy / wall: the speedup this schedule actually achieved.
  double measured_speedup = 1.0;
  /// Model cross-check: predicted serial P&R minutes over the predicted
  /// minutes of the chosen schedule (1.0 for the serial strategy).
  double model_speedup = 1.0;
};

struct FlowResult {
  std::string design;
  SizeMetrics metrics;
  StrategyDecision decision;
  floorplan::Floorplan plan;
  /// Pblock per partition name.
  std::map<std::string, fabric::Pblock> pblocks;

  double synth_makespan_minutes = 0.0;
  double t_static_minutes = 0.0;
  /// max over parallel instances of (context overhead + module runs);
  /// zero for serial (folded into t_static + marginals).
  double omega_minutes = 0.0;
  double pnr_total_minutes = 0.0;
  double total_minutes = 0.0;  // synth + P&R

  std::vector<ModuleImplementation> modules;
  bool physical_ok = false;       // static + all partition runs routed
  std::size_t full_bitstream_bytes = 0;
  /// Worst achieved clock over the static run and every partition run
  /// (0 when run_physical is off).
  double achieved_fmax_mhz = 0.0;
  /// achieved_fmax_mhz meets the configuration's clock_mhz target.
  bool timing_met = false;
  FlowExecReport exec;
  /// Cache activity for this run (all zeros when caching is disabled).
  bool cache_enabled = false;
  FlowCacheStats cache;

  const ModuleImplementation& module(const std::string& partition,
                                     const std::string& module_name) const;
};

struct StandardFlowResult {
  std::string design;
  double synth_minutes = 0.0;
  double pnr_minutes = 0.0;
  double total_minutes = 0.0;
};

class PrEspFlow {
 public:
  PrEspFlow(const fabric::Device& device,
            const netlist::ComponentLibrary& lib, FlowOptions options = {});

  /// Full PR-ESP flow ("a single make target").
  FlowResult run(const netlist::SocConfig& config) const;

  /// Baseline: Xilinx's standard DPR flow in one Vivado instance.
  StandardFlowResult run_standard(const netlist::SocConfig& config) const;

  const RuntimeModel& model() const { return model_; }

 private:
  const fabric::Device& device_;
  const netlist::ComponentLibrary& lib_;
  FlowOptions options_;
  RuntimeModel model_;
};

struct ScheduleEval {
  double t_static = 0.0;
  double omega = 0.0;
  double total = 0.0;
};

/// Pure model composition for a (strategy, tau) choice over the given
/// module sizes; used for the parallelism sweeps.
ScheduleEval evaluate_schedule(const RuntimeModel& model,
                               long long static_luts,
                               long long static_region_luts,
                               const std::vector<long long>& module_luts,
                               Strategy strategy, int tau);

}  // namespace presp::core
