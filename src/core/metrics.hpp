// Size metrics and design classification (paper Section IV, Eq. 1).
//
// For an SoC with N reconfigurable partitions on a device with LUT_tot
// LUTs:
//   kappa    = lut_static / LUT_tot
//   alpha_av = (sum_i lut_i) / (N * LUT_tot)
//   gamma    = (sum_i lut_i) / lut_static
//
// Designs fall into five classes:
//   Group 1 (kappa >> alpha_av):
//     Class 1.1: gamma < 1     Class 1.2: gamma > 1   Class 1.3: gamma ~ 1
//   Group 2 (kappa ~ alpha_av or kappa << alpha_av):
//     Class 2.1: gamma > 1     Class 2.2: gamma ~ 1 (single partition)
// (gamma < 1 is impossible in Group 2: if the static region is smaller
// than the average partition it cannot exceed their sum.)
#pragma once

#include <string>

#include "fabric/device.hpp"
#include "netlist/rtl.hpp"

namespace presp::core {

struct SizeMetrics {
  double kappa = 0.0;     // static fraction of the device
  double alpha_av = 0.0;  // average partition fraction of the device
  double gamma = 0.0;     // total reconfigurable over static
  int num_partitions = 0;
  long long static_luts = 0;
  long long reconf_luts = 0;  // sum of per-partition representative sizes
};

/// Computes Eq. 1 from the elaborated design. Partition size is the
/// representative (largest) member including the reconfigurable wrapper.
SizeMetrics compute_metrics(const netlist::SocRtl& rtl,
                            const netlist::ComponentLibrary& lib,
                            const fabric::Device& device);

enum class DesignClass {
  kClass11,  // large static, small total reconfigurable
  kClass12,  // large static, larger total reconfigurable
  kClass13,  // large static ~ total reconfigurable
  kClass21,  // small static, reconfigurable dominates
  kClass22,  // small static, single partition
};

const char* to_string(DesignClass cls);

struct ClassificationBands {
  /// kappa >> alpha_av when kappa >= dominance * alpha_av.
  double dominance = 2.2;
  /// gamma ~ 1 band half-width: |gamma - 1| <= gamma_band.
  double gamma_band = 0.15;
};

/// Maps metrics to the class grid. Throws InvalidArgument for metric
/// combinations the paper proves impossible (Group 2 with gamma < 1 and
/// more than one partition).
DesignClass classify(const SizeMetrics& metrics,
                     const ClassificationBands& bands = {});

}  // namespace presp::core
