#include "core/metrics.hpp"

#include "util/error.hpp"

namespace presp::core {

SizeMetrics compute_metrics(const netlist::SocRtl& rtl,
                            const netlist::ComponentLibrary& lib,
                            const fabric::Device& device) {
  SizeMetrics m;
  m.num_partitions = static_cast<int>(rtl.partitions().size());
  m.static_luts = rtl.static_resources(lib).luts;
  m.reconf_luts = rtl.total_reconfigurable(lib).luts;
  const auto device_luts = static_cast<double>(device.total().luts);
  PRESP_REQUIRE(device_luts > 0, "device has no LUTs");
  m.kappa = static_cast<double>(m.static_luts) / device_luts;
  if (m.num_partitions > 0) {
    m.alpha_av = static_cast<double>(m.reconf_luts) /
                 (static_cast<double>(m.num_partitions) * device_luts);
    PRESP_REQUIRE(m.static_luts > 0, "design has no static part");
    m.gamma = static_cast<double>(m.reconf_luts) /
              static_cast<double>(m.static_luts);
  }
  return m;
}

const char* to_string(DesignClass cls) {
  switch (cls) {
    case DesignClass::kClass11: return "1.1";
    case DesignClass::kClass12: return "1.2";
    case DesignClass::kClass13: return "1.3";
    case DesignClass::kClass21: return "2.1";
    case DesignClass::kClass22: return "2.2";
  }
  return "?";
}

DesignClass classify(const SizeMetrics& metrics,
                     const ClassificationBands& bands) {
  PRESP_REQUIRE(metrics.num_partitions > 0,
                "classification requires at least one partition");
  const bool group1 = metrics.kappa >= bands.dominance * metrics.alpha_av;
  const bool gamma_one =
      metrics.gamma >= 1.0 - bands.gamma_band &&
      metrics.gamma <= 1.0 + bands.gamma_band;
  if (group1) {
    if (gamma_one) return DesignClass::kClass13;
    return metrics.gamma < 1.0 ? DesignClass::kClass11
                               : DesignClass::kClass12;
  }
  // Group 2: static comparable to or smaller than the average partition.
  // "gamma < 1 denotes an impossible condition: if the size of a static
  // region is smaller than the average reconfigurable part, then it is
  // impossible for the ratio of the total reconfigurable area to the
  // static area to be smaller than one."
  if (metrics.gamma < 1.0 - bands.gamma_band)
    throw InvalidArgument(
        "impossible metric combination: Group 2 with gamma < 1");
  if (gamma_one) return DesignClass::kClass22;  // the single-tile case
  return DesignClass::kClass21;
}

}  // namespace presp::core
