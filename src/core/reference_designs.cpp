#include "core/reference_designs.hpp"

#include "hls/library.hpp"
#include "util/error.hpp"

namespace presp::core {

namespace {

netlist::SocConfig base_3x3(const std::string& name) {
  netlist::SocConfig soc;
  soc.name = name;
  soc.device = "vc707";
  soc.rows = 3;
  soc.cols = 3;
  soc.tiles.assign(9, netlist::TileSpec{});
  soc.tile(0, 0).type = netlist::TileType::kCpu;
  soc.tile(0, 1).type = netlist::TileType::kMem;
  soc.tile(0, 2).type = netlist::TileType::kAux;
  return soc;
}

void set_reconf(netlist::SocConfig& soc, int row, int col,
                const std::string& acc) {
  soc.tile(row, col).type = netlist::TileType::kReconf;
  soc.tile(row, col).accelerators = {acc};
}

}  // namespace

netlist::SocConfig characterization_soc(int index) {
  switch (index) {
    case 1: {
      // 4x5, 16 MAC tiles + CPU/MEM/AUX + 1 empty.
      netlist::SocConfig soc;
      soc.name = "soc_1";
      soc.device = "vc707";
      soc.rows = 4;
      soc.cols = 5;
      soc.tiles.assign(20, netlist::TileSpec{});
      soc.tile(0, 0).type = netlist::TileType::kCpu;
      soc.tile(0, 1).type = netlist::TileType::kMem;
      soc.tile(0, 2).type = netlist::TileType::kAux;
      int placed = 0;
      for (int r = 0; r < 4 && placed < 16; ++r)
        for (int c = 0; c < 5 && placed < 16; ++c) {
          if (r == 0 && c <= 3) continue;  // CPU/MEM/AUX + one empty tile
          set_reconf(soc, r, c, "mac");
          ++placed;
        }
      soc.validate();
      return soc;
    }
    case 2: {
      auto soc = base_3x3("soc_2");
      set_reconf(soc, 1, 0, "conv2d");
      set_reconf(soc, 1, 1, "gemm");
      set_reconf(soc, 1, 2, "fft");
      set_reconf(soc, 2, 0, "sort");
      soc.validate();
      return soc;
    }
    case 3: {
      auto soc = base_3x3("soc_3");
      set_reconf(soc, 1, 0, "conv2d");
      set_reconf(soc, 1, 1, "gemm");
      set_reconf(soc, 1, 2, "sort");
      soc.validate();
      return soc;
    }
    case 4: {
      auto soc = characterization_soc(2);
      soc.name = "soc_4";
      soc.tile(0, 0).cpu_in_reconfigurable_partition = true;
      soc.validate();
      return soc;
    }
    default:
      throw InvalidArgument("characterization SoC index must be 1..4");
  }
}

netlist::ComponentLibrary characterization_library() {
  auto lib = netlist::ComponentLibrary::with_builtins();
  hls::register_characterization_kernels(lib);
  return lib;
}

}  // namespace presp::core
