#include "core/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "util/error.hpp"

namespace presp::core {

double predict_observation(const fabric::Device& device,
                           const RuntimeModelConstants& constants,
                           const Observation& observation) {
  const RuntimeModel model(device, constants);
  if (observation.serial) {
    PRESP_REQUIRE(observation.groups.size() == 1,
                  "serial observation must have exactly one group");
    return model.predict_serial(observation.static_luts,
                                observation.static_region_luts,
                                observation.groups.front());
  }
  return model.predict_parallel(observation.static_luts,
                                observation.static_region_luts,
                                observation.groups);
}

double calibration_error(const fabric::Device& device,
                         const RuntimeModelConstants& constants,
                         const std::vector<Observation>& observations) {
  PRESP_REQUIRE(!observations.empty(), "no observations");
  double acc = 0.0;
  for (const Observation& obs : observations) {
    PRESP_REQUIRE(obs.measured_minutes > 0.0,
                  "observation with non-positive measurement");
    const double predicted = predict_observation(device, constants, obs);
    acc += std::abs(predicted - obs.measured_minutes) /
           obs.measured_minutes;
  }
  return acc / static_cast<double>(observations.size());
}

namespace {

/// Golden-section minimization of f over [lo, hi].
double golden_min(const std::function<double(double)>& f, double lo,
                  double hi, double tolerance, int* evaluations) {
  constexpr double kPhi = 0.6180339887498949;
  double a = lo;
  double b = hi;
  double x1 = b - kPhi * (b - a);
  double x2 = a + kPhi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  *evaluations += 2;
  while (b - a > tolerance * (std::abs(a) + std::abs(b) + 1e-12)) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kPhi * (b - a);
      f2 = f(x2);
    }
    ++*evaluations;
  }
  return f1 < f2 ? x1 : x2;
}

}  // namespace

CalibrationResult fit_constants(const fabric::Device& device,
                                const std::vector<Observation>& observations,
                                RuntimeModelConstants seed,
                                const CalibrationOptions& options) {
  PRESP_REQUIRE(observations.size() >= 4,
                "calibration needs at least 4 observations");
  PRESP_REQUIRE(options.search_span > 1.0, "search span must exceed 1");

  CalibrationResult result;
  result.constants = seed;
  result.initial_mape = calibration_error(device, seed, observations);

  // The knobs: pointers into the working constant set. Scale constants are
  // searched multiplicatively; exponents additively in a narrow band.
  RuntimeModelConstants& c = result.constants;
  struct Knob {
    double* value;
    bool multiplicative;
  };
  std::vector<Knob> knobs{{&c.ts0, true},  {&c.ts1, true},
                          {&c.r1, true},   {&c.ctx1, true},
                          {&c.m1, true},   {&c.cong, true},
                          {&c.contention, true}};
  if (options.fit_exponents) {
    knobs.push_back({&c.ts_exp, false});
    knobs.push_back({&c.r_exp, false});
    knobs.push_back({&c.m_exp, false});
  }

  int evaluations = 0;
  for (int sweep = 0; sweep < options.sweeps; ++sweep) {
    double improved = 0.0;
    for (const Knob& knob : knobs) {
      const double before =
          calibration_error(device, c, observations);
      const double original = *knob.value;
      const auto objective = [&](double x) {
        *knob.value = x;
        const double err = calibration_error(device, c, observations);
        *knob.value = original;
        return err;
      };
      double best;
      if (knob.multiplicative) {
        const double lo = original / options.search_span;
        const double hi = std::max(original * options.search_span, 1e-6);
        best = golden_min(objective, lo, hi, options.tolerance,
                          &evaluations);
      } else {
        best = golden_min(objective, std::max(0.8, original - 0.3),
                          original + 0.3, options.tolerance, &evaluations);
      }
      *knob.value = best;
      const double after = calibration_error(device, c, observations);
      if (after > before) *knob.value = original;  // reject regressions
      improved += std::max(0.0, before - after);
    }
    if (improved < 1e-6) break;
  }

  result.final_mape = calibration_error(device, c, observations);
  result.evaluations = evaluations;
  return result;
}

}  // namespace presp::core
