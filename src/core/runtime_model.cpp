#include "core/runtime_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace presp::core {

double RuntimeModel::congestion(double utilization) const {
  PRESP_REQUIRE(utilization >= 0.0, "negative utilization");
  return 1.0 + c_.cong * utilization * utilization;
}

double RuntimeModel::static_pnr(long long static_luts,
                                long long static_region_luts) const {
  PRESP_REQUIRE(static_region_luts > 0, "empty static region");
  const double us = static_cast<double>(static_luts) /
                    static_cast<double>(static_region_luts);
  return c_.ts0 +
         c_.ts1 *
             std::pow(static_cast<double>(static_luts) / 1000.0, c_.ts_exp) *
             congestion(us);
}

double RuntimeModel::in_context_module(long long module_luts,
                                       long long static_luts,
                                       int tau) const {
  const double u =
      (static_cast<double>(static_luts) + static_cast<double>(module_luts)) /
      device_luts_;
  const double machine =
      1.0 + c_.contention *
                std::max(0, tau - c_.contention_free_tau);
  return c_.r1 *
         std::pow(static_cast<double>(module_luts) / 1000.0, c_.r_exp) *
         congestion(u) * machine;
}

double RuntimeModel::context_overhead(long long static_luts) const {
  return c_.ctx1 * static_cast<double>(static_luts) / 1000.0;
}

double RuntimeModel::serial_marginal(long long module_luts) const {
  return c_.m1 *
         std::pow(static_cast<double>(module_luts) / 1000.0, c_.m_exp);
}

double RuntimeModel::synthesis(long long luts) const {
  return c_.syn0 + c_.syn1 * static_cast<double>(luts) / 1000.0;
}

double RuntimeModel::predict_serial(
    long long static_luts, long long static_region_luts,
    const std::vector<long long>& module_luts) const {
  double total = static_pnr(static_luts, static_region_luts);
  for (const long long luts : module_luts) total += serial_marginal(luts);
  return total;
}

double RuntimeModel::predict_parallel(
    long long static_luts, long long static_region_luts,
    const std::vector<std::vector<long long>>& groups) const {
  PRESP_REQUIRE(!groups.empty(), "parallel prediction needs groups");
  const int tau = static_cast<int>(groups.size());
  double omega = 0.0;
  for (const auto& group : groups) {
    double t = context_overhead(static_luts);
    for (const long long luts : group)
      t += in_context_module(luts, static_luts, tau);
    omega = std::max(omega, t);
  }
  return static_pnr(static_luts, static_region_luts) + omega;
}

double RuntimeModel::predict_standard(
    long long static_luts, long long static_region_luts,
    const std::vector<long long>& module_luts) const {
  return c_.mono_factor *
         predict_serial(static_luts, static_region_luts, module_luts);
}

std::vector<std::vector<std::size_t>> balanced_groups(
    const std::vector<long long>& module_luts, int tau) {
  PRESP_REQUIRE(tau >= 1, "tau must be >= 1");
  const int groups_n =
      std::min<int>(tau, std::max<int>(1, static_cast<int>(
                                              module_luts.size())));
  std::vector<std::size_t> order(module_luts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (module_luts[a] != module_luts[b])
      return module_luts[a] > module_luts[b];
    return a < b;
  });
  std::vector<std::vector<std::size_t>> groups(
      static_cast<std::size_t>(groups_n));
  std::vector<long long> load(static_cast<std::size_t>(groups_n), 0);
  for (const std::size_t i : order) {
    const std::size_t g = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    groups[g].push_back(i);
    load[g] += module_luts[i];
  }
  return groups;
}

}  // namespace presp::core
