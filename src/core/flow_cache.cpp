#include "core/flow_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "bitstream/artifact_io.hpp"
#include "racecheck/annot.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace presp::core {

namespace fs = std::filesystem;

namespace {

// Entry schema tags (CacheBlob::kind).
constexpr std::uint32_t kKindStaticMeta = 1;
constexpr std::uint32_t kKindStaticPnr = 2;
constexpr std::uint32_t kKindModule = 3;

// ------------------------------------------------ payload serialization
// Flat little-endian append-only encoding; every entry kind has a fixed
// field order, so a payload that decodes short or with trailing bytes is
// corrupt (the blob-level hash catches virtually all of that first).

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_i32(std::string& out, std::int32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>(static_cast<std::uint32_t>(v) >> (8 * i)));
}

void put_u32(std::string& out, std::uint32_t v) {
  put_i32(out, static_cast<std::int32_t>(v));
}

void put_double(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_string(std::string& out, const std::string& s) {
  put_u64(out, s.size());
  out.append(s);
}

void put_resources(std::string& out, const fabric::ResourceVec& r) {
  put_i64(out, r.luts);
  put_i64(out, r.ffs);
  put_i64(out, r.bram36);
  put_i64(out, r.dsp);
}

class Reader {
 public:
  explicit Reader(const std::string& data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    pos_ += 8;
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::int32_t i32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    pos_ += 4;
    return static_cast<std::int32_t>(v);
  }
  std::uint32_t u32() { return static_cast<std::uint32_t>(i32()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint64_t len = u64();
    need(len);
    std::string s = data_.substr(pos_, static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return s;
  }
  fabric::ResourceVec resources() {
    fabric::ResourceVec r;
    r.luts = i64();
    r.ffs = i64();
    r.bram36 = i64();
    r.dsp = i64();
    return r;
  }
  void done() const {
    if (pos_ != data_.size()) throw Error("cache payload has trailing bytes");
  }

 private:
  void need(std::uint64_t n) const {
    if (pos_ + n > data_.size()) throw Error("cache payload truncated");
  }
  const std::string& data_;
  std::size_t pos_ = 0;
};

std::string encode(const StaticMetaEntry& e) {
  std::string out;
  put_resources(out, e.utilization);
  return out;
}

StaticMetaEntry decode_static_meta(const std::string& payload) {
  Reader r(payload);
  StaticMetaEntry e;
  e.utilization = r.resources();
  r.done();
  return e;
}

std::string encode(const StaticPnrEntry& e) {
  std::string out;
  out.push_back(e.ok ? 1 : 0);
  put_double(out, e.fmax_mhz);
  put_u64(out, e.full_bitstream_bytes);
  put_i32(out, e.cols);
  put_i32(out, e.rows);
  put_u64(out, e.usage.size());
  for (const std::int32_t u : e.usage) put_i32(out, u);
  return out;
}

StaticPnrEntry decode_static_pnr(const std::string& payload) {
  Reader r(payload);
  StaticPnrEntry e;
  e.ok = r.u8() != 0;
  e.fmax_mhz = r.f64();
  e.full_bitstream_bytes = r.u64();
  e.cols = r.i32();
  e.rows = r.i32();
  const std::uint64_t n = r.u64();
  if (n > (1ull << 26)) throw Error("implausible routing state size");
  e.usage.resize(static_cast<std::size_t>(n));
  for (auto& u : e.usage) u = r.i32();
  r.done();
  return e;
}

std::string encode(const ModuleEntry& e) {
  std::string out;
  put_resources(out, e.utilization);
  out.push_back(e.routed ? 1 : 0);
  put_double(out, e.fmax_mhz);
  put_string(out, e.pbs.design);
  put_string(out, e.pbs.module);
  put_i32(out, e.pbs.pblock.col_lo);
  put_i32(out, e.pbs.pblock.col_hi);
  put_i32(out, e.pbs.pblock.row_lo);
  put_i32(out, e.pbs.pblock.row_hi);
  out.push_back(e.pbs.partial ? 1 : 0);
  put_u32(out, e.pbs.crc);
  put_u64(out, e.pbs.words.size());
  const auto compressed = bitstream::rle_compress(e.pbs.words);
  put_u64(out, compressed.size());
  for (const std::uint32_t w : compressed) put_u32(out, w);
  return out;
}

ModuleEntry decode_module(const std::string& payload) {
  Reader r(payload);
  ModuleEntry e;
  e.utilization = r.resources();
  e.routed = r.u8() != 0;
  e.fmax_mhz = r.f64();
  e.pbs.design = r.str();
  e.pbs.module = r.str();
  e.pbs.pblock.col_lo = r.i32();
  e.pbs.pblock.col_hi = r.i32();
  e.pbs.pblock.row_lo = r.i32();
  e.pbs.pblock.row_hi = r.i32();
  e.pbs.partial = r.u8() != 0;
  e.pbs.crc = r.u32();
  const std::uint64_t word_count = r.u64();
  const std::uint64_t compressed_count = r.u64();
  constexpr std::uint64_t kMaxWords = 1ull << 30;
  if (word_count > kMaxWords || compressed_count > 2 * word_count + 2)
    throw Error("implausible cached bitstream size");
  std::vector<std::uint32_t> compressed(
      static_cast<std::size_t>(compressed_count));
  for (auto& w : compressed) w = r.u32();
  r.done();
  e.pbs.words = bitstream::rle_decompress(compressed, word_count);
  if (e.pbs.words.size() != word_count)
    throw Error("cached bitstream payload length mismatch");
  if (bitstream::crc32(e.pbs.words) != e.pbs.crc)
    throw Error("cached bitstream CRC mismatch");
  return e;
}

}  // namespace

// --------------------------------------------------------- KeyBuilder

FlowCache::KeyBuilder::KeyBuilder()
    : hash_(bitstream::fnv1a64(std::string(kFlowCacheToolVersion))) {}

FlowCache::KeyBuilder& FlowCache::KeyBuilder::add(const std::string& field) {
  // Fold the field length first so "ab"+"c" != "a"+"bc".
  std::string chunk;
  put_u64(chunk, field.size());
  chunk += field;
  hash_ = bitstream::fnv1a64(chunk) ^ (hash_ * 0x100000001b3ull);
  return *this;
}

FlowCache::KeyBuilder& FlowCache::KeyBuilder::add(long long value) {
  std::string chunk;
  put_i64(chunk, value);
  hash_ = bitstream::fnv1a64(chunk) ^ (hash_ * 0x100000001b3ull);
  return *this;
}

FlowCache::KeyBuilder& FlowCache::KeyBuilder::add(double value) {
  std::string chunk;
  put_double(chunk, value);
  hash_ = bitstream::fnv1a64(chunk) ^ (hash_ * 0x100000001b3ull);
  return *this;
}

// ---------------------------------------------------------- FlowCache

FlowCache::FlowCache(FlowCacheOptions options) : options_(std::move(options)) {
  if (options_.dir.empty())
    throw InvalidArgument("FlowCache requires a cache directory");
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (!fs::is_directory(options_.dir))
    throw InvalidArgument("cannot create flow cache directory '" +
                          options_.dir + "'");
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    if (entry.path().extension() != ".pfc") continue;
    stats_.bytes += static_cast<long long>(entry.file_size(ec));
  }
}

std::string FlowCache::path_for(std::uint64_t key) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.pfc",
                static_cast<unsigned long long>(key));
  return options_.dir + "/" + name;
}

void FlowCache::touch(const std::string& path) {
  // Best effort: a failed touch only weakens LRU ordering.
  std::error_code ec;
  fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
}

void FlowCache::reject(const std::string& path, const std::string& why) {
  ++stats_.poisoned;
  ++stats_.misses;
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (!ec) stats_.bytes -= static_cast<long long>(size);
  fs::remove(path, ec);
  PRESP_WARN("flow-cache") << "rejected cache entry " << path << ": " << why;
}

std::optional<std::string> FlowCache::load(std::uint64_t key,
                                           std::uint32_t kind) {
  // The cache is driver-thread-only by contract (see flow_cache.hpp);
  // load() mutates LRU/stat state, so it is a write for racecheck and
  // concurrent probes from two threads get flagged.
  PRESP_RC_WRITE(this, "core.flow-cache");
  const std::string path = path_for(key);
  std::error_code ec;
  if (!fs::exists(path, ec)) {
    ++stats_.misses;
    return std::nullopt;
  }
  try {
    bitstream::CacheBlob blob = bitstream::read_cache_blob(path, key);
    if (blob.kind != kind)
      throw Error("cache entry kind mismatch (schema drift)");
    ++stats_.hits;
    touch(path);
    return std::move(blob.payload);
  } catch (const std::exception& e) {
    // Poisoned entry: reject, remove, count as a miss. Never trust
    // partial content.
    reject(path, e.what());
    return std::nullopt;
  }
}

void FlowCache::store(std::uint64_t key, std::uint32_t kind,
                      std::string payload) {
  PRESP_RC_WRITE(this, "core.flow-cache");
  const std::string path = path_for(key);
  std::error_code ec;
  if (fs::exists(path, ec)) {
    const auto size = fs::file_size(path, ec);
    if (!ec) stats_.bytes -= static_cast<long long>(size);
  }
  bitstream::CacheBlob blob;
  blob.kind = kind;
  blob.key = key;
  blob.payload = std::move(payload);
  bitstream::write_cache_blob(blob, path);
  const auto size = fs::file_size(path, ec);
  if (!ec) stats_.bytes += static_cast<long long>(size);
  ++stats_.stores;
  evict_to_fit();
}

void FlowCache::evict_to_fit() {
  if (options_.max_bytes <= 0 || stats_.bytes <= options_.max_bytes) return;
  struct File {
    fs::path path;
    fs::file_time_type mtime;
    long long size;
  };
  std::vector<File> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    if (entry.path().extension() != ".pfc") continue;
    files.push_back({entry.path(), entry.last_write_time(ec),
                     static_cast<long long>(entry.file_size(ec))});
  }
  std::sort(files.begin(), files.end(),
            [](const File& a, const File& b) { return a.mtime < b.mtime; });
  for (const File& file : files) {
    if (stats_.bytes <= options_.max_bytes) break;
    fs::remove(file.path, ec);
    if (!ec) {
      stats_.bytes -= file.size;
      ++stats_.evictions;
    }
  }
}

std::optional<StaticMetaEntry> FlowCache::load_static_meta(std::uint64_t key) {
  const auto payload = load(key, kKindStaticMeta);
  if (!payload) return std::nullopt;
  try {
    return decode_static_meta(*payload);
  } catch (const std::exception& e) {
    reject(path_for(key), e.what());
    return std::nullopt;
  }
}

void FlowCache::store_static_meta(std::uint64_t key,
                                  const StaticMetaEntry& entry) {
  store(key, kKindStaticMeta, encode(entry));
}

std::optional<StaticPnrEntry> FlowCache::load_static_pnr(std::uint64_t key) {
  const auto payload = load(key, kKindStaticPnr);
  if (!payload) return std::nullopt;
  try {
    return decode_static_pnr(*payload);
  } catch (const std::exception& e) {
    reject(path_for(key), e.what());
    return std::nullopt;
  }
}

void FlowCache::store_static_pnr(std::uint64_t key,
                                 const StaticPnrEntry& entry) {
  store(key, kKindStaticPnr, encode(entry));
}

std::optional<ModuleEntry> FlowCache::load_module(std::uint64_t key) {
  const auto payload = load(key, kKindModule);
  if (!payload) return std::nullopt;
  try {
    return decode_module(*payload);
  } catch (const std::exception& e) {
    reject(path_for(key), e.what());
    return std::nullopt;
  }
}

void FlowCache::store_module(std::uint64_t key, const ModuleEntry& entry) {
  store(key, kKindModule, encode(entry));
}

}  // namespace presp::core
