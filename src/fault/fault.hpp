// Deterministic cross-layer fault injection (the chaos harness behind the
// resilience work of ROADMAP's "handle every scenario" goal).
//
// A FaultPlan expands a seed into a reproducible schedule of FaultSpecs;
// the FaultInjector arms them and answers hook queries from the
// instrumented layers (ICAP/DFXC in the aux tile, decoupler/wrapper in
// the reconfigurable tile, the NoC's send path). Every hook is
// count-triggered — "the Nth matching event fires the fault" — so a given
// plan replays bit-identically against the same workload: no wall clock,
// no free-running processes, just the xoshiro-seeded schedule.
//
// Fault sites (matrix in DESIGN.md §8):
//   kIcapStall       — the Nth ICAP bitstream transfer wedges mid-stream
//   kDfxcHang        — the DFX controller never completes after a trigger
//   kDecouplerStuck  — a decoupler release (write 0) is silently dropped
//   kAccelHang       — an accelerator run never raises its done interrupt
//   kSeuFlip         — an SEU upsets a configured partition's frames
//   kNocCorrupt      — the Nth packet on a NoC plane is poisoned
//
// Fleet-level sites (hooked by fleet::FleetManager, not the SoC model;
// `tile` addresses the shard index instead of a tile):
//   kShardStall      — a whole SoC shard stops making progress for a
//                      while (control-plane wedge / host stall)
//   kBurstOverload   — the open-loop client population bursts far above
//                      its nominal arrival rate
//
// Runtime-level sites (hooked by runtime::Repacker):
//   kRepackAbort     — the Nth repack migration aborts mid-flight, after
//                      the rebased image is staged but before the region
//                      move commits (the repacker must roll back)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace presp::fault {

enum class FaultSite : std::uint8_t {
  kIcapStall = 0,
  kDfxcHang,
  kDecouplerStuck,
  kAccelHang,
  kSeuFlip,
  kNocCorrupt,
  kShardStall,
  kBurstOverload,
  kRepackAbort,
};
inline constexpr int kNumFaultSites = 9;
/// Sites hooked by the SoC model itself (the first six). WAMI-scale chaos
/// soaks assert coverage over these; the fleet-level sites above only
/// fire when a FleetManager is driving the hooks.
inline constexpr int kNumSocFaultSites = 6;

const char* to_string(FaultSite site);

/// One armed fault. `trigger_count` is 1-based: the fault fires on the
/// Nth matching event observed *after arming* (per site+target stream).
struct FaultSpec {
  FaultSite site = FaultSite::kIcapStall;
  /// Target reconfigurable tile (grid index); -1 matches any tile.
  int tile = -1;
  /// NoC plane index for kNocCorrupt; ignored elsewhere.
  int plane = -1;
  std::uint64_t trigger_count = 1;

  bool operator==(const FaultSpec&) const = default;
};

struct FaultInjectorStats {
  /// Faults injected per site (indexed by FaultSite).
  std::uint64_t injected[kNumFaultSites] = {};
  /// Hook events observed per site (fault fired or not).
  std::uint64_t observed[kNumFaultSites] = {};

  std::uint64_t total_injected() const {
    std::uint64_t sum = 0;
    for (const auto n : injected) sum += n;
    return sum;
  }
};

/// Arms FaultSpecs and answers the layer hooks. All hooks are O(armed)
/// and consume the fault when it fires (one-shot).
class FaultInjector {
 public:
  void arm(FaultSpec spec);
  void arm(const std::vector<FaultSpec>& specs);

  /// Number of armed faults that have not fired yet.
  std::size_t pending() const { return armed_.size(); }

  // ---- hooks (called by the instrumented components) ----------------

  /// Aux tile, start of the ICAP streaming phase. True = wedge the
  /// transfer (the caller models the stall; recovery is a DFXC reset).
  bool on_icap_transfer(int target_tile);
  /// Aux tile, end of a successful reconfiguration. True = suppress the
  /// completion (controller hangs with STATUS busy).
  bool on_dfxc_completion(int target_tile);
  /// Reconfigurable tile, decoupler release (write 0). True = the write
  /// is dropped and the decoupler stays engaged.
  bool on_decoupler_release(int tile);
  /// Reconfigurable tile, accelerator start. True = the datapath wedges
  /// before producing output (done interrupt never fires).
  bool on_accelerator_start(int tile);
  /// Reconfigurable tile, accelerator start (second stream): true = an
  /// SEU has upset the partition's configuration frames; the wrapper
  /// rejects commands until the partition is rewritten.
  bool on_seu_check(int tile);
  /// NoC send path. True = poison this packet (receivers detect via
  /// Packet::poisoned and run their own recovery).
  bool on_noc_packet(int plane);
  /// Fleet dispatcher, once per shard per scheduling quantum. True = the
  /// shard stalls (stops making progress) for the fleet's configured
  /// stall window.
  bool on_shard_stall(int shard);
  /// Synthetic load generator, once per arrival batch. True = the client
  /// population bursts above its nominal open-loop rate.
  bool on_burst_overload(int shard);
  /// Repacker, once per attempted migration (after the rebased image is
  /// staged, before the reprogram commits). True = abort this migration;
  /// the repacker rolls back and the region map is unchanged.
  bool on_repack_abort(int tile);

  const FaultInjectorStats& stats() const { return stats_; }

 private:
  struct Armed {
    FaultSpec spec;
    std::uint64_t remaining = 1;  // matching events until it fires
  };
  bool fire(FaultSite site, int tile, int plane);

  std::vector<Armed> armed_;
  FaultInjectorStats stats_;
};

// ---------------------------------------------------------------------------

/// Relative weight of each fault site in a generated plan. Zero disables
/// the site.
struct FaultMix {
  double icap_stall = 1.0;
  double dfxc_hang = 1.0;
  double decoupler_stuck = 1.0;
  double accel_hang = 1.0;
  double seu_flip = 1.0;
  double noc_corrupt = 1.0;
  /// Fleet-level sites default to 0 so SoC-scale plans (and their seeded
  /// schedules) are unchanged; fleet soaks opt in explicitly.
  double shard_stall = 0.0;
  double burst_overload = 0.0;
  /// Repacker site, likewise opt-in: only defrag soaks weight it.
  double repack_abort = 0.0;
};

struct FaultPlanOptions {
  std::uint64_t seed = 1;
  /// Total faults to schedule.
  int faults = 16;
  /// Candidate target tiles (reconfigurable tile grid indices).
  std::vector<int> tiles;
  /// Candidate NoC planes for kNocCorrupt (defaults to DMA-rsp +
  /// interrupt when empty — the planes whose loss is recoverable).
  std::vector<int> planes;
  /// Trigger counts are drawn uniformly from [1, max_trigger_count]:
  /// spreads faults across the event stream instead of front-loading.
  std::uint64_t max_trigger_count = 8;
  FaultMix mix;
};

/// Deterministic plan generation: the same options (seed included)
/// produce the identical schedule on every platform.
class FaultPlan {
 public:
  explicit FaultPlan(const FaultPlanOptions& options);

  const std::vector<FaultSpec>& specs() const { return specs_; }
  std::uint64_t seed() const { return seed_; }

  /// Arms the whole schedule on an injector.
  void arm(FaultInjector& injector) const;

  /// One line per spec, stable formatting — the determinism property
  /// tests and tools/run_chaos.sh diff this.
  std::string describe() const;

 private:
  std::uint64_t seed_ = 0;
  std::vector<FaultSpec> specs_;
};

}  // namespace presp::fault
