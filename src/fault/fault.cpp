#include "fault/fault.hpp"

#include <array>
#include <sstream>

#include "util/error.hpp"

namespace presp::fault {

const char* to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kIcapStall: return "icap-stall";
    case FaultSite::kDfxcHang: return "dfxc-hang";
    case FaultSite::kDecouplerStuck: return "decoupler-stuck";
    case FaultSite::kAccelHang: return "accel-hang";
    case FaultSite::kSeuFlip: return "seu-flip";
    case FaultSite::kNocCorrupt: return "noc-corrupt";
    case FaultSite::kShardStall: return "shard-stall";
    case FaultSite::kBurstOverload: return "burst-overload";
    case FaultSite::kRepackAbort: return "repack-abort";
  }
  return "?";
}

void FaultInjector::arm(FaultSpec spec) {
  PRESP_REQUIRE(spec.trigger_count >= 1, "trigger_count is 1-based");
  armed_.push_back(Armed{spec, spec.trigger_count});
}

void FaultInjector::arm(const std::vector<FaultSpec>& specs) {
  for (const FaultSpec& spec : specs) arm(spec);
}

bool FaultInjector::fire(FaultSite site, int tile, int plane) {
  ++stats_.observed[static_cast<int>(site)];
  for (std::size_t i = 0; i < armed_.size(); ++i) {
    Armed& a = armed_[i];
    if (a.spec.site != site) continue;
    if (a.spec.tile >= 0 && tile >= 0 && a.spec.tile != tile) continue;
    if (site == FaultSite::kNocCorrupt && a.spec.plane >= 0 &&
        a.spec.plane != plane)
      continue;
    if (--a.remaining > 0) continue;
    armed_.erase(armed_.begin() + static_cast<std::ptrdiff_t>(i));
    ++stats_.injected[static_cast<int>(site)];
    return true;
  }
  return false;
}

bool FaultInjector::on_icap_transfer(int target_tile) {
  return fire(FaultSite::kIcapStall, target_tile, -1);
}
bool FaultInjector::on_dfxc_completion(int target_tile) {
  return fire(FaultSite::kDfxcHang, target_tile, -1);
}
bool FaultInjector::on_decoupler_release(int tile) {
  return fire(FaultSite::kDecouplerStuck, tile, -1);
}
bool FaultInjector::on_accelerator_start(int tile) {
  return fire(FaultSite::kAccelHang, tile, -1);
}
bool FaultInjector::on_seu_check(int tile) {
  return fire(FaultSite::kSeuFlip, tile, -1);
}
bool FaultInjector::on_noc_packet(int plane) {
  return fire(FaultSite::kNocCorrupt, -1, plane);
}
bool FaultInjector::on_shard_stall(int shard) {
  return fire(FaultSite::kShardStall, shard, -1);
}
bool FaultInjector::on_burst_overload(int shard) {
  return fire(FaultSite::kBurstOverload, shard, -1);
}
bool FaultInjector::on_repack_abort(int tile) {
  return fire(FaultSite::kRepackAbort, tile, -1);
}

// ---------------------------------------------------------------------------

FaultPlan::FaultPlan(const FaultPlanOptions& options) : seed_(options.seed) {
  PRESP_REQUIRE(options.faults >= 0, "negative fault count");
  PRESP_REQUIRE(options.max_trigger_count >= 1,
                "max_trigger_count must be at least 1");

  // Fleet-level sites come last with zero default weight: the pick loop
  // below subtracts weights in declaration order, so plans generated
  // before those sites existed replay with identical schedules.
  const std::array<double, kNumFaultSites> weights = {
      options.mix.icap_stall,      options.mix.dfxc_hang,
      options.mix.decoupler_stuck, options.mix.accel_hang,
      options.mix.seu_flip,        options.mix.noc_corrupt,
      options.mix.shard_stall,     options.mix.burst_overload,
      options.mix.repack_abort,
  };
  double total_weight = 0.0;
  for (const double w : weights) {
    PRESP_REQUIRE(w >= 0.0, "fault mix weights must be non-negative");
    total_weight += w;
  }
  PRESP_REQUIRE(total_weight > 0.0, "fault mix disables every site");

  // DMA responses and interrupts: losing either is detectable and
  // recoverable (CRC retry / watchdog). Config-plane corruption is
  // modeled as ECC-corrected at the link and never scheduled by default.
  std::vector<int> planes = options.planes;
  if (planes.empty()) planes = {3 /* dma-rsp */, 4 /* interrupt */};

  Rng rng(seed_);
  specs_.reserve(static_cast<std::size_t>(options.faults));
  for (int i = 0; i < options.faults; ++i) {
    double pick = rng.next_double() * total_weight;
    int site = 0;
    for (; site < kNumFaultSites - 1; ++site) {
      if (pick < weights[static_cast<std::size_t>(site)]) break;
      pick -= weights[static_cast<std::size_t>(site)];
    }
    FaultSpec spec;
    spec.site = static_cast<FaultSite>(site);
    if (spec.site == FaultSite::kNocCorrupt) {
      spec.plane = planes[static_cast<std::size_t>(
          rng.next_below(planes.size()))];
    } else if (!options.tiles.empty()) {
      spec.tile = options.tiles[static_cast<std::size_t>(
          rng.next_below(options.tiles.size()))];
    }
    spec.trigger_count = 1 + rng.next_below(options.max_trigger_count);
    specs_.push_back(spec);
  }
}

void FaultPlan::arm(FaultInjector& injector) const {
  injector.arm(specs_);
}

std::string FaultPlan::describe() const {
  std::ostringstream out;
  out << "fault-plan seed=" << seed_ << " faults=" << specs_.size() << "\n";
  for (const FaultSpec& spec : specs_) {
    out << "  " << to_string(spec.site) << " tile=" << spec.tile
        << " plane=" << spec.plane << " trigger=" << spec.trigger_count
        << "\n";
  }
  return out.str();
}

}  // namespace presp::fault
