#include "trace/trace.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace presp::trace {

namespace {

// Per-thread buffer cache: a thread re-acquires its buffer whenever the
// session generation moves, so a writer that outlives a session can never
// touch a buffer the session has already collected under a new config.
struct ThreadCache {
  TraceBuffer* buffer = nullptr;
  std::uint64_t generation = 0;
};
thread_local ThreadCache t_cache;
// Name announced via set_thread_name(); applied when the thread's buffer
// is created, so naming works before a session starts.
thread_local std::string t_thread_name;

}  // namespace

// ---------------------------------------------------------------- buffer

/// One thread's event storage. Every append takes the buffer's own mutex:
/// it is uncontended in steady state (only the owning thread appends) and
/// only contends briefly with stop()'s collection sweep, which keeps the
/// whole scheme TSan-clean without lock-free machinery.
class TraceBuffer {
 public:
  TraceBuffer(std::size_t capacity, std::uint32_t tid,
              std::uint64_t generation, std::string thread_name)
      : capacity_(capacity),
        tid_(tid),
        generation_(generation),
        thread_name_(std::move(thread_name)) {}

  void append(TraceEvent event) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (events_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    event.tid = tid_;
    event.seq = next_seq_++;
    events_.push_back(std::move(event));
  }

  void set_name(std::string name) {
    std::lock_guard<std::mutex> lock(mutex_);
    thread_name_ = std::move(name);
  }

 private:
  friend class TraceSession;

  std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::size_t capacity_;
  std::uint64_t dropped_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint32_t tid_;
  std::uint64_t generation_;
  std::string thread_name_;
};

// --------------------------------------------------------------- session

TraceSession& TraceSession::instance() {
  static TraceSession session;
  return session;
}

void TraceSession::start(TraceConfig config) {
  std::lock_guard<std::mutex> lock(mutex_);
  detail::g_mask.store(0, std::memory_order_relaxed);
  // Previous-generation buffers are deliberately kept alive (see class
  // comment); the generation bump retires them from collection and from
  // every thread-local cache.
  sim_track_names_.clear();
  // Pre-name the reserved sim tracks; tile and NoC-plane tracks are named
  // lazily by their emitters.
  sim_track_names_[kTrackRuntime] = "runtime manager";
  sim_track_names_[kTrackSimKernel] = "sim kernel";
  sim_track_names_[kTrackApp] = "app";
  sim_track_names_[kTrackFleet] = "fleet dispatcher";
  config_ = config;
  next_tid_ = 0;
  start_ns_.store(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count()),
      std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_release);
  detail::g_mask.store(config.categories, std::memory_order_release);
}

TraceReport TraceSession::stop() {
  std::lock_guard<std::mutex> lock(mutex_);
  detail::g_mask.store(0, std::memory_order_release);
  const std::uint64_t generation = generation_.load(std::memory_order_relaxed);

  TraceReport report;
  report.config = config_;
  report.sim_track_names = sim_track_names_;
  report.thread_names.resize(next_tid_);
  for (auto& buffer : buffers_) {
    if (buffer->generation_ != generation) continue;
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex_);
    report.dropped += buffer->dropped_;
    if (buffer->tid_ < report.thread_names.size()) {
      report.thread_names[buffer->tid_] = buffer->thread_name_;
    }
    for (auto& event : buffer->events_) {
      report.events.push_back(std::move(event));
    }
    buffer->events_.clear();
    buffer->dropped_ = 0;
  }
  std::stable_sort(report.events.begin(), report.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.clock != b.clock) return a.clock < b.clock;
                     if (a.timestamp != b.timestamp)
                       return a.timestamp < b.timestamp;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.seq < b.seq;
                   });
  return report;
}

TraceReport TraceSession::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t generation = generation_.load(std::memory_order_relaxed);

  TraceReport report;
  report.config = config_;
  report.sim_track_names = sim_track_names_;
  report.thread_names.resize(next_tid_);
  for (const auto& buffer : buffers_) {
    if (buffer->generation_ != generation) continue;
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex_);
    report.dropped += buffer->dropped_;
    if (buffer->tid_ < report.thread_names.size()) {
      report.thread_names[buffer->tid_] = buffer->thread_name_;
    }
    report.events.insert(report.events.end(), buffer->events_.begin(),
                         buffer->events_.end());
  }
  std::stable_sort(report.events.begin(), report.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.clock != b.clock) return a.clock < b.clock;
                     if (a.timestamp != b.timestamp)
                       return a.timestamp < b.timestamp;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.seq < b.seq;
                   });
  return report;
}

std::uint64_t TraceSession::events_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t generation = generation_.load(std::memory_order_relaxed);
  std::uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    if (buffer->generation_ != generation) continue;
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex_);
    total += buffer->events_.size() + buffer->dropped_;
  }
  return total;
}

TraceBuffer* TraceSession::thread_buffer() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (detail::g_mask.load(std::memory_order_relaxed) == 0) return nullptr;
  const std::uint64_t generation = generation_.load(std::memory_order_relaxed);
  if (t_cache.buffer != nullptr && t_cache.generation == generation) {
    return t_cache.buffer;
  }
  buffers_.push_back(std::make_unique<TraceBuffer>(
      config_.buffer_capacity, next_tid_++, generation, t_thread_name));
  t_cache.buffer = buffers_.back().get();
  t_cache.generation = generation;
  return t_cache.buffer;
}

void TraceSession::emit(Category category, Phase phase, ClockDomain clock,
                        std::string name, std::uint64_t timestamp,
                        std::uint32_t track, double value) {
  // Fast path: the cached buffer is valid while the generation matches;
  // no session lock is touched. A stale cache (session cycled) falls back
  // to thread_buffer(), which registers a fresh buffer under the lock.
  TraceBuffer* buffer = t_cache.buffer;
  if (buffer == nullptr ||
      t_cache.generation != generation_.load(std::memory_order_acquire)) {
    buffer = thread_buffer();
    if (buffer == nullptr) return;
  }
  TraceEvent event;
  event.name = std::move(name);
  event.category = category;
  event.phase = phase;
  event.clock = clock;
  event.timestamp = timestamp;
  event.track = track;
  event.value = value;
  buffer->append(std::move(event));
}

std::uint64_t TraceSession::host_now_ns() const {
  const auto now = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  const std::uint64_t origin = start_ns_.load(std::memory_order_relaxed);
  return now >= origin ? now - origin : 0;
}

void TraceSession::name_current_thread(std::string name) {
  t_thread_name = name;
  if (detail::g_mask.load(std::memory_order_relaxed) == 0) return;
  TraceBuffer* buffer = thread_buffer();
  if (buffer != nullptr) buffer->set_name(std::move(name));
}

void TraceSession::name_sim_track(std::uint32_t track, std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  sim_track_names_[track] = std::move(name);
}

// ------------------------------------------------------------- emit API

namespace {

// Both helpers gate on the category mask, so call sites may emit
// unconditionally; the disabled cost is the one relaxed load in enabled().
void emit_host(Category category, Phase phase, std::string name,
               double value) {
  if (!enabled(category)) return;
  auto& session = TraceSession::instance();
  session.emit(category, phase, ClockDomain::kHost, std::move(name),
               session.host_now_ns(), 0, value);
}

void emit_sim(Category category, Phase phase, std::string name,
              std::uint64_t cycles, std::uint32_t track, double value) {
  if (!enabled(category)) return;
  TraceSession::instance().emit(category, phase, ClockDomain::kSim,
                                std::move(name), cycles, track, value);
}

}  // namespace

void begin(Category category, std::string name) {
  emit_host(category, Phase::kBegin, std::move(name), 0.0);
}

void end(Category category, std::string name) {
  emit_host(category, Phase::kEnd, std::move(name), 0.0);
}

void instant(Category category, std::string name, double value) {
  emit_host(category, Phase::kInstant, std::move(name), value);
}

void counter(Category category, std::string name, double value) {
  emit_host(category, Phase::kCounter, std::move(name), value);
}

void sim_begin(Category category, std::string name, std::uint64_t cycles,
               std::uint32_t track, double value) {
  emit_sim(category, Phase::kBegin, std::move(name), cycles, track, value);
}

void sim_end(Category category, std::string name, std::uint64_t cycles,
             std::uint32_t track) {
  emit_sim(category, Phase::kEnd, std::move(name), cycles, track, 0.0);
}

void sim_instant(Category category, std::string name, std::uint64_t cycles,
                 std::uint32_t track, double value) {
  emit_sim(category, Phase::kInstant, std::move(name), cycles, track, value);
}

void sim_counter(Category category, std::string name, std::uint64_t cycles,
                 std::uint32_t track, double value) {
  emit_sim(category, Phase::kCounter, std::move(name), cycles, track, value);
}

void set_thread_name(std::string name) {
  TraceSession::instance().name_current_thread(std::move(name));
}

void set_sim_track_name(std::uint32_t track, std::string name) {
  TraceSession::instance().name_sim_track(track, std::move(name));
}

// ------------------------------------------------------------ categories

const char* to_string(Category category) {
  switch (category) {
    case Category::kSim: return "sim";
    case Category::kNoc: return "noc";
    case Category::kRuntime: return "runtime";
    case Category::kExec: return "exec";
    case Category::kFlow: return "flow";
    case Category::kApp: return "app";
    case Category::kFleet: return "fleet";
  }
  return "unknown";
}

std::uint32_t parse_categories(const std::string& csv) {
  std::uint32_t mask = 0;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    const std::string token = csv.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) continue;
    if (token == "all") {
      mask |= kAllCategories;
    } else if (token == "default") {
      mask |= kDefaultCategories;
    } else if (token == "sim") {
      mask |= static_cast<std::uint32_t>(Category::kSim);
    } else if (token == "noc") {
      mask |= static_cast<std::uint32_t>(Category::kNoc);
    } else if (token == "runtime") {
      mask |= static_cast<std::uint32_t>(Category::kRuntime);
    } else if (token == "exec") {
      mask |= static_cast<std::uint32_t>(Category::kExec);
    } else if (token == "flow") {
      mask |= static_cast<std::uint32_t>(Category::kFlow);
    } else if (token == "app") {
      mask |= static_cast<std::uint32_t>(Category::kApp);
    } else if (token == "fleet") {
      mask |= static_cast<std::uint32_t>(Category::kFleet);
    } else {
      throw ConfigError("unknown trace category '" + token +
                        "' (expected sim,noc,runtime,exec,flow,app,fleet,"
                        "all,default)");
    }
  }
  return mask;
}

}  // namespace presp::trace
