#include "trace/cli.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>

#include "trace/export.hpp"
#include "util/error.hpp"

namespace presp::trace {

namespace {

int usage(const std::string& program) {
  std::fprintf(
      stderr,
      "usage: %s inspect   <trace.json>\n"
      "       %s summarize [--top <n>] <trace.json>\n"
      "       %s convert   --csv <out> <trace.json>\n"
      "\n"
      "  inspect    event counts by phase/category/track, clock extents\n"
      "  summarize  per-category totals and top spans by self time\n"
      "  convert    flatten the trace events to CSV\n",
      program.c_str(), program.c_str(), program.c_str());
  return 2;
}

int run_inspect(const ParsedTrace& trace) {
  std::map<std::string, std::uint64_t> by_phase;
  std::map<std::string, std::uint64_t> by_category;
  std::map<std::pair<int, int>, std::uint64_t> by_track;
  double host_extent = 0.0;
  double sim_extent = 0.0;
  for (const auto& event : trace.events) {
    ++by_phase[event.ph];
    ++by_category[event.cat.empty() ? "(none)" : event.cat];
    ++by_track[{event.pid, event.tid}];
    double& extent = event.pid == kSimPid ? sim_extent : host_extent;
    extent = std::max(extent, event.ts_us);
  }
  std::printf("events: %zu\n", trace.events.size());
  std::printf("dropped events: %llu\n",
              static_cast<unsigned long long>(trace.dropped));
  std::printf("sim clock: %.6g MHz\n", trace.sim_clock_mhz);
  std::printf("host timeline: %.1f us | sim timeline: %.1f us\n",
              host_extent, sim_extent);
  std::printf("by phase:\n");
  for (const auto& [phase, count] : by_phase) {
    std::printf("  %-2s %10llu\n", phase.c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("by category:\n");
  for (const auto& [category, count] : by_category) {
    std::printf("  %-10s %10llu\n", category.c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("by track:\n");
  for (const auto& [track, count] : by_track) {
    const auto name_it = trace.track_names.find(track);
    const auto process_it = trace.process_names.find(track.first);
    std::printf("  pid %d tid %-4d %10llu  %s%s%s\n", track.first,
                track.second, static_cast<unsigned long long>(count),
                process_it != trace.process_names.end()
                    ? process_it->second.c_str()
                    : "",
                name_it != trace.track_names.end() ? " / " : "",
                name_it != trace.track_names.end()
                    ? name_it->second.c_str()
                    : "");
  }
  return 0;
}

void append_csv_field(std::string& out, const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) {
    out += field;
    return;
  }
  out += '"';
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

int run_convert(const ParsedTrace& trace, const std::string& csv_path) {
  std::string out = "pid,tid,track,ph,ts_us,cat,name,value\n";
  char buf[64];
  for (const auto& event : trace.events) {
    out += std::to_string(event.pid);
    out += ',';
    out += std::to_string(event.tid);
    out += ',';
    const auto name_it = trace.track_names.find({event.pid, event.tid});
    append_csv_field(
        out, name_it != trace.track_names.end() ? name_it->second : "");
    out += ',';
    out += event.ph;
    out += ',';
    std::snprintf(buf, sizeof(buf), "%.3f", event.ts_us);
    out += buf;
    out += ',';
    append_csv_field(out, event.cat);
    out += ',';
    append_csv_field(out, event.name);
    out += ',';
    std::snprintf(buf, sizeof(buf), "%.6g", event.value);
    out += buf;
    out += '\n';
  }
  std::ofstream file(csv_path, std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "error: cannot open CSV output: %s\n",
                 csv_path.c_str());
    return 1;
  }
  file.write(out.data(), static_cast<std::streamsize>(out.size()));
  if (!file) {
    std::fprintf(stderr, "error: failed writing CSV output: %s\n",
                 csv_path.c_str());
    return 1;
  }
  std::printf("wrote %zu events to %s\n", trace.events.size(),
              csv_path.c_str());
  return 0;
}

}  // namespace

int run_trace_cli(const std::vector<std::string>& args,
                  const std::string& program) {
  if (args.empty()) return usage(program);
  const std::string& command = args[0];
  if (command != "inspect" && command != "summarize" && command != "convert") {
    return usage(program);
  }

  std::string input;
  std::string csv_path;
  std::size_t top_n = 15;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--csv" && i + 1 < args.size()) {
      csv_path = args[++i];
    } else if (arg == "--top" && i + 1 < args.size()) {
      top_n = static_cast<std::size_t>(std::strtoul(args[++i].c_str(),
                                                    nullptr, 10));
      if (top_n == 0) top_n = 1;
    } else if (!arg.empty() && arg[0] != '-') {
      if (!input.empty()) return usage(program);
      input = arg;
    } else {
      return usage(program);
    }
  }
  if (input.empty()) return usage(program);
  if (command == "convert" && csv_path.empty()) return usage(program);

  ParsedTrace trace;
  try {
    trace = read_chrome_trace(input);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  if (command == "inspect") return run_inspect(trace);
  if (command == "convert") return run_convert(trace, csv_path);
  std::printf("%s", render_summary(summarize(trace, top_n)).c_str());
  return 0;
}

}  // namespace presp::trace
