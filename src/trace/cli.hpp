// Command-line driver for saved trace files. Shared between the
// standalone `presp-trace` binary and any tool that embeds it.
#pragma once

#include <string>
#include <vector>

namespace presp::trace {

/// Runs the trace driver over `args` (program arguments, argv[0] already
/// stripped). Returns the process exit code: 0 on success, 1 when the
/// trace file cannot be read or parsed, 2 on usage errors.
///
///   presp-trace inspect   <trace.json>
///   presp-trace summarize [--top <n>] <trace.json>
///   presp-trace convert   --csv <out> <trace.json>
int run_trace_cli(const std::vector<std::string>& args,
                  const std::string& program = "presp-trace");

}  // namespace presp::trace
