// Cross-layer tracing: an always-compilable observability subsystem that
// is near-zero-cost when disabled (one relaxed atomic load per
// instrumentation site) and lock-light when enabled (each thread appends
// to its own ring buffer under an uncontended mutex).
//
// Two clock domains coexist in one session:
//   - kHost: steady-clock nanoseconds since session start. Flow stages,
//     exec tasks and anything else that costs real machine time lands
//     here, one Chrome track per emitting thread.
//   - kSim:  the simulation kernel's virtual time in cycles. Runtime
//     manager request lifecycles, NoC channel counters and per-frame
//     application spans land here, one Chrome track per tile (or one of
//     the reserved kTrack* rows below). Sim events are emitted only by
//     the single-threaded kernel, so their sequence is deterministic
//     run-to-run regardless of host scheduling.
//
// Events are buffered per thread (bounded capacity, drop-and-count on
// overflow) and merged into a TraceReport at stop(); export.hpp turns the
// report into Chrome chrome://tracing JSON or a plain-text summary.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace presp::trace {

// ------------------------------------------------------------ categories

enum class Category : std::uint32_t {
  kSim = 1u << 0,      // kernel event dispatch (high volume, opt-in)
  kNoc = 1u << 1,      // per-plane channel counters
  kRuntime = 1u << 2,  // reconfiguration request lifecycle
  kExec = 1u << 3,     // thread pool / task graph
  kFlow = 1u << 4,     // flow stages
  kApp = 1u << 5,      // application (WAMI frames, golden verify)
  kFleet = 1u << 6,    // fleet admission / shedding / breaker events
};

inline constexpr std::uint32_t kAllCategories = 0x7Fu;
/// kSim emits one event per executed kernel event — orders of magnitude
/// more than every other category combined — so the default mask leaves
/// it off and default-sized buffers never drop on the shipped examples.
inline constexpr std::uint32_t kDefaultCategories =
    kAllCategories & ~static_cast<std::uint32_t>(Category::kSim);

const char* to_string(Category category);
/// Parses a comma-separated category list ("runtime,noc,exec"), or the
/// aliases "all" / "default". Throws presp::ConfigError on unknown names.
std::uint32_t parse_categories(const std::string& csv);

// ---------------------------------------------------- sim-domain tracks

/// Sim-domain track ids (Chrome rows under the sim process). Tiles use
/// their grid index directly; the reserved rows keep clear of any
/// realistic mesh size.
inline constexpr std::uint32_t kTrackNocBase = 200;   // + plane index
inline constexpr std::uint32_t kTrackRuntime = 240;   // manager queue
inline constexpr std::uint32_t kTrackSimKernel = 250; // event dispatch
inline constexpr std::uint32_t kTrackApp = 252;       // frames
inline constexpr std::uint32_t kTrackFleet = 254;     // fleet dispatcher

// ---------------------------------------------------------------- events

enum class Phase : std::uint8_t { kBegin, kEnd, kInstant, kCounter };
enum class ClockDomain : std::uint8_t { kHost, kSim };

struct TraceEvent {
  std::string name;
  Category category = Category::kApp;
  Phase phase = Phase::kInstant;
  ClockDomain clock = ClockDomain::kHost;
  /// kHost: nanoseconds since session start. kSim: kernel cycles.
  std::uint64_t timestamp = 0;
  /// Sim-domain track id (tile index or a kTrack* row); host-domain
  /// events are tracked by emitting thread instead.
  std::uint32_t track = 0;
  /// Counter value, or an optional numeric span/instant argument
  /// (bitstream bytes, backoff cycles, ...).
  double value = 0.0;
  /// Stable small id of the emitting thread (filled at collection).
  std::uint32_t tid = 0;
  /// Per-buffer emission sequence (stable merge order).
  std::uint64_t seq = 0;
};

struct TraceConfig {
  /// Max events retained per emitting thread; once full, later events
  /// are dropped and counted instead of growing memory.
  std::size_t buffer_capacity = std::size_t{1} << 19;
  std::uint32_t categories = kDefaultCategories;
  /// Sim clock frequency the exporters use to place cycles on the
  /// microsecond axis (the paper's VC707 SoC runs at 78 MHz).
  double sim_clock_mhz = 78.0;
};

struct TraceReport {
  TraceConfig config;
  /// Merged events, sorted by (clock, timestamp, tid, seq).
  std::vector<TraceEvent> events;
  /// Events dropped across all buffers (overflow).
  std::uint64_t dropped = 0;
  /// Host thread names indexed by tid ("" when the thread never named
  /// itself).
  std::vector<std::string> thread_names;
  /// Sim-domain track names ("tile 3", "noc dma-req", ...).
  std::map<std::uint32_t, std::string> sim_track_names;
};

// --------------------------------------------------------------- session

namespace detail {
/// Category bitmask of the active session; 0 when tracing is off. The
/// single relaxed load of this is the entire disabled-path cost of every
/// instrumentation site.
inline std::atomic<std::uint32_t> g_mask{0};
}  // namespace detail

/// True when the active session records `category`.
inline bool enabled(Category category) {
  return (detail::g_mask.load(std::memory_order_relaxed) &
          static_cast<std::uint32_t>(category)) != 0;
}
inline bool active() {
  return detail::g_mask.load(std::memory_order_relaxed) != 0;
}

class TraceBuffer;

/// Global trace session. start() arms the category mask; emitters then
/// append to per-thread buffers; stop() disarms, merges the current
/// generation's buffers and returns the report. Buffers are never freed
/// for the life of the process: a writer whose thread-local cache went
/// stale (session cycled underneath it) harmlessly appends to its old
/// generation's buffer, which no future stop() will collect — no
/// use-after-free, no data race, at the cost of one retired buffer per
/// emitting thread per session cycle.
class TraceSession {
 public:
  static TraceSession& instance();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Starts a new session (stops and discards a still-active one).
  void start(TraceConfig config = {});
  /// Disarms tracing and returns everything recorded since start().
  TraceReport stop();
  /// Non-destructive copy of everything recorded so far. The session
  /// stays armed and its buffers keep their events, so a live observer
  /// (the ops plane's /trace/summary endpoint) can sample a running
  /// session without perturbing the eventual stop() report.
  TraceReport snapshot() const;

  /// Events recorded + dropped so far (approximate while active).
  std::uint64_t events_recorded() const;

  // Emitter interface (used by the free functions below).
  void emit(Category category, Phase phase, ClockDomain clock,
            std::string name, std::uint64_t timestamp, std::uint32_t track,
            double value);
  std::uint64_t host_now_ns() const;
  void name_current_thread(std::string name);
  void name_sim_track(std::uint32_t track, std::string name);

 private:
  TraceSession() = default;
  TraceBuffer* thread_buffer();

  mutable std::mutex mutex_;
  TraceConfig config_;
  /// Bumped by start(); pairs with the thread-local cache to invalidate
  /// stale buffer pointers without ever freeing them.
  std::atomic<std::uint64_t> generation_{0};
  /// Session start on the steady clock, as ns since the clock's epoch.
  std::atomic<std::uint64_t> start_ns_{0};
  std::uint32_t next_tid_ = 0;
  std::vector<std::unique_ptr<TraceBuffer>> buffers_;
  std::map<std::uint32_t, std::string> sim_track_names_;
};

// ------------------------------------------------------------- emit API

/// Host-clock span/instant/counter events (timestamped internally).
void begin(Category category, std::string name);
void end(Category category, std::string name);
void instant(Category category, std::string name, double value = 0.0);
void counter(Category category, std::string name, double value);

/// Sim-clock events: the caller passes the kernel's current cycle count
/// and the sim track (tile index or kTrack* row) the event belongs to.
void sim_begin(Category category, std::string name, std::uint64_t cycles,
               std::uint32_t track, double value = 0.0);
void sim_end(Category category, std::string name, std::uint64_t cycles,
             std::uint32_t track);
void sim_instant(Category category, std::string name, std::uint64_t cycles,
                 std::uint32_t track, double value = 0.0);
void sim_counter(Category category, std::string name, std::uint64_t cycles,
                 std::uint32_t track, double value);

/// Names the calling thread's host track ("worker-3", "main"). Cheap and
/// callable any time (before or during a session).
void set_thread_name(std::string name);
/// Names a sim-domain track ("tile 4", "noc dma-req"). Idempotent.
void set_sim_track_name(std::uint32_t track, std::string name);

/// RAII host-clock span: emits begin at construction and end at
/// destruction. Captures the enabled state once, so a span stays balanced
/// even if the session stops mid-scope (the end is simply dropped with
/// the rest of the unmatched data).
class TraceScope {
 public:
  TraceScope(Category category, std::string name)
      : category_(category), armed_(enabled(category)) {
    if (armed_) {
      name_ = std::move(name);
      begin(category_, name_);
    }
  }
  ~TraceScope() {
    if (armed_) end(category_, name_);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  Category category_;
  bool armed_;
  std::string name_;
};

}  // namespace presp::trace
