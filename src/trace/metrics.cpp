#include "trace/metrics.hpp"

#include <cmath>
#include <cstdio>

namespace presp::trace {

namespace {

int bucket_for(double v) {
  if (!(v >= 1.0)) return 0;  // v < 1, NaN
  const int exponent = std::ilogb(v) + 1;
  return exponent >= Histogram::kBuckets ? Histogram::kBuckets - 1 : exponent;
}

void append_number(std::string& out, double v) {
  // Integral values render without a fraction so counter-like snapshots
  // stay byte-stable across platforms.
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15) {
    out += std::to_string(static_cast<long long>(v));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

}  // namespace

void Histogram::observe(double v) {
  buckets_[static_cast<std::size_t>(bucket_for(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::quantile_upper_bound(double p) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  const auto rank = static_cast<std::uint64_t>(p * static_cast<double>(total));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
    if (seen > rank || (seen == total && seen != 0)) {
      return i == 0 ? 1.0 : std::ldexp(1.0, i);
    }
  }
  return std::ldexp(1.0, kBuckets - 1);
}

void Histogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

bool MetricsRegistry::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

std::string MetricsRegistry::snapshot_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;  // metric names are code-chosen identifiers, no escaping
    out += "\":";
    out += std::to_string(counter->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":{\"value\":";
    append_number(out, gauge->value());
    out += ",\"max\":";
    append_number(out, gauge->max_seen());
    out += '}';
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":{\"count\":";
    out += std::to_string(histogram->count());
    out += ",\"sum\":";
    append_number(out, histogram->sum());
    out += ",\"p50\":";
    append_number(out, histogram->quantile_upper_bound(0.50));
    out += ",\"p95\":";
    append_number(out, histogram->quantile_upper_bound(0.95));
    out += '}';
  }
  out += "}}";
  return out;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_)
    snap.counters[name] = counter->value();
  for (const auto& [name, gauge] : gauges_)
    snap.gauges[name] = {gauge->value(), gauge->max_seen()};
  for (const auto& [name, histogram] : histograms_)
    snap.histograms[name] = {histogram->count(), histogram->sum(),
                             histogram->quantile_upper_bound(0.50),
                             histogram->quantile_upper_bound(0.95)};
  return snap;
}

namespace {

/// Metric names are dotted identifiers ("fleet.shed"); Prometheus wants
/// [a-zA-Z0-9_:] with a family prefix.
std::string prometheus_name(const std::string& name) {
  std::string out = "presp_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::prometheus_text() const {
  const MetricsSnapshot snap = snapshot();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, sample] : snap.gauges) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " ";
    append_number(out, sample.value);
    out += "\n# TYPE " + prom + "_max gauge\n";
    out += prom + "_max ";
    append_number(out, sample.max);
    out += "\n";
  }
  for (const auto& [name, sample] : snap.histograms) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " summary\n";
    out += prom + "{quantile=\"0.5\"} ";
    append_number(out, sample.p50);
    out += "\n" + prom + "{quantile=\"0.95\"} ";
    append_number(out, sample.p95);
    out += "\n" + prom + "_sum ";
    append_number(out, sample.sum);
    out += "\n" + prom + "_count " + std::to_string(sample.count) + "\n";
  }
  return out;
}

}  // namespace presp::trace
