#include "trace/export.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace presp::trace {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_us(std::string& out, double us) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  out += buf;
}

void append_value(std::string& out, double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v < 1e15 && v > -1e15) {
    out += std::to_string(static_cast<long long>(v));
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

void append_metadata(std::string& out, const char* kind, int pid, int tid,
                     const std::string& name) {
  out += R"({"ph":"M","pid":)";
  out += std::to_string(pid);
  out += ",\"tid\":";
  out += std::to_string(tid);
  out += ",\"name\":\"";
  out += kind;
  out += R"(","args":{"name":")";
  append_escaped(out, name);
  out += "\"}}";
}

}  // namespace

std::string chrome_trace_json(const TraceReport& report) {
  std::string out;
  out.reserve(128 + report.events.size() * 96);
  out += "{\"traceEvents\":[\n";

  append_metadata(out, "process_name", kHostPid, 0, "host (wall clock)");
  out += ",\n";
  append_metadata(out, "process_name", kSimPid, 0, "sim (virtual time)");
  for (std::size_t tid = 0; tid < report.thread_names.size(); ++tid) {
    if (report.thread_names[tid].empty()) continue;
    out += ",\n";
    append_metadata(out, "thread_name", kHostPid, static_cast<int>(tid),
                    report.thread_names[tid]);
  }
  for (const auto& [track, name] : report.sim_track_names) {
    out += ",\n";
    append_metadata(out, "thread_name", kSimPid, static_cast<int>(track),
                    name);
  }

  const double mhz =
      report.config.sim_clock_mhz > 0.0 ? report.config.sim_clock_mhz : 1.0;
  for (const auto& event : report.events) {
    out += ",\n";
    out += "{\"ph\":\"";
    switch (event.phase) {
      case Phase::kBegin: out += 'B'; break;
      case Phase::kEnd: out += 'E'; break;
      case Phase::kInstant: out += 'i'; break;
      case Phase::kCounter: out += 'C'; break;
    }
    out += "\",\"pid\":";
    const bool sim = event.clock == ClockDomain::kSim;
    out += std::to_string(sim ? kSimPid : kHostPid);
    out += ",\"tid\":";
    out += std::to_string(sim ? event.track : event.tid);
    out += ",\"ts\":";
    append_us(out, sim ? static_cast<double>(event.timestamp) / mhz
                       : static_cast<double>(event.timestamp) / 1000.0);
    out += ",\"name\":\"";
    append_escaped(out, event.name);
    out += "\",\"cat\":\"";
    out += to_string(event.category);
    out += '"';
    if (event.phase == Phase::kInstant) out += ",\"s\":\"t\"";
    if (event.phase == Phase::kCounter || event.value != 0.0) {
      out += ",\"args\":{\"value\":";
      append_value(out, event.value);
      out += '}';
    }
    out += '}';
  }

  out += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"droppedEvents\":";
  out += std::to_string(report.dropped);
  out += ",\"simClockMhz\":";
  append_value(out, report.config.sim_clock_mhz);
  out += "}}\n";
  return out;
}

void write_chrome_trace(const TraceReport& report, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) throw Error("cannot open trace output file: " + path);
  const std::string json = chrome_trace_json(report);
  file.write(json.data(), static_cast<std::streamsize>(json.size()));
  if (!file) throw Error("failed to write trace output file: " + path);
}

// ---------------------------------------------------------------- reader

namespace {

/// Minimal cursor-based JSON reader for the subset the writer emits,
/// with generic skipping so unknown fields stay forward-compatible.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) {
      fail(std::string("expected '") + c + "'");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u':
            // The writer only emits \u00XX for control bytes; decode the
            // low byte and ignore the high pair.
            if (pos_ + 4 <= text_.size()) {
              c = static_cast<char>(
                  std::stoi(text_.substr(pos_ + 2, 2), nullptr, 16));
              pos_ += 4;
            }
            break;
          default: c = esc;
        }
      }
      out += c;
    }
    expect('"');
    return out;
  }

  double number() {
    skip_ws();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) fail("expected number");
    pos_ += static_cast<std::size_t>(end - start);
    return v;
  }

  void skip_value() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '"') {
      string();
    } else if (c == '{') {
      ++pos_;
      if (!consume('}')) {
        do {
          string();
          expect(':');
          skip_value();
        } while (consume(','));
        expect('}');
      }
    } else if (c == '[') {
      ++pos_;
      if (!consume(']')) {
        do {
          skip_value();
        } while (consume(','));
        expect(']');
      }
    } else if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
    } else if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
    } else {
      number();
    }
  }

  [[noreturn]] void fail(const std::string& what) {
    throw ConfigError("trace JSON parse error at offset " +
                      std::to_string(pos_) + ": " + what);
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

void parse_event(JsonReader& reader, ParsedTrace& out) {
  ParsedEvent event;
  std::string arg_name;
  reader.expect('{');
  if (!reader.consume('}')) {
    do {
      const std::string key = reader.string();
      reader.expect(':');
      if (key == "name") {
        event.name = reader.string();
      } else if (key == "cat") {
        event.cat = reader.string();
      } else if (key == "ph") {
        event.ph = reader.string();
      } else if (key == "ts") {
        event.ts_us = reader.number();
      } else if (key == "pid") {
        event.pid = static_cast<int>(reader.number());
      } else if (key == "tid") {
        event.tid = static_cast<int>(reader.number());
      } else if (key == "args") {
        reader.expect('{');
        if (!reader.consume('}')) {
          do {
            const std::string arg_key = reader.string();
            reader.expect(':');
            if (arg_key == "name") {
              arg_name = reader.string();
            } else if (arg_key == "value") {
              event.value = reader.number();
            } else {
              reader.skip_value();
            }
          } while (reader.consume(','));
          reader.expect('}');
        }
      } else {
        reader.skip_value();
      }
    } while (reader.consume(','));
    reader.expect('}');
  }
  if (event.ph == "M") {
    if (event.name == "process_name") {
      out.process_names[event.pid] = arg_name;
    } else if (event.name == "thread_name") {
      out.track_names[{event.pid, event.tid}] = arg_name;
    }
    return;
  }
  out.events.push_back(std::move(event));
}

}  // namespace

ParsedTrace parse_chrome_trace(const std::string& text) {
  JsonReader reader(text);
  ParsedTrace out;
  reader.expect('{');
  if (!reader.consume('}')) {
    do {
      const std::string key = reader.string();
      reader.expect(':');
      if (key == "traceEvents") {
        reader.expect('[');
        if (!reader.consume(']')) {
          do {
            parse_event(reader, out);
          } while (reader.consume(','));
          reader.expect(']');
        }
      } else if (key == "otherData") {
        reader.expect('{');
        if (!reader.consume('}')) {
          do {
            const std::string other_key = reader.string();
            reader.expect(':');
            if (other_key == "droppedEvents") {
              out.dropped = static_cast<std::uint64_t>(reader.number());
            } else if (other_key == "simClockMhz") {
              out.sim_clock_mhz = reader.number();
            } else {
              reader.skip_value();
            }
          } while (reader.consume(','));
          reader.expect('}');
        }
      } else {
        reader.skip_value();
      }
    } while (reader.consume(','));
    reader.expect('}');
  }
  return out;
}

ParsedTrace read_chrome_trace(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw Error("cannot open trace file: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_chrome_trace(buffer.str());
}

// ------------------------------------------------------------- summarize

namespace {

struct OpenFrame {
  std::string name;
  std::string cat;
  double start_us = 0.0;
  double child_us = 0.0;
};

}  // namespace

TraceSummary summarize(const ParsedTrace& trace, std::size_t top_n) {
  TraceSummary summary;
  summary.total_events = trace.events.size();
  summary.dropped = trace.dropped;

  std::map<std::pair<int, int>, std::vector<OpenFrame>> stacks;
  std::map<std::pair<int, std::string>, SpanStat> spans;
  std::map<std::string, CategoryStat> categories;

  for (const auto& event : trace.events) {
    auto& category = categories[event.cat];
    category.cat = event.cat;
    ++category.events;
    double& extent =
        event.pid == kSimPid ? summary.sim_extent_us : summary.host_extent_us;
    extent = std::max(extent, event.ts_us);

    if (event.ph == "B") {
      stacks[{event.pid, event.tid}].push_back(
          OpenFrame{event.name, event.cat, event.ts_us, 0.0});
    } else if (event.ph == "E") {
      auto& stack = stacks[{event.pid, event.tid}];
      if (stack.empty() || stack.back().name != event.name) {
        ++summary.unmatched;
        continue;
      }
      const OpenFrame frame = stack.back();
      stack.pop_back();
      const double duration = event.ts_us - frame.start_us;
      ++summary.spans;
      categories[frame.cat].span_us += duration;
      if (!stack.empty()) stack.back().child_us += duration;
      auto& stat = spans[{event.pid, frame.name}];
      stat.name = frame.name;
      stat.cat = frame.cat;
      stat.pid = event.pid;
      ++stat.count;
      stat.total_us += duration;
      stat.self_us += duration - frame.child_us;
      stat.max_us = std::max(stat.max_us, duration);
    } else if (event.ph == "i") {
      ++summary.instants;
    } else if (event.ph == "C") {
      ++summary.counters;
    }
  }
  for (const auto& [track, stack] : stacks) {
    summary.unmatched += stack.size();
  }

  summary.categories.reserve(categories.size());
  for (auto& [name, stat] : categories) summary.categories.push_back(stat);
  summary.top_spans.reserve(spans.size());
  for (auto& [key, stat] : spans) summary.top_spans.push_back(stat);
  std::sort(summary.top_spans.begin(), summary.top_spans.end(),
            [](const SpanStat& a, const SpanStat& b) {
              if (a.self_us != b.self_us) return a.self_us > b.self_us;
              return a.name < b.name;
            });
  if (summary.top_spans.size() > top_n) summary.top_spans.resize(top_n);
  return summary;
}

std::string render_summary(const TraceSummary& summary) {
  char buf[160];
  std::string out = "trace summary\n";
  std::snprintf(buf, sizeof(buf),
                "  events: %llu (spans: %llu, instants: %llu, counters: "
                "%llu, unmatched: %llu)\n",
                static_cast<unsigned long long>(summary.total_events),
                static_cast<unsigned long long>(summary.spans),
                static_cast<unsigned long long>(summary.instants),
                static_cast<unsigned long long>(summary.counters),
                static_cast<unsigned long long>(summary.unmatched));
  out += buf;
  std::snprintf(buf, sizeof(buf), "  dropped events: %llu\n",
                static_cast<unsigned long long>(summary.dropped));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  host timeline: %.1f us | sim timeline: %.1f us\n",
                summary.host_extent_us, summary.sim_extent_us);
  out += buf;
  if (!summary.categories.empty()) {
    out += "  per-category totals:\n";
    std::snprintf(buf, sizeof(buf), "    %-10s %10s %14s\n", "category",
                  "events", "span-us");
    out += buf;
    for (const auto& category : summary.categories) {
      std::snprintf(buf, sizeof(buf), "    %-10s %10llu %14.1f\n",
                    category.cat.c_str(),
                    static_cast<unsigned long long>(category.events),
                    category.span_us);
      out += buf;
    }
  }
  if (!summary.top_spans.empty()) {
    out += "  top spans by self time:\n";
    std::snprintf(buf, sizeof(buf), "    %12s %12s %7s %12s  %s\n",
                  "self-us", "total-us", "count", "max-us", "name");
    out += buf;
    for (const auto& span : summary.top_spans) {
      std::snprintf(buf, sizeof(buf), "    %12.1f %12.1f %7llu %12.1f  [%s] %s\n",
                    span.self_us, span.total_us,
                    static_cast<unsigned long long>(span.count), span.max_us,
                    span.pid == kSimPid ? "sim" : "host", span.name.c_str());
      out += buf;
    }
  }
  return out;
}

}  // namespace presp::trace
