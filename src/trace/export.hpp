// Trace exporters and importers. The writer turns a TraceReport into
// Chrome chrome://tracing / Perfetto JSON (host events under pid 1 on
// their wall-clock microsecond axis, sim events under pid 2 with cycles
// converted through the configured sim clock). The reader parses that
// JSON back (for the presp-trace CLI) and summarize() computes
// per-category totals and top spans by self-time from the parsed form.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace presp::trace {

/// Chrome process ids used by the writer: one fake "process" per clock
/// domain so the two timelines stay visually separate in the viewer.
inline constexpr int kHostPid = 1;
inline constexpr int kSimPid = 2;

/// Renders the report as a Chrome trace-event JSON document.
std::string chrome_trace_json(const TraceReport& report);
/// chrome_trace_json() to a file; throws presp::Error on I/O failure.
void write_chrome_trace(const TraceReport& report, const std::string& path);

/// One trace event as read back from Chrome JSON.
struct ParsedEvent {
  std::string name;
  std::string cat;
  std::string ph;  // "B", "E", "i", "C" (metadata "M" is folded away)
  double ts_us = 0.0;
  int pid = 0;
  int tid = 0;
  double value = 0.0;  // counter value / args.value when present
};

struct ParsedTrace {
  std::vector<ParsedEvent> events;  // in file order, metadata excluded
  std::map<int, std::string> process_names;
  std::map<std::pair<int, int>, std::string> track_names;  // (pid, tid)
  std::uint64_t dropped = 0;
  double sim_clock_mhz = 0.0;
};

/// Parses a Chrome trace-event JSON document (the subset this writer
/// emits plus tolerant skipping of unknown fields). Throws
/// presp::ConfigError on malformed input.
ParsedTrace parse_chrome_trace(const std::string& text);
/// parse_chrome_trace() from a file; throws presp::Error on I/O failure.
ParsedTrace read_chrome_trace(const std::string& path);

struct SpanStat {
  std::string name;
  std::string cat;
  int pid = 0;
  std::uint64_t count = 0;
  double total_us = 0.0;  // inclusive
  double self_us = 0.0;   // exclusive of child spans on the same track
  double max_us = 0.0;    // longest single occurrence (inclusive)
};

struct CategoryStat {
  std::string cat;
  std::uint64_t events = 0;
  double span_us = 0.0;  // summed inclusive duration of closed spans
};

struct TraceSummary {
  std::uint64_t total_events = 0;
  std::uint64_t spans = 0;      // matched begin/end pairs
  std::uint64_t instants = 0;
  std::uint64_t counters = 0;
  std::uint64_t unmatched = 0;  // begins without end or vice versa
  std::uint64_t dropped = 0;
  double host_extent_us = 0.0;  // last host timestamp seen
  double sim_extent_us = 0.0;   // last sim timestamp seen
  std::vector<CategoryStat> categories;  // sorted by category name
  std::vector<SpanStat> top_spans;       // sorted by self_us descending
};

TraceSummary summarize(const ParsedTrace& trace, std::size_t top_n = 15);
std::string render_summary(const TraceSummary& summary);

}  // namespace presp::trace
