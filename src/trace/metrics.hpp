// Always-on named metrics: lock-free counters, gauges, and log2-bucketed
// histograms registered by name in a process-global MetricsRegistry.
// Unlike trace events, metrics are unconditional — an instrument is a
// couple of relaxed atomics, cheap enough to update on hot paths without
// a session being active — and are exported as a JSON snapshot (consumed
// by bench_micro to enrich BENCH_exec.json with steal/queue-depth data).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace presp::trace {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value plus the maximum ever written (for depth-style
/// instruments where the peak matters more than the final sample).
class Gauge {
 public:
  void set(double v) {
    value_.store(v, std::memory_order_relaxed);
    update_max(v);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  double max_seen() const { return max_.load(std::memory_order_relaxed); }
  void reset() {
    value_.store(0.0, std::memory_order_relaxed);
    max_.store(0.0, std::memory_order_relaxed);
  }

 private:
  void update_max(double v) {
    double cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::atomic<double> value_{0.0};
  std::atomic<double> max_{0.0};
};

/// Log2-bucketed distribution of non-negative samples. Bucket i counts
/// samples in [2^(i-1), 2^i) (bucket 0 counts samples < 1), which gives
/// ~2x-resolution percentiles over 64 decades with zero allocation.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void observe(double v);
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const;
  /// Upper bound of the bucket containing the p-quantile (p in [0,1]);
  /// 0 when empty.
  double quantile_upper_bound(double p) const;
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Structured point-in-time copy of every registered instrument, used by
/// consumers that need values rather than a rendered report (the ops
/// plane's SSE pump diffs two of these to publish counter deltas).
struct MetricsSnapshot {
  struct GaugeSample {
    double value = 0.0;
    double max = 0.0;
  };
  struct HistogramSample {
    std::uint64_t count = 0;
    double sum = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeSample> gauges;
  std::map<std::string, HistogramSample> histograms;
};

/// Process-global registry of named instruments. Lookup takes a mutex;
/// the returned references stay valid for the life of the process, so
/// hot paths resolve their instruments once and cache the reference.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  bool empty() const;
  /// Zeroes every instrument (instruments themselves stay registered).
  void reset();

  /// Sorted-by-name JSON object:
  ///   {"counters":{...},"gauges":{...},"histograms":{...}}
  std::string snapshot_json() const;

  /// Structured snapshot of every instrument's current value.
  MetricsSnapshot snapshot() const;

  /// Prometheus text exposition (one sanitized `presp_`-prefixed family
  /// per instrument; histograms render count/sum plus p50/p95 quantile
  /// samples from the log2 buckets).
  std::string prometheus_text() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace presp::trace
