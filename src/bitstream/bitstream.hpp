// Configuration bitstream generation.
//
// Frames are the atomic configuration unit: one frame configures a slice
// of one (column x clock-region) cell. A full bitstream writes every frame
// on the device; a partial bitstream writes exactly the frames of one
// pblock. Frame payloads are synthesized deterministically from the
// placement density inside each cell (a cell packed with logic yields
// dense configuration words; empty fabric yields zero frames), which gives
// Vivado-compression-mode-like compressed sizes: the paper's Table VI
// reports 245-400 KB compressed partial bitstreams for WAMI-scale tiles,
// and the model lands in the same range (see tests and bench_table6).
//
// Sanity anchor: the full-device VC707 bitstream computes to ~19.5 MB,
// matching the real XC7VX485T (~19.3 MB).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fabric/device.hpp"
#include "pnr/placement.hpp"

namespace presp::bitstream {

/// CRC-32 (IEEE 802.3, reflected) over a word stream; the configuration
/// engine verifies it before activating a partial bitstream.
std::uint32_t crc32(const std::vector<std::uint32_t>& words);

/// Zero-run RLE: literal non-zero words pass through; a zero word is
/// encoded as {0, run_length}. Models Vivado's bitstream compression
/// (multi-frame-write of identical frames).
std::vector<std::uint32_t> rle_compress(
    const std::vector<std::uint32_t>& words);
/// `max_words` bounds the decompressed size: a corrupted run length must
/// fail cleanly instead of exploding the allocation. 0 = unbounded.
std::vector<std::uint32_t> rle_decompress(
    const std::vector<std::uint32_t>& compressed,
    std::uint64_t max_words = 0);

struct Bitstream {
  /// Identifies what the bitstream configures.
  std::string design;
  std::string module;       // partial: module loaded; full: empty
  fabric::Pblock pblock;    // partial only; full: whole device
  bool partial = false;

  std::vector<std::uint32_t> words;  // uncompressed frame payload
  std::uint32_t crc = 0;

  std::size_t raw_bytes() const { return words.size() * 4 + kHeaderBytes; }
  /// Compressed transport size (what lands in DDR and flows through the
  /// ICAP when compression is enabled).
  std::size_t compressed_bytes() const;

  static constexpr std::size_t kHeaderBytes = 128;  // sync + IDCODE + cmds
};

class BitstreamGenerator {
 public:
  explicit BitstreamGenerator(const fabric::Device& device)
      : device_(device) {}

  /// Full-device bitstream for a flat implementation.
  Bitstream full(const std::string& design, const netlist::Netlist& nl,
                 const pnr::Placement& placement) const;

  /// Partial bitstream: the frames of `pblock`, with content derived from
  /// the partition run's placement.
  Bitstream partial(const std::string& design, const std::string& module,
                    const fabric::Pblock& pblock, const netlist::Netlist& nl,
                    const pnr::Placement& placement) const;

  /// A blanking bitstream for a pblock (all-zero frames): used to erase a
  /// partition before handoff, and as the placeholder "empty module".
  Bitstream blank(const std::string& design,
                  const fabric::Pblock& pblock) const;

 private:
  std::vector<std::uint32_t> frame_words(
      const fabric::Pblock& region, const netlist::Netlist& nl,
      const pnr::Placement* placement) const;

  const fabric::Device& device_;
};

}  // namespace presp::bitstream
