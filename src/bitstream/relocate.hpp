// Relocatable partial bitstreams via frame-address rebasing.
//
// A partial bitstream's frame payload is a function of the column types it
// crosses (frames-per-column) and the module's placement inside the
// rectangle — not of the absolute fabric position. Two pblocks with the
// identical column-type sequence and height therefore accept the *same*
// frame payload; only the base frame address written into the
// configuration header differs. This is the classic bitstream-relocation
// trick (and the mechanism behind amorphous DPR with flexible
// boundaries): check the footprint signature, rewrite the base address,
// keep payload and CRC untouched.
//
// The rebased Bitstream round-trips through artifact_io unchanged: the
// PBS1 container stores the pblock rectangle explicitly, so a rebase is
// visible (and verifiable) in the serialized artifact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bitstream/bitstream.hpp"
#include "fabric/device.hpp"

namespace presp::bitstream {

/// Column-type footprint of a pblock: the left-to-right column-type
/// sequence plus the clock-region height. Two pblocks are
/// relocation-compatible iff their signatures compare equal.
struct FootprintSignature {
  int height = 0;
  std::vector<fabric::ColumnType> column_types;

  bool operator==(const FootprintSignature&) const = default;

  /// Compact "h2:CLB.CLB.BRAM" rendering for diagnostics and lint.
  std::string to_string() const;
};

/// Signature of `pblock` on `device`. Throws presp::InvalidArgument if
/// the rectangle is invalid or out of the device's bounds.
FootprintSignature footprint_signature(const fabric::Device& device,
                                       const fabric::Pblock& pblock);

/// True when a partial bitstream generated for `from` may be rebased onto
/// `to` (identical footprint signatures). Invalid / out-of-bounds
/// rectangles are simply incompatible, never an error.
bool compatible_footprint(const fabric::Device& device,
                          const fabric::Pblock& from,
                          const fabric::Pblock& to);

/// Linear base frame address of a pblock: the index of the first
/// configuration frame of its top-left cell in the device's row-major
/// frame ordering. This is the only field a relocation rewrites.
long long base_frame_address(const fabric::Device& device,
                             const fabric::Pblock& pblock);

/// Rebases a partial bitstream onto `to`. The frame payload and CRC are
/// carried over verbatim — a relocation moves bits, it never rewrites
/// them — and only the pblock rectangle (hence the base frame address)
/// changes. Throws presp::InvalidArgument when `bs` is not partial or the
/// footprints are incompatible.
Bitstream rebase(const fabric::Device& device, const Bitstream& bs,
                 const fabric::Pblock& to);

}  // namespace presp::bitstream
