#include "bitstream/artifact_io.hpp"

#include <cstring>
#include <fstream>

#include "util/error.hpp"

namespace presp::bitstream {

namespace {

constexpr char kMagic[4] = {'P', 'B', 'S', '1'};

template <typename T>
void put(std::ofstream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T get(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw InvalidArgument("truncated bitstream file");
  return value;
}

void put_string(std::ofstream& out, const std::string& text) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(text.size()));
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
}

std::string get_string(std::ifstream& in) {
  const auto len = get<std::uint32_t>(in);
  if (len > (1u << 20)) throw InvalidArgument("implausible string length");
  std::string text(len, '\0');
  in.read(text.data(), len);
  if (!in) throw InvalidArgument("truncated bitstream file");
  return text;
}

}  // namespace

std::string pbs_filename(const std::string& design,
                         const std::string& partition,
                         const std::string& module) {
  return design + "_" + partition + "_" + module + ".pbs";
}

void write_bitstream(const Bitstream& bitstream, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out)
    throw InvalidArgument("cannot write bitstream to '" + path + "'");
  out.write(kMagic, sizeof(kMagic));
  put<std::uint32_t>(out, bitstream.partial ? 1u : 0u);
  put_string(out, bitstream.design);
  put_string(out, bitstream.module);
  put<std::int32_t>(out, bitstream.pblock.col_lo);
  put<std::int32_t>(out, bitstream.pblock.col_hi);
  put<std::int32_t>(out, bitstream.pblock.row_lo);
  put<std::int32_t>(out, bitstream.pblock.row_hi);
  put<std::uint32_t>(out, bitstream.crc);
  const auto compressed = rle_compress(bitstream.words);
  put<std::uint64_t>(out, bitstream.words.size());
  put<std::uint64_t>(out, compressed.size());
  out.write(reinterpret_cast<const char*>(compressed.data()),
            static_cast<std::streamsize>(compressed.size() * 4));
  if (!out) throw InvalidArgument("write to '" + path + "' failed");
}

Bitstream read_bitstream(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw InvalidArgument("cannot read bitstream from '" + path + "'");
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw InvalidArgument("'" + path + "' is not a PBS1 bitstream file");

  Bitstream bs;
  bs.partial = (get<std::uint32_t>(in) & 1u) != 0;
  bs.design = get_string(in);
  bs.module = get_string(in);
  bs.pblock.col_lo = get<std::int32_t>(in);
  bs.pblock.col_hi = get<std::int32_t>(in);
  bs.pblock.row_lo = get<std::int32_t>(in);
  bs.pblock.row_hi = get<std::int32_t>(in);
  bs.crc = get<std::uint32_t>(in);
  const auto word_count = get<std::uint64_t>(in);
  const auto compressed_count = get<std::uint64_t>(in);
  // Cap both counts before allocating: a corrupted or hostile header must
  // not drive a multi-GB allocation (or overflow compressed_count * 4).
  // 1 Gi words = 4 GiB, far above any full-device bitstream we model.
  constexpr std::uint64_t kMaxWords = 1ull << 30;
  if (word_count > kMaxWords || compressed_count > kMaxWords)
    throw InvalidArgument("implausible bitstream payload size in '" + path +
                          "'");
  // RLE worst case: every word is an isolated zero (2 output words each).
  if (compressed_count > 2 * word_count)
    throw InvalidArgument("RLE stream longer than its payload in '" + path +
                          "'");
  std::vector<std::uint32_t> compressed(
      static_cast<std::size_t>(compressed_count));
  in.read(reinterpret_cast<char*>(compressed.data()),
          static_cast<std::streamsize>(compressed_count) * 4);
  if (!in) throw InvalidArgument("truncated bitstream payload");
  bs.words = rle_decompress(compressed, word_count);
  if (bs.words.size() != word_count)
    throw InvalidArgument("bitstream payload length mismatch");
  if (crc32(bs.words) != bs.crc)
    throw Error("bitstream CRC mismatch in '" + path + "'");
  return bs;
}

}  // namespace presp::bitstream
