#include "bitstream/artifact_io.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/error.hpp"

namespace presp::bitstream {

namespace {

constexpr char kMagic[4] = {'P', 'B', 'S', '1'};

template <typename T>
void put(std::ofstream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T get(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw InvalidArgument("truncated bitstream file");
  return value;
}

void put_string(std::ofstream& out, const std::string& text) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(text.size()));
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
}

std::string get_string(std::ifstream& in) {
  const auto len = get<std::uint32_t>(in);
  if (len > (1u << 20)) throw InvalidArgument("implausible string length");
  std::string text(len, '\0');
  in.read(text.data(), len);
  if (!in) throw InvalidArgument("truncated bitstream file");
  return text;
}

}  // namespace

std::string pbs_filename(const std::string& design,
                         const std::string& partition,
                         const std::string& module) {
  return design + "_" + partition + "_" + module + ".pbs";
}

void write_bitstream(const Bitstream& bitstream, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out)
    throw InvalidArgument("cannot write bitstream to '" + path + "'");
  out.write(kMagic, sizeof(kMagic));
  put<std::uint32_t>(out, bitstream.partial ? 1u : 0u);
  put_string(out, bitstream.design);
  put_string(out, bitstream.module);
  put<std::int32_t>(out, bitstream.pblock.col_lo);
  put<std::int32_t>(out, bitstream.pblock.col_hi);
  put<std::int32_t>(out, bitstream.pblock.row_lo);
  put<std::int32_t>(out, bitstream.pblock.row_hi);
  put<std::uint32_t>(out, bitstream.crc);
  const auto compressed = rle_compress(bitstream.words);
  put<std::uint64_t>(out, bitstream.words.size());
  put<std::uint64_t>(out, compressed.size());
  out.write(reinterpret_cast<const char*>(compressed.data()),
            static_cast<std::streamsize>(compressed.size() * 4));
  if (!out) throw InvalidArgument("write to '" + path + "' failed");
}

Bitstream read_bitstream(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw InvalidArgument("cannot read bitstream from '" + path + "'");
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw InvalidArgument("'" + path + "' is not a PBS1 bitstream file");

  Bitstream bs;
  bs.partial = (get<std::uint32_t>(in) & 1u) != 0;
  bs.design = get_string(in);
  bs.module = get_string(in);
  bs.pblock.col_lo = get<std::int32_t>(in);
  bs.pblock.col_hi = get<std::int32_t>(in);
  bs.pblock.row_lo = get<std::int32_t>(in);
  bs.pblock.row_hi = get<std::int32_t>(in);
  bs.crc = get<std::uint32_t>(in);
  const auto word_count = get<std::uint64_t>(in);
  const auto compressed_count = get<std::uint64_t>(in);
  // Cap both counts before allocating: a corrupted or hostile header must
  // not drive a multi-GB allocation (or overflow compressed_count * 4).
  // 1 Gi words = 4 GiB, far above any full-device bitstream we model.
  constexpr std::uint64_t kMaxWords = 1ull << 30;
  if (word_count > kMaxWords || compressed_count > kMaxWords)
    throw InvalidArgument("implausible bitstream payload size in '" + path +
                          "'");
  // RLE worst case: every word is an isolated zero (2 output words each).
  if (compressed_count > 2 * word_count)
    throw InvalidArgument("RLE stream longer than its payload in '" + path +
                          "'");
  std::vector<std::uint32_t> compressed(
      static_cast<std::size_t>(compressed_count));
  in.read(reinterpret_cast<char*>(compressed.data()),
          static_cast<std::streamsize>(compressed_count) * 4);
  if (!in) throw InvalidArgument("truncated bitstream payload");
  bs.words = rle_decompress(compressed, word_count);
  if (bs.words.size() != word_count)
    throw InvalidArgument("bitstream payload length mismatch");
  if (crc32(bs.words) != bs.crc)
    throw Error("bitstream CRC mismatch in '" + path + "'");
  return bs;
}

// ------------------------------------------------- flow-cache blobs

std::uint64_t fnv1a64(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t fnv1a64(const std::string& text) {
  return fnv1a64(text.data(), text.size());
}

namespace {
constexpr char kCacheMagic[4] = {'P', 'F', 'C', '1'};
/// Cache payloads are bounded: the largest entry (a static stage with its
/// routing-state vector) stays well under this on any modeled device.
constexpr std::uint64_t kMaxCachePayload = 1ull << 28;  // 256 MiB
}  // namespace

void write_cache_blob(const CacheBlob& blob, const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary);
    if (!out)
      throw InvalidArgument("cannot write cache blob to '" + tmp + "'");
    out.write(kCacheMagic, sizeof(kCacheMagic));
    put<std::uint32_t>(out, blob.kind);
    put<std::uint64_t>(out, blob.key);
    put<std::uint64_t>(out, fnv1a64(blob.payload));
    put<std::uint64_t>(out, static_cast<std::uint64_t>(blob.payload.size()));
    out.write(blob.payload.data(),
              static_cast<std::streamsize>(blob.payload.size()));
    if (!out) throw InvalidArgument("write to '" + tmp + "' failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw InvalidArgument("cannot publish cache blob at '" + path + "'");
  }
}

CacheBlob read_cache_blob(const std::string& path,
                          std::uint64_t expected_key) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw InvalidArgument("cannot read cache blob from '" + path + "'");
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kCacheMagic, sizeof(kCacheMagic)) != 0)
    throw InvalidArgument("'" + path + "' is not a PFC1 cache blob");
  CacheBlob blob;
  blob.kind = get<std::uint32_t>(in);
  blob.key = get<std::uint64_t>(in);
  const auto payload_hash = get<std::uint64_t>(in);
  const auto payload_len = get<std::uint64_t>(in);
  if (payload_len > kMaxCachePayload)
    throw InvalidArgument("implausible cache payload size in '" + path +
                          "'");
  if (blob.key != expected_key)
    throw Error("cache blob key mismatch in '" + path +
                "' (stale or mis-filed entry)");
  blob.payload.resize(static_cast<std::size_t>(payload_len));
  in.read(blob.payload.data(),
          static_cast<std::streamsize>(blob.payload.size()));
  if (!in) throw InvalidArgument("truncated cache blob '" + path + "'");
  if (fnv1a64(blob.payload) != payload_hash)
    throw Error("cache blob payload hash mismatch in '" + path +
                "' (corrupt entry)");
  return blob;
}

}  // namespace presp::bitstream
