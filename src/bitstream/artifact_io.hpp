// Bitstream artifact files: what the flow drops on disk next to its
// report, and what the runtime's user-space loader mmaps at boot.
//
// Binary format (little-endian):
//   magic "PBS1" | u32 flags (bit0 = partial)
//   u32 design_len | design bytes | u32 module_len | module bytes
//   i32 col_lo, col_hi, row_lo, row_hi
//   u32 crc | u64 word_count | u64 compressed_count
//   compressed words (RLE stream; see bitstream.hpp)
#pragma once

#include <cstdint>
#include <string>

#include "bitstream/bitstream.hpp"

namespace presp::bitstream {

/// Writes the bitstream (compressed payload) to `path`. Throws
/// InvalidArgument on I/O errors.
void write_bitstream(const Bitstream& bitstream, const std::string& path);

/// Reads a bitstream file back: decompresses the payload, restores the
/// metadata and verifies the CRC. Throws InvalidArgument on malformed
/// files and Error on CRC mismatch.
Bitstream read_bitstream(const std::string& path);

/// Canonical artifact file name for a partial bitstream.
std::string pbs_filename(const std::string& design,
                         const std::string& partition,
                         const std::string& module);

// ------------------------------------------------- flow-cache blobs
//
// Container format for the content-hashed flow artifact cache (see
// core/flow_cache.hpp). One blob per cache entry, little-endian:
//
//   magic "PFC1" | u32 kind | u64 key | u64 payload_hash (FNV-1a over
//   the payload bytes) | u64 payload_len | payload bytes
//
// read_cache_blob() re-derives the payload hash and cross-checks both it
// and the expected key, so a truncated, bit-flipped or mis-keyed file is
// rejected (throws) instead of poisoning a flow run.

/// 64-bit FNV-1a over arbitrary bytes; the cache's one hash primitive
/// (keys hash canonical key strings, blobs hash their payload).
std::uint64_t fnv1a64(const void* data, std::size_t size);
std::uint64_t fnv1a64(const std::string& text);

struct CacheBlob {
  std::uint32_t kind = 0;  // entry schema tag (flow_cache.hpp enumerates)
  std::uint64_t key = 0;   // content-hash cache key
  std::string payload;     // opaque serialized entry
};

/// Writes atomically (tmp file + rename) so a crash mid-write can never
/// leave a half-entry behind. Throws InvalidArgument on I/O errors.
void write_cache_blob(const CacheBlob& blob, const std::string& path);

/// Reads and verifies a blob. Throws InvalidArgument on malformed or
/// truncated files and Error on key/payload-hash mismatch (corruption).
CacheBlob read_cache_blob(const std::string& path,
                          std::uint64_t expected_key);

}  // namespace presp::bitstream
