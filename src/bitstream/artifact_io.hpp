// Bitstream artifact files: what the flow drops on disk next to its
// report, and what the runtime's user-space loader mmaps at boot.
//
// Binary format (little-endian):
//   magic "PBS1" | u32 flags (bit0 = partial)
//   u32 design_len | design bytes | u32 module_len | module bytes
//   i32 col_lo, col_hi, row_lo, row_hi
//   u32 crc | u64 word_count | u64 compressed_count
//   compressed words (RLE stream; see bitstream.hpp)
#pragma once

#include <string>

#include "bitstream/bitstream.hpp"

namespace presp::bitstream {

/// Writes the bitstream (compressed payload) to `path`. Throws
/// InvalidArgument on I/O errors.
void write_bitstream(const Bitstream& bitstream, const std::string& path);

/// Reads a bitstream file back: decompresses the payload, restores the
/// metadata and verifies the CRC. Throws InvalidArgument on malformed
/// files and Error on CRC mismatch.
Bitstream read_bitstream(const std::string& path);

/// Canonical artifact file name for a partial bitstream.
std::string pbs_filename(const std::string& design,
                         const std::string& partition,
                         const std::string& module);

}  // namespace presp::bitstream
