#include "bitstream/relocate.hpp"

#include <sstream>

#include "util/error.hpp"

namespace presp::bitstream {

std::string FootprintSignature::to_string() const {
  std::ostringstream out;
  out << "h" << height << ":";
  for (std::size_t i = 0; i < column_types.size(); ++i) {
    if (i) out << ".";
    out << fabric::to_string(column_types[i]);
  }
  return out.str();
}

namespace {

bool in_bounds(const fabric::Device& device, const fabric::Pblock& pblock) {
  return pblock.valid() && pblock.col_lo >= 0 &&
         pblock.col_hi < device.num_columns() && pblock.row_lo >= 0 &&
         pblock.row_hi < device.region_rows();
}

}  // namespace

FootprintSignature footprint_signature(const fabric::Device& device,
                                       const fabric::Pblock& pblock) {
  if (!in_bounds(device, pblock)) {
    throw InvalidArgument("footprint_signature: pblock " +
                          pblock.to_string() + " is invalid or outside " +
                          device.name());
  }
  FootprintSignature sig;
  sig.height = pblock.height();
  sig.column_types.reserve(static_cast<std::size_t>(pblock.width()));
  for (int col = pblock.col_lo; col <= pblock.col_hi; ++col) {
    sig.column_types.push_back(device.column_type(col));
  }
  return sig;
}

bool compatible_footprint(const fabric::Device& device,
                          const fabric::Pblock& from,
                          const fabric::Pblock& to) {
  if (!in_bounds(device, from) || !in_bounds(device, to)) return false;
  if (from.height() != to.height() || from.width() != to.width()) {
    return false;
  }
  for (int i = 0; i < from.width(); ++i) {
    if (device.column_type(from.col_lo + i) !=
        device.column_type(to.col_lo + i)) {
      return false;
    }
  }
  return true;
}

long long base_frame_address(const fabric::Device& device,
                             const fabric::Pblock& pblock) {
  if (!in_bounds(device, pblock)) {
    throw InvalidArgument("base_frame_address: pblock " + pblock.to_string() +
                          " is invalid or outside " + device.name());
  }
  const fabric::FrameProfile& profile = device.frames();
  long long frames_per_row = 0;
  for (int col = 0; col < device.num_columns(); ++col) {
    frames_per_row += profile.frames_for(device.column_type(col));
  }
  long long address = frames_per_row * pblock.row_lo;
  for (int col = 0; col < pblock.col_lo; ++col) {
    address += profile.frames_for(device.column_type(col));
  }
  return address;
}

Bitstream rebase(const fabric::Device& device, const Bitstream& bs,
                 const fabric::Pblock& to) {
  if (!bs.partial) {
    throw InvalidArgument("rebase: only partial bitstreams relocate (design " +
                          bs.design + ")");
  }
  if (!compatible_footprint(device, bs.pblock, to)) {
    throw InvalidArgument(
        "rebase: incompatible footprint for " + bs.design + "/" + bs.module +
        ": " + footprint_signature(device, bs.pblock).to_string() + " at " +
        bs.pblock.to_string() + " cannot move to " + to.to_string());
  }
  Bitstream out = bs;
  out.pblock = to;
  return out;
}

}  // namespace presp::bitstream
