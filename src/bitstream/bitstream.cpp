#include "bitstream/bitstream.hpp"

#include <algorithm>
#include <array>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace presp::bitstream {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const std::vector<std::uint32_t>& words) {
  static const auto table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint32_t w : words) {
    for (int byte = 0; byte < 4; ++byte) {
      const std::uint8_t b = static_cast<std::uint8_t>(w >> (8 * byte));
      crc = table[(crc ^ b) & 0xFF] ^ (crc >> 8);
    }
  }
  return crc ^ 0xFFFFFFFFu;
}

std::vector<std::uint32_t> rle_compress(
    const std::vector<std::uint32_t>& words) {
  std::vector<std::uint32_t> out;
  out.reserve(words.size() / 4);
  std::size_t i = 0;
  while (i < words.size()) {
    if (words[i] == 0) {
      std::uint32_t run = 0;
      while (i < words.size() && words[i] == 0 && run < 0xFFFFFFFFu) {
        ++run;
        ++i;
      }
      out.push_back(0);
      out.push_back(run);
    } else {
      out.push_back(words[i]);
      ++i;
    }
  }
  return out;
}

std::vector<std::uint32_t> rle_decompress(
    const std::vector<std::uint32_t>& compressed, std::uint64_t max_words) {
  std::vector<std::uint32_t> out;
  std::size_t i = 0;
  while (i < compressed.size()) {
    if (compressed[i] == 0) {
      PRESP_REQUIRE(i + 1 < compressed.size(),
                    "truncated RLE stream: zero marker without run length");
      const std::uint32_t run = compressed[i + 1];
      PRESP_REQUIRE(max_words == 0 || out.size() + run <= max_words,
                    "RLE run overflows the declared payload size");
      out.insert(out.end(), run, 0u);
      i += 2;
    } else {
      PRESP_REQUIRE(max_words == 0 || out.size() < max_words,
                    "RLE stream overflows the declared payload size");
      out.push_back(compressed[i]);
      ++i;
    }
  }
  return out;
}

std::size_t Bitstream::compressed_bytes() const {
  return rle_compress(words).size() * 4 + kHeaderBytes;
}

std::vector<std::uint32_t> BitstreamGenerator::frame_words(
    const fabric::Pblock& region, const netlist::Netlist& nl,
    const pnr::Placement* placement) const {
  PRESP_REQUIRE(region.valid(), "invalid bitstream region");

  // LUT usage per (col,row) cell inside the region.
  const auto rows = static_cast<std::size_t>(device_.region_rows());
  std::vector<std::int64_t> usage(
      static_cast<std::size_t>(device_.num_columns()) * rows, 0);
  if (placement != nullptr) {
    for (netlist::CellId c = 0; c < nl.num_cells(); ++c) {
      const auto& cell = nl.cell(c);
      if (cell.kind != netlist::CellKind::kLogic) continue;
      const pnr::GridLoc& loc = placement->at(c);
      if (!loc.valid() || !region.contains(loc.col, loc.row)) continue;
      usage[static_cast<std::size_t>(loc.col) * rows +
            static_cast<std::size_t>(loc.row)] += cell.resources.luts;
    }
  }

  const int words_per_frame = device_.frames().frame_bytes / 4;
  std::vector<std::uint32_t> words;
  words.reserve(static_cast<std::size_t>(
                    fabric::pblock_frames(device_, region)) *
                static_cast<std::size_t>(words_per_frame));

  for (int col = region.col_lo; col <= region.col_hi; ++col) {
    const fabric::ColumnType type = device_.column_type(col);
    const int frames = device_.frames().frames_for(type);
    const std::int64_t capacity =
        std::max<std::int64_t>(1, device_.cell_resources(col).luts);
    for (int row = region.row_lo; row <= region.row_hi; ++row) {
      const std::int64_t used =
          usage[static_cast<std::size_t>(col) * rows +
                static_cast<std::size_t>(row)];
      const double fill =
          std::min(1.0, static_cast<double>(used) /
                            static_cast<double>(capacity));
      // Configuration density: even fully used logic leaves most LUT
      // truth-table/interconnect bits at their defaults; ~28% of words go
      // non-zero at full utilization (plus a small floor of frame ECC /
      // clock-enable words), and used bits cluster into bursts — a
      // configured LUT's truth table and its switchbox entries are
      // adjacent words in the frame. Burstiness is what makes Vivado's
      // compression effective; the resulting compressed partial
      // bitstreams land in the paper's Table VI range (see tests).
      const double density =
          placement == nullptr ? 0.0 : 0.28 * fill + 0.02;
      constexpr int kBurst = 8;
      // Deterministic per-cell content.
      presp::Rng rng(0x9E3779B9ull * static_cast<std::uint64_t>(col + 1) +
                     1000003ull * static_cast<std::uint64_t>(row + 1));
      int burst_left = 0;
      for (int f = 0; f < frames; ++f) {
        for (int w = 0; w < words_per_frame; ++w) {
          if (burst_left == 0 && rng.next_double() < density / kBurst)
            burst_left = kBurst;
          if (burst_left > 0) {
            --burst_left;
            words.push_back(static_cast<std::uint32_t>(rng.next_u64() | 1u));
          } else {
            words.push_back(0u);
          }
        }
      }
    }
  }
  return words;
}

Bitstream BitstreamGenerator::full(const std::string& design,
                                   const netlist::Netlist& nl,
                                   const pnr::Placement& placement) const {
  Bitstream bs;
  bs.design = design;
  bs.partial = false;
  bs.pblock = fabric::Pblock{0, device_.num_columns() - 1, 0,
                             device_.region_rows() - 1};
  bs.words = frame_words(bs.pblock, nl, &placement);
  bs.crc = crc32(bs.words);
  return bs;
}

Bitstream BitstreamGenerator::partial(const std::string& design,
                                      const std::string& module,
                                      const fabric::Pblock& pblock,
                                      const netlist::Netlist& nl,
                                      const pnr::Placement& placement) const {
  Bitstream bs;
  bs.design = design;
  bs.module = module;
  bs.partial = true;
  bs.pblock = pblock;
  bs.words = frame_words(pblock, nl, &placement);
  bs.crc = crc32(bs.words);
  return bs;
}

Bitstream BitstreamGenerator::blank(const std::string& design,
                                    const fabric::Pblock& pblock) const {
  Bitstream bs;
  bs.design = design;
  bs.module = "<blank>";
  bs.partial = true;
  bs.pblock = pblock;
  netlist::Netlist empty("blank");
  bs.words = frame_words(pblock, empty, nullptr);
  bs.crc = crc32(bs.words);
  return bs;
}

}  // namespace presp::bitstream
