// SoC configuration: the tile-grid description that drives the whole
// PR-ESP flow (Section IV: "The flow starts by parsing the input SoC
// configuration to generate the RTL hierarchy of the full SoC").
//
// A configuration names the target device, the grid dimensions, and the
// type of each tile. Reconfigurable tiles name the *set* of accelerators
// that will time-share the tile; the flow sizes the tile's reconfigurable
// partition for the largest member and generates one partial bitstream per
// member.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/config.hpp"

namespace presp::netlist {

enum class TileType : std::uint8_t {
  kEmpty,
  kCpu,
  kMem,
  kAux,
  kSlm,
  kAccel,   // monolithic (non-reconfigurable) accelerator tile
  kReconf,  // reconfigurable tile (hosts a reconfigurable partition)
};

const char* to_string(TileType type);
TileType tile_type_from_string(const std::string& text);

enum class CpuCore : std::uint8_t { kLeon3, kCva6 };

struct TileSpec {
  TileType type = TileType::kEmpty;
  /// kAccel: the single accelerator; kReconf: every accelerator that can be
  /// loaded into this tile's partition. kCpu: optional core selection.
  std::vector<std::string> accelerators;
  CpuCore cpu_core = CpuCore::kLeon3;
  /// Paper Section IV, SOC_4 / SoC_D: a CPU tile may itself be moved into
  /// the reconfigurable part purely to shrink the static region.
  bool cpu_in_reconfigurable_partition = false;
};

struct SocConfig {
  std::string name = "soc";
  std::string device = "vc707";
  int rows = 0;
  int cols = 0;
  /// Main SoC clock (the paper's VC707 system runs at 78 MHz).
  double clock_mhz = 78.0;
  /// Row-major tile grid, rows*cols entries.
  std::vector<TileSpec> tiles;

  TileSpec& tile(int row, int col);
  const TileSpec& tile(int row, int col) const;

  int count(TileType type) const;
  /// Grid indices (row-major) of all tiles of one type.
  std::vector<int> tiles_of(TileType type) const;

  /// Number of reconfigurable partitions in the design: every kReconf tile
  /// plus every CPU tile flagged into the reconfigurable part.
  int num_reconfigurable_partitions() const;

  /// Structural validation: grid populated, exactly one AUX (it hosts the
  /// single reconfiguration controller), at least one MEM, at least one CPU
  /// reachable, every reconfigurable tile non-empty. Throws ConfigError.
  void validate() const;

  /// Parses the `.esp_config`-style INI text (see soc_config.cpp header
  /// comment for the schema) into a validated SocConfig.
  static SocConfig from_config(const Config& cfg);
  static SocConfig parse(const std::string& text);

  /// Serializes back to the INI schema accepted by parse().
  std::string to_config_text() const;
};

}  // namespace presp::netlist
