// INI schema accepted by SocConfig::parse:
//
//   [soc]
//   name   = soc_2
//   device = vc707
//   rows   = 3
//   cols   = 3
//   clock_mhz = 78
//
//   [tiles]
//   # key = r<row>c<col>, value = type[:payload]
//   r0c0 = cpu
//   r0c1 = mem
//   r0c2 = aux
//   r1c0 = reconf:conv2d,gemm        # partition hosting two accelerators
//   r1c1 = accel:fft                 # monolithic accelerator tile
//   r1c2 = slm
//   r2c0 = cpu_reconf                # CPU moved into the reconfigurable part
//   r2c1 = empty
//   r2c2 = reconf:sort
#include "netlist/soc_config.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace presp::netlist {

const char* to_string(TileType type) {
  switch (type) {
    case TileType::kEmpty: return "empty";
    case TileType::kCpu: return "cpu";
    case TileType::kMem: return "mem";
    case TileType::kAux: return "aux";
    case TileType::kSlm: return "slm";
    case TileType::kAccel: return "accel";
    case TileType::kReconf: return "reconf";
  }
  return "?";
}

TileType tile_type_from_string(const std::string& text) {
  const std::string t = to_lower(text);
  if (t == "empty") return TileType::kEmpty;
  if (t == "cpu") return TileType::kCpu;
  if (t == "mem") return TileType::kMem;
  if (t == "aux") return TileType::kAux;
  if (t == "slm") return TileType::kSlm;
  if (t == "accel") return TileType::kAccel;
  if (t == "reconf") return TileType::kReconf;
  throw ConfigError("unknown tile type '" + text + "'");
}

TileSpec& SocConfig::tile(int row, int col) {
  PRESP_REQUIRE(row >= 0 && row < rows && col >= 0 && col < cols,
                "tile coordinate out of grid");
  return tiles[static_cast<std::size_t>(row * cols + col)];
}

const TileSpec& SocConfig::tile(int row, int col) const {
  PRESP_REQUIRE(row >= 0 && row < rows && col >= 0 && col < cols,
                "tile coordinate out of grid");
  return tiles[static_cast<std::size_t>(row * cols + col)];
}

int SocConfig::count(TileType type) const {
  return static_cast<int>(
      std::count_if(tiles.begin(), tiles.end(),
                    [type](const TileSpec& t) { return t.type == type; }));
}

std::vector<int> SocConfig::tiles_of(TileType type) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < tiles.size(); ++i)
    if (tiles[i].type == type) out.push_back(static_cast<int>(i));
  return out;
}

int SocConfig::num_reconfigurable_partitions() const {
  int n = count(TileType::kReconf);
  for (const TileSpec& t : tiles)
    if (t.type == TileType::kCpu && t.cpu_in_reconfigurable_partition) ++n;
  return n;
}

void SocConfig::validate() const {
  if (rows <= 0 || cols <= 0)
    throw ConfigError("SoC grid dimensions must be positive");
  if (tiles.size() != static_cast<std::size_t>(rows) * cols)
    throw ConfigError("tile list does not match grid dimensions");
  if (count(TileType::kAux) != 1)
    throw ConfigError(
        "exactly one AUX tile required (hosts the reconfiguration "
        "controller)");
  if (count(TileType::kMem) < 1)
    throw ConfigError("at least one MEM tile required");
  if (count(TileType::kCpu) < 1)
    throw ConfigError("at least one CPU tile required");
  for (const TileSpec& t : tiles) {
    if (t.type == TileType::kReconf && t.accelerators.empty())
      throw ConfigError("reconfigurable tile lists no accelerators");
    if (t.type == TileType::kAccel && t.accelerators.size() != 1)
      throw ConfigError("accelerator tile must name exactly one accelerator");
    if (t.cpu_in_reconfigurable_partition && t.type != TileType::kCpu)
      throw ConfigError("cpu_in_reconfigurable_partition on a non-CPU tile");
  }
}

SocConfig SocConfig::from_config(const Config& cfg) {
  // Largest mesh the platform models (ESP SoCs top out far below this);
  // also guards the int casts and the rows*cols allocation below against
  // hostile or corrupted inputs.
  constexpr long long kMaxGridDim = 64;

  SocConfig soc;
  soc.name = cfg.get_or("soc", "name", "soc");
  soc.device = cfg.get_or("soc", "device", "vc707");
  const long long rows = cfg.get_int("soc", "rows");
  const long long cols = cfg.get_int("soc", "cols");
  if (rows <= 0 || cols <= 0)
    throw ConfigError("SoC grid dimensions must be positive");
  if (rows > kMaxGridDim || cols > kMaxGridDim)
    throw ConfigError("SoC grid dimensions exceed the supported maximum (" +
                      std::to_string(kMaxGridDim) + ")");
  soc.rows = static_cast<int>(rows);
  soc.cols = static_cast<int>(cols);
  if (cfg.has("soc", "clock_mhz")) {
    soc.clock_mhz = cfg.get_double("soc", "clock_mhz");
    if (!std::isfinite(soc.clock_mhz) || soc.clock_mhz <= 0.0)
      throw ConfigError("clock_mhz must be positive and finite");
  }
  soc.tiles.assign(static_cast<std::size_t>(soc.rows) * soc.cols,
                   TileSpec{});

  for (const std::string& key : cfg.keys("tiles")) {
    if (key.size() < 4 || key[0] != 'r')
      throw ConfigError("malformed tile key '" + key + "' (want r<R>c<C>)");
    const std::size_t cpos = key.find('c', 1);
    if (cpos == std::string::npos)
      throw ConfigError("malformed tile key '" + key + "' (want r<R>c<C>)");
    const int row = static_cast<int>(parse_int(key.substr(1, cpos - 1)));
    const int col = static_cast<int>(parse_int(key.substr(cpos + 1)));
    if (row < 0 || row >= soc.rows || col < 0 || col >= soc.cols)
      throw ConfigError("tile key '" + key + "' outside the grid");

    const std::string value = cfg.get("tiles", key);
    const std::size_t colon = value.find(':');
    std::string type_text = value.substr(0, colon);
    std::string payload =
        colon == std::string::npos ? "" : value.substr(colon + 1);

    TileSpec spec;
    if (to_lower(std::string(trim(type_text))) == "cpu_reconf") {
      spec.type = TileType::kCpu;
      spec.cpu_in_reconfigurable_partition = true;
    } else {
      spec.type = tile_type_from_string(std::string(trim(type_text)));
    }
    if (!payload.empty()) {
      if (spec.type == TileType::kCpu) {
        const std::string core = to_lower(std::string(trim(payload)));
        if (core == "leon3") {
          spec.cpu_core = CpuCore::kLeon3;
        } else if (core == "cva6" || core == "ariane") {
          spec.cpu_core = CpuCore::kCva6;
        } else {
          throw ConfigError("unknown CPU core '" + payload + "'");
        }
      } else {
        for (const std::string& acc : split(payload, ',')) {
          const std::string name{trim(acc)};
          if (!name.empty()) spec.accelerators.push_back(name);
        }
      }
    }
    soc.tile(row, col) = std::move(spec);
  }
  soc.validate();
  return soc;
}

SocConfig SocConfig::parse(const std::string& text) {
  return from_config(Config::parse(text));
}

std::string SocConfig::to_config_text() const {
  Config cfg;
  cfg.set("soc", "name", name);
  cfg.set("soc", "device", device);
  cfg.set("soc", "rows", std::to_string(rows));
  cfg.set("soc", "cols", std::to_string(cols));
  cfg.set("soc", "clock_mhz", std::to_string(clock_mhz));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const TileSpec& spec = tile(r, c);
      std::string value;
      if (spec.type == TileType::kCpu &&
          spec.cpu_in_reconfigurable_partition) {
        value = "cpu_reconf";
      } else {
        value = to_string(spec.type);
      }
      if (!spec.accelerators.empty())
        value += ":" + join(spec.accelerators, ",");
      cfg.set("tiles", "r" + std::to_string(r) + "c" + std::to_string(c),
              value);
    }
  }
  return cfg.to_string();
}

}  // namespace presp::netlist
