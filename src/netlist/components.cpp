#include "netlist/components.hpp"

#include "util/error.hpp"

namespace presp::netlist {

ComponentLibrary ComponentLibrary::with_builtins() {
  ComponentLibrary lib;
  // CPU cores. Leon3 LUT count calibrated against Table II (the CPU tile
  // including its socket lands at ~43.3k vs the paper's 43.0k). The CVA6
  // figure follows the published core area ratio (~1.6x Leon3).
  lib.register_block({kLeon3, {42'500, 33'000, 40, 4}, 128, true});
  lib.register_block({kCva6, {68'000, 51'000, 72, 27}, 128, true});
  // Memory tile: DDR controller + LLC slice + NoC proxies.
  lib.register_block({kMemTileLogic, {21'500, 19'800, 96, 0}, 128, false});
  // Auxiliary tile: peripherals (UART/ETH/timer), interrupt controller,
  // plus the PR-ESP additions: DFX controller, ICAP wrapper, AXI adapters.
  lib.register_block({kAuxTileLogic, {9'727, 8'400, 28, 0}, 64, false});
  lib.register_block({kDfxController, {1'100, 950, 2, 0}, 64, false});
  lib.register_block({kIcapWrapper, {350, 420, 0, 0}, 32, false});
  // Shared-local-memory tile logic (SRAM macros dominate the BRAM budget).
  lib.register_block({kSlmTileLogic, {3'200, 2'100, 64, 0}, 64, false});
  // Per-tile socket: multi-plane NoC routers + queues + proxies.
  lib.register_block({kTileSocket, {800, 1'150, 0, 0}, 96, false});
  // Static-side reconfiguration support in a reconfigurable tile.
  lib.register_block({kDecoupler, {250, 310, 0, 0}, 96, false});
  // Reconfigurable wrapper: the common load/store + config-register +
  // interrupt interface every partition-hosted accelerator plugs into.
  // Lives inside the partition, so counted with the reconfigurable module.
  lib.register_block({kReconfWrapper, {420, 640, 0, 0}, 96, true});
  return lib;
}

void ComponentLibrary::register_block(BlockModel block) {
  PRESP_REQUIRE(!block.name.empty(), "block needs a name");
  PRESP_REQUIRE(block.resources.non_negative(),
                "block resources must be non-negative");
  blocks_[block.name] = std::move(block);
}

bool ComponentLibrary::has(const std::string& name) const {
  return blocks_.find(name) != blocks_.end();
}

const BlockModel& ComponentLibrary::get(const std::string& name) const {
  const auto it = blocks_.find(name);
  if (it == blocks_.end())
    throw InvalidArgument("unknown component '" + name + "'");
  return it->second;
}

std::vector<std::string> ComponentLibrary::block_names() const {
  std::vector<std::string> names;
  names.reserve(blocks_.size());
  for (const auto& [name, block] : blocks_) names.push_back(name);
  return names;
}

}  // namespace presp::netlist
