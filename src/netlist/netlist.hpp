// Post-synthesis netlist graph.
//
// The P&R simulator does not need bit-level gates: Vivado's own placer
// operates on packed sites, and the PR-ESP flow reasons in aggregate
// resources. Cells here are therefore *clusters* — small groups of LUTs/
// FFs/BRAM/DSP produced by the synthesis simulator at a configurable
// granularity — plus black-box cells standing in for reconfigurable
// partitions and port cells anchoring I/O.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fabric/resources.hpp"
#include "util/error.hpp"

namespace presp::netlist {

using CellId = std::uint32_t;
using NetId = std::uint32_t;
inline constexpr CellId kInvalidCell = ~CellId{0};

enum class CellKind : std::uint8_t {
  kLogic,     // cluster of mapped logic, carries a resource vector
  kBlackBox,  // reconfigurable-partition placeholder (static netlist only)
  kPort,      // top-level I/O anchor; fixed at the die edge during P&R
};

struct Cell {
  std::string name;
  CellKind kind = CellKind::kLogic;
  fabric::ResourceVec resources;
  /// For black boxes: name of the reconfigurable partition they stand for.
  std::string partition;
};

struct Net {
  std::string name;
  CellId driver = kInvalidCell;
  std::vector<CellId> sinks;
  /// Bus width in bits; weights wirelength and routing demand.
  int width = 1;
};

class Netlist {
 public:
  /// Empty netlist placeholder; real netlists are built with a name.
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  CellId add_cell(Cell cell);
  NetId add_net(Net net);

  std::size_t num_cells() const { return cells_.size(); }
  std::size_t num_nets() const { return nets_.size(); }

  const Cell& cell(CellId id) const {
    PRESP_ASSERT(id < cells_.size());
    return cells_[id];
  }
  const Net& net(NetId id) const {
    PRESP_ASSERT(id < nets_.size());
    return nets_[id];
  }
  const std::vector<Cell>& cells() const { return cells_; }
  const std::vector<Net>& nets() const { return nets_; }

  /// Sum of resource vectors over logic cells (black boxes and ports are
  /// zero-sized in the static netlist; their content is counted in their
  /// own out-of-context netlists).
  fabric::ResourceVec total_resources() const;

  std::vector<CellId> cells_of_kind(CellKind kind) const;

  /// Checks structural sanity: every net has a live driver, sink ids are in
  /// range, no self-loop single-pin nets. Throws LogicError on violation.
  void validate() const;

 private:
  std::string name_;
  std::vector<Cell> cells_;
  std::vector<Net> nets_;
};

}  // namespace presp::netlist
