#include "netlist/config_io.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace presp::netlist {

SocConfig load_soc_config(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw InvalidArgument("cannot read SoC configuration '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return SocConfig::parse(text.str());
}

void save_soc_config(const SocConfig& config, const std::string& path) {
  std::ofstream out(path);
  if (!out)
    throw InvalidArgument("cannot write SoC configuration '" + path + "'");
  out << config.to_config_text();
  if (!out)
    throw InvalidArgument("write to '" + path + "' failed");
}

}  // namespace presp::netlist
