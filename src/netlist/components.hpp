// Component library: post-synthesis resource models of every RTL block the
// SoC generator instantiates (CPU cores, tile infrastructure, NoC sockets,
// the DPR support logic) plus accelerators registered by the HLS flows.
//
// Built-in values are calibrated so that the paper's reference designs
// reproduce Table II on the VC707 model:
//   - CPU tile (Leon3 + socket)      ~43,300 LUTs   (paper: 43,013)
//   - static part of a 3x3 SoC       ~83,377 LUTs   (paper: 82,267)
//   - static part without the CPU    ~40,077 LUTs   (paper: 39,254)
// and the derived kappa/gamma metrics of SOC_1..SOC_4 land in the same
// design classes as the paper's Table III (see tests/core_metrics_test).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "fabric/resources.hpp"
#include "netlist/soc_config.hpp"

namespace presp::netlist {

struct BlockModel {
  std::string name;
  fabric::ResourceVec resources;
  /// Interface width in bits (drives port-net widths in generated
  /// netlists; ESP sockets use 64-bit data paths + control).
  int interface_bits = 96;
  /// True for blocks that may be hosted inside a reconfigurable partition.
  bool reconfigurable = false;
};

class ComponentLibrary {
 public:
  /// Library pre-populated with the ESP infrastructure blocks listed below.
  static ComponentLibrary with_builtins();

  /// Registers (or replaces) a block; the HLS flows use this to publish
  /// synthesized accelerators.
  void register_block(BlockModel block);

  bool has(const std::string& name) const;
  /// Throws InvalidArgument when the block is unknown.
  const BlockModel& get(const std::string& name) const;

  std::vector<std::string> block_names() const;

  // Names of the built-in infrastructure blocks.
  static constexpr const char* kLeon3 = "leon3";
  static constexpr const char* kCva6 = "cva6";
  static constexpr const char* kMemTileLogic = "mem_tile_logic";
  static constexpr const char* kAuxTileLogic = "aux_tile_logic";
  static constexpr const char* kSlmTileLogic = "slm_tile_logic";
  static constexpr const char* kTileSocket = "tile_socket";
  static constexpr const char* kDecoupler = "pr_decoupler";
  static constexpr const char* kDfxController = "dfx_controller";
  static constexpr const char* kIcapWrapper = "icap_wrapper";
  static constexpr const char* kReconfWrapper = "reconf_wrapper";

 private:
  std::map<std::string, BlockModel> blocks_;
};

}  // namespace presp::netlist
