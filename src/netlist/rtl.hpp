// RTL elaboration: the "parsing" step at the head of the PR-ESP flow
// (Fig. 1). Expands a SocConfig into the tile-level hierarchy, separating
// the sources of the reconfigurable tiles from the static part:
//
//   - every tile contributes its socket (NoC routers, proxies) to the
//     static part;
//   - CPU/MEM/AUX/SLM tile logic is static (unless a CPU tile is flagged
//     into the reconfigurable part to shrink the static region);
//   - each reconfigurable tile defines one reconfigurable partition (RP)
//     whose members are the accelerators that will time-share it, each
//     wrapped in the common reconfigurable wrapper.
#pragma once

#include <string>
#include <vector>

#include "fabric/resources.hpp"
#include "netlist/components.hpp"
#include "netlist/soc_config.hpp"

namespace presp::netlist {

struct ReconfigurablePartition {
  /// Partition name, "RT_1", "RT_2", ... in grid order.
  std::string name;
  /// Row-major grid index of the hosting tile.
  int tile_index = -1;
  /// Block names of the modules that can be loaded into this partition.
  /// Each is implemented once per partition (one partial bitstream each).
  std::vector<std::string> modules;
};

struct TileRtl {
  int index = -1;
  TileType type = TileType::kEmpty;
  /// Blocks belonging to the static part of this tile.
  std::vector<std::string> static_blocks;
  /// Index into SocRtl::partitions, or -1 for non-reconfigurable tiles.
  int partition = -1;
};

class SocRtl {
 public:
  SocRtl(SocConfig config, std::vector<TileRtl> tiles,
         std::vector<ReconfigurablePartition> partitions)
      : config_(std::move(config)),
        tiles_(std::move(tiles)),
        partitions_(std::move(partitions)) {}

  const SocConfig& config() const { return config_; }
  const std::vector<TileRtl>& tiles() const { return tiles_; }
  const std::vector<ReconfigurablePartition>& partitions() const {
    return partitions_;
  }

  /// Post-elaboration resource estimate of the static part (sum over all
  /// tiles' static blocks).
  fabric::ResourceVec static_resources(const ComponentLibrary& lib) const;

  /// Resources of one reconfigurable module including its wrapper.
  static fabric::ResourceVec module_resources(const ComponentLibrary& lib,
                                              const std::string& module);

  /// Sizing demand of a partition: component-wise maximum over its member
  /// modules (the pblock must fit the largest member).
  fabric::ResourceVec partition_demand(const ComponentLibrary& lib,
                                       int partition_index) const;

  /// Sum over partitions of the single *representative* module that is
  /// placed and routed per partition run. Following the paper's metrics
  /// (Eq. 1), the representative is the largest member.
  fabric::ResourceVec total_reconfigurable(const ComponentLibrary& lib) const;

 private:
  SocConfig config_;
  std::vector<TileRtl> tiles_;
  std::vector<ReconfigurablePartition> partitions_;
};

/// Elaborates a validated SocConfig against the component library. Throws
/// InvalidArgument when a referenced accelerator is not registered, and
/// ConfigError when the configuration is structurally invalid.
SocRtl elaborate(const SocConfig& config, const ComponentLibrary& lib);

}  // namespace presp::netlist
