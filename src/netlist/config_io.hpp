// File I/O for SoC configurations: the on-disk `.esp_config`-style format
// accepted by SocConfig::parse. Kept out of soc_config.hpp so the parsing
// core stays filesystem-free (usable in sandboxed tests).
#pragma once

#include <string>

#include "netlist/soc_config.hpp"

namespace presp::netlist {

/// Loads and validates a SoC configuration from an INI file.
/// Throws ConfigError on syntax/semantic errors and InvalidArgument when
/// the file cannot be read.
SocConfig load_soc_config(const std::string& path);

/// Writes a configuration in the format load_soc_config() accepts.
/// Throws InvalidArgument when the file cannot be written.
void save_soc_config(const SocConfig& config, const std::string& path);

}  // namespace presp::netlist
