#include "netlist/netlist.hpp"

namespace presp::netlist {

CellId Netlist::add_cell(Cell cell) {
  PRESP_REQUIRE(!cell.name.empty(), "cell needs a name");
  if (cell.kind != CellKind::kLogic)
    PRESP_REQUIRE(cell.resources.is_zero(),
                  "only logic cells carry resources");
  cells_.push_back(std::move(cell));
  return static_cast<CellId>(cells_.size() - 1);
}

NetId Netlist::add_net(Net net) {
  PRESP_REQUIRE(net.driver < cells_.size(), "net driver out of range");
  PRESP_REQUIRE(net.width >= 1, "net width must be positive");
  for (const CellId sink : net.sinks)
    PRESP_REQUIRE(sink < cells_.size(), "net sink out of range");
  nets_.push_back(std::move(net));
  return static_cast<NetId>(nets_.size() - 1);
}

fabric::ResourceVec Netlist::total_resources() const {
  fabric::ResourceVec total;
  for (const Cell& cell : cells_)
    if (cell.kind == CellKind::kLogic) total += cell.resources;
  return total;
}

std::vector<CellId> Netlist::cells_of_kind(CellKind kind) const {
  std::vector<CellId> out;
  for (CellId id = 0; id < cells_.size(); ++id)
    if (cells_[id].kind == kind) out.push_back(id);
  return out;
}

void Netlist::validate() const {
  for (const Net& net : nets_) {
    PRESP_ASSERT_MSG(net.driver < cells_.size(),
                     "net '" + net.name + "' has dangling driver");
    PRESP_ASSERT_MSG(!net.sinks.empty(),
                     "net '" + net.name + "' has no sinks");
    for (const CellId sink : net.sinks) {
      PRESP_ASSERT_MSG(sink < cells_.size(),
                       "net '" + net.name + "' has dangling sink");
      PRESP_ASSERT_MSG(sink != net.driver,
                       "net '" + net.name + "' drives its own driver");
    }
  }
}

}  // namespace presp::netlist
