#include "netlist/rtl.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace presp::netlist {

fabric::ResourceVec SocRtl::static_resources(
    const ComponentLibrary& lib) const {
  fabric::ResourceVec total;
  for (const TileRtl& tile : tiles_)
    for (const std::string& block : tile.static_blocks)
      total += lib.get(block).resources;
  return total;
}

fabric::ResourceVec SocRtl::module_resources(const ComponentLibrary& lib,
                                             const std::string& module) {
  return lib.get(module).resources +
         lib.get(ComponentLibrary::kReconfWrapper).resources;
}

fabric::ResourceVec SocRtl::partition_demand(const ComponentLibrary& lib,
                                             int partition_index) const {
  PRESP_REQUIRE(partition_index >= 0 &&
                    partition_index < static_cast<int>(partitions_.size()),
                "partition index out of range");
  const auto& partition =
      partitions_[static_cast<std::size_t>(partition_index)];
  fabric::ResourceVec demand;
  for (const std::string& module : partition.modules) {
    const fabric::ResourceVec r = module_resources(lib, module);
    demand.luts = std::max(demand.luts, r.luts);
    demand.ffs = std::max(demand.ffs, r.ffs);
    demand.bram36 = std::max(demand.bram36, r.bram36);
    demand.dsp = std::max(demand.dsp, r.dsp);
  }
  return demand;
}

fabric::ResourceVec SocRtl::total_reconfigurable(
    const ComponentLibrary& lib) const {
  fabric::ResourceVec total;
  for (int i = 0; i < static_cast<int>(partitions_.size()); ++i)
    total += partition_demand(lib, i);
  return total;
}

SocRtl elaborate(const SocConfig& config, const ComponentLibrary& lib) {
  config.validate();

  std::vector<TileRtl> tiles;
  std::vector<ReconfigurablePartition> partitions;
  tiles.reserve(config.tiles.size());

  for (int index = 0; index < static_cast<int>(config.tiles.size());
       ++index) {
    const TileSpec& spec = config.tiles[static_cast<std::size_t>(index)];
    TileRtl tile;
    tile.index = index;
    tile.type = spec.type;
    // Every tile carries its socket in the static part.
    tile.static_blocks.push_back(ComponentLibrary::kTileSocket);

    auto open_partition =
        [&](std::vector<std::string> modules) {
          ReconfigurablePartition rp;
          rp.name = "RT_" + std::to_string(partitions.size() + 1);
          rp.tile_index = index;
          rp.modules = std::move(modules);
          for (const std::string& module : rp.modules)
            if (!lib.has(module))
              throw InvalidArgument("tile " + std::to_string(index) +
                                    " references unknown accelerator '" +
                                    module + "'");
          tile.static_blocks.push_back(ComponentLibrary::kDecoupler);
          tile.partition = static_cast<int>(partitions.size());
          partitions.push_back(std::move(rp));
        };

    switch (spec.type) {
      case TileType::kCpu: {
        const char* core = spec.cpu_core == CpuCore::kLeon3
                               ? ComponentLibrary::kLeon3
                               : ComponentLibrary::kCva6;
        if (spec.cpu_in_reconfigurable_partition) {
          // Section IV / SOC_4: the core is placed inside a partition purely
          // to shrink the static region; it is never actually swapped.
          open_partition({core});
        } else {
          tile.static_blocks.push_back(core);
        }
        break;
      }
      case TileType::kMem:
        tile.static_blocks.push_back(ComponentLibrary::kMemTileLogic);
        break;
      case TileType::kAux:
        tile.static_blocks.push_back(ComponentLibrary::kAuxTileLogic);
        tile.static_blocks.push_back(ComponentLibrary::kDfxController);
        tile.static_blocks.push_back(ComponentLibrary::kIcapWrapper);
        break;
      case TileType::kSlm:
        tile.static_blocks.push_back(ComponentLibrary::kSlmTileLogic);
        break;
      case TileType::kAccel:
        // Monolithic accelerator: its logic is static.
        if (!lib.has(spec.accelerators.front()))
          throw InvalidArgument("tile " + std::to_string(index) +
                                " references unknown accelerator '" +
                                spec.accelerators.front() + "'");
        tile.static_blocks.push_back(spec.accelerators.front());
        break;
      case TileType::kReconf:
        open_partition(spec.accelerators);
        break;
      case TileType::kEmpty:
        break;
    }
    tiles.push_back(std::move(tile));
  }

  return SocRtl(config, std::move(tiles), std::move(partitions));
}

}  // namespace presp::netlist
