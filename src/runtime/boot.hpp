// System bring-up: full-bitstream configuration followed by preloading
// each reconfigurable tile's initial module.
//
// The flow's full bitstream configures the static part with *blank*
// partitions (the placeholder hard-macros); software then brings each
// partition to its initial module through the normal reconfiguration
// path — exactly the boot sequence of the real platform, where the
// runtime manager owns every partial reconfiguration after power-up.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "runtime/manager.hpp"

namespace presp::runtime {

struct BootOptions {
  /// Full-device configuration port bandwidth (SelectMAP-class), bytes
  /// per SoC cycle.
  double config_bytes_per_cycle = 16.0;
};

struct BootReport {
  double full_config_seconds = 0.0;
  double preload_seconds = 0.0;
  int preloaded_modules = 0;
};

/// Configures the device (timed against `full_bitstream_bytes`), then
/// loads `initial_modules` — (tile, module) pairs — through the manager.
/// Fills `report` and signals `done`.
sim::Process boot_system(
    soc::Soc& soc, ReconfigurationManager& manager,
    std::size_t full_bitstream_bytes,
    std::vector<std::pair<int, std::string>> initial_modules,
    BootReport* report, sim::SimEvent& done, BootOptions options = {});

}  // namespace presp::runtime
