#include "runtime/workqueue.hpp"

#include <algorithm>

namespace presp::runtime {

RequestPool::RequestPool(sim::Kernel& kernel,
                         ReconfigurationManager& manager, int workers)
    : kernel_(kernel),
      manager_(manager),
      workers_(std::max(1, workers)) {}

void RequestPool::enqueue(PoolRequest request) {
  queue_.push_back(std::move(request));
  ++stats_.enqueued;
  stats_.max_queue_depth =
      std::max(stats_.max_queue_depth, static_cast<int>(queue_.size()));
}

void RequestPool::drain() {
  // Workers beyond the queue depth would exit immediately; don't spawn
  // them. Spawn order is the determinism anchor: worker i's first dequeue
  // happens at the same (time, sequence) point on every run.
  const int spawn = std::min(
      workers_ - active_workers_,
      static_cast<int>(queue_.size()) - active_workers_);
  for (int i = 0; i < spawn; ++i) worker();
}

sim::Process RequestPool::worker() {
  ++active_workers_;
  while (!queue_.empty()) {
    PoolRequest request = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;

    Completion scratch(kernel_);
    Completion& done = request.done != nullptr ? *request.done : scratch;
    bool scratch_ok = false;
    bool* verify_ok =
        request.verify_ok != nullptr ? request.verify_ok : &scratch_ok;
    switch (request.kind) {
      case PoolRequest::Kind::kRun:
        manager_.run(request.tile, request.module, request.task, done);
        break;
      case PoolRequest::Kind::kEnsureModule:
        manager_.ensure_module(request.tile, request.module, done);
        break;
      case PoolRequest::Kind::kClearPartition:
        manager_.clear_partition(request.tile, done);
        break;
      case PoolRequest::Kind::kVerify:
        manager_.verify_partition(request.tile, request.module, verify_ok,
                                  done);
        break;
      case PoolRequest::Kind::kScrub:
        manager_.scrub(request.tile, done);
        break;
    }
    co_await done.wait();
    ++stats_.completed;
    if (!done.ok()) ++stats_.failed;
    --in_flight_;
  }
  --active_workers_;
}

}  // namespace presp::runtime
