// Partial-bitstream store (paper Section V).
//
// "Before the start of application execution, partial bitstreams, which
// are mmapped in the user-space in the DDR, are copied into the kernel
// memory. This enables the runtime manager to create a reference between
// the bitstreams, their physical addresses, the tiles they will be loaded
// into, and their respective drivers."
//
// Two residency policies share one interface:
//
//   eager (cache_slots == 0, the legacy default): add() copies every
//   image into its own DRAM region immediately and it stays resident
//   forever; acquire() completes synchronously.
//
//   cached (cache_slots > 0): DRAM holds a fixed number of slot-sized
//   slabs managed LRU. add() only records metadata and hands the payload
//   to an AsyncBitstreamSource; acquire() pins the image, filling a slot
//   on miss by co_awaiting the source's modeled latency while the real
//   asynchronous read completes. Pinned images (in-flight fetch/program)
//   are never evicted; blanking images are always eager so escalation
//   paths cannot miss.
//
// Hit/miss/eviction counts land in both StoreStats and the global
// MetricsRegistry (runtime.store.*).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runtime/bitstream_source.hpp"
#include "sim/kernel.hpp"
#include "soc/memory.hpp"

namespace presp::runtime {

struct BitstreamImage {
  std::string module;
  int tile = -1;
  /// Physical DRAM address. Fixed for eager images; assigned per fetch
  /// (slot slab) for cached images — only valid while resident.
  std::uint64_t address = 0;
  std::size_t bytes = 0;
  std::uint32_t crc = 0;
};

struct StoreOptions {
  /// 0 = eager (every image DRAM-resident, the legacy behavior); > 0 =
  /// number of LRU cache slots. 1 slot still works but degrades the
  /// manager's fetch/program overlap to serial (presp-lint warns).
  int cache_slots = 0;
  /// Bytes per cache slot; 0 = sized to the largest image registered
  /// before the first fetch. Every image must fit one slot.
  std::size_t slot_bytes = 0;
};

struct StoreStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  /// Payload fetches served by the async source (== misses).
  std::uint64_t source_fetches = 0;
  std::uint64_t source_bytes = 0;
  /// Cycles acquire() calls spent waiting (slot contention + fetch).
  long long fetch_wait_cycles = 0;
};

/// Completion channel of BitstreamStore::acquire: the pinned, resident
/// image is published here before `done` triggers. Must outlive the call.
struct StoreTicket {
  explicit StoreTicket(sim::Kernel& kernel) : done(kernel) {}
  BitstreamImage image;
  sim::SimEvent done;
};

class BitstreamStore {
 public:
  /// `source` feeds cache misses; cached stores default to an internal
  /// MemoryBitstreamSource when none is given. Not owned when non-null;
  /// must outlive the store.
  explicit BitstreamStore(soc::MainMemory& memory, StoreOptions options = {},
                          AsyncBitstreamSource* source = nullptr);

  /// Registers a partial bitstream for `module` targeting `tile`.
  /// `payload` may be empty (timing-only experiments); its size is then
  /// taken from `bytes`. Eager stores copy it into kernel DRAM now;
  /// cached stores hand it to the async source.
  const BitstreamImage& add(int tile, const std::string& module,
                            std::size_t bytes,
                            std::span<const std::uint8_t> payload = {},
                            std::uint32_t crc = 0);

  /// Registers the blanking ("greybox") bitstream for a tile's partition:
  /// module name is empty; loading it leaves the partition empty. Always
  /// eager-resident, so recovery paths never block on a cache miss.
  const BitstreamImage& add_blank(int tile, std::size_t bytes);

  bool has(int tile, const std::string& module) const;
  /// Registered image. For cached stores the address is only meaningful
  /// while the image is resident (acquire() pins it); use acquire() on
  /// any path that hands the address to hardware.
  const BitstreamImage& get(int tile, const std::string& module) const;
  bool resident(int tile, const std::string& module) const;

  /// Pins (tile, module) DRAM-resident and publishes its image through
  /// `ticket`. Synchronous for eager/permanent images; on a cache miss
  /// waits for a slot (evicting the LRU unpinned image) and the source
  /// fetch. Balance every acquire with release().
  sim::Process acquire(sim::Kernel& kernel, int tile, std::string module,
                       StoreTicket& ticket);
  void release(int tile, const std::string& module);

  /// Warms the cache: acquire + immediate unpin, leaving the image
  /// resident but evictable. `done` triggers once it is resident.
  sim::Process prefetch(sim::Kernel& kernel, int tile, std::string module,
                        sim::SimEvent& done);

  std::vector<BitstreamImage> images() const;
  std::size_t total_bytes() const;

  const StoreStats& stats() const { return stats_; }
  const StoreOptions& options() const { return options_; }
  AsyncBitstreamSource* source() const { return source_; }

 private:
  struct Record {
    BitstreamImage image;
    bool permanent = false;  // eager image or blank: resident forever
    bool resident = false;
    int pins = 0;
    int slot = -1;
    std::uint64_t last_use = 0;
    /// Set while a fetch is in flight; late acquirers wait on it.
    std::shared_ptr<sim::SimEvent> fetching;
  };

  Record& record_at(int tile, const std::string& module);
  /// Claims a slot slab address: a free slot, else evicts the LRU
  /// unpinned resident (the credit discipline guarantees one exists).
  int take_slot();
  void ensure_cache(sim::Kernel& kernel);

  soc::MainMemory& memory_;
  StoreOptions options_;
  AsyncBitstreamSource* source_;
  std::unique_ptr<AsyncBitstreamSource> owned_source_;
  std::map<std::pair<int, std::string>, Record> records_;
  StoreStats stats_;
  std::size_t max_image_bytes_ = 0;
  std::size_t slot_bytes_ = 0;
  std::vector<std::uint64_t> slot_addrs_;
  std::vector<Record*> slot_owners_;
  std::size_t resident_bytes_ = 0;
  /// One credit per slot; held while a record is pinned. Created lazily
  /// (needs a kernel, which only acquire() sees).
  std::unique_ptr<sim::Semaphore> credits_;
  std::uint64_t lru_tick_ = 0;
};

}  // namespace presp::runtime
