// Partial-bitstream store (paper Section V).
//
// "Before the start of application execution, partial bitstreams, which
// are mmapped in the user-space in the DDR, are copied into the kernel
// memory. This enables the runtime manager to create a reference between
// the bitstreams, their physical addresses, the tiles they will be loaded
// into, and their respective drivers."
//
// The store allocates a DRAM region per (tile, module) image, registers
// the identity blob the DFX controller resolves at trigger time, and
// hands out the physical address/size pairs the manager programs into the
// controller.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "soc/memory.hpp"

namespace presp::runtime {

struct BitstreamImage {
  std::string module;
  int tile = -1;
  std::uint64_t address = 0;
  std::size_t bytes = 0;
  std::uint32_t crc = 0;
};

class BitstreamStore {
 public:
  explicit BitstreamStore(soc::MainMemory& memory) : memory_(memory) {}

  /// Copies a partial bitstream for `module` targeting `tile` into kernel
  /// memory. `payload` may be empty (timing-only experiments); its size is
  /// then taken from `bytes`.
  const BitstreamImage& add(int tile, const std::string& module,
                            std::size_t bytes,
                            std::span<const std::uint8_t> payload = {},
                            std::uint32_t crc = 0);

  /// Registers the blanking ("greybox") bitstream for a tile's partition:
  /// module name is empty; loading it leaves the partition empty.
  const BitstreamImage& add_blank(int tile, std::size_t bytes);

  bool has(int tile, const std::string& module) const;
  const BitstreamImage& get(int tile, const std::string& module) const;

  std::vector<BitstreamImage> images() const;
  std::size_t total_bytes() const;

 private:
  soc::MainMemory& memory_;
  std::map<std::pair<int, std::string>, BitstreamImage> images_;
};

}  // namespace presp::runtime
