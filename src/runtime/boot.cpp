#include "runtime/boot.hpp"

#include "util/error.hpp"

namespace presp::runtime {

sim::Process boot_system(
    soc::Soc& soc, ReconfigurationManager& manager,
    std::size_t full_bitstream_bytes,
    std::vector<std::pair<int, std::string>> initial_modules,
    BootReport* report, sim::SimEvent& done, BootOptions options) {
  PRESP_REQUIRE(full_bitstream_bytes > 0, "empty full bitstream");
  PRESP_REQUIRE(options.config_bytes_per_cycle > 0,
                "configuration bandwidth must be positive");
  auto& kernel = soc.kernel();
  const double hz = soc.config().clock_mhz * 1e6;

  // 1. Full-device configuration (static part + blank partitions).
  const auto config_cycles = static_cast<sim::Time>(
      static_cast<double>(full_bitstream_bytes) /
      options.config_bytes_per_cycle);
  co_await sim::Delay(kernel, config_cycles);
  if (report != nullptr)
    report->full_config_seconds =
        static_cast<double>(config_cycles) / hz;

  // 2. Preload the initial module of every reconfigurable tile. The
  // requests all queue on the PRC; issue them concurrently and join.
  const sim::Time preload_start = kernel.now();
  std::vector<std::unique_ptr<sim::SimEvent>> loaded;
  for (const auto& [tile, module] : initial_modules) {
    loaded.push_back(std::make_unique<sim::SimEvent>(kernel));
    manager.ensure_module(tile, module, *loaded.back());
  }
  for (const auto& event : loaded) co_await event->wait();
  if (report != nullptr) {
    report->preload_seconds =
        static_cast<double>(kernel.now() - preload_start) / hz;
    report->preloaded_modules = static_cast<int>(initial_modules.size());
  }
  done.trigger();
}

}  // namespace presp::runtime
