// Background fabric defragmentation ("repacker").
//
// Under churn the dynamic floorplan fragments: free cells everywhere, no
// rectangle anywhere. The repacker is a low-priority background process
// that periodically measures fragmentation and migrates *idle*
// accelerators toward the packing origin: quiesce (take the tile lock —
// never blocking, a busy tile is skipped) → stage the rebased image
// (footprint-compatible by construction, see floorplan::DynamicFloorplan
// and bitstream::rebase) → reprogram through the regular pipelined DFXC
// path → commit the region move. A reprogram that escalates leaves the
// tile to the ordinary quarantine machinery — subsequent requests
// re-route through the TileHealthRegistry — and the region move is
// rolled back.
//
// Hard safety invariants, enforced here and tested in repacker_test:
//   1. an in-flight tile is never moved (idle check + tile lock);
//   2. a pinned tile is never moved (pin()/unpin(), e.g. latency-critical
//      tenants);
//   3. every migration is traced (runtime category, "migrate" spans) and
//      fault-injectable: the kRepackAbort site fires after staging,
//      before commit, and must leave the floorplan unchanged.
#pragma once

#include <cstdint>
#include <set>
#include <string>

#include "fault/fault.hpp"
#include "floorplan/dynamic.hpp"
#include "runtime/manager.hpp"

namespace presp::runtime {

struct RepackerOptions {
  /// Cycles between repack passes. Must be positive (presp-lint
  /// runtime.repacker-bounds rejects 0: a zero interval starves the
  /// request path).
  long long interval_cycles = 2'000'000;
  /// Fragmentation ratio above which a pass migrates (<= means skip).
  double frag_threshold = 0.05;
  /// Migrations attempted per pass (bounds the reconfiguration bandwidth
  /// stolen from foreground requests).
  int max_migrations_per_pass = 4;
  /// Consecutive failed/aborted migrations tolerated per pass before the
  /// pass gives up. presp-lint warns when this exceeds the manager's
  /// retry budget (the repacker would out-retry the request path).
  int migration_budget = 2;
  /// Gauge prefix for the published fragmentation metrics.
  std::string metrics_prefix = "floorplan";
};

struct RepackerStats {
  std::uint64_t passes = 0;
  /// Committed migrations (region moved, reprogram OK).
  std::uint64_t migrations = 0;
  /// kRepackAbort injections rolled back (floorplan unchanged).
  std::uint64_t aborts = 0;
  /// Migrations abandoned because the reprogram escalated.
  std::uint64_t failures = 0;
  std::uint64_t skipped_busy = 0;
  std::uint64_t skipped_pinned = 0;
};

class Repacker {
 public:
  /// `plan` maps tile grid index -> region. All references must outlive
  /// the repacker.
  Repacker(soc::Soc& soc, ReconfigurationManager& manager,
           floorplan::DynamicFloorplan& plan, RepackerOptions options = {});

  /// Pins a tile: the repacker will never migrate it until unpinned.
  void pin(int tile) { pinned_.insert(tile); }
  void unpin(int tile) { pinned_.erase(tile); }
  bool pinned(int tile) const { return pinned_.count(tile) > 0; }

  /// Optional chaos hook (kRepackAbort). Not owned.
  void set_fault_injector(fault::FaultInjector* injector) {
    injector_ = injector;
  }

  /// The background loop: sleep interval_cycles, measure fragmentation,
  /// migrate when above threshold, repeat until stop(). Start it like any
  /// other software process; keep the returned Process alive.
  sim::Process process();
  void stop() { stopped_ = true; }

  /// One synchronous repack pass (the loop body); `done` completes with
  /// kOk always — per-migration outcomes land in stats().
  sim::Process pass(Completion& done);

  const RepackerStats& stats() const { return stats_; }
  const RepackerOptions& options() const { return options_; }
  const floorplan::DynamicFloorplan& plan() const { return plan_; }

 private:
  soc::Soc& soc_;
  ReconfigurationManager& manager_;
  floorplan::DynamicFloorplan& plan_;
  RepackerOptions options_;
  RepackerStats stats_;
  std::set<int> pinned_;
  fault::FaultInjector* injector_ = nullptr;
  bool stopped_ = false;
  /// Completion channels for the background chain, deliberately
  /// object-owned rather than frame-local: a pass suspended on these at
  /// teardown is destroyed by ~Completion/~SimEvent, upholding the
  /// kernel.hpp single-owner frame rule (a frame-local Completion whose
  /// only waiter is its own frame would leak). One pass runs at a time.
  Completion pass_done_;
  Completion migrate_done_;
};

}  // namespace presp::runtime
