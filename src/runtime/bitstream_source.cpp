#include "runtime/bitstream_source.hpp"

#include <filesystem>
#include <fstream>
#include <memory>

#include "exec/thread_pool.hpp"
#include "racecheck/annot.hpp"
#include "util/error.hpp"

namespace presp::runtime {

// ------------------------------------------------------------- memory

void MemoryBitstreamSource::store(int tile, const std::string& module,
                                  std::vector<std::uint8_t> payload) {
  payloads_[{tile, module}] = std::move(payload);
}

std::future<std::vector<std::uint8_t>> MemoryBitstreamSource::fetch(
    int tile, const std::string& module) {
  const auto it = payloads_.find({tile, module});
  PRESP_REQUIRE(it != payloads_.end(),
                "no payload registered for (" + std::to_string(tile) +
                    ", " + module + ")");
  std::promise<std::vector<std::uint8_t>> promise;
  promise.set_value(it->second);
  return promise.get_future();
}

sim::Time MemoryBitstreamSource::latency_cycles(std::size_t bytes) const {
  if (bytes_per_cycle_ <= 0.0) return 0;
  return static_cast<sim::Time>(static_cast<double>(bytes) /
                                bytes_per_cycle_);
}

// --------------------------------------------------------------- file

namespace {

std::string sanitize(const std::string& module) {
  if (module.empty()) return "_blank";
  std::string out = module;
  for (char& c : out) {
    if (c == '/' || c == '\\') c = '_';
  }
  return out;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PRESP_REQUIRE(in.good(), "cannot open bitstream file " + path);
  std::vector<std::uint8_t> data(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return data;
}

}  // namespace

FileBitstreamSource::FileBitstreamSource(std::string directory,
                                         exec::ThreadPool* pool,
                                         FileSourceOptions options)
    : directory_(std::move(directory)), pool_(pool), options_(options) {
  std::filesystem::create_directories(directory_);
}

std::string FileBitstreamSource::path_for(int tile,
                                          const std::string& module) const {
  return directory_ + "/t" + std::to_string(tile) + "_" + sanitize(module) +
         ".pbs";
}

void FileBitstreamSource::store(int tile, const std::string& module,
                                std::vector<std::uint8_t> payload) {
  std::ofstream out(path_for(tile, module),
                    std::ios::binary | std::ios::trunc);
  PRESP_REQUIRE(out.good(),
                "cannot write bitstream file " + path_for(tile, module));
  if (!payload.empty()) {
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
  }
  PRESP_REQUIRE(out.good(),
                "short write to bitstream file " + path_for(tile, module));
}

std::future<std::vector<std::uint8_t>> FileBitstreamSource::fetch(
    int tile, const std::string& module) {
  const std::string path = path_for(tile, module);
  auto read = [this, path] {
    const annot::Scope scope("store.async-read");
    std::vector<std::uint8_t> data = read_file(path);
    reads_.fetch_add(1, std::memory_order_relaxed);
    // Future hand-off half: the promise/future pair orders the payload,
    // and this orders it for racecheck (the waiter consumes in fetch()'s
    // caller via the returned future's get()).
    annot::AtomicPublish(this, "store.read");
    return data;
  };
  if (pool_ == nullptr) {
    return std::async(std::launch::async, read);
  }
  // Bridge the pool's fire-and-forget submit() to a future; the promise
  // lives on the heap until the task fulfills it.
  auto promise =
      std::make_shared<std::promise<std::vector<std::uint8_t>>>();
  auto future = promise->get_future();
  pool_->submit([promise, read] {
    try {
      promise->set_value(read());
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  });
  return future;
}

sim::Time FileBitstreamSource::latency_cycles(std::size_t bytes) const {
  sim::Time cycles = static_cast<sim::Time>(
      options_.seek_cycles < 0 ? 0 : options_.seek_cycles);
  if (options_.bytes_per_cycle > 0.0) {
    cycles += static_cast<sim::Time>(static_cast<double>(bytes) /
                                     options_.bytes_per_cycle);
  }
  return cycles;
}

}  // namespace presp::runtime
