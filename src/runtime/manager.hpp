// The DPR runtime reconfiguration manager (paper Section V).
//
// Kernel-level services, modeled as coroutines over the simulated CPU:
//   - per-device (tile) locking: while a reconfiguration or an accelerator
//     run is in flight, other software threads targeting the tile block;
//   - a reconfiguration workqueue: requests are serialized on the single
//     DFX controller / ICAP pair and executed "as soon as the PRC is
//     ready";
//   - before queueing, the calling thread waits for the accelerator in the
//     tile to finish (the per-tile lock enforces this);
//   - decoupler control around the reconfiguration, driver swap after it.
//
// The driver registry mirrors ESP's driver (un)registration: each tile has
// at most one loaded driver; swapping costs a modeled latency.
//
// Fault tolerance (the robustness layer): every ICAP transfer and every
// accelerator run is guarded by a simulated-clock watchdog. A watchdog
// fire reads back the hardware status registers to distinguish a lost
// completion interrupt (accepted as success) from a genuine hang
// (recovered by a DFX-controller reset or a forced partition rewrite),
// then retries with exponential backoff under a per-request retry budget.
// When the budget is exhausted the request escalates instead of throwing:
// the partition is blanked with the greybox image, the tile is
// quarantined in the TileHealthRegistry, and the final status is surfaced
// through the request's Completion. Subsequent run() calls re-route to a
// healthy tile that hosts — or can be reconfigured to — the same module;
// if none exists the caller learns via kQuarantined and falls back to
// software. Error paths never throw across a coroutine suspension.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "runtime/bitstream_store.hpp"
#include "runtime/health.hpp"
#include "soc/soc.hpp"
#include "util/rng.hpp"

namespace presp::runtime {

/// Final status of a manager request, surfaced through its Completion.
enum class RequestStatus {
  kOk = 0,
  /// Every reconfiguration attempt failed the bitstream CRC check.
  kCrcExhausted,
  /// The watchdog retry budget was exhausted on hangs/stalls.
  kTimeout,
  /// The target tile is quarantined and no healthy tile could take the
  /// request.
  kQuarantined,
};

const char* to_string(RequestStatus status);

/// Deterministic seeded-jitter exponential backoff: attempt n (1-based)
/// yields a duration drawn uniformly from [(1 - jitter) * d, d] with
/// d = base_cycles << min(n - 1, 16). jitter is clamped to [0, 1]; 0
/// returns the fixed schedule without consuming the stream.
sim::Time jittered_backoff(long long base_cycles, int attempt,
                           double jitter, Rng& rng);

/// Completion channel for manager requests: a SimEvent plus the final
/// status and the tile the request actually landed on (re-routing may
/// pick a different tile than requested). Must outlive the request.
class Completion {
 public:
  explicit Completion(sim::Kernel& kernel) : event_(kernel) {}

  auto wait() { return event_.wait(); }
  void reset() {
    event_.reset();
    status_ = RequestStatus::kOk;
    tile_ = -1;
  }

  bool triggered() const { return event_.triggered(); }
  RequestStatus status() const { return status_; }
  bool ok() const { return status_ == RequestStatus::kOk; }
  /// Tile the request finally executed on (-1 if it never reached one).
  int tile() const { return tile_; }

  /// Called by the manager: records the outcome and wakes waiters.
  void complete(RequestStatus status, int tile = -1) {
    status_ = status;
    tile_ = tile;
    event_.trigger();
  }

 private:
  sim::SimEvent event_;
  RequestStatus status_ = RequestStatus::kOk;
  int tile_ = -1;
};

struct ManagerOptions {
  /// Cycles to unregister + register an accelerator driver (Linux module
  /// swap cost; ~0.5 ms at 78 MHz).
  long long driver_swap_cycles = 39'000;
  /// Extra kernel-entry overhead per reconfiguration request.
  long long request_overhead_cycles = 2'000;
  /// Attempts per reconfiguration before giving up on CRC errors.
  int max_attempts = 3;
  /// Watchdog floor for one ICAP transfer; the actual deadline adds
  /// watchdog_reconf_margin times the image's nominal streaming time.
  long long watchdog_reconf_base_cycles = 200'000;
  double watchdog_reconf_margin = 8.0;
  /// Watchdog for one accelerator run (applications should size this a
  /// comfortable multiple of their longest kernel).
  long long watchdog_run_cycles = 100'000'000;
  /// Backoff before retry attempt n is drawn uniformly from
  /// [(1 - backoff_jitter) * d, d] with d = backoff_base_cycles << (n-1).
  long long backoff_base_cycles = 10'000;
  /// Jitter fraction for the retry backoff, in [0, 1]. A fixed
  /// exponential schedule synchronizes retries across tiles that failed
  /// together (thundering herd on the single DFXC under chaos load); the
  /// seeded draw decorrelates them while keeping every replay of the same
  /// seed bit-identical. 0 restores the fixed schedule.
  double backoff_jitter = 0.5;
  /// Seed of the per-manager jitter stream. The stream is consumed in
  /// simulation event order, which is deterministic, so two runs with the
  /// same seed (and workload) produce identical backoff schedules —
  /// tools/run_chaos.sh diffs rely on this.
  std::uint64_t backoff_seed = 0x9e3779b97f4a7c15ULL;
  /// Watchdog recoveries per request before the tile is quarantined.
  int retry_budget = 3;
  /// Settle time after a recovery before stale interrupts are drained.
  long long irq_drain_cycles = 2'000;
  /// Split each request into a fetch stage (DMA + CRC into the DFXC
  /// staging buffer) and a program stage (ICAP streaming), so request
  /// N+1's fetch overlaps request N's programming. false = the legacy
  /// combined transfer (the serial baseline bench_micro compares
  /// against).
  bool pipelined = true;
  /// Bounded fetch->program buffer depth (2 = double buffer). Should not
  /// exceed SocOptions::dfxc_staging_slots.
  int staging_slots = 2;
  TileHealthOptions health;
};

struct ManagerStats {
  std::uint64_t reconfigurations = 0;
  std::uint64_t reconfigurations_avoided = 0;  // module already loaded
  /// Requests that escalated (blank + quarantine) instead of completing.
  std::uint64_t reconfigurations_failed = 0;
  std::uint64_t runs = 0;
  std::uint64_t driver_swaps = 0;
  /// Fetch stages completed by the pipelined flow (DMA+CRC staged in the
  /// DFXC ahead of — possibly overlapping — another request's program).
  std::uint64_t pipelined_fetches = 0;
  /// CRC failures detected by the DFX controller and retried.
  std::uint64_t crc_retries = 0;
  std::uint64_t readbacks = 0;
  /// Watchdog timeouts (reconfiguration or run) that triggered recovery.
  std::uint64_t watchdog_fires = 0;
  /// Completions whose interrupt was lost but whose status register
  /// showed success (accepted without re-execution).
  std::uint64_t lost_irq_recoveries = 0;
  /// Interrupts that arrived for a superseded attempt and were discarded.
  std::uint64_t stray_irqs = 0;
  /// DFXC triggers nacked (controller busy) and retried.
  std::uint64_t dropped_trigger_retries = 0;
  /// Decoupler releases nacked (stuck-at fault) and retried.
  std::uint64_t stuck_decouple_retries = 0;
  /// Rejected CMD writes recovered by a forced partition rewrite.
  std::uint64_t cmd_retries = 0;
  /// Hung accelerator runs superseded by a forced partition rewrite.
  std::uint64_t hung_run_repairs = 0;
  /// run() requests re-routed from an unusable tile to a healthy one.
  std::uint64_t reroutes = 0;
  /// Tiles pulled from rotation after exhausting their retry budget.
  std::uint64_t quarantines = 0;
  /// Scrub passes (readback verify, rewrite on mismatch).
  std::uint64_t scrubs = 0;
  /// Forced reprograms issued by the defragmentation repacker.
  std::uint64_t repacks = 0;
  /// Scrubs/recoveries that repaired an upset partition by rewriting it.
  std::uint64_t seu_repairs = 0;
  /// Software-fallback executions recorded by the application layer.
  std::uint64_t fallbacks = 0;
  /// Cycles software threads spent blocked on tile locks.
  long long lock_wait_cycles = 0;
  /// Cycles reconfiguration requests waited for the PRC.
  long long prc_wait_cycles = 0;
  /// Cycles spent actually reconfiguring (decouple -> driver loaded).
  long long reconfiguration_cycles = 0;
  /// Cycles between a watchdog fire and the request completing (summed;
  /// divide by watchdog_fires for the mean recovery latency).
  long long recovery_cycles = 0;
  int max_queue_depth = 0;
};

class ReconfigurationManager {
 public:
  ReconfigurationManager(soc::Soc& soc, BitstreamStore& store,
                         ManagerOptions options = {});

  /// Ensures `module` is loaded in a usable tile (re-routing away from
  /// `tile` if it is quarantined), reconfiguring if needed, then programs
  /// and runs the task and waits for the done interrupt under a watchdog.
  /// Completes `done` with the final status and the tile that ran. Call
  /// from a software Process; one call at a time per Completion.
  /// Parameters are taken by value: these are coroutines, and reference
  /// parameters would dangle across suspensions (`done` must outlive the
  /// call — it is the completion channel).
  sim::Process run(int tile, std::string module, soc::AccelTask task,
                   Completion& done);

  /// Reconfiguration only (no task): loads `module` into `tile`.
  sim::Process ensure_module(int tile, std::string module,
                             Completion& done);

  /// Blanks the tile's partition (loads the greybox bitstream registered
  /// with BitstreamStore::add_blank) and unregisters its driver.
  sim::Process clear_partition(int tile, Completion& done);

  /// Readback verification: streams the partition's configuration back
  /// through the ICAP and compares it with the golden image of `module`.
  /// Writes the outcome to *ok and completes `done`.
  sim::Process verify_partition(int tile, std::string module, bool* ok,
                                Completion& done);

  /// Scrub pass: readback-verify the tile's current module and repair an
  /// upset partition by rewriting it with the golden bitstream. Completes
  /// kOk when the partition is clean (or empty) afterwards.
  sim::Process scrub(int tile, Completion& done);

  /// True when nothing (run or reconfiguration) holds the tile's lock —
  /// the repacker's idle precondition, so a repack never blocks behind
  /// in-flight work (it skips the tile instead).
  bool tile_idle(int tile) { return tile_lock(tile).available() > 0; }

  /// Repack commit path: forced reprogram of `module` on `tile` through
  /// the regular (pipelined) DFXC flow, under the tile lock. Used by the
  /// defragmentation repacker after a region relocation is staged; on
  /// escalation the usual quarantine/re-route machinery applies and the
  /// caller rolls the region move back.
  sim::Process repack_tile(int tile, std::string module, Completion& done);

  /// Legacy completion-event entry points; identical behavior, but the
  /// final status is dropped (they exist so single-threaded callers that
  /// predate the fault layer keep working unchanged).
  sim::Process run(int tile, std::string module, soc::AccelTask task,
                   sim::SimEvent& done);
  sim::Process ensure_module(int tile, std::string module,
                             sim::SimEvent& done);
  sim::Process clear_partition(int tile, sim::SimEvent& done);
  sim::Process verify_partition(int tile, std::string module, bool* ok,
                                sim::SimEvent& done);

  /// Re-admits a quarantined tile (administrative: the next request
  /// reconfigures it from scratch and it must earn healthy status back).
  void rehabilitate(int tile) { health_.rehabilitate(tile); }

  /// Records a software-fallback execution (kept here so the fault
  /// tolerance story is visible in one stats block).
  void note_fallback() { ++stats_.fallbacks; }

  const ManagerStats& stats() const { return stats_; }
  const TileHealthRegistry& health() const { return health_; }
  TileHealthRegistry& health() { return health_; }
  /// Currently loaded driver for a tile ("" if none).
  const std::string& driver(int tile) const;

 private:
  /// Core reconfiguration sequence; caller must hold the tile lock.
  /// Never throws after its first suspension: failures surface through
  /// `done`, and on escalation the partition is blanked and the tile
  /// quarantined before completion. Dispatches to the pipelined
  /// (split fetch/program) or serial (combined transfer) flow.
  sim::Process reconfigure_locked(int tile, std::string module,
                                  Completion& done);
  /// Legacy combined DMA+ICAP transfer under prc_lock_.
  sim::Process reconfigure_serial(int tile, std::string module,
                                  Completion& done);
  /// Split-transaction flow: the fetch stage (DMA + CRC into the DFXC
  /// staging buffer, serialized on fetch_lock_) overlaps the previous
  /// request's program stage (ICAP streaming under prc_lock_); a bounded
  /// staging semaphore forms the double buffer between them.
  sim::Process reconfigure_pipelined(int tile, std::string module,
                                     Completion& done);
  /// Demultiplexes the shared aux-tile IRQ stream into per-target
  /// mailboxes so concurrently waiting fetch/program stages never steal
  /// each other's completions. Started lazily by the first pipelined
  /// operation; serial mode keeps waiting on the raw stream.
  sim::Process aux_irq_pump();
  void start_irq_pump();
  sim::Mailbox<std::uint64_t>& aux_box(int tile);
  /// Picks a usable tile for (tile, module): the tile itself when
  /// usable, else a healthy tile already hosting — or reconfigurable
  /// to — the module. Returns -1 if none.
  int route_tile(int tile, const std::string& module);
  sim::Semaphore& tile_lock(int tile);
  /// Jittered backoff before retry `attempt` (see ManagerOptions).
  sim::Time backoff(int attempt);

  soc::Soc& soc_;
  BitstreamStore& store_;
  ManagerOptions options_;
  ManagerStats stats_;
  TileHealthRegistry health_;
  /// The single PRC/ICAP: in pipelined mode this guards only the program
  /// (ICAP streaming) stage; in serial mode, the whole transfer.
  sim::Semaphore prc_lock_;
  /// Serializes the DFXC fetch engine (one DMA+CRC in flight).
  sim::Semaphore fetch_lock_;
  /// Bounded fetch->program buffer: one credit per DFXC staging slot.
  sim::Semaphore staging_sem_;
  /// Guards the shared DFXC address/length/target register file so a
  /// fetch-stage write sequence never interleaves with a program-stage
  /// (or readback) one.
  sim::Semaphore reg_lock_;
  std::map<int, std::unique_ptr<sim::Semaphore>> tile_locks_;
  std::map<int, std::unique_ptr<sim::Mailbox<std::uint64_t>>> aux_boxes_;
  bool irq_pump_started_ = false;
  std::map<int, std::string> drivers_;
  int queue_depth_ = 0;
  std::string no_driver_;
  /// Seeded jitter stream for retry backoff (consumed in deterministic
  /// sim event order).
  Rng backoff_rng_;
};

}  // namespace presp::runtime
