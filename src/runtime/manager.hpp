// The DPR runtime reconfiguration manager (paper Section V).
//
// Kernel-level services, modeled as coroutines over the simulated CPU:
//   - per-device (tile) locking: while a reconfiguration or an accelerator
//     run is in flight, other software threads targeting the tile block;
//   - a reconfiguration workqueue: requests are serialized on the single
//     DFX controller / ICAP pair and executed "as soon as the PRC is
//     ready";
//   - before queueing, the calling thread waits for the accelerator in the
//     tile to finish (the per-tile lock enforces this);
//   - decoupler control around the reconfiguration, driver swap after it.
//
// The driver registry mirrors ESP's driver (un)registration: each tile has
// at most one loaded driver; swapping costs a modeled latency.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "runtime/bitstream_store.hpp"
#include "soc/soc.hpp"

namespace presp::runtime {

struct ManagerOptions {
  /// Cycles to unregister + register an accelerator driver (Linux module
  /// swap cost; ~0.5 ms at 78 MHz).
  long long driver_swap_cycles = 39'000;
  /// Extra kernel-entry overhead per reconfiguration request.
  long long request_overhead_cycles = 2'000;
  /// Attempts per reconfiguration before giving up on CRC errors.
  int max_attempts = 3;
};

struct ManagerStats {
  std::uint64_t reconfigurations = 0;
  std::uint64_t reconfigurations_avoided = 0;  // module already loaded
  std::uint64_t runs = 0;
  std::uint64_t driver_swaps = 0;
  /// CRC failures detected by the DFX controller and retried.
  std::uint64_t crc_retries = 0;
  std::uint64_t readbacks = 0;
  /// Cycles software threads spent blocked on tile locks.
  long long lock_wait_cycles = 0;
  /// Cycles reconfiguration requests waited for the PRC.
  long long prc_wait_cycles = 0;
  /// Cycles spent actually reconfiguring (decouple -> driver loaded).
  long long reconfiguration_cycles = 0;
  int max_queue_depth = 0;
};

class ReconfigurationManager {
 public:
  ReconfigurationManager(soc::Soc& soc, BitstreamStore& store,
                         ManagerOptions options = {});

  /// Ensures `module` is loaded in `tile`, reconfiguring if needed, then
  /// programs and runs the task, waiting for the done interrupt. Signals
  /// `done` at completion. Call from a software Process; one call at a
  /// time per SimEvent. Parameters are taken by value: these are
  /// coroutines, and reference parameters would dangle across
  /// suspensions (`done` must outlive the call — it is the completion
  /// channel).
  sim::Process run(int tile, std::string module, soc::AccelTask task,
                   sim::SimEvent& done);

  /// Reconfiguration only (no task): loads `module` into `tile`.
  sim::Process ensure_module(int tile, std::string module,
                             sim::SimEvent& done);

  /// Blanks the tile's partition (loads the greybox bitstream registered
  /// with BitstreamStore::add_blank) and unregisters its driver.
  sim::Process clear_partition(int tile, sim::SimEvent& done);

  /// Readback verification: streams the partition's configuration back
  /// through the ICAP and compares it with the golden image of `module`.
  /// Writes the outcome to *ok and signals `done`.
  sim::Process verify_partition(int tile, std::string module, bool* ok,
                                sim::SimEvent& done);

  const ManagerStats& stats() const { return stats_; }
  /// Currently loaded driver for a tile ("" if none).
  const std::string& driver(int tile) const;

 private:
  /// Core reconfiguration sequence; caller must hold the tile lock.
  sim::Process reconfigure_locked(int tile, std::string module,
                                  sim::SimEvent& done);
  sim::Semaphore& tile_lock(int tile);

  soc::Soc& soc_;
  BitstreamStore& store_;
  ManagerOptions options_;
  ManagerStats stats_;
  /// The single PRC/ICAP: the reconfiguration workqueue's serialization.
  sim::Semaphore prc_lock_;
  std::map<int, std::unique_ptr<sim::Semaphore>> tile_locks_;
  std::map<int, std::string> drivers_;
  int queue_depth_ = 0;
  std::string no_driver_;
};

}  // namespace presp::runtime
