#include "runtime/bitstream_store.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace presp::runtime {

const BitstreamImage& BitstreamStore::add(
    int tile, const std::string& module, std::size_t bytes,
    std::span<const std::uint8_t> payload, std::uint32_t crc) {
  PRESP_REQUIRE(bytes > 0, "empty bitstream");
  PRESP_REQUIRE(!has(tile, module),
                "bitstream for (" + std::to_string(tile) + ", " + module +
                    ") already registered");
  const std::string region =
      "pbs/" + std::to_string(tile) + "/" +
      (module.empty() ? std::string("<blank>") : module);
  const std::uint64_t addr = memory_.allocate(region, bytes);
  if (!payload.empty()) {
    PRESP_REQUIRE(payload.size() <= bytes, "payload larger than image");
    auto dst = memory_.bytes(addr, payload.size());
    std::copy(payload.begin(), payload.end(), dst.begin());
  }
  memory_.attach_blob(addr, soc::BitstreamBlob{module, tile, bytes, crc});

  BitstreamImage image{module, tile, addr, bytes, crc};
  return images_.emplace(std::make_pair(tile, module), image)
      .first->second;
}

bool BitstreamStore::has(int tile, const std::string& module) const {
  return images_.find({tile, module}) != images_.end();
}

const BitstreamImage& BitstreamStore::get(int tile,
                                          const std::string& module) const {
  const auto it = images_.find({tile, module});
  PRESP_REQUIRE(it != images_.end(),
                "no bitstream for (" + std::to_string(tile) + ", " + module +
                    ")");
  return it->second;
}

const BitstreamImage& BitstreamStore::add_blank(int tile,
                                                std::size_t bytes) {
  return add(tile, "", bytes);
}

std::vector<BitstreamImage> BitstreamStore::images() const {
  std::vector<BitstreamImage> out;
  out.reserve(images_.size());
  for (const auto& [key, image] : images_) out.push_back(image);
  return out;
}

std::size_t BitstreamStore::total_bytes() const {
  std::size_t total = 0;
  for (const auto& [key, image] : images_) total += image.bytes;
  return total;
}

}  // namespace presp::runtime
