#include "runtime/bitstream_store.hpp"

#include <algorithm>

#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"

namespace presp::runtime {

namespace {

constexpr trace::Category kTrc = trace::Category::kRuntime;

std::string key_name(int tile, const std::string& module) {
  return "(" + std::to_string(tile) + ", " + module + ")";
}

trace::Counter& hit_counter() {
  static trace::Counter& c =
      trace::MetricsRegistry::global().counter("runtime.store.cache_hits");
  return c;
}
trace::Counter& miss_counter() {
  static trace::Counter& c =
      trace::MetricsRegistry::global().counter("runtime.store.cache_misses");
  return c;
}
trace::Counter& eviction_counter() {
  static trace::Counter& c = trace::MetricsRegistry::global().counter(
      "runtime.store.cache_evictions");
  return c;
}
trace::Counter& source_bytes_counter() {
  static trace::Counter& c =
      trace::MetricsRegistry::global().counter("runtime.store.source_bytes");
  return c;
}
trace::Gauge& resident_bytes_gauge() {
  static trace::Gauge& g = trace::MetricsRegistry::global().gauge(
      "runtime.store.resident_bytes");
  return g;
}

}  // namespace

BitstreamStore::BitstreamStore(soc::MainMemory& memory, StoreOptions options,
                               AsyncBitstreamSource* source)
    : memory_(memory), options_(options), source_(source) {
  if (source_ == nullptr && options_.cache_slots > 0) {
    owned_source_ = std::make_unique<MemoryBitstreamSource>();
    source_ = owned_source_.get();
  }
}

const BitstreamImage& BitstreamStore::add(
    int tile, const std::string& module, std::size_t bytes,
    std::span<const std::uint8_t> payload, std::uint32_t crc) {
  PRESP_REQUIRE(bytes > 0, "empty bitstream");
  PRESP_REQUIRE(!has(tile, module), "bitstream for " +
                                        key_name(tile, module) +
                                        " already registered");
  PRESP_REQUIRE(payload.empty() || payload.size() <= bytes,
                "payload larger than image");
  max_image_bytes_ = std::max(max_image_bytes_, bytes);
  if (options_.cache_slots > 0 && !module.empty()) {
    // Cached image: metadata only; the payload lives in the async source
    // until a miss pulls it into a slot slab.
    PRESP_REQUIRE(slot_bytes_ == 0 || bytes <= slot_bytes_,
                  "bitstream for " + key_name(tile, module) + " (" +
                      std::to_string(bytes) +
                      " B) exceeds the cache slot size (" +
                      std::to_string(slot_bytes_) + " B)");
    source_->store(tile, module,
                   std::vector<std::uint8_t>(payload.begin(), payload.end()));
    Record rec;
    rec.image = BitstreamImage{module, tile, 0, bytes, crc};
    return records_.emplace(std::make_pair(tile, module), std::move(rec))
        .first->second.image;
  }

  // Eager image (legacy path, and every blanking image): copy into its
  // own DRAM region now, resident forever.
  const std::string region =
      "pbs/" + std::to_string(tile) + "/" +
      (module.empty() ? std::string("<blank>") : module);
  const std::uint64_t addr = memory_.allocate(region, bytes);
  if (!payload.empty()) {
    auto dst = memory_.bytes(addr, payload.size());
    std::copy(payload.begin(), payload.end(), dst.begin());
  }
  memory_.attach_blob(addr, soc::BitstreamBlob{module, tile, bytes, crc});

  Record rec;
  rec.image = BitstreamImage{module, tile, addr, bytes, crc};
  rec.permanent = true;
  rec.resident = true;
  return records_.emplace(std::make_pair(tile, module), std::move(rec))
      .first->second.image;
}

const BitstreamImage& BitstreamStore::add_blank(int tile,
                                                std::size_t bytes) {
  return add(tile, "", bytes);
}

bool BitstreamStore::has(int tile, const std::string& module) const {
  return records_.find({tile, module}) != records_.end();
}

BitstreamStore::Record& BitstreamStore::record_at(
    int tile, const std::string& module) {
  const auto it = records_.find({tile, module});
  PRESP_REQUIRE(it != records_.end(),
                "no bitstream for " + key_name(tile, module));
  return it->second;
}

const BitstreamImage& BitstreamStore::get(int tile,
                                          const std::string& module) const {
  const auto it = records_.find({tile, module});
  PRESP_REQUIRE(it != records_.end(),
                "no bitstream for " + key_name(tile, module));
  PRESP_REQUIRE(it->second.resident,
                "bitstream for " + key_name(tile, module) +
                    " is not resident; acquire() it first");
  return it->second.image;
}

bool BitstreamStore::resident(int tile, const std::string& module) const {
  const auto it = records_.find({tile, module});
  return it != records_.end() && it->second.resident;
}

void BitstreamStore::ensure_cache(sim::Kernel& kernel) {
  if (credits_ != nullptr) return;
  slot_bytes_ =
      options_.slot_bytes > 0 ? options_.slot_bytes : max_image_bytes_;
  PRESP_REQUIRE(slot_bytes_ > 0, "cache enabled with no images registered");
  const int slots = options_.cache_slots;
  slot_addrs_.reserve(static_cast<std::size_t>(slots));
  for (int i = 0; i < slots; ++i) {
    slot_addrs_.push_back(
        memory_.allocate("pbs-cache/slot" + std::to_string(i), slot_bytes_));
  }
  slot_owners_.assign(static_cast<std::size_t>(slots), nullptr);
  credits_ = std::make_unique<sim::Semaphore>(
      kernel, static_cast<std::uint32_t>(slots));
}

int BitstreamStore::take_slot() {
  for (std::size_t i = 0; i < slot_owners_.size(); ++i) {
    if (slot_owners_[i] == nullptr) return static_cast<int>(i);
  }
  // Evict the least-recently-used unpinned resident. The credit held by
  // the caller guarantees at most slots-1 other records are pinned, so
  // a victim always exists.
  int victim = -1;
  std::uint64_t oldest = 0;
  for (std::size_t i = 0; i < slot_owners_.size(); ++i) {
    const Record* owner = slot_owners_[i];
    if (owner->pins > 0) continue;
    if (victim < 0 || owner->last_use < oldest) {
      victim = static_cast<int>(i);
      oldest = owner->last_use;
    }
  }
  PRESP_ASSERT_MSG(victim >= 0, "cache credit accounting broke: no victim");
  Record* owner = slot_owners_[static_cast<std::size_t>(victim)];
  owner->resident = false;
  owner->slot = -1;
  owner->image.address = 0;
  slot_owners_[static_cast<std::size_t>(victim)] = nullptr;
  resident_bytes_ -= owner->image.bytes;
  ++stats_.evictions;
  eviction_counter().add(1);
  resident_bytes_gauge().set(static_cast<double>(resident_bytes_));
  return victim;
}

sim::Process BitstreamStore::acquire(sim::Kernel& kernel, int tile,
                                     std::string module,
                                     StoreTicket& ticket) {
  Record& rec = record_at(tile, module);
  if (rec.permanent) {
    ++stats_.hits;
    hit_counter().add(1);
    ticket.image = rec.image;
    ticket.done.trigger();
    co_return;
  }
  ensure_cache(kernel);
  const sim::Time t0 = kernel.now();
  if (rec.pins == 0) co_await credits_->acquire();
  ++rec.pins;
  if (rec.resident) {
    ++stats_.hits;
    hit_counter().add(1);
  } else if (rec.fetching != nullptr) {
    // A fetch for this image is already in flight (prefetch or another
    // acquirer): share it.
    ++stats_.hits;
    hit_counter().add(1);
    const auto fetching = rec.fetching;
    co_await fetching->wait();
  } else {
    ++stats_.misses;
    miss_counter().add(1);
    rec.fetching = std::make_shared<sim::SimEvent>(kernel);
    const int slot = take_slot();
    rec.slot = slot;
    slot_owners_[static_cast<std::size_t>(slot)] = &rec;
    PRESP_REQUIRE(rec.image.bytes <= slot_bytes_,
                  "bitstream for " + key_name(tile, module) +
                      " exceeds the cache slot size");
    rec.image.address = slot_addrs_[static_cast<std::size_t>(slot)];
    if (trace::enabled(kTrc)) {
      trace::sim_begin(kTrc, "store-fetch:" + module, kernel.now(),
                       static_cast<std::uint32_t>(std::max(tile, 0)),
                       static_cast<double>(rec.image.bytes));
    }
    // Launch the real asynchronous read first, then let the simulated
    // latency elapse while it completes on the host.
    auto payload_future = source_->fetch(tile, module);
    co_await sim::Delay(kernel,
                        source_->latency_cycles(rec.image.bytes));
    std::vector<std::uint8_t> payload = payload_future.get();
    PRESP_REQUIRE(payload.size() <= rec.image.bytes,
                  "source payload larger than registered image for " +
                      key_name(tile, module));
    if (!payload.empty()) {
      auto dst = memory_.bytes(rec.image.address, payload.size());
      std::copy(payload.begin(), payload.end(), dst.begin());
    }
    memory_.attach_blob(
        rec.image.address,
        soc::BitstreamBlob{module, tile, rec.image.bytes, rec.image.crc});
    rec.resident = true;
    resident_bytes_ += rec.image.bytes;
    ++stats_.source_fetches;
    stats_.source_bytes += rec.image.bytes;
    source_bytes_counter().add(rec.image.bytes);
    resident_bytes_gauge().set(static_cast<double>(resident_bytes_));
    if (trace::enabled(kTrc)) {
      trace::sim_end(kTrc, "store-fetch:" + module, kernel.now(),
                     static_cast<std::uint32_t>(std::max(tile, 0)));
    }
    const auto fetching = rec.fetching;
    rec.fetching.reset();
    fetching->trigger();
  }
  rec.last_use = ++lru_tick_;
  stats_.fetch_wait_cycles += static_cast<long long>(kernel.now() - t0);
  ticket.image = rec.image;
  ticket.done.trigger();
}

void BitstreamStore::release(int tile, const std::string& module) {
  Record& rec = record_at(tile, module);
  if (rec.permanent) return;
  PRESP_REQUIRE(rec.pins > 0,
                "release without acquire for " + key_name(tile, module));
  if (--rec.pins == 0) credits_->release();
}

sim::Process BitstreamStore::prefetch(sim::Kernel& kernel, int tile,
                                      std::string module,
                                      sim::SimEvent& done) {
  StoreTicket ticket(kernel);
  acquire(kernel, tile, module, ticket);
  co_await ticket.done.wait();
  release(tile, module);
  done.trigger();
}

std::vector<BitstreamImage> BitstreamStore::images() const {
  std::vector<BitstreamImage> out;
  out.reserve(records_.size());
  for (const auto& [key, rec] : records_) out.push_back(rec.image);
  return out;
}

std::size_t BitstreamStore::total_bytes() const {
  std::size_t total = 0;
  for (const auto& [key, rec] : records_) total += rec.image.bytes;
  return total;
}

}  // namespace presp::runtime
