#include "runtime/api.hpp"

#include "soc/tiles.hpp"
#include "util/error.hpp"

namespace presp::runtime {

sim::Process DprApi::prefetch(int tile, std::string module) {
  // Frame-local completion: the coroutine owns everything it waits on, so
  // callers can drop the returned handle entirely.
  sim::SimEvent warmed(soc_.kernel());
  store_.prefetch(soc_.kernel(), tile, module, warmed);
  co_await warmed.wait();
}

sim::Process BareMetalDriver::run(int tile, std::string module,
                                  soc::AccelTask task,
                                  sim::SimEvent& done) {
  auto& kernel = soc_.kernel();
  auto& cpu = soc_.cpu();

  if (soc_.reconf_tile(tile).module() != module) {
    const BitstreamImage& image = store_.get(tile, module);
    co_await cpu.write_reg(tile, soc::kRegDecouple, 1);
    const int aux = soc_.aux_tile_index();
    co_await cpu.write_reg(aux, soc::kRegDfxcBsAddr, image.address);
    co_await cpu.write_reg(aux, soc::kRegDfxcBsBytes, image.bytes);
    co_await cpu.write_reg(aux, soc::kRegDfxcTarget,
                           static_cast<std::uint64_t>(tile));
    co_await cpu.write_reg(aux, soc::kRegDfxcTrigger, 1);
    // Busy-poll the controller status.
    while (true) {
      ++stats_.polls;
      const std::uint64_t status =
          co_await cpu.read_reg(aux, soc::kRegDfxcStatus);
      if (status == 0) break;
      co_await sim::Delay(kernel, static_cast<sim::Time>(poll_interval_));
    }
    co_await cpu.write_reg(tile, soc::kRegDecouple, 0);
    // Drain the completion interrupt nobody handles in bare-metal mode.
    if (!cpu.irq_from(aux).empty())
      (void)co_await cpu.irq_from(aux).receive();
    ++stats_.reconfigurations;
  }

  co_await cpu.write_reg(tile, soc::kRegSrc, task.src);
  co_await cpu.write_reg(tile, soc::kRegDst, task.dst);
  co_await cpu.write_reg(tile, soc::kRegItems,
                         static_cast<std::uint64_t>(task.items));
  co_await cpu.write_reg(tile, soc::kRegAuxArg, task.aux);
  co_await cpu.write_reg(tile, soc::kRegCmd, 1);
  while (true) {
    ++stats_.polls;
    const std::uint64_t status =
        co_await cpu.read_reg(tile, soc::kRegStatus);
    if (status == soc::kStatusDone) break;
    co_await sim::Delay(kernel, static_cast<sim::Time>(poll_interval_));
  }
  if (!cpu.irq_from(tile).empty())
    (void)co_await cpu.irq_from(tile).receive();
  ++stats_.runs;
  done.trigger();
}

}  // namespace presp::runtime
