#include "runtime/health.hpp"

namespace presp::runtime {

const char* to_string(TileHealth health) {
  switch (health) {
    case TileHealth::kHealthy: return "healthy";
    case TileHealth::kDegraded: return "degraded";
    case TileHealth::kQuarantined: return "quarantined";
  }
  return "?";
}

TileHealth TileHealthRegistry::health(int tile) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(tile);
  return it == entries_.end() ? TileHealth::kHealthy : it->second.health;
}

int TileHealthRegistry::consecutive_failures(int tile) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(tile);
  return it == entries_.end() ? 0 : it->second.fail_streak;
}

std::map<int, TileHealth> TileHealthRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<int, TileHealth> out;
  for (const auto& [tile, entry] : entries_) out[tile] = entry.health;
  return out;
}

void TileHealthRegistry::transition(int tile, Entry& entry, TileHealth to) {
  const TileHealth from = entry.health;
  if (from == to) return;
  entry.health = to;
  if (listener_) listener_(tile, from, to);
}

TileHealth TileHealthRegistry::record_failure(int tile) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[tile];
  ++stats_.failures;
  entry.success_streak = 0;
  ++entry.fail_streak;
  if (entry.health == TileHealth::kHealthy &&
      entry.fail_streak >= options_.degrade_after) {
    transition(tile, entry, TileHealth::kDegraded);
  } else if (entry.health == TileHealth::kDegraded &&
             entry.fail_streak >= options_.quarantine_after) {
    transition(tile, entry, TileHealth::kQuarantined);
    ++stats_.quarantines;
  }
  return entry.health;
}

void TileHealthRegistry::record_success(int tile) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[tile];
  if (entry.health == TileHealth::kQuarantined) return;
  entry.fail_streak = 0;
  ++entry.success_streak;
  if (entry.health == TileHealth::kDegraded &&
      entry.success_streak >= options_.recover_after) {
    transition(tile, entry, TileHealth::kHealthy);
  }
}

void TileHealthRegistry::quarantine(int tile) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[tile];
  if (entry.health == TileHealth::kQuarantined) return;
  entry.success_streak = 0;
  transition(tile, entry, TileHealth::kQuarantined);
  ++stats_.quarantines;
}

void TileHealthRegistry::rehabilitate(int tile) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[tile];
  if (entry.health != TileHealth::kQuarantined) return;
  entry.fail_streak = 0;
  entry.success_streak = 0;
  transition(tile, entry, TileHealth::kDegraded);
  ++stats_.rehabilitations;
}

}  // namespace presp::runtime
