#include "runtime/repacker.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "trace/trace.hpp"
#include "util/error.hpp"

namespace presp::runtime {

namespace {

constexpr trace::Category kTrc = trace::Category::kRuntime;

std::uint32_t tile_track(int tile) {
  const auto track = static_cast<std::uint32_t>(std::max(tile, 0));
  if (trace::enabled(kTrc)) {
    trace::set_sim_track_name(track, "tile " + std::to_string(tile));
  }
  return track;
}

}  // namespace

Repacker::Repacker(soc::Soc& soc, ReconfigurationManager& manager,
                   floorplan::DynamicFloorplan& plan, RepackerOptions options)
    : soc_(soc), manager_(manager), plan_(plan),
      options_(std::move(options)), pass_done_(soc.kernel()),
      migrate_done_(soc.kernel()) {
  PRESP_REQUIRE(options_.interval_cycles > 0,
                "repack interval must be positive");
  PRESP_REQUIRE(options_.max_migrations_per_pass >= 1,
                "max_migrations_per_pass must be at least 1");
  PRESP_REQUIRE(options_.migration_budget >= 1,
                "migration_budget must be at least 1");
}

sim::Process Repacker::pass(Completion& done) {
  auto& kernel = soc_.kernel();
  ++stats_.passes;
  plan_.publish_metrics(options_.metrics_prefix);

  // Rightmost regions first: each leftward move frees cells behind the
  // next candidate, so one pass compacts monotonically.
  std::vector<std::pair<int, int>> order;  // (col_lo, tile), descending
  for (const auto& tile_ptr : soc_.reconf_tiles()) {
    const int tile = tile_ptr->index();
    if (auto region = plan_.region(tile)) {
      order.emplace_back(region->col_lo, tile);
    }
  }
  std::sort(order.begin(), order.end(), std::greater<>());

  int migrated = 0;
  int budget = options_.migration_budget;
  for (const auto& [col_lo, tile] : order) {
    (void)col_lo;
    if (migrated >= options_.max_migrations_per_pass || budget <= 0) break;
    // Invariant 2: a pinned tile is never moved.
    if (pinned(tile)) {
      ++stats_.skipped_pinned;
      continue;
    }
    // Invariant 1: an in-flight tile is never moved. The idle check plus
    // the synchronous tile-lock acquire inside repack_tile (no other
    // coroutine can run between them in the single-threaded kernel)
    // guarantee no request is active for the whole move.
    if (!manager_.tile_idle(tile)) {
      ++stats_.skipped_busy;
      continue;
    }
    const auto target = plan_.relocation_target(tile);
    if (!target) continue;

    const auto track = tile_track(tile);
    if (trace::enabled(kTrc)) {
      trace::sim_begin(kTrc, "migrate", kernel.now(), track);
    }
    // Invariant 3, chaos side: the rebased image is staged; the
    // kRepackAbort site may kill the migration here, before anything
    // commits, and the floorplan must be left untouched.
    if (injector_ && injector_->on_repack_abort(tile)) {
      ++stats_.aborts;
      --budget;
      if (trace::enabled(kTrc)) {
        trace::sim_instant(kTrc, "repack-abort", kernel.now(), track);
        trace::sim_end(kTrc, "migrate", kernel.now(), track);
      }
      continue;
    }
    const std::string module = soc_.reconf_tile(tile).module();
    if (!module.empty()) {
      migrate_done_.reset();
      manager_.repack_tile(tile, module, migrate_done_);
      co_await migrate_done_.wait();
      if (!migrate_done_.ok()) {
        // Escalation already blanked + quarantined the tile; requests
        // re-route through the TileHealthRegistry. Roll the move back by
        // simply not committing it.
        ++stats_.failures;
        --budget;
        if (trace::enabled(kTrc)) {
          trace::sim_end(kTrc, "migrate", kernel.now(), track);
        }
        continue;
      }
    }
    plan_.relocate(tile, *target);
    ++migrated;
    ++stats_.migrations;
    if (trace::enabled(kTrc)) {
      trace::sim_end(kTrc, "migrate", kernel.now(), track);
    }
  }
  plan_.publish_metrics(options_.metrics_prefix);
  done.complete(RequestStatus::kOk, -1);
}

sim::Process Repacker::process() {
  auto& kernel = soc_.kernel();
  while (!stopped_) {
    co_await sim::Delay(kernel, options_.interval_cycles);
    if (stopped_) break;
    if (plan_.fragmentation().ratio() <= options_.frag_threshold) {
      plan_.publish_metrics(options_.metrics_prefix);
      continue;
    }
    pass_done_.reset();
    pass(pass_done_);
    co_await pass_done_.wait();
  }
}

}  // namespace presp::runtime
