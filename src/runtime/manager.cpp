#include "runtime/manager.hpp"

#include <algorithm>

#include "soc/tiles.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace presp::runtime {

ReconfigurationManager::ReconfigurationManager(soc::Soc& soc,
                                               BitstreamStore& store,
                                               ManagerOptions options)
    : soc_(soc), store_(store), options_(options),
      prc_lock_(soc.kernel(), 1) {}

sim::Semaphore& ReconfigurationManager::tile_lock(int tile) {
  auto it = tile_locks_.find(tile);
  if (it == tile_locks_.end()) {
    it = tile_locks_
             .emplace(tile,
                      std::make_unique<sim::Semaphore>(soc_.kernel(), 1))
             .first;
  }
  return *it->second;
}

const std::string& ReconfigurationManager::driver(int tile) const {
  const auto it = drivers_.find(tile);
  return it == drivers_.end() ? no_driver_ : it->second;
}

sim::Process ReconfigurationManager::reconfigure_locked(
    int tile, std::string module, sim::SimEvent& done) {
  auto& kernel = soc_.kernel();
  const sim::Time requested = kernel.now();

  // Queue on the single PRC ("reconfiguration requests are queued up and
  // executed as soon as the PRC is ready").
  ++queue_depth_;
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_depth_);
  co_await prc_lock_.acquire();
  stats_.prc_wait_cycles +=
      static_cast<long long>(kernel.now() - requested);
  const sim::Time start = kernel.now();

  co_await sim::Delay(kernel,
                      static_cast<sim::Time>(
                          options_.request_overhead_cycles));

  auto& cpu = soc_.cpu();
  const BitstreamImage& image = store_.get(tile, module);

  // 1. Decouple the tile's wrapper from its socket.
  co_await cpu.write_reg(tile, soc::kRegDecouple, 1);

  // 2. Program and trigger the DFX controller in the auxiliary tile.
  const int aux = soc_.aux_tile_index();
  co_await cpu.write_reg(aux, soc::kRegDfxcBsAddr, image.address);
  co_await cpu.write_reg(aux, soc::kRegDfxcBsBytes, image.bytes);
  co_await cpu.write_reg(aux, soc::kRegDfxcTarget,
                         static_cast<std::uint64_t>(tile));
  co_await cpu.write_reg(aux, soc::kRegDfxcTrigger, 1);

  // 3. Wait for the controller's completion interrupt; on a CRC error
  // re-trigger the transfer (the image is re-fetched from DRAM).
  int attempts = 1;
  while (true) {
    const std::uint64_t payload = co_await cpu.irq_from(aux).receive();
    // The PRC lock guarantees this is ours, but verify the target anyway.
    PRESP_ASSERT_MSG(static_cast<int>(payload >> 8) == tile,
                     "unexpected DFXC interrupt target");
    if ((payload & 0xFF) == soc::kIrqReconfDone) break;
    PRESP_ASSERT_MSG((payload & 0xFF) == soc::kIrqReconfError,
                     "unexpected DFXC interrupt code");
    ++stats_.crc_retries;
    if (++attempts > options_.max_attempts)
      throw Error("reconfiguration of tile " + std::to_string(tile) +
                  " failed after " + std::to_string(options_.max_attempts) +
                  " CRC errors");
    co_await cpu.write_reg(aux, soc::kRegDfxcTrigger, 1);
  }

  // 4. Re-enable the decoupler (resets the wrapper + NoC queues).
  co_await cpu.write_reg(tile, soc::kRegDecouple, 0);

  // 5. Swap the accelerator driver (nothing to load for a blanking image).
  co_await sim::Delay(kernel,
                      static_cast<sim::Time>(options_.driver_swap_cycles));
  if (module.empty()) {
    drivers_.erase(tile);
  } else {
    drivers_[tile] = module;
    ++stats_.driver_swaps;
  }

  ++stats_.reconfigurations;
  stats_.reconfiguration_cycles +=
      static_cast<long long>(kernel.now() - start);
  --queue_depth_;
  prc_lock_.release();
  done.trigger();
}

sim::Process ReconfigurationManager::ensure_module(int tile,
                                                   std::string module,
                                                   sim::SimEvent& done) {
  auto& kernel = soc_.kernel();
  const sim::Time t0 = kernel.now();
  co_await tile_lock(tile).acquire();
  stats_.lock_wait_cycles += static_cast<long long>(kernel.now() - t0);

  if (soc_.reconf_tile(tile).module() == module &&
      driver(tile) == module) {
    ++stats_.reconfigurations_avoided;
  } else {
    sim::SimEvent reconfigured(kernel);
    reconfigure_locked(tile, module, reconfigured);
    co_await reconfigured.wait();
  }
  tile_lock(tile).release();
  done.trigger();
}

sim::Process ReconfigurationManager::clear_partition(int tile,
                                                     sim::SimEvent& done) {
  auto& kernel = soc_.kernel();
  co_await tile_lock(tile).acquire();
  if (!soc_.reconf_tile(tile).module().empty() || !driver(tile).empty()) {
    sim::SimEvent reconfigured(kernel);
    reconfigure_locked(tile, "", reconfigured);
    co_await reconfigured.wait();
  }
  tile_lock(tile).release();
  done.trigger();
}

sim::Process ReconfigurationManager::verify_partition(int tile,
                                                      std::string module,
                                                      bool* ok,
                                                      sim::SimEvent& done) {
  auto& kernel = soc_.kernel();
  co_await tile_lock(tile).acquire();
  co_await prc_lock_.acquire();
  auto& cpu = soc_.cpu();
  const BitstreamImage& image = store_.get(tile, module);
  const int aux = soc_.aux_tile_index();
  co_await cpu.write_reg(aux, soc::kRegDfxcBsAddr, image.address);
  co_await cpu.write_reg(aux, soc::kRegDfxcTarget,
                         static_cast<std::uint64_t>(tile));
  co_await cpu.write_reg(aux, soc::kRegDfxcReadback, 1);
  const std::uint64_t payload = co_await cpu.irq_from(aux).receive();
  PRESP_ASSERT_MSG((payload & 0xFF) == soc::kIrqReadbackDone,
                   "unexpected interrupt during readback");
  const std::uint64_t verdict =
      co_await cpu.read_reg(aux, soc::kRegDfxcVerify);
  *ok = verdict == 1;
  ++stats_.readbacks;
  (void)kernel;
  prc_lock_.release();
  tile_lock(tile).release();
  done.trigger();
}

sim::Process ReconfigurationManager::run(int tile, std::string module,
                                         soc::AccelTask task,
                                         sim::SimEvent& done) {
  auto& kernel = soc_.kernel();
  const sim::Time t0 = kernel.now();
  // "During reconfiguration, it locks access to the device so that other
  // threads trying to access it must wait."
  co_await tile_lock(tile).acquire();
  stats_.lock_wait_cycles += static_cast<long long>(kernel.now() - t0);

  if (soc_.reconf_tile(tile).module() != module || driver(tile) != module) {
    sim::SimEvent reconfigured(kernel);
    reconfigure_locked(tile, module, reconfigured);
    co_await reconfigured.wait();
  } else {
    ++stats_.reconfigurations_avoided;
  }

  // Program the task and start the accelerator.
  auto& cpu = soc_.cpu();
  co_await cpu.write_reg(tile, soc::kRegSrc, task.src);
  co_await cpu.write_reg(tile, soc::kRegDst, task.dst);
  co_await cpu.write_reg(tile, soc::kRegItems,
                         static_cast<std::uint64_t>(task.items));
  co_await cpu.write_reg(tile, soc::kRegAuxArg, task.aux);
  co_await cpu.write_reg(tile, soc::kRegCmd, 1);

  // Wait for the done interrupt from the tile.
  const std::uint64_t payload = co_await cpu.irq_from(tile).receive();
  PRESP_ASSERT_MSG(payload == soc::kIrqAccelDone,
                   "unexpected interrupt while waiting for completion");
  ++stats_.runs;

  tile_lock(tile).release();
  done.trigger();
}

}  // namespace presp::runtime
