#include "runtime/manager.hpp"

#include <algorithm>

#include "racecheck/annot.hpp"
#include "soc/tiles.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace presp::runtime {

namespace {

constexpr std::uint64_t kAckRefused = 1;
constexpr trace::Category kTrc = trace::Category::kRuntime;

/// Sim-track id for a tile's request-lifecycle spans (named lazily).
std::uint32_t tile_track(int tile) {
  const auto track = static_cast<std::uint32_t>(std::max(tile, 0));
  if (trace::enabled(kTrc)) {
    trace::set_sim_track_name(track, "tile " + std::to_string(tile));
  }
  return track;
}

void trace_queue_depth(sim::Kernel& kernel, long long depth) {
  if (trace::enabled(kTrc)) {
    trace::sim_counter(kTrc, "runtime.queue_depth", kernel.now(),
                       trace::kTrackRuntime, static_cast<double>(depth));
  }
}

}  // namespace

sim::Time jittered_backoff(long long base_cycles, int attempt,
                           double jitter, Rng& rng) {
  const int shift = std::min(std::max(attempt - 1, 0), 16);
  const auto full = static_cast<sim::Time>(base_cycles) << shift;
  if (jitter <= 0.0 || full == 0) return full;
  const double fraction = std::min(jitter, 1.0);
  const auto span =
      static_cast<sim::Time>(fraction * static_cast<double>(full));
  if (span == 0) return full;
  return full - span + static_cast<sim::Time>(rng.next_below(span + 1));
}

const char* to_string(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk: return "ok";
    case RequestStatus::kCrcExhausted: return "crc_exhausted";
    case RequestStatus::kTimeout: return "timeout";
    case RequestStatus::kQuarantined: return "quarantined";
  }
  return "?";
}

ReconfigurationManager::ReconfigurationManager(soc::Soc& soc,
                                               BitstreamStore& store,
                                               ManagerOptions options)
    : soc_(soc), store_(store), options_(options),
      health_(options.health), prc_lock_(soc.kernel(), 1),
      fetch_lock_(soc.kernel(), 1),
      staging_sem_(soc.kernel(),
                   static_cast<std::uint32_t>(
                       std::max(options.staging_slots, 1))),
      reg_lock_(soc.kernel(), 1), backoff_rng_(options.backoff_seed) {
  // The manager's semaphores are coroutine locks multiplexed onto one OS
  // thread, so racecheck's dynamic held-set would conflate interleaved
  // logical processes; declare the static nesting instead. Observed
  // orders: program path holds the tile lock across the prc and register
  // stages, the fetch stage nests the register update, and the pipelined
  // path overlaps fetch with the previous request's prc stage.
  annot::DeclareLockNesting("runtime.tile", "runtime.prc");
  annot::DeclareLockNesting("runtime.tile", "runtime.reg");
  annot::DeclareLockNesting("runtime.prc", "runtime.reg");
  annot::DeclareLockNesting("runtime.fetch", "runtime.reg");
}

sim::Time ReconfigurationManager::backoff(int attempt) {
  return jittered_backoff(options_.backoff_base_cycles, attempt,
                          options_.backoff_jitter, backoff_rng_);
}

sim::Mailbox<std::uint64_t>& ReconfigurationManager::aux_box(int tile) {
  auto it = aux_boxes_.find(tile);
  if (it == aux_boxes_.end()) {
    it = aux_boxes_
             .emplace(tile, std::make_unique<sim::Mailbox<std::uint64_t>>(
                                soc_.kernel()))
             .first;
  }
  return *it->second;
}

void ReconfigurationManager::start_irq_pump() {
  if (irq_pump_started_) return;
  irq_pump_started_ = true;
  aux_irq_pump();
}

sim::Process ReconfigurationManager::aux_irq_pump() {
  // Forwards every aux-tile interrupt to the per-target mailbox. With the
  // fetch and program stages of different requests in flight at once, two
  // coroutines would otherwise block on the shared IRQ mailbox and the
  // front waiter would swallow the other's completion.
  auto& aux_irq = soc_.cpu().irq_from(soc_.aux_tile_index());
  while (true) {
    const std::uint64_t payload = co_await aux_irq.receive();
    aux_box(static_cast<int>(payload >> 8)).send(payload);
  }
}

sim::Process ReconfigurationManager::reconfigure_locked(
    int tile, std::string module, Completion& done) {
  return options_.pipelined ? reconfigure_pipelined(tile, std::move(module),
                                                    done)
                            : reconfigure_serial(tile, std::move(module),
                                                 done);
}

sim::Semaphore& ReconfigurationManager::tile_lock(int tile) {
  auto it = tile_locks_.find(tile);
  if (it == tile_locks_.end()) {
    it = tile_locks_
             .emplace(tile,
                      std::make_unique<sim::Semaphore>(soc_.kernel(), 1))
             .first;
  }
  return *it->second;
}

const std::string& ReconfigurationManager::driver(int tile) const {
  const auto it = drivers_.find(tile);
  return it == drivers_.end() ? no_driver_ : it->second;
}

int ReconfigurationManager::route_tile(int tile, const std::string& module) {
  int fallback = -1;
  for (const auto& rt : soc_.reconf_tiles()) {
    const int idx = rt->index();
    if (idx == tile || !health_.usable(idx)) continue;
    // Prefer a tile already hosting the module (no reconfiguration);
    // otherwise the first healthy tile with a registered bitstream.
    if (rt->module() == module && driver(idx) == module) return idx;
    if (fallback < 0 && store_.has(idx, module)) fallback = idx;
  }
  return fallback;
}

sim::Process ReconfigurationManager::reconfigure_serial(
    int tile, std::string module, Completion& done) {
  auto& kernel = soc_.kernel();
  const sim::Time requested = kernel.now();
  const std::uint32_t track = tile_track(tile);
  const std::string span_label =
      "reconfigure:" + (module.empty() ? std::string("(blank)") : module);
  if (trace::enabled(kTrc)) {
    trace::sim_begin(kTrc, span_label, requested, track);
    trace::sim_begin(kTrc, "queued", requested, track);
  }

  // Queue on the single PRC ("reconfiguration requests are queued up and
  // executed as soon as the PRC is ready").
  ++queue_depth_;
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_depth_);
  trace_queue_depth(kernel, queue_depth_);
  co_await prc_lock_.acquire();
  stats_.prc_wait_cycles +=
      static_cast<long long>(kernel.now() - requested);
  const sim::Time start = kernel.now();
  if (trace::enabled(kTrc)) trace::sim_end(kTrc, "queued", start, track);

  co_await sim::Delay(kernel,
                      static_cast<sim::Time>(
                          options_.request_overhead_cycles));

  auto& cpu = soc_.cpu();
  const int aux = soc_.aux_tile_index();
  auto& aux_irq = cpu.irq_from(aux);

  // Pin the image DRAM-resident for the whole transfer (synchronous for
  // eager stores; a cache miss waits out the source fetch here).
  StoreTicket ticket(kernel);
  store_.acquire(kernel, tile, module, ticket);
  co_await ticket.done.wait();
  const BitstreamImage image = ticket.image;

  // Watchdog deadline: generous multiple of the nominal transfer time, so
  // a firing means the controller is wedged, not merely slow.
  const auto watchdog = static_cast<sim::Time>(
      options_.watchdog_reconf_base_cycles +
      static_cast<long long>(
          options_.watchdog_reconf_margin * static_cast<double>(image.bytes) /
          soc_.options().icap_bytes_per_cycle));

  // 1. Decouple the tile's wrapper from its socket.
  if (trace::enabled(kTrc))
    trace::sim_begin(kTrc, "decouple", kernel.now(), track);
  co_await cpu.write_reg(tile, soc::kRegDecouple, 1);
  if (trace::enabled(kTrc))
    trace::sim_end(kTrc, "decouple", kernel.now(), track);

  RequestStatus status = RequestStatus::kOk;
  sim::Time first_fire = 0;
  int crc_attempts = 0;
  int recoveries = 0;
  bool configured = false;

  // 2./3. Program and trigger the DFX controller, wait for its completion
  // interrupt under the watchdog, recover from CRC errors, lost
  // interrupts, dropped triggers and hangs until the budgets run out.
  while (!configured && status == RequestStatus::kOk) {
    if (trace::enabled(kTrc)) {
      trace::sim_begin(kTrc, "fetch", kernel.now(), track,
                       static_cast<double>(image.bytes));
    }
    co_await cpu.write_reg(aux, soc::kRegDfxcBsAddr, image.address);
    co_await cpu.write_reg(aux, soc::kRegDfxcBsBytes, image.bytes);
    co_await cpu.write_reg(aux, soc::kRegDfxcTarget,
                           static_cast<std::uint64_t>(tile));
    const std::uint64_t nack =
        co_await cpu.write_reg(aux, soc::kRegDfxcTrigger, 1);
    if (trace::enabled(kTrc))
      trace::sim_end(kTrc, "fetch", kernel.now(), track);
    if (nack == kAckRefused) {
      // The controller was busy and dropped the trigger (a leftover from
      // an earlier wedge): reset it, back off, retry.
      ++stats_.dropped_trigger_retries;
      if (trace::enabled(kTrc))
        trace::sim_instant(kTrc, "trigger-nack", kernel.now(), track);
      if (first_fire == 0) first_fire = kernel.now();
      co_await cpu.write_reg(aux, soc::kRegDfxcReset, 1);
      if (++recoveries > options_.retry_budget) {
        status = RequestStatus::kTimeout;
      } else {
        const sim::Time delay = backoff(recoveries);
        if (trace::enabled(kTrc)) {
          trace::sim_instant(kTrc, "backoff", kernel.now(), track,
                             static_cast<double>(delay));
        }
        co_await sim::Delay(kernel, delay);
      }
      continue;
    }

    if (trace::enabled(kTrc)) {
      trace::sim_begin(kTrc, "icap", kernel.now(), track,
                       static_cast<double>(image.bytes));
    }
    bool waiting = true;
    while (waiting) {
      const auto payload = co_await aux_irq.receive_for(watchdog);
      if (payload.has_value()) {
        const int target = static_cast<int>(*payload >> 8);
        const std::uint64_t code = *payload & 0xFF;
        if (target != tile || (code != soc::kIrqReconfDone &&
                               code != soc::kIrqReconfError)) {
          ++stats_.stray_irqs;  // late interrupt of a superseded attempt
          continue;
        }
        waiting = false;
        if (code == soc::kIrqReconfDone) {
          configured = true;
        } else {
          ++stats_.crc_retries;
          if (trace::enabled(kTrc))
            trace::sim_instant(kTrc, "crc-retry", kernel.now(), track);
          if (++crc_attempts >= options_.max_attempts)
            status = RequestStatus::kCrcExhausted;
        }
        continue;
      }

      // Watchdog fired: read the controller's status register to tell a
      // lost interrupt from a genuine wedge.
      waiting = false;
      ++stats_.watchdog_fires;
      if (trace::enabled(kTrc))
        trace::sim_instant(kTrc, "watchdog", kernel.now(), track);
      if (first_fire == 0) first_fire = kernel.now();
      const std::uint64_t dfxc_status =
          co_await cpu.read_reg(aux, soc::kRegDfxcStatus);
      if (dfxc_status == 0) {
        // Transfer completed; only its done interrupt was lost.
        ++stats_.lost_irq_recoveries;
        if (trace::enabled(kTrc))
          trace::sim_instant(kTrc, "lost-irq", kernel.now(), track);
        configured = true;
      } else if (dfxc_status == 2) {
        // CRC error whose interrupt was lost.
        ++stats_.crc_retries;
        if (trace::enabled(kTrc))
          trace::sim_instant(kTrc, "crc-retry", kernel.now(), track);
        if (++crc_attempts >= options_.max_attempts)
          status = RequestStatus::kCrcExhausted;
      } else {
        // Genuinely wedged (ICAP stall or controller hang): abort the
        // transfer and retry after a backoff.
        co_await cpu.write_reg(aux, soc::kRegDfxcReset, 1);
        if (++recoveries > options_.retry_budget) {
          status = RequestStatus::kTimeout;
        } else {
          const sim::Time delay = backoff(recoveries);
          if (trace::enabled(kTrc)) {
            trace::sim_instant(kTrc, "backoff", kernel.now(), track,
                               static_cast<double>(delay));
          }
          co_await sim::Delay(kernel, delay);
        }
      }
      // Settle, then drain stale interrupts so a late completion of the
      // aborted attempt is never attributed to the next one.
      co_await sim::Delay(kernel,
                          static_cast<sim::Time>(options_.irq_drain_cycles));
      while (aux_irq.try_receive().has_value()) ++stats_.stray_irqs;
    }
    if (trace::enabled(kTrc))
      trace::sim_end(kTrc, "icap", kernel.now(), track);
  }

  if (!configured) {
    // Escalate instead of throwing: quarantine the tile, blank its
    // partition with the greybox image so the fabric is left safe, and
    // surface the status through the completion channel.
    ++stats_.reconfigurations_failed;
    if (health_.health(tile) != TileHealth::kQuarantined) {
      health_.quarantine(tile);
      ++stats_.quarantines;
      if (trace::enabled(kTrc))
        trace::sim_instant(kTrc, "quarantine", kernel.now(), track);
    }
    drivers_.erase(tile);
    if (!module.empty() && store_.has(tile, "")) {
      const BitstreamImage& blank = store_.get(tile, "");
      co_await cpu.write_reg(aux, soc::kRegDfxcBsAddr, blank.address);
      co_await cpu.write_reg(aux, soc::kRegDfxcBsBytes, blank.bytes);
      co_await cpu.write_reg(aux, soc::kRegDfxcTarget,
                             static_cast<std::uint64_t>(tile));
      const std::uint64_t nack =
          co_await cpu.write_reg(aux, soc::kRegDfxcTrigger, 1);
      bool blanked = nack != kAckRefused;
      while (blanked) {
        const auto payload = co_await aux_irq.receive_for(watchdog);
        if (!payload.has_value()) {
          // Best effort only: reset the controller and leave the tile
          // decoupled.
          ++stats_.watchdog_fires;
          co_await cpu.write_reg(aux, soc::kRegDfxcReset, 1);
          break;
        }
        const int target = static_cast<int>(*payload >> 8);
        const std::uint64_t code = *payload & 0xFF;
        if (target != tile) {
          ++stats_.stray_irqs;
          continue;
        }
        if (code == soc::kIrqReconfDone) {
          // Blank in place: safe to re-enable the decoupler (nack from a
          // stuck decoupler is tolerable here — the partition is empty).
          co_await cpu.write_reg(tile, soc::kRegDecouple, 0);
        }
        break;
      }
    }
    if (first_fire != 0)
      stats_.recovery_cycles +=
          static_cast<long long>(kernel.now() - first_fire);
    --queue_depth_;
    trace_queue_depth(kernel, queue_depth_);
    if (trace::enabled(kTrc))
      trace::sim_end(kTrc, span_label, kernel.now(), track);
    store_.release(tile, module);
    prc_lock_.release();
    done.complete(status, tile);
    co_return;
  }

  // 4. Re-enable the decoupler (resets the wrapper + NoC queues). An
  // injected stuck-at fault nacks the release; retry with backoff.
  if (trace::enabled(kTrc))
    trace::sim_begin(kTrc, "recouple", kernel.now(), track);
  int release_tries = 0;
  while (status == RequestStatus::kOk) {
    const std::uint64_t nack =
        co_await cpu.write_reg(tile, soc::kRegDecouple, 0);
    if (nack != kAckRefused) break;
    ++stats_.stuck_decouple_retries;
    if (trace::enabled(kTrc))
      trace::sim_instant(kTrc, "stuck-decouple", kernel.now(), track);
    if (first_fire == 0) first_fire = kernel.now();
    if (++release_tries > options_.retry_budget) {
      status = RequestStatus::kTimeout;
      break;
    }
    co_await sim::Delay(kernel, backoff(release_tries));
  }
  if (trace::enabled(kTrc))
    trace::sim_end(kTrc, "recouple", kernel.now(), track);
  if (status != RequestStatus::kOk) {
    // The module is configured but unreachable behind a stuck decoupler:
    // pull the tile from rotation.
    ++stats_.reconfigurations_failed;
    if (health_.health(tile) != TileHealth::kQuarantined) {
      health_.quarantine(tile);
      ++stats_.quarantines;
      if (trace::enabled(kTrc))
        trace::sim_instant(kTrc, "quarantine", kernel.now(), track);
    }
    drivers_.erase(tile);
    if (first_fire != 0)
      stats_.recovery_cycles +=
          static_cast<long long>(kernel.now() - first_fire);
    --queue_depth_;
    trace_queue_depth(kernel, queue_depth_);
    if (trace::enabled(kTrc))
      trace::sim_end(kTrc, span_label, kernel.now(), track);
    store_.release(tile, module);
    prc_lock_.release();
    done.complete(status, tile);
    co_return;
  }

  // 5. Swap the accelerator driver (nothing to load for a blanking image).
  if (trace::enabled(kTrc))
    trace::sim_begin(kTrc, "driver-swap", kernel.now(), track);
  co_await sim::Delay(kernel,
                      static_cast<sim::Time>(options_.driver_swap_cycles));
  if (module.empty()) {
    drivers_.erase(tile);
  } else {
    drivers_[tile] = module;
    ++stats_.driver_swaps;
  }
  if (trace::enabled(kTrc))
    trace::sim_end(kTrc, "driver-swap", kernel.now(), track);

  ++stats_.reconfigurations;
  stats_.reconfiguration_cycles +=
      static_cast<long long>(kernel.now() - start);
  if (first_fire != 0)
    stats_.recovery_cycles +=
        static_cast<long long>(kernel.now() - first_fire);
  if (recoveries > 0 || crc_attempts > 0 || release_tries > 0) {
    health_.record_failure(tile);
  } else {
    health_.record_success(tile);
  }
  --queue_depth_;
  trace_queue_depth(kernel, queue_depth_);
  if (trace::enabled(kTrc))
    trace::sim_end(kTrc, span_label, kernel.now(), track);
  store_.release(tile, module);
  prc_lock_.release();
  done.complete(RequestStatus::kOk, tile);
}

sim::Process ReconfigurationManager::reconfigure_pipelined(
    int tile, std::string module, Completion& done) {
  auto& kernel = soc_.kernel();
  const sim::Time requested = kernel.now();
  const std::uint32_t track = tile_track(tile);
  const std::string span_label =
      "reconfigure:" + (module.empty() ? std::string("(blank)") : module);
  if (trace::enabled(kTrc)) {
    trace::sim_begin(kTrc, span_label, requested, track);
    trace::sim_begin(kTrc, "queued", requested, track);
  }
  ++queue_depth_;
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_depth_);
  trace_queue_depth(kernel, queue_depth_);

  start_irq_pump();
  auto& cpu = soc_.cpu();
  const int aux = soc_.aux_tile_index();
  auto& irq = aux_box(tile);

  co_await sim::Delay(kernel,
                      static_cast<sim::Time>(
                          options_.request_overhead_cycles));

  // Source stage: pin the image DRAM-resident (cache fill / async read).
  StoreTicket ticket(kernel);
  store_.acquire(kernel, tile, module, ticket);
  co_await ticket.done.wait();
  const BitstreamImage image = ticket.image;

  const auto watchdog = static_cast<sim::Time>(
      options_.watchdog_reconf_base_cycles +
      static_cast<long long>(
          options_.watchdog_reconf_margin * static_cast<double>(image.bytes) /
          soc_.options().icap_bytes_per_cycle));

  // Admission into the bounded fetch->program buffer: at most
  // staging_slots requests between fetch trigger and program completion.
  co_await staging_sem_.acquire();

  // 1. Decouple the tile's wrapper from its socket.
  if (trace::enabled(kTrc))
    trace::sim_begin(kTrc, "decouple", kernel.now(), track);
  co_await cpu.write_reg(tile, soc::kRegDecouple, 1);
  if (trace::enabled(kTrc))
    trace::sim_end(kTrc, "decouple", kernel.now(), track);

  RequestStatus status = RequestStatus::kOk;
  sim::Time first_fire = 0;
  int crc_attempts = 0;
  int recoveries = 0;

  // 2. Fetch stage: DMA + CRC into the DFX controller's staging buffer.
  // Serialized on the fetch engine, but free to overlap another request's
  // program stage — that is the whole point of the split transaction.
  {
    const sim::Time q0 = kernel.now();
    co_await fetch_lock_.acquire();
    stats_.prc_wait_cycles += static_cast<long long>(kernel.now() - q0);
  }
  const sim::Time start = kernel.now();
  if (trace::enabled(kTrc)) trace::sim_end(kTrc, "queued", start, track);

  bool fetched = false;
  while (!fetched && status == RequestStatus::kOk) {
    if (trace::enabled(kTrc)) {
      trace::sim_begin(kTrc, "fetch", kernel.now(), track,
                       static_cast<double>(image.bytes));
    }
    // The address/length/target registers are shared with the program
    // stage of whatever request currently owns the ICAP; the register
    // lock keeps the two write sequences from interleaving.
    co_await reg_lock_.acquire();
    co_await cpu.write_reg(aux, soc::kRegDfxcBsAddr, image.address);
    co_await cpu.write_reg(aux, soc::kRegDfxcBsBytes, image.bytes);
    co_await cpu.write_reg(aux, soc::kRegDfxcTarget,
                           static_cast<std::uint64_t>(tile));
    const std::uint64_t nack =
        co_await cpu.write_reg(aux, soc::kRegDfxcFetch, 1);
    reg_lock_.release();
    if (nack == kAckRefused) {
      ++stats_.dropped_trigger_retries;
      if (trace::enabled(kTrc)) {
        trace::sim_instant(kTrc, "fetch-nack", kernel.now(), track);
        trace::sim_end(kTrc, "fetch", kernel.now(), track);
      }
      if (first_fire == 0) first_fire = kernel.now();
      co_await cpu.write_reg(aux, soc::kRegDfxcFetchReset, 1);
      if (++recoveries > options_.retry_budget) {
        status = RequestStatus::kTimeout;
      } else {
        co_await sim::Delay(kernel, backoff(recoveries));
      }
      continue;
    }

    bool waiting = true;
    while (waiting) {
      const auto payload = co_await irq.receive_for(watchdog);
      if (payload.has_value()) {
        const std::uint64_t code = *payload & 0xFF;
        if (code == soc::kIrqFetchDone) {
          fetched = true;
          waiting = false;
        } else if (code == soc::kIrqReconfError) {
          waiting = false;
          ++stats_.crc_retries;
          if (trace::enabled(kTrc))
            trace::sim_instant(kTrc, "crc-retry", kernel.now(), track);
          if (++crc_attempts >= options_.max_attempts)
            status = RequestStatus::kCrcExhausted;
        } else {
          ++stats_.stray_irqs;  // a superseded attempt's late interrupt
        }
        continue;
      }

      // Watchdog fired: distinguish a lost interrupt from a wedged fetch
      // engine via its own status register — never by resetting the
      // program engine, whose transfer may be mid-flight.
      waiting = false;
      ++stats_.watchdog_fires;
      if (trace::enabled(kTrc))
        trace::sim_instant(kTrc, "watchdog", kernel.now(), track);
      if (first_fire == 0) first_fire = kernel.now();
      const std::uint64_t fetch_status =
          co_await cpu.read_reg(aux, soc::kRegDfxcFetchStatus);
      if (fetch_status == 0) {
        ++stats_.lost_irq_recoveries;
        if (trace::enabled(kTrc))
          trace::sim_instant(kTrc, "lost-irq", kernel.now(), track);
        fetched = true;
      } else if (fetch_status == 2) {
        ++stats_.crc_retries;
        if (trace::enabled(kTrc))
          trace::sim_instant(kTrc, "crc-retry", kernel.now(), track);
        if (++crc_attempts >= options_.max_attempts)
          status = RequestStatus::kCrcExhausted;
      } else {
        co_await cpu.write_reg(aux, soc::kRegDfxcFetchReset, 1);
        if (++recoveries > options_.retry_budget) {
          status = RequestStatus::kTimeout;
        } else {
          co_await sim::Delay(kernel, backoff(recoveries));
        }
      }
      co_await sim::Delay(kernel,
                          static_cast<sim::Time>(options_.irq_drain_cycles));
      while (irq.try_receive().has_value()) ++stats_.stray_irqs;
    }
    if (trace::enabled(kTrc) && nack != kAckRefused)
      trace::sim_end(kTrc, "fetch", kernel.now(), track);
  }
  fetch_lock_.release();
  if (fetched) ++stats_.pipelined_fetches;

  // 3. Program stage: stream the staged bitstream into the ICAP under the
  // PRC lock. The controller sees the matching staged entry and skips the
  // DMA + CRC it already did.
  bool configured = false;
  bool prc_held = false;
  if (status == RequestStatus::kOk) {
    const sim::Time p0 = kernel.now();
    co_await prc_lock_.acquire();
    prc_held = true;
    stats_.prc_wait_cycles += static_cast<long long>(kernel.now() - p0);
    while (!configured && status == RequestStatus::kOk) {
      if (trace::enabled(kTrc)) {
        trace::sim_begin(kTrc, "icap", kernel.now(), track,
                         static_cast<double>(image.bytes));
      }
      co_await reg_lock_.acquire();
      co_await cpu.write_reg(aux, soc::kRegDfxcBsAddr, image.address);
      co_await cpu.write_reg(aux, soc::kRegDfxcBsBytes, image.bytes);
      co_await cpu.write_reg(aux, soc::kRegDfxcTarget,
                             static_cast<std::uint64_t>(tile));
      const std::uint64_t nack =
          co_await cpu.write_reg(aux, soc::kRegDfxcTrigger, 1);
      reg_lock_.release();
      if (nack == kAckRefused) {
        ++stats_.dropped_trigger_retries;
        if (trace::enabled(kTrc)) {
          trace::sim_instant(kTrc, "trigger-nack", kernel.now(), track);
          trace::sim_end(kTrc, "icap", kernel.now(), track);
        }
        if (first_fire == 0) first_fire = kernel.now();
        co_await cpu.write_reg(aux, soc::kRegDfxcReset, 1);
        if (++recoveries > options_.retry_budget) {
          status = RequestStatus::kTimeout;
        } else {
          co_await sim::Delay(kernel, backoff(recoveries));
        }
        continue;
      }

      bool waiting = true;
      while (waiting) {
        const auto payload = co_await irq.receive_for(watchdog);
        if (payload.has_value()) {
          const std::uint64_t code = *payload & 0xFF;
          if (code == soc::kIrqReconfDone) {
            configured = true;
            waiting = false;
          } else if (code == soc::kIrqReconfError) {
            waiting = false;
            ++stats_.crc_retries;
            if (trace::enabled(kTrc))
              trace::sim_instant(kTrc, "crc-retry", kernel.now(), track);
            if (++crc_attempts >= options_.max_attempts)
              status = RequestStatus::kCrcExhausted;
          } else {
            ++stats_.stray_irqs;
          }
          continue;
        }

        waiting = false;
        ++stats_.watchdog_fires;
        if (trace::enabled(kTrc))
          trace::sim_instant(kTrc, "watchdog", kernel.now(), track);
        if (first_fire == 0) first_fire = kernel.now();
        const std::uint64_t dfxc_status =
            co_await cpu.read_reg(aux, soc::kRegDfxcStatus);
        if (dfxc_status == 0) {
          ++stats_.lost_irq_recoveries;
          if (trace::enabled(kTrc))
            trace::sim_instant(kTrc, "lost-irq", kernel.now(), track);
          configured = true;
        } else if (dfxc_status == 2) {
          ++stats_.crc_retries;
          if (trace::enabled(kTrc))
            trace::sim_instant(kTrc, "crc-retry", kernel.now(), track);
          if (++crc_attempts >= options_.max_attempts)
            status = RequestStatus::kCrcExhausted;
        } else {
          co_await cpu.write_reg(aux, soc::kRegDfxcReset, 1);
          if (++recoveries > options_.retry_budget) {
            status = RequestStatus::kTimeout;
          } else {
            co_await sim::Delay(kernel, backoff(recoveries));
          }
        }
        co_await sim::Delay(
            kernel, static_cast<sim::Time>(options_.irq_drain_cycles));
        while (irq.try_receive().has_value()) ++stats_.stray_irqs;
      }
      if (trace::enabled(kTrc))
        trace::sim_end(kTrc, "icap", kernel.now(), track);
    }
  }

  if (!configured) {
    // Escalate exactly like the serial flow: quarantine, blank the
    // partition with the greybox image (a combined transfer under the
    // PRC lock), surface the status.
    ++stats_.reconfigurations_failed;
    if (health_.health(tile) != TileHealth::kQuarantined) {
      health_.quarantine(tile);
      ++stats_.quarantines;
      if (trace::enabled(kTrc))
        trace::sim_instant(kTrc, "quarantine", kernel.now(), track);
    }
    drivers_.erase(tile);
    if (!prc_held) {
      co_await prc_lock_.acquire();
      prc_held = true;
    }
    if (!module.empty() && store_.has(tile, "")) {
      const BitstreamImage& blank = store_.get(tile, "");
      co_await reg_lock_.acquire();
      co_await cpu.write_reg(aux, soc::kRegDfxcBsAddr, blank.address);
      co_await cpu.write_reg(aux, soc::kRegDfxcBsBytes, blank.bytes);
      co_await cpu.write_reg(aux, soc::kRegDfxcTarget,
                             static_cast<std::uint64_t>(tile));
      const std::uint64_t nack =
          co_await cpu.write_reg(aux, soc::kRegDfxcTrigger, 1);
      reg_lock_.release();
      bool blanked = nack != kAckRefused;
      while (blanked) {
        const auto payload = co_await irq.receive_for(watchdog);
        if (!payload.has_value()) {
          // Best effort only: reset the controller, leave the tile
          // decoupled.
          ++stats_.watchdog_fires;
          co_await cpu.write_reg(aux, soc::kRegDfxcReset, 1);
          break;
        }
        const std::uint64_t code = *payload & 0xFF;
        if (code == soc::kIrqReconfDone) {
          co_await cpu.write_reg(tile, soc::kRegDecouple, 0);
          break;
        }
        if (code == soc::kIrqReconfError) break;
        ++stats_.stray_irqs;
      }
    }
    if (first_fire != 0)
      stats_.recovery_cycles +=
          static_cast<long long>(kernel.now() - first_fire);
    --queue_depth_;
    trace_queue_depth(kernel, queue_depth_);
    if (trace::enabled(kTrc))
      trace::sim_end(kTrc, span_label, kernel.now(), track);
    prc_lock_.release();
    staging_sem_.release();
    store_.release(tile, module);
    done.complete(status, tile);
    co_return;
  }

  // Programmed: the ICAP, the staging slot and the image pin are free for
  // the next request before we even recouple.
  prc_lock_.release();
  staging_sem_.release();
  store_.release(tile, module);

  // 4. Re-enable the decoupler; an injected stuck-at fault nacks the
  // release, retried with backoff.
  if (trace::enabled(kTrc))
    trace::sim_begin(kTrc, "recouple", kernel.now(), track);
  int release_tries = 0;
  while (status == RequestStatus::kOk) {
    const std::uint64_t nack =
        co_await cpu.write_reg(tile, soc::kRegDecouple, 0);
    if (nack != kAckRefused) break;
    ++stats_.stuck_decouple_retries;
    if (trace::enabled(kTrc))
      trace::sim_instant(kTrc, "stuck-decouple", kernel.now(), track);
    if (first_fire == 0) first_fire = kernel.now();
    if (++release_tries > options_.retry_budget) {
      status = RequestStatus::kTimeout;
      break;
    }
    co_await sim::Delay(kernel, backoff(release_tries));
  }
  if (trace::enabled(kTrc))
    trace::sim_end(kTrc, "recouple", kernel.now(), track);
  if (status != RequestStatus::kOk) {
    ++stats_.reconfigurations_failed;
    if (health_.health(tile) != TileHealth::kQuarantined) {
      health_.quarantine(tile);
      ++stats_.quarantines;
      if (trace::enabled(kTrc))
        trace::sim_instant(kTrc, "quarantine", kernel.now(), track);
    }
    drivers_.erase(tile);
    if (first_fire != 0)
      stats_.recovery_cycles +=
          static_cast<long long>(kernel.now() - first_fire);
    --queue_depth_;
    trace_queue_depth(kernel, queue_depth_);
    if (trace::enabled(kTrc))
      trace::sim_end(kTrc, span_label, kernel.now(), track);
    done.complete(status, tile);
    co_return;
  }

  // 5. Swap the accelerator driver.
  if (trace::enabled(kTrc))
    trace::sim_begin(kTrc, "driver-swap", kernel.now(), track);
  co_await sim::Delay(kernel,
                      static_cast<sim::Time>(options_.driver_swap_cycles));
  if (module.empty()) {
    drivers_.erase(tile);
  } else {
    drivers_[tile] = module;
    ++stats_.driver_swaps;
  }
  if (trace::enabled(kTrc))
    trace::sim_end(kTrc, "driver-swap", kernel.now(), track);

  ++stats_.reconfigurations;
  stats_.reconfiguration_cycles +=
      static_cast<long long>(kernel.now() - start);
  if (first_fire != 0)
    stats_.recovery_cycles +=
        static_cast<long long>(kernel.now() - first_fire);
  if (recoveries > 0 || crc_attempts > 0 || release_tries > 0) {
    health_.record_failure(tile);
  } else {
    health_.record_success(tile);
  }
  --queue_depth_;
  trace_queue_depth(kernel, queue_depth_);
  if (trace::enabled(kTrc))
    trace::sim_end(kTrc, span_label, kernel.now(), track);
  done.complete(RequestStatus::kOk, tile);
}

sim::Process ReconfigurationManager::ensure_module(int tile,
                                                   std::string module,
                                                   Completion& done) {
  auto& kernel = soc_.kernel();
  if (!health_.usable(tile)) {
    done.complete(RequestStatus::kQuarantined, tile);
    co_return;
  }
  const sim::Time t0 = kernel.now();
  co_await tile_lock(tile).acquire();
  stats_.lock_wait_cycles += static_cast<long long>(kernel.now() - t0);

  RequestStatus status = RequestStatus::kOk;
  if (soc_.reconf_tile(tile).module() == module &&
      driver(tile) == module) {
    ++stats_.reconfigurations_avoided;
  } else {
    Completion reconfigured(kernel);
    reconfigure_locked(tile, module, reconfigured);
    co_await reconfigured.wait();
    status = reconfigured.status();
  }
  tile_lock(tile).release();
  done.complete(status, tile);
}

sim::Process ReconfigurationManager::clear_partition(int tile,
                                                     Completion& done) {
  auto& kernel = soc_.kernel();
  co_await tile_lock(tile).acquire();
  RequestStatus status = RequestStatus::kOk;
  if (!soc_.reconf_tile(tile).module().empty() || !driver(tile).empty()) {
    Completion reconfigured(kernel);
    reconfigure_locked(tile, "", reconfigured);
    co_await reconfigured.wait();
    status = reconfigured.status();
  }
  tile_lock(tile).release();
  done.complete(status, tile);
}

sim::Process ReconfigurationManager::verify_partition(int tile,
                                                      std::string module,
                                                      bool* ok,
                                                      Completion& done) {
  auto& kernel = soc_.kernel();
  co_await tile_lock(tile).acquire();
  co_await prc_lock_.acquire();
  const std::uint32_t track = tile_track(tile);
  if (trace::enabled(kTrc))
    trace::sim_begin(kTrc, "readback:" + module, kernel.now(), track);
  auto& cpu = soc_.cpu();
  StoreTicket ticket(kernel);
  store_.acquire(kernel, tile, module, ticket);
  co_await ticket.done.wait();
  const BitstreamImage image = ticket.image;
  const int aux = soc_.aux_tile_index();
  // Once the pipelined flow's IRQ pump owns the raw aux stream, every
  // waiter must go through its per-tile mailbox.
  if (options_.pipelined) start_irq_pump();
  auto& aux_irq =
      options_.pipelined ? aux_box(tile) : cpu.irq_from(aux);
  const auto watchdog = static_cast<sim::Time>(
      options_.watchdog_reconf_base_cycles +
      static_cast<long long>(
          options_.watchdog_reconf_margin * static_cast<double>(image.bytes) /
          soc_.options().icap_bytes_per_cycle));

  RequestStatus status = RequestStatus::kOk;
  int recoveries = 0;
  bool verified = false;
  *ok = false;
  while (!verified && status == RequestStatus::kOk) {
    co_await reg_lock_.acquire();
    co_await cpu.write_reg(aux, soc::kRegDfxcBsAddr, image.address);
    co_await cpu.write_reg(aux, soc::kRegDfxcTarget,
                           static_cast<std::uint64_t>(tile));
    const std::uint64_t nack =
        co_await cpu.write_reg(aux, soc::kRegDfxcReadback, 1);
    reg_lock_.release();
    if (nack == kAckRefused) {
      ++stats_.dropped_trigger_retries;
      co_await cpu.write_reg(aux, soc::kRegDfxcReset, 1);
      if (++recoveries > options_.retry_budget) {
        status = RequestStatus::kTimeout;
      } else {
        co_await sim::Delay(kernel, backoff(recoveries));
      }
      continue;
    }
    bool waiting = true;
    while (waiting) {
      const auto payload = co_await aux_irq.receive_for(watchdog);
      if (payload.has_value()) {
        const int target = static_cast<int>(*payload >> 8);
        const std::uint64_t code = *payload & 0xFF;
        if (target == tile && code == soc::kIrqReadbackDone) {
          verified = true;
          waiting = false;
        } else {
          ++stats_.stray_irqs;
        }
        continue;
      }
      waiting = false;
      ++stats_.watchdog_fires;
      const std::uint64_t dfxc_status =
          co_await cpu.read_reg(aux, soc::kRegDfxcStatus);
      if (dfxc_status == 0) {
        // Readback finished; its interrupt was lost.
        ++stats_.lost_irq_recoveries;
        verified = true;
      } else {
        co_await cpu.write_reg(aux, soc::kRegDfxcReset, 1);
        if (++recoveries > options_.retry_budget) {
          status = RequestStatus::kTimeout;
        } else {
          co_await sim::Delay(kernel, backoff(recoveries));
        }
      }
      co_await sim::Delay(kernel,
                          static_cast<sim::Time>(options_.irq_drain_cycles));
      while (aux_irq.try_receive().has_value()) ++stats_.stray_irqs;
    }
  }
  if (verified) {
    const std::uint64_t verdict =
        co_await cpu.read_reg(aux, soc::kRegDfxcVerify);
    *ok = verdict == 1;
    ++stats_.readbacks;
  }
  if (trace::enabled(kTrc))
    trace::sim_end(kTrc, "readback:" + module, kernel.now(), track);
  store_.release(tile, module);
  prc_lock_.release();
  tile_lock(tile).release();
  done.complete(status, tile);
}

sim::Process ReconfigurationManager::scrub(int tile, Completion& done) {
  auto& kernel = soc_.kernel();
  ++stats_.scrubs;
  if (trace::enabled(kTrc))
    trace::sim_instant(kTrc, "scrub", kernel.now(), tile_track(tile));
  const std::string module = soc_.reconf_tile(tile).module();
  if (module.empty() || !store_.has(tile, module)) {
    done.complete(RequestStatus::kOk, tile);
    co_return;
  }
  bool clean = false;
  Completion sub(kernel);
  verify_partition(tile, module, &clean, sub);
  co_await sub.wait();
  if (!sub.ok()) {
    done.complete(sub.status(), tile);
    co_return;
  }
  if (clean) {
    done.complete(RequestStatus::kOk, tile);
    co_return;
  }
  // Upset configuration frames: repair by rewriting the partition with
  // the golden bitstream.
  ++stats_.seu_repairs;
  co_await tile_lock(tile).acquire();
  sub.reset();
  reconfigure_locked(tile, module, sub);
  co_await sub.wait();
  tile_lock(tile).release();
  done.complete(sub.status(), tile);
}

sim::Process ReconfigurationManager::repack_tile(int tile, std::string module,
                                                 Completion& done) {
  auto& kernel = soc_.kernel();
  ++stats_.repacks;
  if (trace::enabled(kTrc))
    trace::sim_instant(kTrc, "repack", kernel.now(), tile_track(tile));
  co_await tile_lock(tile).acquire();
  // Suspend only on `done`, which the repacker owns outside any coroutine
  // frame: if the shard is torn down mid-reconfigure, ~Completion reaches
  // and frees this frame (the kernel.hpp single-owner rule). A frame-local
  // Completion here would form an unreachable self-cycle and leak.
  reconfigure_locked(tile, module, done);
  co_await done.wait();
  tile_lock(tile).release();
}

sim::Process ReconfigurationManager::run(int tile, std::string module,
                                         soc::AccelTask task,
                                         Completion& done) {
  auto& kernel = soc_.kernel();
  auto& cpu = soc_.cpu();
  sim::Time first_fire = 0;
  RequestStatus status = RequestStatus::kOk;
  int routed = tile;
  // One pass per reconfigurable tile at most: every failed pass
  // quarantines its tile, so the loop cannot revisit one.
  const int max_routes =
      std::max<int>(1, static_cast<int>(soc_.reconf_tiles().size()));
  for (int route_attempt = 0; route_attempt < max_routes; ++route_attempt) {
    if (!health_.usable(routed)) {
      const int alt = route_tile(routed, module);
      if (alt < 0) {
        status = RequestStatus::kQuarantined;
        break;
      }
      ++stats_.reroutes;
      routed = alt;
      if (trace::enabled(kTrc)) {
        trace::sim_instant(kTrc, "reroute", kernel.now(),
                           tile_track(routed));
      }
    }
    status = RequestStatus::kOk;

    // "During reconfiguration, it locks access to the device so that
    // other threads trying to access it must wait."
    const sim::Time t0 = kernel.now();
    co_await tile_lock(routed).acquire();
    stats_.lock_wait_cycles += static_cast<long long>(kernel.now() - t0);
    const std::uint32_t run_track = tile_track(routed);
    if (trace::enabled(kTrc))
      trace::sim_begin(kTrc, "run:" + module, kernel.now(), run_track);

    if (soc_.reconf_tile(routed).module() != module ||
        driver(routed) != module) {
      Completion reconfigured(kernel);
      reconfigure_locked(routed, module, reconfigured);
      co_await reconfigured.wait();
      status = reconfigured.status();
    } else {
      ++stats_.reconfigurations_avoided;
    }

    int recoveries = 0;
    auto& irq = cpu.irq_from(routed);
    bool finished = false;
    while (status == RequestStatus::kOk && !finished) {
      // Program the task and start the accelerator.
      co_await cpu.write_reg(routed, soc::kRegSrc, task.src);
      co_await cpu.write_reg(routed, soc::kRegDst, task.dst);
      co_await cpu.write_reg(routed, soc::kRegItems,
                             static_cast<std::uint64_t>(task.items));
      co_await cpu.write_reg(routed, soc::kRegAuxArg, task.aux);
      const std::uint64_t nack = co_await cpu.write_reg(routed,
                                                        soc::kRegCmd, 1);
      if (nack == kAckRefused) {
        // The wrapper refused to start: upset configuration frames (SEU),
        // leftover decoupling, or a wedged status. A forced partition
        // rewrite clears all three.
        ++stats_.cmd_retries;
        if (trace::enabled(kTrc))
          trace::sim_instant(kTrc, "cmd-retry", kernel.now(), run_track);
        if (first_fire == 0) first_fire = kernel.now();
        if (++recoveries > options_.retry_budget) {
          status = RequestStatus::kTimeout;
          break;
        }
        Completion repaired(kernel);
        reconfigure_locked(routed, module, repaired);
        co_await repaired.wait();
        status = repaired.status();
        continue;
      }

      // Wait for the done interrupt from the tile under the watchdog.
      bool waiting = true;
      while (waiting) {
        const auto payload = co_await irq.receive_for(
            static_cast<sim::Time>(options_.watchdog_run_cycles));
        if (payload.has_value()) {
          if (*payload == soc::kIrqAccelDone) {
            finished = true;
            waiting = false;
          } else {
            ++stats_.stray_irqs;
          }
          continue;
        }
        waiting = false;
        ++stats_.watchdog_fires;
        if (trace::enabled(kTrc))
          trace::sim_instant(kTrc, "watchdog", kernel.now(), run_track);
        if (first_fire == 0) first_fire = kernel.now();
        const std::uint64_t status_reg =
            co_await cpu.read_reg(routed, soc::kRegStatus);
        if (status_reg == soc::kStatusDone) {
          // The run finished; only its done interrupt was lost. Accepting
          // the status register avoids re-executing a non-idempotent
          // kernel.
          ++stats_.lost_irq_recoveries;
          finished = true;
        } else if (++recoveries > options_.retry_budget) {
          status = RequestStatus::kTimeout;
        } else if (status_reg == soc::kStatusRunning) {
          // Genuine hang: force a partition rewrite, which supersedes the
          // wedged datapath (it never ran any compute), then restart.
          ++stats_.hung_run_repairs;
          Completion repaired(kernel);
          reconfigure_locked(routed, module, repaired);
          co_await repaired.wait();
          status = repaired.status();
          if (status == RequestStatus::kOk)
            co_await sim::Delay(kernel,
                                backoff(recoveries));
        } else {
          // Idle: the run aborted without side effects; restart.
          co_await sim::Delay(kernel, backoff(recoveries));
        }
        co_await sim::Delay(
            kernel, static_cast<sim::Time>(options_.irq_drain_cycles));
        while (irq.try_receive().has_value()) ++stats_.stray_irqs;
      }
    }

    if (trace::enabled(kTrc))
      trace::sim_end(kTrc, "run:" + module, kernel.now(), run_track);
    if (status == RequestStatus::kOk) {
      ++stats_.runs;
      if (recoveries > 0) {
        health_.record_failure(routed);
      } else {
        health_.record_success(routed);
      }
      tile_lock(routed).release();
      break;
    }

    // The pass failed: pull the tile from rotation and leave its
    // partition blank, then let the next pass re-route.
    if (health_.health(routed) != TileHealth::kQuarantined) {
      health_.quarantine(routed);
      ++stats_.quarantines;
      if (trace::enabled(kTrc))
        trace::sim_instant(kTrc, "quarantine", kernel.now(), run_track);
    }
    if (store_.has(routed, "") &&
        !soc_.reconf_tile(routed).module().empty()) {
      Completion blanked(kernel);
      reconfigure_locked(routed, "", blanked);
      co_await blanked.wait();
    } else {
      drivers_.erase(routed);
    }
    tile_lock(routed).release();
  }

  if (first_fire != 0)
    stats_.recovery_cycles +=
        static_cast<long long>(kernel.now() - first_fire);
  done.complete(status, routed);
}

// ------------------------------------------------------- legacy wrappers

sim::Process ReconfigurationManager::run(int tile, std::string module,
                                         soc::AccelTask task,
                                         sim::SimEvent& done) {
  Completion completion(soc_.kernel());
  run(tile, std::move(module), task, completion);
  co_await completion.wait();
  if (!completion.ok()) {
    PRESP_WARN("manager") << "run on tile " << tile << " completed with "
                          << to_string(completion.status());
  }
  done.trigger();
}

sim::Process ReconfigurationManager::ensure_module(int tile,
                                                   std::string module,
                                                   sim::SimEvent& done) {
  Completion completion(soc_.kernel());
  ensure_module(tile, std::move(module), completion);
  co_await completion.wait();
  done.trigger();
}

sim::Process ReconfigurationManager::clear_partition(int tile,
                                                     sim::SimEvent& done) {
  Completion completion(soc_.kernel());
  clear_partition(tile, completion);
  co_await completion.wait();
  done.trigger();
}

sim::Process ReconfigurationManager::verify_partition(int tile,
                                                      std::string module,
                                                      bool* ok,
                                                      sim::SimEvent& done) {
  Completion completion(soc_.kernel());
  verify_partition(tile, std::move(module), ok, completion);
  co_await completion.wait();
  done.trigger();
}

}  // namespace presp::runtime
