// Per-tile health tracking for the fault-tolerant runtime.
//
// Every reconfigurable tile carries a health state:
//
//   healthy ──(repeated recovered faults)──> degraded
//   degraded ──(retry budget exhausted)────> quarantined
//   quarantined ──(explicit rehabilitation)─> degraded
//   degraded ──(clean successes)───────────> healthy
//
// The ReconfigurationManager records every recovered fault and every
// clean completion here; when a request exhausts its retry budget the
// tile is quarantined and the manager stops scheduling work on it
// (rerouting to healthy tiles or reporting kQuarantined so the
// application can fall back to software).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>

namespace presp::runtime {

enum class TileHealth { kHealthy = 0, kDegraded, kQuarantined };

const char* to_string(TileHealth health);

struct TileHealthOptions {
  /// Consecutive recovered faults before a healthy tile is degraded.
  int degrade_after = 2;
  /// Consecutive recovered faults before a degraded tile is quarantined
  /// even without a hard failure (a tile that only ever limps along is
  /// not worth keeping in rotation).
  int quarantine_after = 6;
  /// Consecutive clean completions before a degraded tile is healthy
  /// again.
  int recover_after = 3;
};

struct TileHealthStats {
  std::uint64_t failures = 0;    // recovered faults recorded
  std::uint64_t quarantines = 0;
  std::uint64_t rehabilitations = 0;
};

/// Thread-safe: the runtime mutates tile states from its own thread while
/// the ops plane serves `/health` snapshots from server workers, so every
/// method serializes on an internal mutex.
class TileHealthRegistry {
 public:
  /// Observer invoked on every health-state transition (old != new).
  /// Fleet-level policies (circuit breakers, shard schedulers) layer on
  /// this instead of polling: quarantine trips a breaker open,
  /// rehabilitation arms a half-open probe. The listener must not call
  /// back into the registry (it runs under the registry mutex).
  using Listener =
      std::function<void(int tile, TileHealth from, TileHealth to)>;

  explicit TileHealthRegistry(TileHealthOptions options = {})
      : options_(options) {}

  void set_listener(Listener listener) {
    std::lock_guard<std::mutex> lock(mutex_);
    listener_ = std::move(listener);
  }

  TileHealth health(int tile) const;
  /// True unless the tile is quarantined.
  bool usable(int tile) const {
    return health(tile) != TileHealth::kQuarantined;
  }

  /// Records a fault the runtime recovered from. Returns the (possibly
  /// downgraded) health after the transition.
  TileHealth record_failure(int tile);
  /// Records a clean completion; enough of them in a row heal a degraded
  /// tile.
  void record_success(int tile);
  /// Hard failure: the tile is pulled from rotation immediately.
  void quarantine(int tile);
  /// Re-admits a quarantined tile as degraded (it must earn healthy back
  /// through clean completions). No-op for non-quarantined tiles.
  void rehabilitate(int tile);

  TileHealthStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }
  int consecutive_failures(int tile) const;

  /// Consistent point-in-time copy of every tracked tile's state.
  std::map<int, TileHealth> snapshot() const;

 private:
  struct Entry {
    TileHealth health = TileHealth::kHealthy;
    int fail_streak = 0;
    int success_streak = 0;
  };

  void transition(int tile, Entry& entry, TileHealth to);

  TileHealthOptions options_;
  mutable std::mutex mutex_;
  std::map<int, Entry> entries_;
  TileHealthStats stats_;
  Listener listener_;
};

}  // namespace presp::runtime
