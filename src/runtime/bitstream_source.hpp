// Asynchronous partial-bitstream sources for the cache-backed store.
//
// A source owns the payload bytes of every registered partial bitstream
// and serves them on demand: the store's LRU cache calls fetch() when a
// miss needs filling, overlapping the *real* I/O (a thread-pool file read
// for the disk source) with the simulated fetch latency it models. The
// split keeps two clocks honest at once — the std::future carries actual
// bytes obtained asynchronously on the host, while latency_cycles() tells
// the simulation how long the platform would have taken to produce them.
//
//   MemoryBitstreamSource — bitstreams mmapped in user-space DDR (the
//     paper's baseline); fetching is a kernel-space copy at memcpy
//     bandwidth, the payload future is ready immediately.
//   FileBitstreamSource — bitstreams resident on a boot medium (SD/flash
//     over SPI); store() writes real files, fetch() submits a real
//     asynchronous read to an exec::ThreadPool (or std::async without
//     one) and models seek + streaming latency.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/kernel.hpp"

namespace presp::exec {
class ThreadPool;
}

namespace presp::runtime {

class AsyncBitstreamSource {
 public:
  virtual ~AsyncBitstreamSource() = default;

  /// Takes ownership of the payload for (tile, module). Empty payloads
  /// are legal (timing-only experiments): fetch() then returns empty
  /// bytes but still models the transfer latency.
  virtual void store(int tile, const std::string& module,
                     std::vector<std::uint8_t> payload) = 0;

  /// Launches an asynchronous read of the registered payload. The future
  /// must become ready without further calls on this object.
  virtual std::future<std::vector<std::uint8_t>> fetch(
      int tile, const std::string& module) = 0;

  /// Simulated cycles the platform needs to produce `bytes` payload
  /// bytes (the store co_awaits this before joining the future).
  virtual sim::Time latency_cycles(std::size_t bytes) const = 0;

  virtual const char* name() const = 0;
};

/// Payloads held in host memory ("mmapped in the user-space in the DDR",
/// paper Section V). Fetch latency models the user-to-kernel copy.
class MemoryBitstreamSource final : public AsyncBitstreamSource {
 public:
  /// `bytes_per_cycle`: modeled copy bandwidth (64 B/cycle ~ a cached
  /// memcpy on the paper's 78 MHz system).
  explicit MemoryBitstreamSource(double bytes_per_cycle = 64.0)
      : bytes_per_cycle_(bytes_per_cycle) {}

  void store(int tile, const std::string& module,
             std::vector<std::uint8_t> payload) override;
  std::future<std::vector<std::uint8_t>> fetch(
      int tile, const std::string& module) override;
  sim::Time latency_cycles(std::size_t bytes) const override;
  const char* name() const override { return "memory"; }

 private:
  double bytes_per_cycle_;
  std::map<std::pair<int, std::string>, std::vector<std::uint8_t>>
      payloads_;
};

struct FileSourceOptions {
  /// Fixed per-fetch cycles (command setup + medium seek).
  long long seek_cycles = 50'000;
  /// Streaming bandwidth of the medium in bytes per SoC cycle (2.0 at
  /// 78 MHz ~ a 156 MB/s SD/eMMC part).
  double bytes_per_cycle = 2.0;
};

/// Payloads written to and re-read from real files under `directory`.
/// fetch() performs the read asynchronously: on the given thread pool
/// when one is provided, else via std::async — either way the simulated
/// clock keeps running while the host I/O completes.
class FileBitstreamSource final : public AsyncBitstreamSource {
 public:
  FileBitstreamSource(std::string directory,
                      exec::ThreadPool* pool = nullptr,
                      FileSourceOptions options = {});

  void store(int tile, const std::string& module,
             std::vector<std::uint8_t> payload) override;
  std::future<std::vector<std::uint8_t>> fetch(
      int tile, const std::string& module) override;
  sim::Time latency_cycles(std::size_t bytes) const override;
  const char* name() const override { return "file"; }

  /// Real reads completed so far (observability for tests/bench).
  std::uint64_t reads() const { return reads_; }

 private:
  std::string path_for(int tile, const std::string& module) const;

  std::string directory_;
  exec::ThreadPool* pool_;
  FileSourceOptions options_;
  std::atomic<std::uint64_t> reads_{0};
};

}  // namespace presp::runtime
