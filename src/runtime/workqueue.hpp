// Pool-backed request drain for the reconfiguration manager.
//
// The manager's entry points are one-shot coroutines: callers spawn a
// request and await its Completion. Sequential code that needs many
// requests (e.g. scrubbing every reconfigurable partition between frames)
// used to issue them one at a time — spawn, run the kernel to quiescence,
// repeat — which serializes even the phases that do not contend for the
// single PRC/ICAP (driver swaps, backoff waits, readback comparisons).
//
// RequestPool gives such code task-level parallelism *in simulated time*:
// requests are enqueued into a FIFO and `workers` worker processes drain
// it concurrently, each dispatching to the unchanged manager entry points.
// All of the manager's semantics are preserved by construction — the PRC
// semaphore still serializes ICAP transfers, per-tile locks still guard
// accelerator state, and the watchdog/health/quarantine machinery runs
// inside the manager exactly as in the serial drain. The DES kernel is
// single-threaded, so worker "concurrency" is deterministic interleaving
// by (time, event-sequence) order: a drain of the same queue is
// reproducible event-for-event.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "runtime/manager.hpp"

namespace presp::runtime {

/// One queued manager request. `done` (optional) must outlive the drain;
/// when null the pool awaits an internal scratch completion.
struct PoolRequest {
  enum class Kind { kRun, kEnsureModule, kClearPartition, kVerify, kScrub };
  Kind kind = Kind::kScrub;
  int tile = -1;
  std::string module;           // kRun / kEnsureModule / kVerify
  soc::AccelTask task{};        // kRun
  bool* verify_ok = nullptr;    // kVerify
  Completion* done = nullptr;
};

class RequestPool {
 public:
  struct Stats {
    std::uint64_t enqueued = 0;
    std::uint64_t completed = 0;
    /// Requests whose final status was not kOk (escalations surface here
    /// as well as in the manager's own stats).
    std::uint64_t failed = 0;
    int max_queue_depth = 0;
  };

  /// `workers` is clamped to >= 1. The pool holds references only; kernel
  /// and manager must outlive it.
  RequestPool(sim::Kernel& kernel, ReconfigurationManager& manager,
              int workers);

  void enqueue(PoolRequest request);

  /// Spawns up to `workers` worker processes that drain the current queue
  /// and exit. Processes are eager but suspend on their first await;
  /// advance the kernel (kernel.run() / run_until()) to make progress.
  /// Requests enqueued while a drain is in flight are picked up by the
  /// still-running workers.
  void drain();

  /// True when the queue is empty and no request is in flight.
  bool idle() const { return queue_.empty() && in_flight_ == 0; }

  const Stats& stats() const { return stats_; }

 private:
  sim::Process worker();

  sim::Kernel& kernel_;
  ReconfigurationManager& manager_;
  int workers_;
  std::deque<PoolRequest> queue_;
  int active_workers_ = 0;
  int in_flight_ = 0;
  Stats stats_;
};

}  // namespace presp::runtime
