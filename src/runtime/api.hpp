// User-space DPR API and the bare-metal driver variant (paper Section V:
// "Linux and bare-metal drivers ... a user-space API to expose DPR
// services to applications").
//
// DprApi is the Linux path: applications mmap their partial bitstreams,
// hand them to the API (which copies them into kernel memory via the
// BitstreamStore), then invoke accelerators by (tile, module); the kernel
// manager handles locking, reconfiguration scheduling and driver swaps.
//
// BareMetalDriver is the no-OS path: it programs the decoupler and DFX
// controller directly and busy-polls status registers instead of taking
// interrupts.
#pragma once

#include "runtime/manager.hpp"

namespace presp::runtime {

class DprApi {
 public:
  DprApi(soc::Soc& soc, ReconfigurationManager& manager,
         BitstreamStore& store)
      : soc_(soc), manager_(manager), store_(store) {}

  /// Registers a user-space (mmapped) partial bitstream with the kernel.
  void load_bitstream(int tile, const std::string& module,
                      std::size_t bytes,
                      std::span<const std::uint8_t> payload = {},
                      std::uint32_t crc = 0) {
    store_.add(tile, module, bytes, payload, crc);
  }

  /// Synchronous accelerator invocation from a software thread: ensures
  /// the module is resident, runs the task, signals `done`.
  sim::Process invoke(int tile, const std::string& module,
                      const soc::AccelTask& task, sim::SimEvent& done) {
    return manager_.run(tile, module, task, done);
  }

  /// Status-reporting variant: `done` carries the final RequestStatus and
  /// the tile the task actually ran on (re-routing may move it).
  sim::Process invoke(int tile, const std::string& module,
                      const soc::AccelTask& task, Completion& done) {
    return manager_.run(tile, module, task, done);
  }

  /// Prefetch-style reconfiguration without running a task.
  sim::Process prepare(int tile, const std::string& module,
                       sim::SimEvent& done) {
    return manager_.ensure_module(tile, module, done);
  }

  sim::Process prepare(int tile, const std::string& module,
                       Completion& done) {
    return manager_.ensure_module(tile, module, done);
  }

  /// Cache warm-up hint: pulls (tile, module)'s partial bitstream from
  /// its async source into kernel DRAM ahead of the reconfiguration that
  /// will need it, without touching the fabric. Fire-and-forget; a no-op
  /// for eager stores. `done` triggers once the image is resident.
  sim::Process prefetch(int tile, const std::string& module,
                        sim::SimEvent& done) {
    return store_.prefetch(soc_.kernel(), tile, module, done);
  }

  /// Fire-and-forget variant for pipelining application code: the warmed
  /// image just stays in cache until the next acquire.
  sim::Process prefetch(int tile, std::string module);

 private:
  soc::Soc& soc_;
  ReconfigurationManager& manager_;
  BitstreamStore& store_;
};

struct BareMetalStats {
  std::uint64_t polls = 0;
  std::uint64_t reconfigurations = 0;
  std::uint64_t runs = 0;
};

class BareMetalDriver {
 public:
  BareMetalDriver(soc::Soc& soc, BitstreamStore& store,
                  long long poll_interval_cycles = 256)
      : soc_(soc), store_(store), poll_interval_(poll_interval_cycles) {}

  /// Loads `module` (if needed) and runs the task, polling for
  /// completion. Single-threaded semantics: no locking, one call at a
  /// time. By-value parameters: coroutine.
  sim::Process run(int tile, std::string module, soc::AccelTask task,
                   sim::SimEvent& done);

  const BareMetalStats& stats() const { return stats_; }

 private:
  soc::Soc& soc_;
  BitstreamStore& store_;
  long long poll_interval_;
  BareMetalStats stats_;
};

}  // namespace presp::runtime
