#include "sim/kernel.hpp"

namespace presp::sim {

Kernel::~Kernel() {
  // Pending resume events own suspended coroutine frames; destroy them
  // without running them. Frame destructors may cascade (a dying frame's
  // local primitives destroy their own waiters) but never re-enter the
  // kernel, so draining the queue releases every frame exactly once.
  while (!queue_.empty()) {
    Event* ev = queue_.top();
    queue_.pop();
    if (ev->co) ev->co.destroy();
  }
}

std::uint64_t Kernel::schedule(Time delay, std::function<void()> fn) {
  pool_.push_back(Event{now_ + delay, seq_++, next_id_++, std::move(fn)});
  queue_.push(&pool_.back());
  ++live_events_;
  return pool_.back().id;
}

std::uint64_t Kernel::schedule_resume(Time delay, std::coroutine_handle<> co) {
  pool_.push_back(Event{now_ + delay, seq_++, next_id_++, nullptr, co});
  queue_.push(&pool_.back());
  ++live_events_;
  return pool_.back().id;
}

bool Kernel::cancel(std::uint64_t event_id) {
  // Events are pooled in a deque in id order starting at 1; the pool is
  // only compacted between runs, so a linear scan from the back finds live
  // events quickly (cancellations target recently scheduled timeouts).
  for (auto it = pool_.rbegin(); it != pool_.rend(); ++it) {
    if (it->id == event_id) {
      if (it->cancelled || (!it->fn && !it->co)) return false;
      if (it->co) {
        it->co.destroy();
        it->co = nullptr;
      }
      it->cancelled = true;
      --live_events_;
      return true;
    }
    if (it->id < event_id) break;
  }
  return false;
}

void Kernel::pop_and_run() {
  Event* ev = queue_.top();
  queue_.pop();
  if (!ev->cancelled) {
    now_ = ev->at;
    --live_events_;
    ++executed_;
    if (trace::enabled(trace::Category::kSim)) {
      trace::sim_instant(trace::Category::kSim,
                         ev->co ? "process.resume" : "event.fire", now_,
                         trace::kTrackSimKernel);
    }
    if (ev->co) {
      const auto co = ev->co;
      ev->co = nullptr;
      try {
        co.resume();
      } catch (...) {
        // The process died by exception: its locals were unwound before
        // unhandled_exception rethrew, leaving a dead frame suspended at
        // the final suspend point. Free it, then let the exception
        // surface from run().
        co.destroy();
        throw;
      }
    } else {
      auto fn = std::move(ev->fn);
      ev->fn = nullptr;
      fn();
    }
  } else {
    // Cancelled events do not advance the clock: a cancelled watchdog
    // timeout must leave the simulated time exactly as if it had never
    // been armed.
    ev->fn = nullptr;
  }
  // Compact the pool when the queue fully drains to bound memory across
  // long simulations.
  if (queue_.empty()) pool_.clear();
}

Time Kernel::run() {
  while (!queue_.empty()) pop_and_run();
  return now_;
}

Time Kernel::run_until(Time deadline) {
  while (!queue_.empty() && queue_.top()->at <= deadline) pop_and_run();
  if (now_ < deadline) now_ = deadline;
  return now_;
}

void SimEvent::trigger() {
  if (triggered_) return;
  triggered_ = true;
  auto waiters = std::move(waiters_);
  waiters_.clear();
  for (const auto handle : waiters) {
    kernel_->schedule_resume(0, handle);
  }
}

void Semaphore::release() {
  if (!waiters_.empty()) {
    const auto handle = waiters_.front();
    waiters_.pop_front();
    // The token passes directly to the waiter; count_ stays unchanged.
    kernel_->schedule_resume(0, handle);
  } else {
    ++count_;
  }
}

}  // namespace presp::sim
