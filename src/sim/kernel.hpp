// Discrete-event simulation kernel.
//
// Components of the SoC model (NoC routers, DMA engines, the ICAP, the
// reconfiguration manager's workqueue thread, accelerator datapaths) are
// written as C++20 coroutines ("processes") that co_await simulated delays
// and synchronization primitives. The kernel advances a virtual clock,
// measured in cycles of the SoC main clock (78 MHz on the paper's VC707
// configuration), and executes events in deterministic order: (time,
// insertion sequence).
//
// Ownership: coroutine frames are self-owning fire-and-forget processes.
// A process must not outlive its kernel. A suspended process is referenced
// from exactly one place — the kernel event that will resume it (Delay and
// every post-trigger/send/release hop go through schedule_resume) or one
// primitive's waiter list — so teardown destroys each still-suspended
// frame exactly once: Kernel's destructor destroys the frames of pending
// resume events without running them, and SimEvent/Semaphore/Mailbox
// destructors destroy the frames of their remaining waiters.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <queue>
#include <vector>

#include "trace/trace.hpp"
#include "util/error.hpp"

namespace presp::sim {

/// Virtual time in clock cycles.
using Time = std::uint64_t;

class Kernel {
 public:
  Kernel() = default;
  ~Kernel();
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  Time now() const { return now_; }

  /// Schedules a callback at now()+delay. Returns an id usable with cancel().
  std::uint64_t schedule(Time delay, std::function<void()> fn);

  /// Schedules a coroutine resume at now()+delay. Unlike a callback that
  /// captures the handle, the kernel knows this event owns a suspended
  /// frame and destroys it if the kernel is torn down first.
  std::uint64_t schedule_resume(Time delay, std::coroutine_handle<> co);

  /// Cancels a pending event; returns false if it already fired or was
  /// cancelled.
  bool cancel(std::uint64_t event_id);

  /// Runs until the event queue drains. Returns the final time.
  Time run();

  /// Runs events with time <= deadline; clock lands on deadline if the queue
  /// drains earlier.
  Time run_until(Time deadline);

  /// Number of events executed since construction (for tests/metrics).
  std::uint64_t events_executed() const { return executed_; }
  bool empty() const { return live_events_ == 0; }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    std::uint64_t id;
    std::function<void()> fn;
    std::coroutine_handle<> co{};  // exclusive with fn
    bool cancelled = false;
  };
  struct Order {
    bool operator()(const Event* a, const Event* b) const {
      if (a->at != b->at) return a->at > b->at;
      return a->seq > b->seq;
    }
  };

  void pop_and_run();

  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t live_events_ = 0;
  std::deque<Event> pool_;
  std::priority_queue<Event*, std::vector<Event*>, Order> queue_;
};

// ---------------------------------------------------------------------------
// Coroutine process type

/// Fire-and-forget simulation process. The coroutine starts running
/// immediately upon call (eager start) and its frame self-destructs when it
/// finishes. The returned Process object is an optional observer handle.
class Process {
 public:
  struct promise_type {
    Process get_return_object() {
      return Process{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { throw; }
  };

  Process() = default;

 private:
  explicit Process(std::coroutine_handle<promise_type>) {}
};

/// Awaitable that suspends the current process for `delay` cycles.
class Delay {
 public:
  Delay(Kernel& kernel, Time delay) : kernel_(kernel), delay_(delay) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> handle) {
    if (trace::enabled(trace::Category::kSim)) {
      trace::sim_instant(trace::Category::kSim, "process.suspend",
                         kernel_.now(), trace::kTrackSimKernel,
                         static_cast<double>(delay_));
    }
    kernel_.schedule_resume(delay_, handle);
  }
  void await_resume() const noexcept {}

 private:
  Kernel& kernel_;
  Time delay_;
};

/// One-shot broadcast event: processes co_await wait(); trigger() resumes
/// all current and future waiters (future waiters resume immediately).
class SimEvent {
 public:
  explicit SimEvent(Kernel& kernel) : kernel_(&kernel) {}
  SimEvent(const SimEvent&) = delete;
  SimEvent& operator=(const SimEvent&) = delete;
  ~SimEvent() {
    const auto waiters = std::move(waiters_);
    for (const auto handle : waiters) handle.destroy();
  }

  bool triggered() const { return triggered_; }

  void trigger();

  /// Resets to the non-triggered state (waiters must be empty).
  void reset() {
    PRESP_ASSERT_MSG(waiters_.empty(), "reset with pending waiters");
    triggered_ = false;
  }

  auto wait() {
    struct Awaiter {
      SimEvent& event;
      bool await_ready() const noexcept { return event.triggered_; }
      void await_suspend(std::coroutine_handle<> handle) {
        event.waiters_.push_back(handle);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Kernel* kernel_;
  bool triggered_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore for modeling exclusive/limited resources (e.g. the
/// single ICAP port, a memory-controller channel).
class Semaphore {
 public:
  Semaphore(Kernel& kernel, std::uint32_t initial)
      : kernel_(&kernel), count_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;
  ~Semaphore() {
    const auto waiters = std::move(waiters_);
    for (const auto handle : waiters) handle.destroy();
  }

  std::uint32_t available() const { return count_; }

  auto acquire() {
    struct Awaiter {
      Semaphore& sem;
      bool await_ready() {
        if (sem.count_ > 0) {
          --sem.count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> handle) {
        sem.waiters_.push_back(handle);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  void release();

 private:
  Kernel* kernel_;
  std::uint32_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Unbounded FIFO channel between processes. Receivers block when empty;
/// receive_for() races the delivery against a simulated-clock deadline —
/// the watchdog primitive the runtime manager builds its recovery on.
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Kernel& kernel) : kernel_(&kernel) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;
  ~Mailbox() {
    const auto waiters = std::move(waiters_);
    for (Waiter* waiter : waiters) {
      if (waiter->timer_id != 0) kernel_->cancel(waiter->timer_id);
      waiter->handle.destroy();
    }
  }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  void send(T item) {
    items_.push_back(std::move(item));
    if (!waiters_.empty()) {
      Waiter* waiter = waiters_.front();
      waiters_.pop_front();
      if (waiter->timer_id != 0) {
        // The waiter is still queued, so its timeout has not fired yet;
        // cancelling must succeed (single-threaded kernel).
        const bool cancelled = kernel_->cancel(waiter->timer_id);
        PRESP_ASSERT_MSG(cancelled, "mailbox timeout raced with delivery");
        waiter->timer_id = 0;
      }
      // Resume through the kernel so the receiver runs after the sender's
      // current event completes (deterministic, avoids reentrancy).
      kernel_->schedule_resume(0, waiter->handle);
    }
  }

  /// Non-blocking receive (e.g. draining stale interrupts after a
  /// watchdog recovery).
  std::optional<T> try_receive() {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  auto receive() {
    struct Awaiter {
      Mailbox& box;
      Waiter waiter{};
      bool await_ready() const noexcept { return !box.items_.empty(); }
      void await_suspend(std::coroutine_handle<> handle) {
        waiter.handle = handle;
        box.waiters_.push_back(&waiter);
      }
      T await_resume() {
        PRESP_ASSERT_MSG(!box.items_.empty(),
                         "mailbox resumed without an item");
        T item = std::move(box.items_.front());
        box.items_.pop_front();
        return item;
      }
    };
    return Awaiter{*this};
  }

  /// Receive racing a timeout: resumes with the item, or with nullopt
  /// once `timeout` cycles elapse with nothing delivered. Timed-out
  /// waiters leave the queue, so a later send is kept for the next
  /// receiver instead of being lost.
  auto receive_for(Time timeout) {
    struct Awaiter {
      Mailbox& box;
      Time timeout;
      Waiter waiter{};
      bool await_ready() const noexcept { return !box.items_.empty(); }
      void await_suspend(std::coroutine_handle<> handle) {
        waiter.handle = handle;
        box.waiters_.push_back(&waiter);
        Waiter* w = &waiter;
        Mailbox* b = &box;
        waiter.timer_id = box.kernel_->schedule(timeout, [b, w] {
          w->timed_out = true;
          w->timer_id = 0;
          b->remove_waiter(w);
          w->handle.resume();
        });
      }
      std::optional<T> await_resume() {
        if (waiter.timed_out) return std::nullopt;
        PRESP_ASSERT_MSG(!box.items_.empty(),
                         "mailbox resumed without an item");
        T item = std::move(box.items_.front());
        box.items_.pop_front();
        return item;
      }
    };
    return Awaiter{*this, timeout};
  }

 private:
  /// Waiter record living in the suspended awaiter (stable address).
  struct Waiter {
    std::coroutine_handle<> handle{};
    std::uint64_t timer_id = 0;  // 0 = no timeout armed
    bool timed_out = false;
  };

  void remove_waiter(Waiter* waiter) {
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
      if (*it == waiter) {
        waiters_.erase(it);
        return;
      }
    }
  }

  Kernel* kernel_;
  std::deque<T> items_;
  std::deque<Waiter*> waiters_;
};

}  // namespace presp::sim
