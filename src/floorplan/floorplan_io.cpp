#include "floorplan/floorplan_io.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace presp::floorplan {

namespace {

void append_escaped(std::string& out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
}

void append_resources(std::string& out, const fabric::ResourceVec& vec) {
  out += "{\"luts\":" + std::to_string(vec.luts) +
         ",\"ffs\":" + std::to_string(vec.ffs) +
         ",\"bram36\":" + std::to_string(vec.bram36) +
         ",\"dsp\":" + std::to_string(vec.dsp) + "}";
}

void append_pblock(std::string& out, const fabric::Pblock& pb) {
  out += "{\"col_lo\":" + std::to_string(pb.col_lo) +
         ",\"col_hi\":" + std::to_string(pb.col_hi) +
         ",\"row_lo\":" + std::to_string(pb.row_lo) +
         ",\"row_hi\":" + std::to_string(pb.row_hi) + "}";
}

// Minimal recursive-descent reader for the documents this module writes.
// Mirrors the reader idiom used by the lint and trace JSON parsers.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c))
      fail(std::string("expected '") + c + "'");
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        char esc = text_[pos_++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          default: out += esc; break;
        }
      } else {
        out += c;
      }
    }
    expect('"');
    return out;
  }

  double number() {
    skip_ws();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(start, &end);
    if (end == start) fail("expected number");
    pos_ += static_cast<std::size_t>(end - start);
    return value;
  }

  std::int64_t integer() { return static_cast<std::int64_t>(number()); }

  [[noreturn]] void fail(const std::string& what) {
    throw ConfigError("floorplan json: " + what + " at offset " +
                      std::to_string(pos_));
  }

  fabric::ResourceVec resources() {
    fabric::ResourceVec vec;
    expect('{');
    if (!consume('}')) {
      do {
        const std::string key = string();
        expect(':');
        const std::int64_t value = integer();
        if (key == "luts") vec.luts = value;
        else if (key == "ffs") vec.ffs = value;
        else if (key == "bram36") vec.bram36 = value;
        else if (key == "dsp") vec.dsp = value;
        else fail("unknown resource field '" + key + "'");
      } while (consume(','));
      expect('}');
    }
    return vec;
  }

  fabric::Pblock pblock() {
    fabric::Pblock pb;
    expect('{');
    if (!consume('}')) {
      do {
        const std::string key = string();
        expect(':');
        const int value = static_cast<int>(integer());
        if (key == "col_lo") pb.col_lo = value;
        else if (key == "col_hi") pb.col_hi = value;
        else if (key == "row_lo") pb.row_lo = value;
        else if (key == "row_hi") pb.row_hi = value;
        else fail("unknown pblock field '" + key + "'");
      } while (consume(','));
      expect('}');
    }
    return pb;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string render_floorplan_json(const FloorplanArtifact& artifact) {
  PRESP_REQUIRE(artifact.requests.size() == artifact.plan.pblocks.size(),
                "floorplan artifact: request/pblock count mismatch");
  std::string out = "{\n  \"design\": \"";
  append_escaped(out, artifact.design);
  out += "\",\n  \"device\": \"";
  append_escaped(out, artifact.device);
  out += "\",\n  \"partitions\": [";
  for (std::size_t i = 0; i < artifact.requests.size(); ++i) {
    out += (i == 0) ? "\n" : ",\n";
    out += "    {\"name\": \"";
    append_escaped(out, artifact.requests[i].name);
    out += "\", \"demand\": ";
    append_resources(out, artifact.requests[i].demand);
    out += ", \"pblock\": ";
    append_pblock(out, artifact.plan.pblocks[i]);
    out += "}";
  }
  if (!artifact.requests.empty()) out += "\n  ";
  out += "],\n  \"static_capacity\": ";
  append_resources(out, artifact.plan.static_capacity);
  out += ",\n  \"waste\": " + std::to_string(artifact.plan.waste);
  out += "\n}\n";
  return out;
}

FloorplanArtifact parse_floorplan_json(const std::string& text) {
  FloorplanArtifact artifact;
  JsonReader reader(text);
  reader.expect('{');
  if (!reader.consume('}')) {
    do {
      const std::string key = reader.string();
      reader.expect(':');
      if (key == "design") {
        artifact.design = reader.string();
      } else if (key == "device") {
        artifact.device = reader.string();
      } else if (key == "partitions") {
        reader.expect('[');
        if (!reader.consume(']')) {
          do {
            PartitionRequest request;
            fabric::Pblock pb;
            reader.expect('{');
            if (!reader.consume('}')) {
              do {
                const std::string field = reader.string();
                reader.expect(':');
                if (field == "name") request.name = reader.string();
                else if (field == "demand") request.demand = reader.resources();
                else if (field == "pblock") pb = reader.pblock();
                else reader.fail("unknown partition field '" + field + "'");
              } while (reader.consume(','));
              reader.expect('}');
            }
            artifact.requests.push_back(request);
            artifact.plan.pblocks.push_back(pb);
          } while (reader.consume(','));
          reader.expect(']');
        }
      } else if (key == "static_capacity") {
        artifact.plan.static_capacity = reader.resources();
      } else if (key == "waste") {
        artifact.plan.waste = reader.number();
      } else {
        reader.fail("unknown field '" + key + "'");
      }
    } while (reader.consume(','));
    reader.expect('}');
  }
  if (artifact.requests.size() != artifact.plan.pblocks.size())
    throw ConfigError("floorplan json: request/pblock count mismatch");
  return artifact;
}

void write_floorplan_json(const FloorplanArtifact& artifact,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot write floorplan artifact: " + path);
  out << render_floorplan_json(artifact);
  if (!out) throw Error("failed writing floorplan artifact: " + path);
}

FloorplanArtifact read_floorplan_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot read floorplan artifact: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_floorplan_json(buffer.str());
}

}  // namespace presp::floorplan
