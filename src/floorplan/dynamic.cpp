#include "floorplan/dynamic.hpp"

#include <algorithm>

#include "trace/metrics.hpp"
#include "util/error.hpp"

namespace presp::floorplan {

DynamicFloorplan::DynamicFloorplan(const fabric::Device& device)
    : device_(&device) {}

bool DynamicFloorplan::legal_rect_locked(const fabric::Pblock& p) const {
  if (!p.valid() || p.col_lo < 0 || p.col_hi >= device_->num_columns() ||
      p.row_lo < 0 || p.row_hi >= device_->region_rows()) {
    return false;
  }
  for (int col = p.col_lo; col <= p.col_hi; ++col) {
    if (!fabric::Device::reconfigurable_column(device_->column_type(col))) {
      return false;
    }
  }
  return true;
}

bool DynamicFloorplan::free_rect_locked(const fabric::Pblock& p,
                                        int ignore_id) const {
  for (const auto& [id, region] : regions_) {
    if (id == ignore_id) continue;
    if (region.overlaps(p)) return false;
  }
  return true;
}

bool DynamicFloorplan::compatible_locked(const fabric::Pblock& from,
                                         const fabric::Pblock& to) const {
  if (from.width() != to.width() || from.height() != to.height()) {
    return false;
  }
  for (int i = 0; i < from.width(); ++i) {
    if (device_->column_type(from.col_lo + i) !=
        device_->column_type(to.col_lo + i)) {
      return false;
    }
  }
  return true;
}

void DynamicFloorplan::claim(int id, const fabric::Pblock& pblock) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (regions_.count(id)) {
    throw InvalidArgument("claim: region " + std::to_string(id) +
                          " is already placed");
  }
  if (!legal_rect_locked(pblock)) {
    throw InvalidArgument("claim: illegal rectangle " + pblock.to_string() +
                          " on " + device_->name());
  }
  if (!free_rect_locked(pblock, -1)) {
    throw InvalidArgument("claim: " + pblock.to_string() +
                          " overlaps an existing region");
  }
  regions_.emplace(id, pblock);
}

void DynamicFloorplan::release(int id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!regions_.erase(id)) {
    throw InvalidArgument("release: unknown region " + std::to_string(id));
  }
}

void DynamicFloorplan::split(int id, int new_id, char axis, int at) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = regions_.find(id);
  if (it == regions_.end()) {
    throw InvalidArgument("split: unknown region " + std::to_string(id));
  }
  if (id == new_id || regions_.count(new_id)) {
    throw InvalidArgument("split: id " + std::to_string(new_id) +
                          " is already in use");
  }
  fabric::Pblock keep = it->second;
  fabric::Pblock rest = it->second;
  if (axis == 'c') {
    if (at < keep.col_lo || at >= keep.col_hi) {
      throw InvalidArgument("split: column " + std::to_string(at) +
                            " does not bisect " + keep.to_string());
    }
    keep.col_hi = at;
    rest.col_lo = at + 1;
  } else if (axis == 'r') {
    if (at < keep.row_lo || at >= keep.row_hi) {
      throw InvalidArgument("split: row " + std::to_string(at) +
                            " does not bisect " + keep.to_string());
    }
    keep.row_hi = at;
    rest.row_lo = at + 1;
  } else {
    throw InvalidArgument("split: axis must be 'c' or 'r'");
  }
  it->second = keep;
  regions_.emplace(new_id, rest);
}

void DynamicFloorplan::merge(int id, int other) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto a = regions_.find(id);
  auto b = regions_.find(other);
  if (a == regions_.end() || b == regions_.end() || id == other) {
    throw InvalidArgument("merge: unknown region pair " + std::to_string(id) +
                          "," + std::to_string(other));
  }
  const fabric::Pblock& ra = a->second;
  const fabric::Pblock& rb = b->second;
  fabric::Pblock merged;
  const bool same_rows = ra.row_lo == rb.row_lo && ra.row_hi == rb.row_hi;
  const bool same_cols = ra.col_lo == rb.col_lo && ra.col_hi == rb.col_hi;
  if (same_rows && (ra.col_hi + 1 == rb.col_lo || rb.col_hi + 1 == ra.col_lo)) {
    merged = ra;
    merged.col_lo = std::min(ra.col_lo, rb.col_lo);
    merged.col_hi = std::max(ra.col_hi, rb.col_hi);
  } else if (same_cols &&
             (ra.row_hi + 1 == rb.row_lo || rb.row_hi + 1 == ra.row_lo)) {
    merged = ra;
    merged.row_lo = std::min(ra.row_lo, rb.row_lo);
    merged.row_hi = std::max(ra.row_hi, rb.row_hi);
  } else {
    throw InvalidArgument("merge: " + ra.to_string() + " and " +
                          rb.to_string() + " do not form a rectangle");
  }
  a->second = merged;
  regions_.erase(b);
}

std::optional<fabric::Pblock> DynamicFloorplan::region(int id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = regions_.find(id);
  if (it == regions_.end()) return std::nullopt;
  return it->second;
}

std::size_t DynamicFloorplan::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return regions_.size();
}

std::optional<fabric::Pblock> DynamicFloorplan::allocate(int id, int width,
                                                         int height) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (regions_.count(id)) {
    throw InvalidArgument("allocate: region " + std::to_string(id) +
                          " is already placed");
  }
  if (width < 1 || height < 1) {
    throw InvalidArgument("allocate: degenerate rectangle");
  }
  for (int row = 0; row + height <= device_->region_rows(); ++row) {
    for (int col = 0; col + width <= device_->num_columns(); ++col) {
      fabric::Pblock candidate{col, col + width - 1, row, row + height - 1};
      if (!legal_rect_locked(candidate)) continue;
      if (!free_rect_locked(candidate, -1)) continue;
      regions_.emplace(id, candidate);
      return candidate;
    }
  }
  return std::nullopt;
}

std::optional<fabric::Pblock> DynamicFloorplan::relocation_target(
    int id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = regions_.find(id);
  if (it == regions_.end()) {
    throw InvalidArgument("relocation_target: unknown region " +
                          std::to_string(id));
  }
  const fabric::Pblock& cur = it->second;
  const int width = cur.width();
  const int height = cur.height();
  // Packing order: leftmost column first, then topmost row — the scan
  // stops as soon as it reaches the region's own position, so a returned
  // target is strictly closer to the origin.
  for (int col = 0; col + width <= device_->num_columns(); ++col) {
    for (int row = 0; row + height <= device_->region_rows(); ++row) {
      if (col > cur.col_lo || (col == cur.col_lo && row >= cur.row_lo)) {
        return std::nullopt;
      }
      fabric::Pblock candidate{col, col + width - 1, row, row + height - 1};
      if (!compatible_locked(cur, candidate)) continue;
      if (!legal_rect_locked(candidate)) continue;
      if (!free_rect_locked(candidate, id)) continue;
      return candidate;
    }
  }
  return std::nullopt;
}

void DynamicFloorplan::relocate(int id, const fabric::Pblock& to) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = regions_.find(id);
  if (it == regions_.end()) {
    throw InvalidArgument("relocate: unknown region " + std::to_string(id));
  }
  if (!compatible_locked(it->second, to)) {
    throw InvalidArgument("relocate: footprint mismatch moving region " +
                          std::to_string(id) + " to " + to.to_string());
  }
  if (!legal_rect_locked(to) || !free_rect_locked(to, id)) {
    throw InvalidArgument("relocate: target " + to.to_string() +
                          " is not free");
  }
  it->second = to;
}

FragmentationStats DynamicFloorplan::fragmentation_locked() const {
  const int rows = device_->region_rows();
  const int cols = device_->num_columns();
  FragmentationStats stats;
  // free[row][col]: cell is allocatable and not covered by any region.
  std::vector<std::vector<bool>> free_cell(
      static_cast<std::size_t>(rows),
      std::vector<bool>(static_cast<std::size_t>(cols), false));
  for (int col = 0; col < cols; ++col) {
    if (!fabric::Device::reconfigurable_column(device_->column_type(col))) {
      continue;
    }
    stats.allocatable_cells += rows;
    for (int row = 0; row < rows; ++row) {
      free_cell[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
          true;
    }
  }
  for (const auto& [id, region] : regions_) {
    (void)id;
    for (int row = region.row_lo; row <= region.row_hi; ++row) {
      for (int col = region.col_lo; col <= region.col_hi; ++col) {
        free_cell[static_cast<std::size_t>(row)]
                 [static_cast<std::size_t>(col)] = false;
      }
    }
  }
  // Largest rectangle of free cells: running histogram of free-run
  // heights per column, max-rectangle-in-histogram per row (stack scan).
  std::vector<int> heights(static_cast<std::size_t>(cols), 0);
  for (int row = 0; row < rows; ++row) {
    for (int col = 0; col < cols; ++col) {
      const bool f = free_cell[static_cast<std::size_t>(row)]
                              [static_cast<std::size_t>(col)];
      if (f) ++stats.free_cells;
      heights[static_cast<std::size_t>(col)] =
          f ? heights[static_cast<std::size_t>(col)] + 1 : 0;
    }
    std::vector<int> stack;
    for (int col = 0; col <= cols; ++col) {
      const int h = col < cols ? heights[static_cast<std::size_t>(col)] : 0;
      int left = col;
      while (!stack.empty() &&
             heights[static_cast<std::size_t>(stack.back())] >= h) {
        const int top = stack.back();
        stack.pop_back();
        const int top_h = heights[static_cast<std::size_t>(top)];
        const int width =
            stack.empty() ? col : col - stack.back() - 1;
        stats.largest_free_rect =
            std::max(stats.largest_free_rect,
                     static_cast<long long>(top_h) * width);
        left = top;
      }
      (void)left;
      stack.push_back(col);
    }
  }
  return stats;
}

FragmentationStats DynamicFloorplan::fragmentation() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fragmentation_locked();
}

void DynamicFloorplan::publish_metrics(const std::string& prefix) const {
  const FragmentationStats stats = fragmentation();
  auto& registry = trace::MetricsRegistry::global();
  registry.gauge(prefix + ".frag_ratio").set(stats.ratio());
  registry.gauge(prefix + ".free_cells")
      .set(static_cast<double>(stats.free_cells));
  registry.gauge(prefix + ".largest_free_rect")
      .set(static_cast<double>(stats.largest_free_rect));
}

}  // namespace presp::floorplan
