// ASCII rendering of a device floorplan: clock-region rows of column
// cells, with partition pblocks overlaid. Intended for flow reports and
// examples — one glance shows where the reconfigurable partitions sit and
// what is left to the static part.
#pragma once

#include <string>
#include <vector>

#include "fabric/device.hpp"

namespace presp::floorplan {

struct VisualizeOptions {
  /// Fabric columns folded into one output character.
  int cols_per_char = 2;
  bool show_legend = true;
};

/// Renders the device: '.' static CLB fabric, 'b' BRAM, 'd' DSP, '|' the
/// clocking spine, 'i' I/O columns; pblocks print as 'A', 'B', ... in
/// request order.
std::string visualize(const fabric::Device& device,
                      const std::vector<fabric::Pblock>& pblocks,
                      const std::vector<std::string>& names = {},
                      const VisualizeOptions& options = {});

}  // namespace presp::floorplan
