// Automated DPR floorplanning, adapted from FLORA (Seyoum et al., ACM
// TECS 2019), the tool the paper integrates for its evaluation boards.
//
// Given the post-synthesis resource demand of each reconfigurable
// partition, produces one pblock (rectangle of column x clock-region
// cells) per partition such that:
//   1. the pblock's enclosed resources cover the partition's demand
//      component-wise (LUT/FF/BRAM/DSP);
//   2. pblocks do not overlap;
//   3. a pblock never contains a clocking-spine or I/O column (Xilinx
//      prohibits clock-modifying logic and route-throughs inside
//      reconfigurable partitions — the architectural restriction that
//      motivated the paper's reconfigurable-tile redesign);
//   4. pblock edges snap to clock-region rows (reconfiguration is
//      frame-atomic per region row).
//
// The objective is minimal wasted fabric: the LUT-equivalent of resources
// enclosed beyond the demand, since everything inside a pblock is lost to
// the static part. A greedy best-fit over all legal rectangles is followed
// by an optional local-refinement pass that reshapes pblocks to shrink
// total waste.
#pragma once

#include <string>
#include <vector>

#include "fabric/device.hpp"
#include "util/rng.hpp"

namespace presp::floorplan {

struct PartitionRequest {
  std::string name;
  fabric::ResourceVec demand;
};

struct FloorplanOptions {
  /// Enable the stochastic refinement pass after greedy placement.
  bool refine = true;
  int refine_iterations = 400;
  std::uint64_t seed = 1;
  /// Demand inflation applied before sizing (Vivado requires slack inside
  /// partitions for routability; 1.0 = exact fit).
  double utilization_margin = 1.15;
};

struct Floorplan {
  /// One pblock per request, same order.
  std::vector<fabric::Pblock> pblocks;
  /// Device capacity left to the static part (total minus all pblocks).
  fabric::ResourceVec static_capacity;
  /// Total LUT-equivalent waste across pblocks.
  double waste = 0.0;
};

/// LUT-equivalent scalarization used for the waste objective.
double lut_equivalent(const fabric::ResourceVec& r);

class Floorplanner {
 public:
  explicit Floorplanner(const fabric::Device& device) : device_(device) {}

  /// Plans all partitions. `static_demand` is checked against the
  /// remaining capacity. Throws InfeasibleDesign when any partition has no
  /// legal pblock or the static part no longer fits.
  Floorplan plan(const std::vector<PartitionRequest>& requests,
                 const fabric::ResourceVec& static_demand,
                 const FloorplanOptions& options = {}) const;

  /// All legal candidate pblocks for one demand, ignoring other
  /// partitions. Sorted by increasing waste. Used by tests and refinement.
  std::vector<fabric::Pblock> candidates(
      const fabric::ResourceVec& demand) const;

  /// Legality of a single pblock for a demand (constraints 1, 3, 4).
  bool legal(const fabric::Pblock& pblock,
             const fabric::ResourceVec& demand) const;

 private:
  const fabric::Device& device_;
};

}  // namespace presp::floorplan
