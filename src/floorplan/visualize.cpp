#include "floorplan/visualize.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace presp::floorplan {

std::string visualize(const fabric::Device& device,
                      const std::vector<fabric::Pblock>& pblocks,
                      const std::vector<std::string>& names,
                      const VisualizeOptions& options) {
  PRESP_REQUIRE(options.cols_per_char >= 1, "cols_per_char must be >= 1");
  PRESP_REQUIRE(pblocks.size() <= 26, "too many pblocks to letter");

  std::ostringstream os;
  const int cols = device.num_columns();
  for (int row = 0; row < device.region_rows(); ++row) {
    os << 'Y' << row << ' ';
    for (int col = 0; col < cols; col += options.cols_per_char) {
      // A pblock wins the character if it covers any folded column.
      char ch = 0;
      for (std::size_t p = 0; p < pblocks.size() && ch == 0; ++p)
        for (int c = col;
             c < std::min(cols, col + options.cols_per_char) && ch == 0; ++c)
          if (pblocks[p].contains(c, row))
            ch = static_cast<char>('A' + p);
      if (ch == 0) {
        switch (device.column_type(col)) {
          case fabric::ColumnType::kClb: ch = '.'; break;
          case fabric::ColumnType::kBram: ch = 'b'; break;
          case fabric::ColumnType::kDsp: ch = 'd'; break;
          case fabric::ColumnType::kClock: ch = '|'; break;
          case fabric::ColumnType::kIo: ch = 'i'; break;
        }
      }
      os << ch;
    }
    os << '\n';
  }
  if (options.show_legend) {
    os << "legend: . CLB  b BRAM  d DSP  | clock spine  i I/O";
    for (std::size_t p = 0; p < pblocks.size(); ++p) {
      os << "  " << static_cast<char>('A' + p) << '=';
      os << (p < names.size() ? names[p] : "RT_" + std::to_string(p + 1));
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace presp::floorplan
