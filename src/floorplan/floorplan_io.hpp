// JSON persistence for floorplans: the flow writes one
// `<design>.floorplan.json` per run (when an artifacts dir is set) and
// `presp-lint --floorplan` reads it back to lint a saved plan without
// re-running the flow. The artifact carries the partition requests
// alongside the plan so capacity checks remain possible offline.
#pragma once

#include <string>
#include <vector>

#include "floorplan/floorplanner.hpp"

namespace presp::floorplan {

struct FloorplanArtifact {
  std::string design;
  /// Device name ("vc707", "vcu118", "vcu128") the plan was made for.
  std::string device;
  /// One request per partition, same order as plan.pblocks.
  std::vector<PartitionRequest> requests;
  Floorplan plan;
};

/// Renders the artifact as a JSON document.
std::string render_floorplan_json(const FloorplanArtifact& artifact);
/// Parses a document produced by render_floorplan_json(). Throws
/// presp::ConfigError on malformed input (including a request/pblock
/// count mismatch).
FloorplanArtifact parse_floorplan_json(const std::string& text);

/// File wrappers; throw presp::Error on I/O failure.
void write_floorplan_json(const FloorplanArtifact& artifact,
                          const std::string& path);
FloorplanArtifact read_floorplan_json(const std::string& path);

}  // namespace presp::floorplan
