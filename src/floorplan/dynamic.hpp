// Dynamic floorplan: a live occupancy map of the reconfigurable fabric.
//
// The static Floorplanner answers "where do these partitions go" once, at
// flow time. Under tenant churn that answer rots: partitions come and go
// at different sizes and the fabric fragments — plenty of free cells, but
// no rectangle big enough for the next arrival. This module tracks
// regions as they are claimed, released, split, and merged at runtime,
// measures fragmentation as 1 - largest_free_rectangle / free_area (the
// ratio the amorphous-DPR literature optimizes), and proposes compacting
// relocation targets for the runtime repacker.
//
// Thread-safety: all public methods take an internal mutex, so the
// ops-plane observers may snapshot fragmentation while the (simulated)
// repacker mutates the map. publish_metrics() pushes the current stats
// into MetricsRegistry::global(), which the ops `/metrics` endpoint
// serves verbatim.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "fabric/device.hpp"

namespace presp::floorplan {

/// Fragmentation snapshot over the allocatable (CLB/BRAM/DSP-column)
/// cells of the device.
struct FragmentationStats {
  long long allocatable_cells = 0;
  long long free_cells = 0;
  /// Cells of the largest axis-aligned all-free rectangle (restricted to
  /// allocatable columns).
  long long largest_free_rect = 0;

  /// 0 = perfectly compact (one rectangle holds all free area, or no
  /// free area at all); approaches 1 as the free area shatters.
  double ratio() const {
    if (free_cells <= 0) return 0.0;
    return 1.0 - static_cast<double>(largest_free_rect) /
                     static_cast<double>(free_cells);
  }
};

class DynamicFloorplan {
 public:
  explicit DynamicFloorplan(const fabric::Device& device);

  const fabric::Device& device() const { return *device_; }

  /// Claims `pblock` for region `id`. Throws presp::InvalidArgument if the
  /// id is already placed, the rectangle is illegal (out of bounds or
  /// crossing an IO/clock column), or it overlaps an existing region.
  void claim(int id, const fabric::Pblock& pblock);

  /// Releases region `id` back to free space. Throws if unknown.
  void release(int id);

  /// Live split: region `id` keeps the cells at or below `at` on `axis`
  /// ("col" keeps columns <= at, "row" keeps rows <= at) and the
  /// remainder becomes new region `new_id`. Both halves must be
  /// non-empty. Throws presp::InvalidArgument otherwise.
  void split(int id, int new_id, char axis, int at);

  /// Live merge: absorbs `other` into `id`. The two regions must be
  /// adjacent and form an exact rectangle. Throws otherwise.
  void merge(int id, int other);

  /// The region currently held by `id`, if any.
  std::optional<fabric::Pblock> region(int id) const;
  std::size_t size() const;

  /// First-fit allocation: the topmost-then-leftmost legal free rectangle
  /// of exactly `width` x `height` cells, claimed for `id`. Returns
  /// nullopt (and claims nothing) when no such rectangle exists.
  std::optional<fabric::Pblock> allocate(int id, int width, int height);

  /// Compaction proposal for region `id`: a free rectangle with the
  /// identical column-type footprint that is strictly closer to the
  /// packing origin (smaller col_lo, or same col_lo and smaller row_lo).
  /// The map is not modified. Returns nullopt when `id` is already as
  /// far left/up as its footprint allows.
  std::optional<fabric::Pblock> relocation_target(int id) const;

  /// Commits a relocation previously proposed by relocation_target():
  /// atomically re-claims `id` at `to`. Throws if `to` is not free
  /// (ignoring `id`'s own cells) or footprint-incompatible.
  void relocate(int id, const fabric::Pblock& to);

  FragmentationStats fragmentation() const;

  /// Publishes fragmentation gauges `<prefix>.frag_ratio`,
  /// `<prefix>.free_cells`, `<prefix>.largest_free_rect` into the global
  /// MetricsRegistry (and thus the ops `/metrics` endpoint).
  void publish_metrics(const std::string& prefix) const;

 private:
  bool legal_rect_locked(const fabric::Pblock& pblock) const;
  bool free_rect_locked(const fabric::Pblock& pblock, int ignore_id) const;
  bool compatible_locked(const fabric::Pblock& from,
                         const fabric::Pblock& to) const;
  FragmentationStats fragmentation_locked() const;

  const fabric::Device* device_;
  mutable std::mutex mutex_;
  std::map<int, fabric::Pblock> regions_;
};

}  // namespace presp::floorplan
