#include "floorplan/floorplanner.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace presp::floorplan {

namespace {

fabric::ResourceVec inflate(const fabric::ResourceVec& demand,
                            double margin) {
  auto scale = [margin](std::int64_t v) {
    return static_cast<std::int64_t>(std::ceil(static_cast<double>(v) *
                                               margin));
  };
  return {scale(demand.luts), scale(demand.ffs), scale(demand.bram36),
          scale(demand.dsp)};
}

}  // namespace

double lut_equivalent(const fabric::ResourceVec& r) {
  // FF capacity tracks LUT capacity 2:1 on the modeled fabrics, so FFs are
  // not counted separately; BRAM/DSP weights approximate their die area
  // relative to a LUT.
  return static_cast<double>(r.luts) + 150.0 * static_cast<double>(r.bram36) +
         50.0 * static_cast<double>(r.dsp);
}

bool Floorplanner::legal(const fabric::Pblock& pblock,
                         const fabric::ResourceVec& demand) const {
  if (!pblock.valid() || pblock.col_lo < 0 ||
      pblock.col_hi >= device_.num_columns() || pblock.row_lo < 0 ||
      pblock.row_hi >= device_.region_rows())
    return false;
  for (int col = pblock.col_lo; col <= pblock.col_hi; ++col)
    if (!fabric::Device::reconfigurable_column(device_.column_type(col)))
      return false;
  return fabric::pblock_resources(device_, pblock).covers(demand);
}

std::vector<fabric::Pblock> Floorplanner::candidates(
    const fabric::ResourceVec& demand) const {
  std::vector<fabric::Pblock> result;
  const int rows = device_.region_rows();
  const int cols = device_.num_columns();

  for (int height = 1; height <= rows; ++height) {
    for (int row_lo = 0; row_lo + height - 1 < rows; ++row_lo) {
      const int row_hi = row_lo + height - 1;
      for (int col_lo = 0; col_lo < cols; ++col_lo) {
        if (!fabric::Device::reconfigurable_column(
                device_.column_type(col_lo)))
          continue;
        // Extend right to the minimal covering width (first fit).
        fabric::ResourceVec acc;
        bool found = false;
        for (int col_hi = col_lo; col_hi < cols; ++col_hi) {
          if (!fabric::Device::reconfigurable_column(
                  device_.column_type(col_hi)))
            break;  // cannot cross IO / clocking columns
          acc += device_.cell_resources(col_hi) * height;
          if (acc.covers(demand)) {
            result.push_back(fabric::Pblock{col_lo, col_hi, row_lo, row_hi});
            found = true;
            break;
          }
        }
        if (!found) continue;
      }
    }
  }
  std::sort(result.begin(), result.end(),
            [this, &demand](const fabric::Pblock& a, const fabric::Pblock& b) {
              const double wa =
                  lut_equivalent(fabric::pblock_resources(device_, a) - demand);
              const double wb =
                  lut_equivalent(fabric::pblock_resources(device_, b) - demand);
              if (wa != wb) return wa < wb;
              if (a.row_lo != b.row_lo) return a.row_lo < b.row_lo;
              return a.col_lo < b.col_lo;
            });
  return result;
}

Floorplan Floorplanner::plan(const std::vector<PartitionRequest>& requests,
                             const fabric::ResourceVec& static_demand,
                             const FloorplanOptions& options) const {
  PRESP_REQUIRE(options.utilization_margin >= 1.0,
                "utilization margin must be >= 1");

  // Inflated demands, processed largest-first (classic floorplanning
  // order), but results reported in request order.
  std::vector<fabric::ResourceVec> demands;
  demands.reserve(requests.size());
  for (const PartitionRequest& req : requests) {
    PRESP_REQUIRE(req.demand.non_negative(), "negative partition demand");
    demands.push_back(inflate(req.demand, options.utilization_margin));
  }
  std::vector<std::size_t> order(requests.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return lut_equivalent(demands[a]) > lut_equivalent(demands[b]);
  });

  std::vector<fabric::Pblock> placed(requests.size());
  std::vector<bool> done(requests.size(), false);

  auto overlaps_any = [&](const fabric::Pblock& pb, std::size_t self) {
    for (std::size_t j = 0; j < placed.size(); ++j)
      if (j != self && done[j] && pb.overlaps(placed[j])) return true;
    return false;
  };

  for (const std::size_t i : order) {
    const auto cands = candidates(demands[i]);
    bool found = false;
    for (const fabric::Pblock& cand : cands) {
      if (overlaps_any(cand, i)) continue;
      placed[i] = cand;
      done[i] = true;
      found = true;
      break;
    }
    if (!found)
      throw InfeasibleDesign("no legal pblock for partition '" +
                             requests[i].name + "' (demand " +
                             demands[i].to_string() + ")");
  }

  auto total_waste = [&] {
    double w = 0.0;
    for (std::size_t i = 0; i < placed.size(); ++i)
      w += lut_equivalent(fabric::pblock_resources(device_, placed[i]) -
                          demands[i]);
    return w;
  };

  // Stochastic refinement: try relocating one pblock at a time to a less
  // wasteful legal rectangle, accepting strict improvements (the greedy
  // order can strand early pblocks in oversized rectangles). Candidate
  // lists are demand-dependent only, so they are enumerated once per
  // partition and reused across iterations.
  if (options.refine && !requests.empty()) {
    presp::Rng rng(options.seed);
    std::vector<std::vector<fabric::Pblock>> cached(requests.size());
    double best = total_waste();
    for (int iter = 0; iter < options.refine_iterations; ++iter) {
      const std::size_t i =
          static_cast<std::size_t>(rng.next_below(placed.size()));
      if (cached[i].empty()) cached[i] = candidates(demands[i]);
      const auto& cands = cached[i];
      if (cands.empty()) continue;
      // Probe a random prefix position: earlier candidates waste less.
      const std::size_t pick = static_cast<std::size_t>(
          rng.next_below(std::min<std::size_t>(cands.size(), 16)));
      const fabric::Pblock old = placed[i];
      if (overlaps_any(cands[pick], i)) continue;
      placed[i] = cands[pick];
      const double now = total_waste();
      if (now < best) {
        best = now;
      } else {
        placed[i] = old;
      }
    }
  }

  Floorplan plan;
  plan.pblocks = placed;
  plan.static_capacity = device_.total();
  for (std::size_t i = 0; i < placed.size(); ++i)
    plan.static_capacity -= fabric::pblock_resources(device_, placed[i]);
  plan.waste = total_waste();

  if (!plan.static_capacity.covers(static_demand))
    throw InfeasibleDesign(
        "static part no longer fits after floorplanning: need " +
        static_demand.to_string() + ", have " +
        plan.static_capacity.to_string());
  return plan;
}

}  // namespace presp::floorplan
