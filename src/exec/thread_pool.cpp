#include "exec/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "exec/topology.hpp"
#include "trace/trace.hpp"

namespace presp::exec {

namespace {
/// Index of the pool worker the current thread is, or -1 for external
/// threads. One pool is expected per scope (flow run, pipeline, bench);
/// nested pools would each see their own workers, so a plain thread_local
/// index keyed by pool pointer keeps stealing correct even then.
thread_local const ThreadPool* t_pool = nullptr;
thread_local int t_worker = -1;
}  // namespace

ThreadPool::ThreadPool(const Options& options) : options_(options) {
  if (options_.racecheck && racecheck::hooks_compiled()) {
    racecheck::Session::Options ropts;
    ropts.fuzz = options_.racecheck_seed != 0;
    ropts.seed = options_.racecheck_seed;
    racecheck_ = std::make_unique<racecheck::Session>(ropts);
    // Another session already installed (e.g. the racecheck CLI owns the
    // run): defer to it instead of fighting over the hook slot.
    if (!racecheck_->install()) racecheck_.reset();
  }
  const int n = std::max(1, options.threads);
  options_.threads = n;
  const Topology topo = Topology::detect();
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
    workers_.back()->steal_order = steal_order(topo, i, n);
  }
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    threads_.emplace_back([this, i, topo] {
      if (options_.pin_workers)
        pin_worker(topo, i, static_cast<int>(workers_.size()));
      worker_loop(i);
    });
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  // All tasks have completed (wait_idle), so no queued Task* remain.
  // Workers are joined, so uninstalling the pool-owned session is safe.
  if (racecheck_ != nullptr) racecheck_->uninstall();
}

void ThreadPool::submit(std::function<void()> fn) {
  const std::uint64_t depth =
      unfinished_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t peak = max_queue_depth_.load(std::memory_order_relaxed);
  while (depth > peak && !max_queue_depth_.compare_exchange_weak(
                             peak, depth, std::memory_order_relaxed)) {
  }
  if (trace::enabled(trace::Category::kExec)) {
    trace::counter(trace::Category::kExec, "exec.queue_depth",
                   static_cast<double>(depth));
  }
  Task* task = new Task(std::move(fn));
  // Spawn edge: the task inherits the submitter's clock snapshot.
  annot::OnTaskCreate(task);
  const int w = (t_pool == this) ? t_worker : -1;
  if (w >= 0) {
    Worker& worker = *workers_[static_cast<std::size_t>(w)];
    if (options_.mutex_deques) {
      std::lock_guard<std::mutex> lock(worker.mutex);
      worker.mutex_deque.push_back(task);
    } else {
      worker.deque.push(task);
    }
  } else {
    std::lock_guard<std::mutex> lock(injection_mutex_);
    injection_.push_back(task);
  }
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    ++epoch_;
  }
  wake_cv_.notify_one();
}

ThreadPool::Task* ThreadPool::pop_own(int worker) {
  Worker& own = *workers_[static_cast<std::size_t>(worker)];
  if (options_.mutex_deques) {
    std::lock_guard<std::mutex> lock(own.mutex);
    if (own.mutex_deque.empty()) return nullptr;
    Task* task = own.mutex_deque.back();
    own.mutex_deque.pop_back();
    return task;
  }
  return own.deque.pop();
}

ThreadPool::Task* ThreadPool::steal_from(int victim) {
  Worker& slot = *workers_[static_cast<std::size_t>(victim)];
  if (options_.mutex_deques) {
    std::lock_guard<std::mutex> lock(slot.mutex);
    if (slot.mutex_deque.empty()) return nullptr;
    Task* task = slot.mutex_deque.front();
    slot.mutex_deque.pop_front();
    return task;
  }
  return slot.deque.steal();
}

void ThreadPool::count_steal_failure(int worker) {
  if (worker >= 0)
    workers_[static_cast<std::size_t>(worker)]->steal_failures.fetch_add(
        1, std::memory_order_relaxed);
  else
    external_steal_failures_.fetch_add(1, std::memory_order_relaxed);
}

ThreadPool::Task* ThreadPool::take(int worker) {
  // 1. Own deque, newest first (cache-warm subtasks).
  if (worker >= 0) {
    if (Task* task = pop_own(worker)) return task;
  }
  // 2. Injection queue, oldest first.
  {
    std::lock_guard<std::mutex> lock(injection_mutex_);
    if (!injection_.empty()) {
      Task* task = injection_.front();
      injection_.pop_front();
      return task;
    }
  }
  // 3. Steal from siblings, oldest first (largest remaining work),
  // same-NUMA-node victims first. No tracing in here: this is the hot
  // spin path and must not take locks or touch the trace buffers.
  const int n = static_cast<int>(workers_.size());
  if (worker >= 0) {
    Worker& own = *workers_[static_cast<std::size_t>(worker)];
    for (const int victim : own.steal_order) {
      if (Task* task = steal_from(victim)) {
        own.stolen.fetch_add(1, std::memory_order_relaxed);
        // Successful steals only: failed probes stay annotation-free so
        // the CAS spin path never crosses into the detector.
        annot::OnSteal();
        return task;
      }
      count_steal_failure(worker);
    }
  } else {
    for (int victim = 0; victim < n; ++victim) {
      if (Task* task = steal_from(victim)) {
        external_stolen_.fetch_add(1, std::memory_order_relaxed);
        annot::OnSteal();
        return task;
      }
      count_steal_failure(worker);
    }
  }
  return nullptr;
}

void ThreadPool::execute(Task* task, int worker) {
  // The task runs as its own logical thread: its clock starts from the
  // spawn snapshot (not from whatever this worker ran before), so
  // detection never depends on which worker picked the task up.
  annot::OnTaskBegin(task);
  (*task)();
  // Completion edge half: wait_idle()/run loops consume on the pool
  // object, ordering every finished task before the waiter's continuation.
  annot::AtomicPublish(this, "exec.pool");
  annot::OnTaskEnd(task);
  delete task;
  if (worker >= 0)
    workers_[static_cast<std::size_t>(worker)]->executed.fetch_add(
        1, std::memory_order_relaxed);
  else
    external_executed_.fetch_add(1, std::memory_order_relaxed);
  if (unfinished_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    idle_cv_.notify_all();
  }
}

bool ThreadPool::run_one() {
  const int worker = (t_pool == this) ? t_worker : -1;
  Task* task = take(worker);
  if (task == nullptr) return false;
  execute(task, worker);
  return true;
}

void ThreadPool::publish_trace_counters() {
  if (!trace::enabled(trace::Category::kExec)) return;
  const Stats s = stats();
  trace::counter(trace::Category::kExec, "exec.steals",
                 static_cast<double>(s.stolen));
  trace::counter(trace::Category::kExec, "exec.steal_failures",
                 static_cast<double>(s.steal_failures));
  trace::counter(trace::Category::kExec, "exec.parks",
                 static_cast<double>(s.parks));
}

void ThreadPool::worker_loop(int index) {
  t_pool = this;
  t_worker = index;
  trace::set_thread_name("worker-" + std::to_string(index));
  Worker& self = *workers_[static_cast<std::size_t>(index)];
  while (true) {
    if (Task* task = take(index)) {
      execute(task, index);
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    if (stop_) return;
    const std::uint64_t seen = epoch_;
    lock.unlock();
    // Late re-check: a submit may have landed between the failed take and
    // reading the epoch.
    if (Task* task = take(index)) {
      execute(task, index);
      continue;
    }
    // About to park: this is the slow path, so trace emission (which may
    // allocate a buffer chunk) is safe here — never in take().
    publish_trace_counters();
    self.parks.fetch_add(1, std::memory_order_relaxed);
    annot::OnPark();
    lock.lock();
    wake_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
    self.unparks.fetch_add(1, std::memory_order_relaxed);
    annot::OnUnpark();
    if (stop_) return;
  }
}

void ThreadPool::wait_idle() {
  while (true) {
    if (run_one()) continue;
    std::unique_lock<std::mutex> lock(wake_mutex_);
    if (unfinished_.load(std::memory_order_acquire) == 0) break;
    const std::uint64_t seen = epoch_;
    // Wake on either full drain (idle_cv_) or new work to help with
    // (epoch change). Periodic re-check covers the cross-cv race cheaply.
    idle_cv_.wait_for(lock, std::chrono::milliseconds(1), [&] {
      return unfinished_.load(std::memory_order_acquire) == 0 ||
             epoch_ != seen;
    });
  }
  // Completion edge other half: join every finished task's publish into
  // the waiter's clock.
  annot::AtomicConsume(this, "exec.pool");
  publish_trace_counters();
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.executed = external_executed_.load(std::memory_order_relaxed);
  s.stolen = external_stolen_.load(std::memory_order_relaxed);
  s.steal_failures =
      external_steal_failures_.load(std::memory_order_relaxed);
  for (const auto& worker : workers_) {
    s.executed += worker->executed.load(std::memory_order_relaxed);
    s.stolen += worker->stolen.load(std::memory_order_relaxed);
    s.steal_failures +=
        worker->steal_failures.load(std::memory_order_relaxed);
    s.parks += worker->parks.load(std::memory_order_relaxed);
    s.unparks += worker->unparks.load(std::memory_order_relaxed);
  }
  s.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  return s;
}

int ThreadPool::current_worker() const {
  return t_pool == this ? t_worker : -1;
}

std::vector<lint::Diagnostic> ThreadPool::racecheck_report() {
  if (racecheck_ == nullptr) return {};
  return racecheck_->finish();
}

// ---------------------------------------------------------------- TaskGroup

void TaskGroup::run(std::function<void()> fn) {
  if (pool_ == nullptr || pool_->threads() <= 1) {
    fn();  // serial mode: run inline, in submission order
    return;
  }
  remaining_.fetch_add(1, std::memory_order_relaxed);
  pool_->submit([this, fn = std::move(fn)] {
    fn();
    // Group-completion edge half; wait() consumes after the handshake.
    annot::AtomicPublish(this, "exec.group");
    // The decrement must happen under mutex_: wait() re-acquires the mutex
    // after observing zero, which then cannot succeed until this thread has
    // released cv_ and the lock — so the caller cannot destroy the group
    // while we are still touching it.
    std::lock_guard<std::mutex> lock(mutex_);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1)
      cv_.notify_all();
  });
}

void TaskGroup::wait() {
  if (pool_ == nullptr) return;
  while (remaining_.load(std::memory_order_acquire) != 0) {
    if (pool_->run_one()) continue;
    std::unique_lock<std::mutex> lock(mutex_);
    // The queued tasks are all running elsewhere; sleep until the group
    // drains (short timeout re-checks the queues for late arrivals).
    cv_.wait_for(lock, std::chrono::milliseconds(1), [&] {
      return remaining_.load(std::memory_order_acquire) == 0;
    });
  }
  // Handshake with the final completion, whose decrement-to-zero runs under
  // mutex_: once we hold the lock, that task has fully left cv_/mutex_ and
  // destroying the group is safe.
  std::lock_guard<std::mutex> lock(mutex_);
  annot::AtomicConsume(this, "exec.group");
}

}  // namespace presp::exec
