#include "exec/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "trace/trace.hpp"

namespace presp::exec {

namespace {
/// Index of the pool worker the current thread is, or -1 for external
/// threads. One pool is expected per scope (flow run, pipeline, bench);
/// nested pools would each see their own workers, so a plain thread_local
/// index keyed by pool pointer keeps stealing correct even then.
thread_local const ThreadPool* t_pool = nullptr;
thread_local int t_worker = -1;
}  // namespace

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  slots_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) slots_.push_back(std::make_unique<Slot>());
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> fn) {
  const std::uint64_t depth =
      unfinished_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t peak = max_queue_depth_.load(std::memory_order_relaxed);
  while (depth > peak && !max_queue_depth_.compare_exchange_weak(
                             peak, depth, std::memory_order_relaxed)) {
  }
  if (trace::enabled(trace::Category::kExec)) {
    trace::counter(trace::Category::kExec, "exec.queue_depth",
                   static_cast<double>(depth));
  }
  const int w = (t_pool == this) ? t_worker : -1;
  if (w >= 0) {
    Slot& slot = *slots_[static_cast<std::size_t>(w)];
    std::lock_guard<std::mutex> lock(slot.mutex);
    slot.deque.push_back(std::move(fn));
  } else {
    std::lock_guard<std::mutex> lock(injection_mutex_);
    injection_.push_back(std::move(fn));
  }
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    ++epoch_;
  }
  wake_cv_.notify_one();
}

std::function<void()> ThreadPool::take(int worker) {
  // 1. Own deque, newest first (cache-warm subtasks).
  if (worker >= 0) {
    Slot& own = *slots_[static_cast<std::size_t>(worker)];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.deque.empty()) {
      auto fn = std::move(own.deque.back());
      own.deque.pop_back();
      return fn;
    }
  }
  // 2. Injection queue, oldest first.
  {
    std::lock_guard<std::mutex> lock(injection_mutex_);
    if (!injection_.empty()) {
      auto fn = std::move(injection_.front());
      injection_.pop_front();
      return fn;
    }
  }
  // 3. Steal from siblings, oldest first (largest remaining work).
  const std::size_t n = slots_.size();
  const std::size_t start =
      worker >= 0 ? static_cast<std::size_t>(worker + 1) : 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t victim = (start + i) % n;
    if (worker >= 0 && victim == static_cast<std::size_t>(worker)) continue;
    Slot& slot = *slots_[victim];
    std::lock_guard<std::mutex> lock(slot.mutex);
    if (!slot.deque.empty()) {
      auto fn = std::move(slot.deque.front());
      slot.deque.pop_front();
      const std::uint64_t steals =
          stolen_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (trace::enabled(trace::Category::kExec)) {
        trace::counter(trace::Category::kExec, "exec.steals",
                       static_cast<double>(steals));
      }
      return fn;
    }
  }
  return {};
}

void ThreadPool::execute(std::function<void()> fn) {
  fn();
  executed_.fetch_add(1, std::memory_order_relaxed);
  if (unfinished_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    idle_cv_.notify_all();
  }
}

bool ThreadPool::run_one() {
  const int worker = (t_pool == this) ? t_worker : -1;
  auto fn = take(worker);
  if (!fn) return false;
  execute(std::move(fn));
  return true;
}

void ThreadPool::worker_loop(int index) {
  t_pool = this;
  t_worker = index;
  trace::set_thread_name("worker-" + std::to_string(index));
  while (true) {
    if (auto fn = take(index)) {
      execute(std::move(fn));
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    if (stop_) return;
    const std::uint64_t seen = epoch_;
    lock.unlock();
    // Late re-check: a submit may have landed between the failed take and
    // reading the epoch.
    if (auto fn = take(index)) {
      execute(std::move(fn));
      continue;
    }
    lock.lock();
    wake_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
    if (stop_) return;
  }
}

void ThreadPool::wait_idle() {
  while (true) {
    if (run_one()) continue;
    std::unique_lock<std::mutex> lock(wake_mutex_);
    if (unfinished_.load(std::memory_order_acquire) == 0) return;
    const std::uint64_t seen = epoch_;
    // Wake on either full drain (idle_cv_) or new work to help with
    // (epoch change). Periodic re-check covers the cross-cv race cheaply.
    idle_cv_.wait_for(lock, std::chrono::milliseconds(1), [&] {
      return unfinished_.load(std::memory_order_acquire) == 0 ||
             epoch_ != seen;
    });
  }
}

ThreadPool::Stats ThreadPool::stats() const {
  return {executed_.load(std::memory_order_relaxed),
          stolen_.load(std::memory_order_relaxed),
          max_queue_depth_.load(std::memory_order_relaxed)};
}

int ThreadPool::current_worker() const {
  return t_pool == this ? t_worker : -1;
}

// ---------------------------------------------------------------- TaskGroup

void TaskGroup::run(std::function<void()> fn) {
  if (pool_ == nullptr || pool_->threads() <= 1) {
    fn();  // serial mode: run inline, in submission order
    return;
  }
  remaining_.fetch_add(1, std::memory_order_relaxed);
  pool_->submit([this, fn = std::move(fn)] {
    fn();
    // The decrement must happen under mutex_: wait() re-acquires the mutex
    // after observing zero, which then cannot succeed until this thread has
    // released cv_ and the lock — so the caller cannot destroy the group
    // while we are still touching it.
    std::lock_guard<std::mutex> lock(mutex_);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1)
      cv_.notify_all();
  });
}

void TaskGroup::wait() {
  if (pool_ == nullptr) return;
  while (remaining_.load(std::memory_order_acquire) != 0) {
    if (pool_->run_one()) continue;
    std::unique_lock<std::mutex> lock(mutex_);
    // The queued tasks are all running elsewhere; sleep until the group
    // drains (short timeout re-checks the queues for late arrivals).
    cv_.wait_for(lock, std::chrono::milliseconds(1), [&] {
      return remaining_.load(std::memory_order_acquire) == 0;
    });
  }
  // Handshake with the final completion, whose decrement-to-zero runs under
  // mutex_: once we hold the lock, that task has fully left cv_/mutex_ and
  // destroying the group is safe.
  std::lock_guard<std::mutex> lock(mutex_);
}

}  // namespace presp::exec
