#include "exec/task_graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "trace/trace.hpp"

namespace presp::exec {

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0,
                     std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}
}  // namespace

TaskId TaskGraph::add(std::string name, std::function<void()> fn,
                      std::vector<TaskId> deps, int priority) {
  if (ran_) throw std::logic_error("TaskGraph::add after run()");
  const TaskId id = nodes_.size();
  Node node;
  node.fn = std::move(fn);
  node.report.name = std::move(name);
  node.report.priority = priority;
  for (TaskId dep : deps) {
    if (dep >= id) throw std::out_of_range("TaskGraph: dependency on unknown task");
    nodes_[dep].dependents.push_back(id);
    ++node.remaining_deps;
  }
  node.deps = std::move(deps);
  nodes_.push_back(std::move(node));
  return id;
}

void TaskGraph::cancel() {
  std::lock_guard<std::mutex> lock(mutex_);
  cancelled_ = true;
}

bool TaskGraph::cancelled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cancelled_;
}

const TaskGraph::Report& TaskGraph::report(TaskId id) const {
  return nodes_.at(id).report;
}

double TaskGraph::busy_seconds() const {
  double total = 0.0;
  for (const Node& node : nodes_) total += node.report.seconds;
  return total;
}

void TaskGraph::release(std::vector<TaskId> ready, ThreadPool* pool,
                        std::chrono::steady_clock::time_point t0) {
  // Highest priority first; insertion order breaks ties so the serial
  // reference schedule is fully specified.
  std::stable_sort(ready.begin(), ready.end(), [this](TaskId a, TaskId b) {
    if (nodes_[a].report.priority != nodes_[b].report.priority)
      return nodes_[a].report.priority > nodes_[b].report.priority;
    return a < b;
  });
  for (TaskId id : ready) {
    if (pool == nullptr) {
      execute_node(id, pool, t0);
    } else {
      pool->submit([this, id, pool, t0] { execute_node(id, pool, t0); });
    }
  }
}

void TaskGraph::execute_node(TaskId id, ThreadPool* pool,
                             std::chrono::steady_clock::time_point t0) {
  Node& node = nodes_[id];
  bool skip = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (cancelled_) {
      node.report.status = TaskStatus::kCancelled;
      skip = true;
    }
  }
  if (!skip) {
    const trace::TraceScope span(trace::Category::kExec,
                                 "task:" + node.report.name);
    // Dependency edges become happens-before edges: join every
    // predecessor's completion publish before the body runs.
    for (TaskId dep : node.deps)
      annot::AtomicConsume(&nodes_[dep], "exec.graph-node");
    const auto start = std::chrono::steady_clock::now();
    node.report.start_seconds = seconds_since(t0, start);
    try {
      node.fn();
      node.report.status = TaskStatus::kDone;
    } catch (...) {
      node.report.status = TaskStatus::kFailed;
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
      cancelled_ = true;
    }
    node.report.seconds =
        seconds_since(start, std::chrono::steady_clock::now());
    // Publish even after an exception: the body's partial effects are
    // still ordered before any dependent that would have consumed them.
    annot::AtomicPublish(&node, "exec.graph-node");
  }
  node.fn = nullptr;  // release captures eagerly
  finish_node(id, pool, t0);
}

void TaskGraph::finish_node(TaskId id, ThreadPool* pool,
                            std::chrono::steady_clock::time_point t0) {
  // Graph-completion edge half: run() consumes after quiescence so every
  // node's effects are ordered before run()'s return.
  annot::AtomicPublish(this, "exec.graph");
  std::vector<TaskId> ready;
  for (TaskId dep : nodes_[id].dependents) {
    // remaining_deps is only decremented by the finishing of a
    // predecessor; each predecessor finishes exactly once, and the last
    // one to do so (under mutex_) releases the dependent.
    std::lock_guard<std::mutex> lock(mutex_);
    if (--nodes_[dep].remaining_deps == 0) {
      ready.push_back(dep);
      annot::OnGraphEdge();  // seeded preemption point per released edge
    }
  }
  if (!ready.empty()) release(std::move(ready), pool, t0);
  std::lock_guard<std::mutex> lock(mutex_);
  if (--unfinished_ == 0) done_cv_.notify_all();
}

void TaskGraph::run(ThreadPool* pool) {
  if (ran_) throw std::logic_error("TaskGraph::run called twice");
  ran_ = true;
  const auto t0 = std::chrono::steady_clock::now();
  unfinished_ = nodes_.size();
  std::vector<TaskId> roots;
  for (TaskId id = 0; id < nodes_.size(); ++id)
    if (nodes_[id].remaining_deps == 0) roots.push_back(id);
  if (!nodes_.empty()) {
    if (roots.empty())
      throw std::logic_error("TaskGraph: dependency cycle (no roots)");
    release(std::move(roots), pool, t0);
    if (pool == nullptr) {
      // Serial mode executed everything recursively during release().
      std::lock_guard<std::mutex> lock(mutex_);
      if (unfinished_ != 0)
        throw std::logic_error("TaskGraph: unreachable tasks (cycle)");
    } else {
      while (true) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          if (unfinished_ == 0) break;
        }
        if (pool->run_one()) continue;
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait_for(lock, std::chrono::milliseconds(1),
                          [&] { return unfinished_ == 0; });
        if (unfinished_ == 0) break;
      }
    }
  }
  annot::AtomicConsume(this, "exec.graph");
  makespan_seconds_ = seconds_since(t0, std::chrono::steady_clock::now());
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    error = first_error_;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace presp::exec
