// Host CPU topology for the execution engine: which logical CPUs exist,
// which NUMA node each belongs to, and the derived per-worker steal
// order (same-node victims first, then remote nodes, each group walked
// in ring order starting after the stealing worker).
//
// Detection reads /sys/devices/system/node/node*/cpulist on Linux and
// degrades to a single node of hardware_concurrency() CPUs anywhere the
// sysfs layout is absent (containers, macOS, BSDs). Everything here is
// pure data — the only side effect lives in pin_worker(), which applies
// a best-effort CPU affinity mask and is a no-op off Linux or when the
// host has fewer CPUs than workers (pinning an oversubscribed pool just
// serializes it).
#pragma once

#include <string>
#include <vector>

namespace presp::exec {

struct Topology {
  /// Logical CPU count (>= 1).
  int cpus = 1;
  /// node_of_cpu[cpu] = NUMA node index (0-based, dense).
  std::vector<int> node_of_cpu;
  int nodes = 1;

  /// Reads the live host topology (cached detection is the caller's
  /// concern; detection is cheap but not free).
  static Topology detect();

  /// Parses a sysfs-style cpulist ("0-3,8,10-11") into CPU indices.
  /// Exposed for tests; malformed chunks are skipped.
  static std::vector<int> parse_cpulist(const std::string& text);

  /// Node a worker lands on when workers are assigned to CPUs
  /// round-robin (worker w -> cpu w % cpus).
  int node_of_worker(int worker) const;
};

/// Victim visitation order for `worker` in a `num_workers`-wide pool:
/// same-node workers first, then each remote node's workers, both in
/// ring order starting at worker+1. Never contains `worker` itself.
std::vector<int> steal_order(const Topology& topo, int worker,
                             int num_workers);

/// Best-effort: pins the calling thread (pool worker `worker`) to its
/// round-robin CPU. Returns true when an affinity mask was applied.
bool pin_worker(const Topology& topo, int worker, int num_workers);

}  // namespace presp::exec
