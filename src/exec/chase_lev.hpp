// Chase-Lev lock-free work-stealing deque (Chase & Lev, SPAA'05), with
// the C11-portable memory orderings of Lê et al., "Correct and Efficient
// Work-Stealing for Weak Memory Models" (PPoPP'13).
//
// Single owner, many thieves:
//   - push()/pop() may only be called by the owning worker thread and
//     touch the *bottom* end of the deque (LIFO: cache-warm subtasks).
//   - steal() may be called by any thread and takes from the *top* end
//     (FIFO: the oldest, usually largest remaining work).
//
// The deque stores raw task pointers; ownership of a popped/stolen
// pointer transfers to the caller. The ring buffer is growable: when the
// owner pushes into a full ring it allocates a ring of twice the
// capacity, copies the live window, and publishes it with a release
// store. Thieves racing on the old ring are safe because retired rings
// are kept alive until the deque is destroyed (the owner is the only
// thread that ever frees them, and only from the destructor).
//
// Why the owner-pop vs steal race is safe (the §14 argument in
// DESIGN.md): the owner reserves the bottom slot *before* reading top
// (b-1 store, then a seq_cst fence, then the top load); a thief reads
// top, fences, then reads bottom. Both orderings go through the same
// seq_cst total order, so for the last remaining element either the
// thief observes the decremented bottom (and backs off) or the owner
// observes the incremented top — and when both see one element left,
// the single seq_cst CAS on top decides the winner. An element is
// therefore returned exactly once.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace presp::exec {

template <typename T>
class ChaseLevDeque {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit ChaseLevDeque(std::size_t capacity = 64) {
    std::size_t cap = 2;
    while (cap < capacity) cap *= 2;
    rings_.push_back(std::make_unique<Ring>(cap));
    ring_.store(rings_.back().get(), std::memory_order_relaxed);
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Owner only. Never fails; grows the ring when full.
  void push(T* task) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Ring* ring = ring_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(ring->mask)) ring = grow(ring, t, b);
    ring->put(b, task);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner only. Returns nullptr when the deque is empty (or the last
  /// element was lost to a concurrent thief).
  T* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* ring = ring_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {  // already empty: undo the reservation
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T* task = ring->get(b);
    if (t == b) {
      // Last element: race thieves with a single CAS on top.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed))
        task = nullptr;  // a thief won
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return task;
  }

  /// Any thread. Returns nullptr when empty or when the CAS lost a race
  /// (callers treat both as "nothing stolen this attempt").
  T* steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return nullptr;
    Ring* ring = ring_.load(std::memory_order_acquire);
    T* task = ring->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
      return nullptr;
    return task;
  }

  /// Approximate (racy) size; good enough for "is there anything worth
  /// stealing" probes and stats.
  std::int64_t size_approx() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? b - t : 0;
  }

  /// Owner-side view of the current ring capacity (tests use this to
  /// drive growth across the boundary).
  std::size_t capacity() const {
    return ring_.load(std::memory_order_relaxed)->mask + 1;
  }

 private:
  struct Ring {
    explicit Ring(std::size_t cap)
        : mask(cap - 1), cells(new std::atomic<T*>[cap]) {}
    std::size_t mask;
    std::unique_ptr<std::atomic<T*>[]> cells;

    T* get(std::int64_t i) const {
      return cells[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, T* task) {
      cells[static_cast<std::size_t>(i) & mask].store(
          task, std::memory_order_relaxed);
    }
  };

  Ring* grow(Ring* old, std::int64_t top, std::int64_t bottom) {
    auto bigger = std::make_unique<Ring>(2 * (old->mask + 1));
    for (std::int64_t i = top; i < bottom; ++i) bigger->put(i, old->get(i));
    Ring* published = bigger.get();
    rings_.push_back(std::move(bigger));
    // Thieves may still be reading `old`; it stays alive in rings_ until
    // the destructor runs (owner-only mutation, so no lock needed).
    ring_.store(published, std::memory_order_release);
    return published;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Ring*> ring_{nullptr};
  /// All rings ever allocated, oldest first; owner-only access.
  std::vector<std::unique_ptr<Ring>> rings_;
};

}  // namespace presp::exec
