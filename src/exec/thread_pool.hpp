// Work-stealing thread pool: the task-level parallel execution substrate
// shared by the DPR flow (parallel OoC synthesis + strategy-shaped P&R
// fan-out), the WAMI stage pipeline and the row-tiled kernels.
//
// Topology: one deque per worker plus an external injection queue. A
// worker pops from the back of its own deque (LIFO: cache-warm subtasks
// first) and, when empty, steals from the front of a sibling's deque
// (FIFO: oldest, usually largest work) or the injection queue. Threads
// submitting from outside the pool land in the injection queue.
//
// The per-worker deques are Chase-Lev lock-free deques (chase_lev.hpp):
// the owner's push/pop touch no lock and no contended cache line on the
// fast path; thieves synchronize through one CAS on the victim's `top`.
// Victims are visited in topology order — same-NUMA-node workers first —
// and workers are best-effort pinned to CPUs when the host has enough of
// them (exec/topology.hpp). The pre-PR mutex-guarded deques survive as a
// baseline for A/B measurement: per pool via Options::mutex_deques, or
// build-wide with -DPRESP_EXEC_MUTEX_DEQUE=ON (bench_micro --contention
// compares both in one binary).
//
// Determinism contract: the pool never promises an execution *order*, so
// tasks must be data-independent (or ordered via TaskGraph dependencies)
// and reductions must combine partial results in a task-index order chosen
// by the caller. parallel_for() supports this by making chunk boundaries a
// pure function of (range, grain) — never of the worker count — so a
// chunk-indexed partial-sum reduction is bit-identical at 1, 2 or N
// threads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/chase_lev.hpp"
#include "racecheck/annot.hpp"
#include "racecheck/session.hpp"
#include "trace/trace.hpp"

namespace presp::exec {

class ThreadPool {
 public:
  struct Options {
    int threads = 1;
    /// Install a racecheck::Session for this pool's lifetime: every
    /// annotated access while the pool is alive feeds the race detector,
    /// and racecheck_report() returns the findings. No-op when another
    /// session is already installed or the build compiled hooks out.
    bool racecheck = false;
    /// Non-zero: also run the seeded schedule fuzzer with this seed
    /// (only meaningful with racecheck = true).
    std::uint64_t racecheck_seed = 0;
    /// Fall back to the mutex-guarded per-worker deques (the pre-Chase-Lev
    /// implementation). Kept for A/B contention measurement; defaults to
    /// the build-time PRESP_EXEC_MUTEX_DEQUE flag.
    bool mutex_deques =
#if defined(PRESP_EXEC_MUTEX_DEQUE)
        true;
#else
        false;
#endif
    /// Pin workers round-robin to CPUs (no-op when the host has fewer
    /// CPUs than workers, or off Linux).
    bool pin_workers = true;
  };

  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads) : ThreadPool(make_options(threads)) {}
  explicit ThreadPool(const Options& options);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return static_cast<int>(threads_.size()); }
  /// True when this pool runs the mutex-deque baseline implementation.
  bool mutex_deques() const { return options_.mutex_deques; }

  /// Enqueues one task. Callable from any thread, including from inside a
  /// running task (the subtask lands in the submitting worker's own deque).
  void submit(std::function<void()> fn);

  /// Runs one queued task on the calling thread if any is available
  /// (own deque first, then steals). Returns false when nothing was found.
  /// This is the help-while-waiting primitive TaskGroup/TaskGraph use so a
  /// blocked submitter contributes cycles instead of sleeping.
  bool run_one();

  /// Blocks until every submitted task has finished, helping in the
  /// meantime. Must not be called from inside a pool task (the running
  /// task itself would never count as finished); use TaskGroup for nested
  /// fork-join.
  void wait_idle();

  struct Stats {
    std::uint64_t executed = 0;  // tasks run to completion
    std::uint64_t stolen = 0;    // tasks taken from another worker's deque
    /// Steal probes that found nothing (empty victim or lost CAS race).
    std::uint64_t steal_failures = 0;
    /// Times a worker went to sleep on the wake cv / was woken from it.
    std::uint64_t parks = 0;
    std::uint64_t unparks = 0;
    std::uint64_t max_queue_depth = 0;  // peak in-flight (queued+running)
  };
  Stats stats() const;

  /// Index of the calling thread within this pool's workers, or -1 when
  /// called from outside (used to label per-task trace spans).
  int current_worker() const;

  /// Finalizes the pool-owned racecheck session (Options::racecheck) and
  /// returns its diagnostics. Call after wait_idle(); empty when the
  /// pool owns no session. Idempotent.
  std::vector<lint::Diagnostic> racecheck_report();

 private:
  using Task = std::function<void()>;

  static Options make_options(int threads) {
    Options options;
    options.threads = threads;
    return options;
  }

  /// One per worker, cache-line separated so a worker's own-counter
  /// updates never bounce a line a sibling is spinning on.
  struct alignas(64) Worker {
    ChaseLevDeque<Task> deque;
    // Mutex-deque baseline (Options::mutex_deques).
    std::mutex mutex;
    std::deque<Task*> mutex_deque;
    /// Victim visitation order, same-NUMA-node first (topology.hpp).
    std::vector<int> steal_order;
    // Per-worker counters: written by the owning thread only (relaxed),
    // aggregated by stats().
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> stolen{0};
    std::atomic<std::uint64_t> steal_failures{0};
    std::atomic<std::uint64_t> parks{0};
    std::atomic<std::uint64_t> unparks{0};
  };

  void worker_loop(int index);
  /// Takes a task: own deque back (worker >= 0), else injection front,
  /// else steal from sibling fronts. Returns nullptr if none. Failed
  /// steal probes are charged to `worker`'s counters (or the pool-level
  /// external counters for worker < 0); no tracing happens in here — the
  /// steal fast path must stay call-free (counters are published from the
  /// park slow path; see publish_trace_counters).
  Task* take(int worker);
  Task* pop_own(int worker);
  Task* steal_from(int victim);
  void execute(Task* task, int worker);
  /// Slow-path-only trace emission: aggregates the per-worker counters
  /// into the exec.steals / exec.steal_failures / exec.parks counters.
  void publish_trace_counters();
  void count_steal_failure(int worker);

  Options options_;
  /// Pool-owned race-detection session (Options::racecheck). Installed
  /// before the workers spawn and uninstalled after they join, honouring
  /// the session lifetime contract (racecheck/session.hpp).
  std::unique_ptr<racecheck::Session> racecheck_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex injection_mutex_;
  std::deque<Task*> injection_;

  // Sleep/wake protocol: epoch_ increments under wake_mutex_ on every
  // submit, so a worker that saw empty queues re-checks instead of
  // sleeping through a wakeup.
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable idle_cv_;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;

  std::atomic<std::uint64_t> unfinished_{0};
  std::atomic<std::uint64_t> max_queue_depth_{0};
  // External-thread (worker < 0) counters; workers use their own slots.
  std::atomic<std::uint64_t> external_executed_{0};
  std::atomic<std::uint64_t> external_stolen_{0};
  std::atomic<std::uint64_t> external_steal_failures_{0};
};

/// Fork-join group for nested parallelism: tasks spawned through a group
/// can be waited on from inside another pool task (unlike
/// ThreadPool::wait_idle). wait() helps execute queued tasks while the
/// group drains.
class TaskGroup {
 public:
  /// `pool` may be null: run() then executes inline (serial mode).
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;
  ~TaskGroup() { wait(); }

  void run(std::function<void()> fn);
  void wait();

 private:
  ThreadPool* pool_;
  std::atomic<std::uint64_t> remaining_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
};

/// Deterministically-chunked parallel loop: splits [begin, end) into
/// chunks of exactly `grain` iterations (last chunk may be short) and runs
/// `body(chunk_begin, chunk_end)` for each. Chunk boundaries depend only
/// on (begin, end, grain) — never on the pool's thread count — so
/// chunk-indexed reductions are bit-identical in serial and parallel.
/// With a null pool (or a single chunk) the chunks run inline, in order.
template <typename Body>
void parallel_for(ThreadPool* pool, long long begin, long long end,
                  long long grain, const Body& body) {
  if (begin >= end) return;
  if (grain < 1) grain = 1;
  if (pool == nullptr || pool->threads() <= 1 || end - begin <= grain) {
    for (long long lo = begin; lo < end; lo += grain)
      body(lo, lo + grain < end ? lo + grain : end);
    return;
  }
  TaskGroup group(pool);
  for (long long lo = begin; lo < end; lo += grain) {
    const long long hi = lo + grain < end ? lo + grain : end;
    group.run([&body, lo, hi] {
      const trace::TraceScope span(trace::Category::kExec, "task:tile");
      body(lo, hi);
    });
  }
  group.wait();
}

}  // namespace presp::exec
