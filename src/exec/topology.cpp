#include "exec/topology.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace presp::exec {

std::vector<int> Topology::parse_cpulist(const std::string& text) {
  std::vector<int> cpus;
  std::stringstream stream(text);
  std::string chunk;
  while (std::getline(stream, chunk, ',')) {
    const auto dash = chunk.find('-');
    try {
      if (dash == std::string::npos) {
        cpus.push_back(std::stoi(chunk));
      } else {
        const int lo = std::stoi(chunk.substr(0, dash));
        const int hi = std::stoi(chunk.substr(dash + 1));
        for (int c = lo; c <= hi && c - lo < 4096; ++c) cpus.push_back(c);
      }
    } catch (const std::exception&) {
      // Skip malformed chunks; detection falls back to one node below.
    }
  }
  return cpus;
}

Topology Topology::detect() {
  Topology topo;
  topo.cpus = std::max(1u, std::thread::hardware_concurrency());
  topo.node_of_cpu.assign(static_cast<std::size_t>(topo.cpus), 0);
  topo.nodes = 1;
#if defined(__linux__)
  int found_nodes = 0;
  for (int node = 0; node < 64; ++node) {
    std::ifstream list("/sys/devices/system/node/node" +
                       std::to_string(node) + "/cpulist");
    if (!list) break;
    std::string text;
    std::getline(list, text);
    for (const int cpu : parse_cpulist(text))
      if (cpu >= 0 && cpu < topo.cpus)
        topo.node_of_cpu[static_cast<std::size_t>(cpu)] = node;
    ++found_nodes;
  }
  if (found_nodes > 1) topo.nodes = found_nodes;
#endif
  return topo;
}

int Topology::node_of_worker(int worker) const {
  if (worker < 0 || cpus <= 0 || node_of_cpu.empty()) return 0;
  return node_of_cpu[static_cast<std::size_t>(worker % cpus)];
}

std::vector<int> steal_order(const Topology& topo, int worker,
                             int num_workers) {
  std::vector<int> order;
  if (num_workers <= 1) return order;
  order.reserve(static_cast<std::size_t>(num_workers - 1));
  const int home = topo.node_of_worker(worker);
  // Ring walk starting after the worker; same-node victims first keeps
  // stolen task data on the local memory controller.
  std::vector<int> remote;
  for (int i = 1; i < num_workers; ++i) {
    const int victim = (worker + i) % num_workers;
    if (topo.node_of_worker(victim) == home)
      order.push_back(victim);
    else
      remote.push_back(victim);
  }
  order.insert(order.end(), remote.begin(), remote.end());
  return order;
}

bool pin_worker(const Topology& topo, int worker, int num_workers) {
#if defined(__linux__)
  if (worker < 0 || topo.cpus < num_workers || topo.cpus <= 1) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(worker % topo.cpus), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)topo;
  (void)worker;
  (void)num_workers;
  return false;
#endif
}

}  // namespace presp::exec
