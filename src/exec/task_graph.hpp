// Job-DAG scheduler on top of ThreadPool.
//
// A TaskGraph is built once (add() nodes with dependencies and priorities)
// and executed once (run()). Scheduling is dependency-driven: a node
// becomes ready when its last dependency finishes; ready nodes are
// released to the pool highest-priority-first. With a null pool run() is a
// deterministic serial executor — same (priority, insertion-order) policy,
// calling thread only — which is the reference schedule the parallel
// benches compare against.
//
// Failure semantics: the first task exception cancels every not-yet-
// started task, the graph quiesces (running tasks finish), and run()
// rethrows that first exception. cancel() gives cooperative external
// cancellation with the same skip semantics.
//
// Per-task timing (start offset + duration, wall clock) is recorded for
// every executed node, so a flow run can report its *measured* makespan
// and cross-check the analytical runtime model.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"

namespace presp::exec {

using TaskId = std::size_t;

enum class TaskStatus { kPending, kDone, kCancelled, kFailed };

class TaskGraph {
 public:
  TaskGraph() = default;
  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Adds a node. `deps` must name already-added tasks. Higher `priority`
  /// runs earlier among simultaneously-ready nodes (use e.g. descending
  /// job size for LPT scheduling).
  TaskId add(std::string name, std::function<void()> fn,
             std::vector<TaskId> deps = {}, int priority = 0);

  std::size_t size() const { return nodes_.size(); }

  /// Cooperatively cancels the graph: nodes that have not started are
  /// marked kCancelled and never run. Callable from inside a task.
  void cancel();
  bool cancelled() const;

  /// Executes the graph to quiescence. Null pool = serial reference
  /// schedule on the calling thread. Rethrows the first task exception
  /// (after all running tasks finished). May only be called once.
  void run(ThreadPool* pool);

  struct Report {
    std::string name;
    int priority = 0;
    TaskStatus status = TaskStatus::kPending;
    /// Wall-clock offset of the task start relative to run() entry, and
    /// its duration; zero for skipped tasks.
    double start_seconds = 0.0;
    double seconds = 0.0;
  };
  const Report& report(TaskId id) const;

  /// Wall time of the whole run() (0 before run).
  double makespan_seconds() const { return makespan_seconds_; }
  /// Sum of executed task durations: the serial-equivalent work, so
  /// busy/makespan is the measured speedup of the schedule.
  double busy_seconds() const;

 private:
  struct Node {
    std::function<void()> fn;
    std::vector<TaskId> dependents;
    /// Predecessors, kept for racecheck: an executing node consumes each
    /// dependency's publish so graph edges are happens-before edges.
    std::vector<TaskId> deps;
    int remaining_deps = 0;
    Report report;
  };

  void release(std::vector<TaskId> ready, ThreadPool* pool,
               std::chrono::steady_clock::time_point t0);
  void execute_node(TaskId id, ThreadPool* pool,
                    std::chrono::steady_clock::time_point t0);
  void finish_node(TaskId id, ThreadPool* pool,
                   std::chrono::steady_clock::time_point t0);

  std::vector<Node> nodes_;
  bool ran_ = false;

  mutable std::mutex mutex_;
  std::condition_variable done_cv_;
  std::size_t unfinished_ = 0;           // nodes not yet done/skipped
  bool cancelled_ = false;
  std::exception_ptr first_error_;
  double makespan_seconds_ = 0.0;
};

}  // namespace presp::exec
