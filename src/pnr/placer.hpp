// Simulated-annealing placer.
//
// Classic two-phase recipe: a deterministic constructive seed (cells
// strewn across the allowed cells in netlist order, respecting LUT
// capacity), then annealing with single-cell moves and pairwise swaps
// under a cost of weighted HPWL plus soft penalties for LUT-capacity
// overflow and BRAM/DSP column affinity.
#pragma once

#include "pnr/placement.hpp"
#include "util/rng.hpp"

namespace presp::pnr {

struct PlacerOptions {
  /// Moves per cell per temperature step.
  int moves_per_cell = 4;
  int temperature_steps = 40;
  double initial_temperature_factor = 0.05;
  double cooling = 0.85;
  std::uint64_t seed = 1;
};

struct PlaceResult {
  Placement placement;
  double final_cost = 0.0;
  double final_hpwl = 0.0;
  /// LUT overflow summed over grid cells (0 = legal placement).
  double overflow = 0.0;
  long long moves_tried = 0;
  long long moves_accepted = 0;
};

class Placer {
 public:
  Placer(const fabric::Device& device, PlacerOptions options = {})
      : device_(device), options_(options) {}

  /// Places `nl` under the constraints. Throws InfeasibleDesign when the
  /// allowed region lacks LUT capacity for the netlist.
  PlaceResult place(const netlist::Netlist& nl,
                    const PlacementConstraints& constraints) const;

 private:
  const fabric::Device& device_;
  PlacerOptions options_;
};

}  // namespace presp::pnr
