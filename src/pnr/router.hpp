// Global router over the device's (column x region-row) grid graph.
//
// Negotiated-congestion routing in the PathFinder tradition: every net is
// routed driver->sink with A* under a cost that combines base wire cost,
// present congestion and accumulated history; oversubscribed edges get
// progressively more expensive across iterations until usage fits edge
// capacity (or the iteration budget is spent, leaving reported overflow).
//
// The same RoutingState can be pre-loaded with the static part's usage to
// model *in-context* partition runs, where the partition's nets must
// negotiate with locked static routes.
#pragma once

#include <cstdint>
#include <vector>

#include "pnr/placement.hpp"

namespace presp::pnr {

/// Edge-usage bookkeeping for the routing grid. Edges are indexed
/// horizontal-first: h-edge (col -> col+1, row) then v-edge (col, row ->
/// row+1).
class RoutingState {
 public:
  RoutingState(const fabric::Device& device, int h_capacity = 1'500,
               int v_capacity = 2'500);

  int num_cols() const { return cols_; }
  int num_rows() const { return rows_; }

  std::size_t h_edge(int col, int row) const;  // (col,row)->(col+1,row)
  std::size_t v_edge(int col, int row) const;  // (col,row)->(col,row+1)
  std::size_t num_edges() const { return usage_.size(); }

  int usage(std::size_t edge) const { return usage_[edge]; }
  int capacity(std::size_t edge) const { return capacity_[edge]; }
  void add_usage(std::size_t edge, int bits) { usage_[edge] += bits; }

  /// Total bit-hops currently recorded.
  long long total_usage() const;
  /// Sum of usage beyond capacity over all edges.
  long long overflow() const;

 private:
  int cols_;
  int rows_;
  std::vector<int> usage_;
  std::vector<int> capacity_;
};

struct RouterOptions {
  int max_iterations = 3;
  /// Cost multiplier applied to an edge's present over-capacity.
  double congestion_penalty = 2.0;
  /// History increment per overflowed edge per iteration.
  double history_increment = 0.8;
};

struct RouteResult {
  bool success = false;          // no overflow after the final iteration
  long long wirelength = 0;      // bit-hops added by this netlist
  long long overflow = 0;        // remaining over-capacity (bit-hops)
  double max_net_delay_ns = 0.0; // slowest routed net
  double achieved_fmax_mhz = 0.0;
  int iterations = 0;
};

class Router {
 public:
  Router(const fabric::Device& device, RouterOptions options = {})
      : device_(device), options_(options) {}

  /// Routes all nets of `nl` under `placement`, accumulating usage into
  /// `state` (which may carry pre-existing static usage).
  RouteResult route(const netlist::Netlist& nl, const Placement& placement,
                    RoutingState& state) const;

 private:
  const fabric::Device& device_;
  RouterOptions options_;
};

}  // namespace presp::pnr
