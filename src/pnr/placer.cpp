#include "pnr/placer.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace presp::pnr {

double net_hpwl(const netlist::Netlist& nl, const Placement& placement,
                netlist::NetId net_id) {
  const netlist::Net& net = nl.net(net_id);
  const GridLoc& d = placement.at(net.driver);
  int min_c = d.col;
  int max_c = d.col;
  int min_r = d.row;
  int max_r = d.row;
  for (const netlist::CellId sink : net.sinks) {
    const GridLoc& s = placement.at(sink);
    min_c = std::min(min_c, s.col);
    max_c = std::max(max_c, s.col);
    min_r = std::min(min_r, s.row);
    max_r = std::max(max_r, s.row);
  }
  // Rows are clock regions (tall); weight vertical span accordingly so a
  // row step costs as much as ~20 column steps, matching fabric aspect.
  return static_cast<double>(net.width) *
         (static_cast<double>(max_c - min_c) +
          20.0 * static_cast<double>(max_r - min_r));
}

double total_hpwl(const netlist::Netlist& nl, const Placement& placement) {
  double total = 0.0;
  for (netlist::NetId n = 0; n < nl.num_nets(); ++n)
    total += net_hpwl(nl, placement, n);
  return total;
}

namespace {

class PlacerState {
 public:
  PlacerState(const fabric::Device& device, const netlist::Netlist& nl,
              const PlacementConstraints& constraints)
      : device_(device), nl_(nl) {
    // Enumerate allowed grid cells.
    auto allowed = [&](int col, int row) {
      if (!fabric::Device::reconfigurable_column(device.column_type(col)) &&
          device.column_type(col) != fabric::ColumnType::kIo)
        return false;  // clocking spine hosts no user logic
      if (constraints.region && !constraints.region->contains(col, row))
        return false;
      for (const fabric::Pblock& keep : constraints.keepouts)
        if (keep.contains(col, row)) return false;
      return true;
    };
    for (int col = 0; col < device.num_columns(); ++col)
      for (int row = 0; row < device.region_rows(); ++row)
        if (allowed(col, row)) sites_.push_back(GridLoc{col, row});
    PRESP_REQUIRE(!sites_.empty(), "no allowed placement sites");

    lut_capacity_.assign(
        static_cast<std::size_t>(device.num_columns()) *
            static_cast<std::size_t>(device.region_rows()),
        0);
    lut_usage_.assign(lut_capacity_.size(), 0);
    for (const GridLoc& site : sites_) {
      // IO columns host only port anchors; give them token capacity.
      const auto cap =
          device.column_type(site.col) == fabric::ColumnType::kIo
              ? 64
              : device.cell_resources(site.col).luts;
      lut_capacity_[index(site)] = cap;
    }

    placement_.locations.assign(nl.num_cells(), GridLoc{});
    movable_.assign(nl.num_cells(), true);
    for (const auto& [cell, loc] : constraints.fixed) {
      PRESP_ASSERT(cell < nl.num_cells());
      placement_.locations[cell] = loc;
      movable_[cell] = false;
      if (index_in_bounds(loc)) lut_usage_[index(loc)] += cell_luts(cell);
    }

    // Feasibility: total movable LUTs vs capacity of allowed sites.
    std::int64_t demand = 0;
    for (netlist::CellId c = 0; c < nl.num_cells(); ++c)
      if (movable_[c]) demand += cell_luts(c);
    std::int64_t capacity = 0;
    for (const GridLoc& site : sites_) capacity += lut_capacity_[index(site)];
    if (demand > capacity)
      throw InfeasibleDesign(
          "placement region lacks LUT capacity: demand " +
          std::to_string(demand) + " > capacity " + std::to_string(capacity));

    // Nets incident to each cell, for incremental cost updates.
    nets_of_cell_.assign(nl.num_cells(), {});
    for (netlist::NetId n = 0; n < nl.num_nets(); ++n) {
      const netlist::Net& net = nl.net(n);
      nets_of_cell_[net.driver].push_back(n);
      for (const netlist::CellId s : net.sinks) nets_of_cell_[s].push_back(n);
    }
  }

  std::size_t index(const GridLoc& loc) const {
    return static_cast<std::size_t>(loc.col) *
               static_cast<std::size_t>(device_.region_rows()) +
           static_cast<std::size_t>(loc.row);
  }
  bool index_in_bounds(const GridLoc& loc) const {
    return loc.col >= 0 && loc.col < device_.num_columns() && loc.row >= 0 &&
           loc.row < device_.region_rows();
  }

  std::int64_t cell_luts(netlist::CellId c) const {
    const auto& cell = nl_.cell(c);
    // Black boxes and ports occupy no logic; clusters with BRAM/DSP but no
    // LUTs still need a nominal footprint so they spread out.
    if (cell.kind != netlist::CellKind::kLogic) return 0;
    return std::max<std::int64_t>(cell.resources.luts, 8);
  }

  /// Deterministic constructive seed: movable cells in id order across
  /// sites in snake order, moving on when a site fills up.
  void seed() {
    std::size_t site = 0;
    for (netlist::CellId c = 0; c < nl_.num_cells(); ++c) {
      if (!movable_[c]) continue;
      const std::int64_t need = cell_luts(c);
      std::size_t tried = 0;
      while (tried < sites_.size()) {
        const GridLoc& loc = sites_[site];
        if (lut_usage_[index(loc)] + need <=
            lut_capacity_[index(loc)]) {
          placement_.locations[c] = loc;
          lut_usage_[index(loc)] += need;
          break;
        }
        site = (site + 1) % sites_.size();
        ++tried;
      }
      if (tried == sites_.size()) {
        // Everything nominally full (fragmentation): drop on the least
        // loaded site; annealing's overflow penalty will spread it.
        std::size_t best = 0;
        for (std::size_t s = 1; s < sites_.size(); ++s)
          if (lut_usage_[index(sites_[s])] - lut_capacity_[index(sites_[s])] <
              lut_usage_[index(sites_[best])] -
                  lut_capacity_[index(sites_[best])])
            best = s;
        placement_.locations[c] = sites_[best];
        lut_usage_[index(sites_[best])] += need;
      }
    }
  }

  double overflow() const {
    double total = 0.0;
    for (std::size_t i = 0; i < lut_usage_.size(); ++i)
      if (lut_usage_[i] > lut_capacity_[i])
        total += static_cast<double>(lut_usage_[i] - lut_capacity_[i]);
    return total;
  }

  double site_overflow_delta(const GridLoc& loc, std::int64_t delta) const {
    const std::size_t i = index(loc);
    const auto before =
        std::max<std::int64_t>(0, lut_usage_[i] - lut_capacity_[i]);
    const auto after = std::max<std::int64_t>(
        0, lut_usage_[i] + delta - lut_capacity_[i]);
    return static_cast<double>(after - before);
  }

  /// Cost delta of moving cell c to `to` (possibly swapping with cells is
  /// handled by two applications).
  double move_cost_delta(netlist::CellId c, const GridLoc& to,
                         double overflow_weight) {
    const GridLoc from = placement_.locations[c];
    double delta = 0.0;
    for (const netlist::NetId n : nets_of_cell_[c])
      delta -= net_hpwl(nl_, placement_, n);
    placement_.locations[c] = to;
    for (const netlist::NetId n : nets_of_cell_[c])
      delta += net_hpwl(nl_, placement_, n);
    placement_.locations[c] = from;

    const std::int64_t luts = cell_luts(c);
    delta += overflow_weight * (site_overflow_delta(from, -luts) +
                                site_overflow_delta(to, luts));
    return delta;
  }

  void apply_move(netlist::CellId c, const GridLoc& to) {
    const GridLoc from = placement_.locations[c];
    const std::int64_t luts = cell_luts(c);
    lut_usage_[index(from)] -= luts;
    lut_usage_[index(to)] += luts;
    placement_.locations[c] = to;
  }

  const std::vector<GridLoc>& sites() const { return sites_; }
  Placement& placement() { return placement_; }
  bool movable(netlist::CellId c) const { return movable_[c]; }

 private:
  const fabric::Device& device_;
  const netlist::Netlist& nl_;
  std::vector<GridLoc> sites_;
  std::vector<std::int64_t> lut_capacity_;
  std::vector<std::int64_t> lut_usage_;
  Placement placement_;
  std::vector<bool> movable_;
  std::vector<std::vector<netlist::NetId>> nets_of_cell_;
};

}  // namespace

PlaceResult Placer::place(const netlist::Netlist& nl,
                          const PlacementConstraints& constraints) const {
  PlacerState state(device_, nl, constraints);
  state.seed();

  std::vector<netlist::CellId> movable;
  for (netlist::CellId c = 0; c < nl.num_cells(); ++c)
    if (state.movable(c)) movable.push_back(c);

  PlaceResult result;
  if (movable.empty()) {
    result.placement = state.placement();
    result.final_hpwl = total_hpwl(nl, state.placement());
    result.overflow = state.overflow();
    result.final_cost = result.final_hpwl;
    return result;
  }

  presp::Rng rng(options_.seed);
  const double initial_hpwl = std::max(1.0, total_hpwl(nl, state.placement()));
  double temperature =
      options_.initial_temperature_factor * initial_hpwl /
      static_cast<double>(movable.size());
  const double overflow_weight =
      initial_hpwl / static_cast<double>(movable.size());

  for (int step = 0; step < options_.temperature_steps; ++step) {
    const long long moves =
        static_cast<long long>(options_.moves_per_cell) *
        static_cast<long long>(movable.size());
    for (long long m = 0; m < moves; ++m) {
      const netlist::CellId c =
          movable[static_cast<std::size_t>(rng.next_below(movable.size()))];
      const GridLoc to = state.sites()[static_cast<std::size_t>(
          rng.next_below(state.sites().size()))];
      if (to == state.placement().locations[c]) continue;
      const double delta = state.move_cost_delta(c, to, overflow_weight);
      ++result.moves_tried;
      if (delta <= 0.0 ||
          rng.next_double() < std::exp(-delta / std::max(1e-9, temperature))) {
        state.apply_move(c, to);
        ++result.moves_accepted;
      }
    }
    temperature *= options_.cooling;
  }

  result.placement = state.placement();
  result.final_hpwl = total_hpwl(nl, state.placement());
  result.overflow = state.overflow();
  result.final_cost =
      result.final_hpwl + overflow_weight * result.overflow;
  return result;
}

}  // namespace presp::pnr
