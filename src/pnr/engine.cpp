#include "pnr/engine.hpp"

#include "pnr/verify.hpp"
#include "util/error.hpp"

namespace presp::pnr {

PlacementConstraints PnrEngine::port_anchors(
    const netlist::Netlist& nl) const {
  // Port cells anchor to the die edges (I/O columns), spread over rows.
  PlacementConstraints constraints;
  const auto ports = nl.cells_of_kind(netlist::CellKind::kPort);
  int i = 0;
  for (const netlist::CellId port : ports) {
    const int row = (i / 2) % device_.region_rows();
    const int col = (i % 2 == 0) ? 0 : device_.num_columns() - 1;
    constraints.fixed.emplace_back(port, GridLoc{col, row});
    ++i;
  }
  return constraints;
}

PnrRun PnrEngine::run_static(
    const synth::Checkpoint& ckpt,
    const std::map<std::string, fabric::Pblock>& pblocks,
    RoutingState& state) const {
  PlacementConstraints constraints = port_anchors(ckpt.netlist);
  // Keep static logic out of every partition pblock.
  for (const auto& [name, pblock] : pblocks)
    constraints.keepouts.push_back(pblock);
  // Anchor each black box at its pblock center: the placeholder hard-macro
  // of an empty partition ("prepared offline", Section IV) that lets the
  // static part close timing against the partition pins.
  for (const auto id :
       ckpt.netlist.cells_of_kind(netlist::CellKind::kBlackBox)) {
    const auto& cell = ckpt.netlist.cell(id);
    const auto it = pblocks.find(cell.partition);
    if (it == pblocks.end())
      throw InvalidArgument("no pblock provided for partition '" +
                            cell.partition + "'");
    const fabric::Pblock& pb = it->second;
    constraints.fixed.emplace_back(
        id, GridLoc{(pb.col_lo + pb.col_hi) / 2, (pb.row_lo + pb.row_hi) / 2});
  }

  PnrRun run;
  run.name = ckpt.name;
  run.utilization = ckpt.utilization;
  run.place = Placer(device_, options_.placer).place(ckpt.netlist, constraints);
  check_placement(ckpt.netlist, run.place.placement, constraints);
  run.route = Router(device_, options_.router)
                  .route(ckpt.netlist, run.place.placement, state);
  return run;
}

PnrRun PnrEngine::run_partition(const synth::Checkpoint& ooc_ckpt,
                                const fabric::Pblock& pblock,
                                const RoutingState& static_state) const {
  PRESP_REQUIRE(ooc_ckpt.out_of_context,
                "partition runs take out-of-context checkpoints");
  PlacementConstraints constraints;
  constraints.region = pblock;
  // Partition pins sit on the pblock boundary facing the static socket.
  for (const auto id :
       ooc_ckpt.netlist.cells_of_kind(netlist::CellKind::kPort))
    constraints.fixed.emplace_back(id, GridLoc{pblock.col_lo, pblock.row_lo});

  PnrRun run;
  run.name = ooc_ckpt.name;
  run.utilization = ooc_ckpt.utilization;
  run.place =
      Placer(device_, options_.placer).place(ooc_ckpt.netlist, constraints);
  check_placement(ooc_ckpt.netlist, run.place.placement, constraints);
  RoutingState state = static_state;  // negotiate against locked routes
  run.route = Router(device_, options_.router)
                  .route(ooc_ckpt.netlist, run.place.placement, state);
  return run;
}

PnrRun PnrEngine::run_flat(const synth::Checkpoint& ckpt) const {
  const PlacementConstraints constraints = port_anchors(ckpt.netlist);
  PnrRun run;
  run.name = ckpt.name;
  run.utilization = ckpt.utilization;
  run.place = Placer(device_, options_.placer).place(ckpt.netlist, constraints);
  check_placement(ckpt.netlist, run.place.placement, constraints);
  RoutingState state = make_state();
  run.route = Router(device_, options_.router)
                  .route(ckpt.netlist, run.place.placement, state);
  return run;
}

void PnrEngine::check_placement(const netlist::Netlist& nl,
                                const Placement& placement,
                                const PlacementConstraints& constraints) const {
  if (!options_.verify) return;
  const auto violations =
      verify_placement(device_, nl, placement, constraints);
  if (!violations.empty())
    throw LogicError("placer produced an illegal placement: [" +
                     violations.front().rule + "] " +
                     violations.front().message + " and " +
                     std::to_string(violations.size() - 1) + " more");
}

}  // namespace presp::pnr
