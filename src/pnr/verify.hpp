// Independent physical-implementation verifier.
//
// The placer and router optimize; this module *checks*, with no shared
// code paths: placement legality (bounds, column types, region/keepout
// constraints, per-cell LUT capacity) and, at the flow level, DPR rules
// (black boxes anchored inside their pblocks, no static logic inside any
// partition rectangle). Tests and the flow's assertions use it so an
// optimizer bug cannot silently vouch for itself.
//
// Findings are reported through the platform-wide lint::Diagnostic type
// under the pnr.* rule ids catalogued in lint::RuleRegistry::builtin():
//   pnr.unplaced-cell      cell has no valid location
//   pnr.out-of-bounds      location outside the device grid
//   pnr.illegal-column     logic on the clocking spine
//   pnr.outside-region     movable cell escapes its region constraint
//   pnr.inside-keepout     movable cell inside a keepout rectangle
//   pnr.capacity-overflow  per-cell LUT usage beyond site capacity
#pragma once

#include <vector>

#include "lint/diagnostic.hpp"
#include "pnr/placer.hpp"

namespace presp::pnr {

/// Checks `placement` of `nl` against the device and constraints.
/// Returns every violation found (empty = legal), sorted by rule.
std::vector<lint::Diagnostic> verify_placement(
    const fabric::Device& device, const netlist::Netlist& nl,
    const Placement& placement, const PlacementConstraints& constraints = {});

/// Convenience: true when verify_placement() returns no violations.
bool placement_legal(const fabric::Device& device,
                     const netlist::Netlist& nl, const Placement& placement,
                     const PlacementConstraints& constraints = {});

}  // namespace presp::pnr
