// Independent physical-implementation verifier.
//
// The placer and router optimize; this module *checks*, with no shared
// code paths: placement legality (bounds, column types, region/keepout
// constraints, per-cell LUT capacity) and, at the flow level, DPR rules
// (black boxes anchored inside their pblocks, no static logic inside any
// partition rectangle). Tests and the flow's assertions use it so an
// optimizer bug cannot silently vouch for itself.
#pragma once

#include <string>
#include <vector>

#include "pnr/placer.hpp"

namespace presp::pnr {

struct Violation {
  enum class Kind {
    kOutOfBounds,
    kIllegalColumn,
    kOutsideRegion,
    kInsideKeepout,
    kCapacityOverflow,
    kUnplacedCell,
  };
  Kind kind;
  netlist::CellId cell = netlist::kInvalidCell;
  std::string detail;
};

const char* to_string(Violation::Kind kind);

/// Checks `placement` of `nl` against the device and constraints.
/// Returns every violation found (empty = legal).
std::vector<Violation> verify_placement(
    const fabric::Device& device, const netlist::Netlist& nl,
    const Placement& placement, const PlacementConstraints& constraints = {});

/// Convenience: true when verify_placement() returns no violations.
bool placement_legal(const fabric::Device& device,
                     const netlist::Netlist& nl, const Placement& placement,
                     const PlacementConstraints& constraints = {});

}  // namespace presp::pnr
