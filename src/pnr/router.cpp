#include "pnr/router.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "util/error.hpp"

namespace presp::pnr {

namespace {
// Delay model: one column hop vs one region-row hop, plus cluster logic.
constexpr double kHorizontalHopNs = 0.08;
constexpr double kVerticalHopNs = 0.38;
constexpr double kLogicDelayNs = 1.2;
}  // namespace

RoutingState::RoutingState(const fabric::Device& device, int h_capacity,
                           int v_capacity)
    : cols_(device.num_columns()), rows_(device.region_rows()) {
  PRESP_REQUIRE(h_capacity > 0 && v_capacity > 0,
                "edge capacities must be positive");
  const std::size_t h_edges =
      static_cast<std::size_t>(cols_ - 1) * static_cast<std::size_t>(rows_);
  const std::size_t v_edges =
      static_cast<std::size_t>(cols_) * static_cast<std::size_t>(rows_ - 1);
  usage_.assign(h_edges + v_edges, 0);
  capacity_.resize(h_edges + v_edges);
  std::fill(capacity_.begin(),
            capacity_.begin() + static_cast<long>(h_edges), h_capacity);
  std::fill(capacity_.begin() + static_cast<long>(h_edges), capacity_.end(),
            v_capacity);
}

std::size_t RoutingState::h_edge(int col, int row) const {
  PRESP_ASSERT(col >= 0 && col + 1 < cols_ && row >= 0 && row < rows_);
  return static_cast<std::size_t>(row) * (cols_ - 1) + col;
}

std::size_t RoutingState::v_edge(int col, int row) const {
  PRESP_ASSERT(col >= 0 && col < cols_ && row >= 0 && row + 1 < rows_);
  const std::size_t h_edges =
      static_cast<std::size_t>(cols_ - 1) * static_cast<std::size_t>(rows_);
  return h_edges + static_cast<std::size_t>(row) * cols_ + col;
}

long long RoutingState::total_usage() const {
  long long total = 0;
  for (const int u : usage_) total += u;
  return total;
}

long long RoutingState::overflow() const {
  long long total = 0;
  for (std::size_t i = 0; i < usage_.size(); ++i)
    if (usage_[i] > capacity_[i]) total += usage_[i] - capacity_[i];
  return total;
}

namespace {

struct NodeCost {
  double cost;
  int col;
  int row;
  bool operator>(const NodeCost& o) const { return cost > o.cost; }
};

/// One A* search from `from` to `to` on the grid. Returns the edge list of
/// the path (empty only when from == to).
std::vector<std::size_t> astar(const RoutingState& state,
                               const std::vector<double>& history,
                               double congestion_penalty, int width,
                               GridLoc from, GridLoc to) {
  const int cols = state.num_cols();
  const int rows = state.num_rows();
  const auto node = [cols](int c, int r) {
    return static_cast<std::size_t>(r) * cols + c;
  };
  std::vector<double> dist(static_cast<std::size_t>(cols) * rows,
                           std::numeric_limits<double>::infinity());
  // Parent edge + direction to reconstruct the path.
  std::vector<std::int32_t> parent(dist.size(), -1);

  auto heuristic = [&](int c, int r) {
    return kHorizontalHopNs * std::abs(c - to.col) +
           kVerticalHopNs * std::abs(r - to.row);
  };
  auto edge_cost = [&](std::size_t edge, double base) {
    const int over =
        state.usage(edge) + width - state.capacity(edge);
    double cost = base + history[edge];
    if (over > 0)
      cost += congestion_penalty * base * static_cast<double>(over) /
              static_cast<double>(state.capacity(edge));
    return cost;
  };

  std::priority_queue<NodeCost, std::vector<NodeCost>, std::greater<>> open;
  dist[node(from.col, from.row)] = 0.0;
  open.push({heuristic(from.col, from.row), from.col, from.row});

  while (!open.empty()) {
    const NodeCost top = open.top();
    open.pop();
    const std::size_t n = node(top.col, top.row);
    if (top.col == to.col && top.row == to.row) break;
    const double g = dist[n];
    if (top.cost - heuristic(top.col, top.row) > g + 1e-12) continue;

    struct Step {
      int dc, dr;
    };
    static constexpr Step steps[4] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
    for (const Step& s : steps) {
      const int nc = top.col + s.dc;
      const int nr = top.row + s.dr;
      if (nc < 0 || nc >= cols || nr < 0 || nr >= rows) continue;
      std::size_t edge;
      double base;
      if (s.dr == 0) {
        edge = state.h_edge(std::min(top.col, nc), top.row);
        base = kHorizontalHopNs;
      } else {
        edge = state.v_edge(top.col, std::min(top.row, nr));
        base = kVerticalHopNs;
      }
      const double ng = g + edge_cost(edge, base);
      const std::size_t nn = node(nc, nr);
      if (ng < dist[nn] - 1e-12) {
        dist[nn] = ng;
        parent[nn] = static_cast<std::int32_t>(n);
        open.push({ng + heuristic(nc, nr), nc, nr});
      }
    }
  }

  // Reconstruct.
  std::vector<std::size_t> path;
  std::size_t cur = node(to.col, to.row);
  const std::size_t start = node(from.col, from.row);
  PRESP_ASSERT_MSG(cur == start || parent[cur] >= 0,
                   "router: sink unreachable");
  while (cur != start) {
    const std::size_t prev = static_cast<std::size_t>(parent[cur]);
    const int cc = static_cast<int>(cur) % cols;
    const int cr = static_cast<int>(cur) / cols;
    const int pc = static_cast<int>(prev) % cols;
    const int pr = static_cast<int>(prev) / cols;
    if (cr == pr) {
      path.push_back(state.h_edge(std::min(cc, pc), cr));
    } else {
      path.push_back(state.v_edge(cc, std::min(cr, pr)));
    }
    cur = prev;
  }
  return path;
}

}  // namespace

RouteResult Router::route(const netlist::Netlist& nl,
                          const Placement& placement,
                          RoutingState& state) const {
  RouteResult result;
  std::vector<double> history(state.num_edges(), 0.0);
  // Edges claimed by each net in the current iteration (so we can rip up).
  std::vector<std::vector<std::pair<std::size_t, int>>> claimed(
      nl.num_nets());
  std::vector<double> net_delay(nl.num_nets(), 0.0);

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    result.iterations = iter + 1;
    for (netlist::NetId n = 0; n < nl.num_nets(); ++n) {
      // Rip up the previous route of this net.
      for (const auto& [edge, bits] : claimed[n]) state.add_usage(edge, -bits);
      claimed[n].clear();

      const netlist::Net& net = nl.net(n);
      const GridLoc from = placement.at(net.driver);
      PRESP_REQUIRE(from.valid(), "unplaced driver on net '" + net.name + "'");
      double delay = kLogicDelayNs;
      // Star topology: route to each sink, sharing claimed edges (an edge
      // claimed twice by the same net only counts once).
      for (const netlist::CellId sink : net.sinks) {
        const GridLoc to = placement.at(sink);
        PRESP_REQUIRE(to.valid(), "unplaced sink on net '" + net.name + "'");
        const auto path = astar(state, history,
                                options_.congestion_penalty, net.width,
                                from, to);
        double sink_delay = kLogicDelayNs;
        for (const std::size_t edge : path) {
          const bool already =
              std::any_of(claimed[n].begin(), claimed[n].end(),
                          [edge](const auto& e) { return e.first == edge; });
          sink_delay += edge < static_cast<std::size_t>(
                                   (state.num_cols() - 1) * state.num_rows())
                            ? kHorizontalHopNs
                            : kVerticalHopNs;
          if (!already) {
            state.add_usage(edge, net.width);
            claimed[n].emplace_back(edge, net.width);
          }
        }
        delay = std::max(delay, sink_delay);
      }
      net_delay[n] = delay;
    }

    if (state.overflow() == 0) break;
    // Update history on overflowed edges for the next iteration.
    for (std::size_t e = 0; e < state.num_edges(); ++e)
      if (state.usage(e) > state.capacity(e))
        history[e] += options_.history_increment *
                      (kHorizontalHopNs + kVerticalHopNs) / 2.0;
  }

  for (const auto& per_net : claimed)
    for (const auto& [edge, bits] : per_net) {
      (void)edge;
      result.wirelength += bits;
    }
  result.overflow = state.overflow();
  result.success = result.overflow == 0;
  for (netlist::NetId n = 0; n < nl.num_nets(); ++n)
    result.max_net_delay_ns = std::max(result.max_net_delay_ns, net_delay[n]);
  if (result.max_net_delay_ns > 0.0)
    result.achieved_fmax_mhz = 1'000.0 / result.max_net_delay_ns;
  return result;
}

}  // namespace presp::pnr
