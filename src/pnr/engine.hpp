// P&R engine: one object call per "Vivado instance invocation" in the
// PR-ESP flow. Three run types mirror the flow's needs:
//
//   - run_static(): places and routes the static checkpoint with black-box
//     placeholder macros anchored inside their partition pblocks and all
//     pblock interiors kept out of static placement. Returns the routing
//     state so partition runs can negotiate with locked static routes.
//   - run_partition(): places one out-of-context partition checkpoint
//     inside its pblock, in context of the static routing state.
//   - run_flat(): places and routes a monolithic checkpoint with no
//     partition constraints (the baseline standard-flow implementation).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "pnr/placer.hpp"
#include "pnr/router.hpp"
#include "synth/synthesis.hpp"

namespace presp::pnr {

struct PnrOptions {
  PlacerOptions placer;
  RouterOptions router;
  int h_capacity = 1'500;
  int v_capacity = 2'500;
  /// Run the independent placement verifier after every placement and
  /// throw LogicError on violations (cheap; on by default).
  bool verify = true;
};

struct PnrRun {
  std::string name;
  PlaceResult place;
  RouteResult route;
  fabric::ResourceVec utilization;

  /// Legal placement and fully routed.
  bool success() const { return place.overflow == 0.0 && route.success; }
};

class PnrEngine {
 public:
  PnrEngine(const fabric::Device& device, PnrOptions options = {})
      : device_(device), options_(options) {}

  /// Static run. `pblocks` maps partition name -> pblock. `state` must be
  /// a fresh RoutingState; it accumulates the static routes.
  PnrRun run_static(const synth::Checkpoint& ckpt,
                    const std::map<std::string, fabric::Pblock>& pblocks,
                    RoutingState& state) const;

  /// In-context partition run inside `pblock`, negotiating with the usage
  /// already recorded in `state` (copied internally; the caller's static
  /// state is not modified).
  PnrRun run_partition(const synth::Checkpoint& ooc_ckpt,
                       const fabric::Pblock& pblock,
                       const RoutingState& static_state) const;

  /// Flat monolithic run (no partitions).
  PnrRun run_flat(const synth::Checkpoint& ckpt) const;

  RoutingState make_state() const {
    return RoutingState(device_, options_.h_capacity, options_.v_capacity);
  }

 private:
  PlacementConstraints port_anchors(const netlist::Netlist& nl) const;
  /// Throws LogicError when options_.verify is set and the placement is
  /// illegal (see pnr/verify.hpp).
  void check_placement(const netlist::Netlist& nl,
                       const Placement& placement,
                       const PlacementConstraints& constraints) const;

  const fabric::Device& device_;
  PnrOptions options_;
};

}  // namespace presp::pnr
