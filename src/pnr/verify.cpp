#include "pnr/verify.hpp"

#include <algorithm>
#include <map>

namespace presp::pnr {

const char* to_string(Violation::Kind kind) {
  switch (kind) {
    case Violation::Kind::kOutOfBounds: return "out-of-bounds";
    case Violation::Kind::kIllegalColumn: return "illegal-column";
    case Violation::Kind::kOutsideRegion: return "outside-region";
    case Violation::Kind::kInsideKeepout: return "inside-keepout";
    case Violation::Kind::kCapacityOverflow: return "capacity-overflow";
    case Violation::Kind::kUnplacedCell: return "unplaced-cell";
  }
  return "?";
}

std::vector<Violation> verify_placement(
    const fabric::Device& device, const netlist::Netlist& nl,
    const Placement& placement, const PlacementConstraints& constraints) {
  std::vector<Violation> violations;
  const auto report = [&](Violation::Kind kind, netlist::CellId cell,
                          std::string detail) {
    violations.push_back({kind, cell, std::move(detail)});
  };

  std::map<std::pair<int, int>, std::int64_t> usage;

  for (netlist::CellId c = 0; c < nl.num_cells(); ++c) {
    const auto& cell = nl.cell(c);
    const GridLoc& loc =
        c < placement.locations.size() ? placement.locations[c] : GridLoc{};
    if (!loc.valid()) {
      report(Violation::Kind::kUnplacedCell, c, cell.name);
      continue;
    }
    if (loc.col < 0 || loc.col >= device.num_columns() || loc.row < 0 ||
        loc.row >= device.region_rows()) {
      report(Violation::Kind::kOutOfBounds, c,
             cell.name + " at (" + std::to_string(loc.col) + "," +
                 std::to_string(loc.row) + ")");
      continue;
    }
    const auto type = device.column_type(loc.col);
    if (cell.kind == netlist::CellKind::kLogic) {
      if (type == fabric::ColumnType::kClock) {
        report(Violation::Kind::kIllegalColumn, c,
               cell.name + " on the clocking spine");
      }
      usage[{loc.col, loc.row}] += cell.resources.luts;
    }
    // Constraint checks apply to movable cells; fixed cells are exempt
    // (ports sit on I/O columns, black-box anchors sit in keepouts).
    const bool fixed =
        std::any_of(constraints.fixed.begin(), constraints.fixed.end(),
                    [c](const auto& f) { return f.first == c; });
    if (fixed) continue;
    if (constraints.region &&
        !constraints.region->contains(loc.col, loc.row))
      report(Violation::Kind::kOutsideRegion, c, cell.name);
    for (const auto& keepout : constraints.keepouts)
      if (keepout.contains(loc.col, loc.row)) {
        report(Violation::Kind::kInsideKeepout, c, cell.name);
        break;
      }
  }

  for (const auto& [cell_loc, luts] : usage) {
    // I/O columns carry the same token capacity the placer models (edge
    // flops next to the pads).
    const auto capacity =
        device.column_type(cell_loc.first) == fabric::ColumnType::kIo
            ? 64
            : device.cell_resources(cell_loc.first).luts;
    if (luts > capacity)
      report(Violation::Kind::kCapacityOverflow, netlist::kInvalidCell,
             "cell (" + std::to_string(cell_loc.first) + "," +
                 std::to_string(cell_loc.second) + "): " +
                 std::to_string(luts) + " LUTs > " +
                 std::to_string(capacity));
  }
  return violations;
}

bool placement_legal(const fabric::Device& device,
                     const netlist::Netlist& nl, const Placement& placement,
                     const PlacementConstraints& constraints) {
  return verify_placement(device, nl, placement, constraints).empty();
}

}  // namespace presp::pnr
