#include "pnr/verify.hpp"

#include <algorithm>
#include <map>

namespace presp::pnr {

std::vector<lint::Diagnostic> verify_placement(
    const fabric::Device& device, const netlist::Netlist& nl,
    const Placement& placement, const PlacementConstraints& constraints) {
  std::vector<lint::Diagnostic> diags;
  const auto report = [&](const char* rule, const std::string& object,
                          std::string message, std::string hint) {
    diags.push_back({rule,
                     lint::Severity::kError,
                     {nl.name(), 0, object},
                     std::move(message),
                     std::move(hint)});
  };

  std::map<std::pair<int, int>, std::int64_t> usage;

  for (netlist::CellId c = 0; c < nl.num_cells(); ++c) {
    const auto& cell = nl.cell(c);
    const std::string object = "cell." + cell.name;
    const GridLoc& loc =
        c < placement.locations.size() ? placement.locations[c] : GridLoc{};
    if (!loc.valid()) {
      report("pnr.unplaced-cell", object,
             "cell '" + cell.name + "' has no placement location",
             "run the placer or fix the cell's location");
      continue;
    }
    if (loc.col < 0 || loc.col >= device.num_columns() || loc.row < 0 ||
        loc.row >= device.region_rows()) {
      report("pnr.out-of-bounds", object,
             "cell '" + cell.name + "' placed at (" +
                 std::to_string(loc.col) + "," + std::to_string(loc.row) +
                 ") outside the device grid",
             "clamp the location to the fabric");
      continue;
    }
    const auto type = device.column_type(loc.col);
    if (cell.kind == netlist::CellKind::kLogic) {
      if (type == fabric::ColumnType::kClock)
        report("pnr.illegal-column", object,
               "cell '" + cell.name + "' sits on the clocking spine "
               "(column " + std::to_string(loc.col) + ")",
               "move the cell to a CLB/BRAM/DSP column");
      usage[{loc.col, loc.row}] += cell.resources.luts;
    }
    // Constraint checks apply to movable cells; fixed cells are exempt
    // (ports sit on I/O columns, black-box anchors sit in keepouts).
    const bool fixed =
        std::any_of(constraints.fixed.begin(), constraints.fixed.end(),
                    [c](const auto& f) { return f.first == c; });
    if (fixed) continue;
    if (constraints.region &&
        !constraints.region->contains(loc.col, loc.row))
      report("pnr.outside-region", object,
             "cell '" + cell.name + "' escapes its region constraint " +
                 constraints.region->to_string(),
             "keep region-constrained cells inside their pblock");
    for (const auto& keepout : constraints.keepouts)
      if (keepout.contains(loc.col, loc.row)) {
        report("pnr.inside-keepout", object,
               "cell '" + cell.name + "' lies inside keepout " +
                   keepout.to_string(),
               "keepouts reserve reconfigurable partitions for their "
               "own logic");
        break;
      }
  }

  for (const auto& [cell_loc, luts] : usage) {
    // I/O columns carry the same token capacity the placer models (edge
    // flops next to the pads).
    const auto capacity =
        device.column_type(cell_loc.first) == fabric::ColumnType::kIo
            ? 64
            : device.cell_resources(cell_loc.first).luts;
    if (luts > capacity)
      report("pnr.capacity-overflow",
             "site." + std::to_string(cell_loc.first) + "." +
                 std::to_string(cell_loc.second),
             "site (" + std::to_string(cell_loc.first) + "," +
                 std::to_string(cell_loc.second) + ") holds " +
                 std::to_string(luts) + " LUTs but its capacity is " +
                 std::to_string(capacity),
             "spread the clustered cells over more sites");
  }
  return diags;
}

bool placement_legal(const fabric::Device& device,
                     const netlist::Netlist& nl, const Placement& placement,
                     const PlacementConstraints& constraints) {
  return verify_placement(device, nl, placement, constraints).empty();
}

}  // namespace presp::pnr
