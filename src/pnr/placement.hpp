// Placement types shared by the placer, router and flow engine.
//
// The placement grid is the device's (column x clock-region-row) cell
// matrix. Capacity accounting is LUT-centric: clusters are predominantly
// logic, and BRAM/DSP feasibility is already guaranteed coarsely by
// floorplanning (pblock coverage) and elaboration (device totals); the
// placer additionally keeps clusters containing BRAM/DSP near matching
// columns via a soft affinity cost.
#pragma once

#include <optional>
#include <vector>

#include "fabric/device.hpp"
#include "netlist/netlist.hpp"

namespace presp::pnr {

struct GridLoc {
  int col = -1;
  int row = -1;
  bool valid() const { return col >= 0 && row >= 0; }
  friend bool operator==(const GridLoc&, const GridLoc&) = default;
};

/// Region restriction + pre-assignments for one P&R run.
struct PlacementConstraints {
  /// If set, every movable cell must land inside this rectangle (used for
  /// in-context runs on a reconfigurable partition).
  std::optional<fabric::Pblock> region;
  /// Rectangles no movable cell may enter (the pblocks of reconfigurable
  /// partitions during a static-part run).
  std::vector<fabric::Pblock> keepouts;
  /// Pre-placed cells (ports at the die edge, black-box placeholder
  /// macros at pblock anchors, ...). Fixed cells never move.
  std::vector<std::pair<netlist::CellId, GridLoc>> fixed;
};

struct Placement {
  /// Location per netlist cell (index = CellId).
  std::vector<GridLoc> locations;

  const GridLoc& at(netlist::CellId id) const { return locations[id]; }
};

/// Half-perimeter wirelength of one net under a placement, weighted by the
/// net's bit width.
double net_hpwl(const netlist::Netlist& nl, const Placement& placement,
                netlist::NetId net);

/// Total weighted HPWL over all nets.
double total_hpwl(const netlist::Netlist& nl, const Placement& placement);

}  // namespace presp::pnr
