#include "wami/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "exec/thread_pool.hpp"
#include "util/error.hpp"

namespace presp::wami {

namespace {
// Row tile height for elementwise kernels and pixel chunk for reductions.
// Both are constants (never derived from the thread count) so the work
// decomposition — and therefore every reduction order — is identical at
// any parallelism level. Tiles are sized to keep a chunk's working set in
// L1/L2 while amortizing task dispatch.
constexpr long long kRowTile = 16;
constexpr long long kReduceChunk = 1 << 14;  // pixels

/// Deterministic row-tiled loop: body(y0, y1) over [0, height).
template <typename Body>
void for_each_row_tile(exec::ThreadPool* pool, int height, const Body& body) {
  exec::parallel_for(pool, 0, height, kRowTile,
                     [&](long long y0, long long y1) {
                       body(static_cast<int>(y0), static_cast<int>(y1));
                     });
}
}  // namespace

RgbImage debayer(const ImageU16& bayer, exec::ThreadPool* pool) {
  const int w = bayer.width();
  const int h = bayer.height();
  RgbImage out{ImageF(w, h), ImageF(w, h), ImageF(w, h)};

  // RGGB pattern: (even,even)=R, (odd,even)=G, (even,odd)=G, (odd,odd)=B.
  const auto raw = [&](int x, int y) {
    return static_cast<float>(bayer.at_clamped(x, y));
  };
  for_each_row_tile(pool, h, [&](int y0, int y1) {
    for (int y = y0; y < y1; ++y) {
      for (int x = 0; x < w; ++x) {
        const bool even_x = (x % 2) == 0;
        const bool even_y = (y % 2) == 0;
        float r;
        float g;
        float b;
        if (even_x && even_y) {  // red site
          r = raw(x, y);
          g = 0.25f * (raw(x - 1, y) + raw(x + 1, y) + raw(x, y - 1) +
                       raw(x, y + 1));
          b = 0.25f * (raw(x - 1, y - 1) + raw(x + 1, y - 1) +
                       raw(x - 1, y + 1) + raw(x + 1, y + 1));
        } else if (!even_x && !even_y) {  // blue site
          b = raw(x, y);
          g = 0.25f * (raw(x - 1, y) + raw(x + 1, y) + raw(x, y - 1) +
                       raw(x, y + 1));
          r = 0.25f * (raw(x - 1, y - 1) + raw(x + 1, y - 1) +
                       raw(x - 1, y + 1) + raw(x + 1, y + 1));
        } else if (!even_x && even_y) {  // green on red row
          g = raw(x, y);
          r = 0.5f * (raw(x - 1, y) + raw(x + 1, y));
          b = 0.5f * (raw(x, y - 1) + raw(x, y + 1));
        } else {  // green on blue row
          g = raw(x, y);
          b = 0.5f * (raw(x - 1, y) + raw(x + 1, y));
          r = 0.5f * (raw(x, y - 1) + raw(x, y + 1));
        }
        out.r.at(x, y) = r;
        out.g.at(x, y) = g;
        out.b.at(x, y) = b;
      }
    }
  });
  return out;
}

ImageF grayscale(const RgbImage& rgb, exec::ThreadPool* pool) {
  const int w = rgb.r.width();
  const int h = rgb.r.height();
  ImageF out(w, h);
  for_each_row_tile(pool, h, [&](int y0, int y1) {
    for (int y = y0; y < y1; ++y)
      for (int x = 0; x < w; ++x)
        out.at(x, y) = 0.299f * rgb.r.at(x, y) + 0.587f * rgb.g.at(x, y) +
                       0.114f * rgb.b.at(x, y);
  });
  return out;
}

ImageF luma_from_bayer(const ImageU16& bayer, exec::ThreadPool* pool) {
  const int w = bayer.width();
  const int h = bayer.height();
  ImageF out(w, h);
  const auto raw = [&](int x, int y) {
    return static_cast<float>(bayer.at_clamped(x, y));
  };
  // Same per-site R/G/B expressions as debayer() and the same BT.601
  // combination as grayscale(); the composed path also keeps the
  // intermediates in float, so the fused result is bit-identical.
  for_each_row_tile(pool, h, [&](int y0, int y1) {
    for (int y = y0; y < y1; ++y) {
      for (int x = 0; x < w; ++x) {
        const bool even_x = (x % 2) == 0;
        const bool even_y = (y % 2) == 0;
        float r;
        float g;
        float b;
        if (even_x && even_y) {  // red site
          r = raw(x, y);
          g = 0.25f * (raw(x - 1, y) + raw(x + 1, y) + raw(x, y - 1) +
                       raw(x, y + 1));
          b = 0.25f * (raw(x - 1, y - 1) + raw(x + 1, y - 1) +
                       raw(x - 1, y + 1) + raw(x + 1, y + 1));
        } else if (!even_x && !even_y) {  // blue site
          b = raw(x, y);
          g = 0.25f * (raw(x - 1, y) + raw(x + 1, y) + raw(x, y - 1) +
                       raw(x, y + 1));
          r = 0.25f * (raw(x - 1, y - 1) + raw(x + 1, y - 1) +
                       raw(x - 1, y + 1) + raw(x + 1, y + 1));
        } else if (!even_x && even_y) {  // green on red row
          g = raw(x, y);
          r = 0.5f * (raw(x - 1, y) + raw(x + 1, y));
          b = 0.5f * (raw(x, y - 1) + raw(x, y + 1));
        } else {  // green on blue row
          g = raw(x, y);
          b = 0.5f * (raw(x - 1, y) + raw(x + 1, y));
          r = 0.5f * (raw(x, y - 1) + raw(x, y + 1));
        }
        out.at(x, y) = 0.299f * r + 0.587f * g + 0.114f * b;
      }
    }
  });
  return out;
}

Gradients gradient(const ImageF& image, exec::ThreadPool* pool) {
  const int w = image.width();
  const int h = image.height();
  Gradients out{ImageF(w, h), ImageF(w, h)};
  for_each_row_tile(pool, h, [&](int y0, int y1) {
    for (int y = y0; y < y1; ++y) {
      for (int x = 0; x < w; ++x) {
        out.ix.at(x, y) =
            0.5f * (image.at_clamped(x + 1, y) - image.at_clamped(x - 1, y));
        out.iy.at(x, y) =
            0.5f * (image.at_clamped(x, y + 1) - image.at_clamped(x, y - 1));
      }
    }
  });
  return out;
}

ImageF warp_affine(const ImageF& src, const AffineParams& p,
                   exec::ThreadPool* pool) {
  const int w = src.width();
  const int h = src.height();
  ImageF out(w, h);
  for_each_row_tile(pool, h, [&](int y0, int y1) {
    for (int y = y0; y < y1; ++y) {
      for (int x = 0; x < w; ++x) {
        const double sx = (1.0 + p[0]) * x + p[2] * y + p[4];
        const double sy = p[1] * x + (1.0 + p[3]) * y + p[5];
        const int x0 = static_cast<int>(std::floor(sx));
        const int y0w = static_cast<int>(std::floor(sy));
        const float fx = static_cast<float>(sx - x0);
        const float fy = static_cast<float>(sy - y0w);
        const float v00 = src.at_clamped(x0, y0w);
        const float v10 = src.at_clamped(x0 + 1, y0w);
        const float v01 = src.at_clamped(x0, y0w + 1);
        const float v11 = src.at_clamped(x0 + 1, y0w + 1);
        out.at(x, y) = (1 - fx) * (1 - fy) * v00 + fx * (1 - fy) * v10 +
                       (1 - fx) * fy * v01 + fx * fy * v11;
      }
    }
  });
  return out;
}

ImageF subtract(const ImageF& a, const ImageF& b, exec::ThreadPool* pool) {
  PRESP_REQUIRE(a.width() == b.width() && a.height() == b.height(),
                "subtract: dimension mismatch");
  ImageF out(a.width(), a.height());
  const auto pa = a.pixels();
  const auto pb = b.pixels();
  const auto po = out.pixels();
  exec::parallel_for(pool, 0, static_cast<long long>(pa.size()), kReduceChunk,
                     [&](long long lo, long long hi) {
                       for (long long i = lo; i < hi; ++i)
                         po[static_cast<std::size_t>(i)] =
                             pa[static_cast<std::size_t>(i)] -
                             pb[static_cast<std::size_t>(i)];
                     });
  return out;
}

SteepestDescent steepest_descent(const Gradients& grads,
                                 exec::ThreadPool* pool) {
  const int w = grads.ix.width();
  const int h = grads.ix.height();
  SteepestDescent sd{ImageF(w, h), ImageF(w, h), ImageF(w, h),
                     ImageF(w, h), ImageF(w, h), ImageF(w, h)};
  for_each_row_tile(pool, h, [&](int y0, int y1) {
    for (int y = y0; y < y1; ++y) {
      for (int x = 0; x < w; ++x) {
        const float ix = grads.ix.at(x, y);
        const float iy = grads.iy.at(x, y);
        // dW/dp for the affine warp: columns [x 0; 0 x; y 0; 0 y; 1 0; 0 1].
        sd[0].at(x, y) = ix * static_cast<float>(x);
        sd[1].at(x, y) = iy * static_cast<float>(x);
        sd[2].at(x, y) = ix * static_cast<float>(y);
        sd[3].at(x, y) = iy * static_cast<float>(y);
        sd[4].at(x, y) = ix;
        sd[5].at(x, y) = iy;
      }
    }
  });
  return sd;
}

Matrix6 hessian(const SteepestDescent& sd, exec::ThreadPool* pool) {
  // Blocked single pass: each fixed-size pixel chunk streams the six SD
  // planes once and accumulates all 21 upper-triangle products into its
  // own partial, and partials are folded in chunk order — the reduction
  // order depends only on the image size, so serial and parallel results
  // are bit-identical.
  const long long n = static_cast<long long>(sd[0].size());
  const std::size_t chunks =
      static_cast<std::size_t>((n + kReduceChunk - 1) / kReduceChunk);
  std::vector<std::array<double, 21>> partial(chunks);
  for (auto& acc : partial) acc.fill(0.0);

  const float* plane[6];
  for (int i = 0; i < 6; ++i)
    plane[i] = sd[static_cast<std::size_t>(i)].pixels().data();

  exec::parallel_for(pool, 0, n, kReduceChunk, [&](long long lo, long long hi) {
    auto& acc = partial[static_cast<std::size_t>(lo / kReduceChunk)];
    for (long long k = lo; k < hi; ++k) {
      double v[6];
      for (int i = 0; i < 6; ++i)
        v[i] = static_cast<double>(plane[i][static_cast<std::size_t>(k)]);
      int t = 0;
      for (int i = 0; i < 6; ++i)
        for (int j = i; j < 6; ++j) acc[static_cast<std::size_t>(t++)] += v[i] * v[j];
    }
  });

  Matrix6 h{};
  int t = 0;
  for (int i = 0; i < 6; ++i) {
    for (int j = i; j < 6; ++j) {
      double acc = 0.0;
      for (std::size_t c = 0; c < chunks; ++c)
        acc += partial[c][static_cast<std::size_t>(t)];
      h[static_cast<std::size_t>(i * 6 + j)] = acc;
      h[static_cast<std::size_t>(j * 6 + i)] = acc;
      ++t;
    }
  }
  return h;
}

Matrix6 invert6(const Matrix6& m) {
  // Gauss-Jordan with partial pivoting on [M | I].
  constexpr int n = 6;
  std::array<double, 72> a{};
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c)
      a[static_cast<std::size_t>(r * 12 + c)] =
          m[static_cast<std::size_t>(r * 6 + c)];
    a[static_cast<std::size_t>(r * 12 + 6 + r)] = 1.0;
  }
  for (int col = 0; col < n; ++col) {
    int pivot = col;
    for (int r = col + 1; r < n; ++r)
      if (std::abs(a[static_cast<std::size_t>(r * 12 + col)]) >
          std::abs(a[static_cast<std::size_t>(pivot * 12 + col)]))
        pivot = r;
    const double pv = a[static_cast<std::size_t>(pivot * 12 + col)];
    if (std::abs(pv) < 1e-12)
      throw InvalidArgument("invert6: singular Hessian");
    if (pivot != col)
      for (int c = 0; c < 12; ++c)
        std::swap(a[static_cast<std::size_t>(pivot * 12 + c)],
                  a[static_cast<std::size_t>(col * 12 + c)]);
    const double inv = 1.0 / a[static_cast<std::size_t>(col * 12 + col)];
    for (int c = 0; c < 12; ++c)
      a[static_cast<std::size_t>(col * 12 + c)] *= inv;
    for (int r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = a[static_cast<std::size_t>(r * 12 + col)];
      if (f == 0.0) continue;
      for (int c = 0; c < 12; ++c)
        a[static_cast<std::size_t>(r * 12 + c)] -=
            f * a[static_cast<std::size_t>(col * 12 + c)];
    }
  }
  Matrix6 out{};
  for (int r = 0; r < n; ++r)
    for (int c = 0; c < n; ++c)
      out[static_cast<std::size_t>(r * 6 + c)] =
          a[static_cast<std::size_t>(r * 12 + 6 + c)];
  return out;
}

Vector6 sd_update(const SteepestDescent& sd, const ImageF& error,
                  exec::ThreadPool* pool) {
  // Blocked like hessian(): one pass per chunk over the six planes plus
  // the error image, partials folded in chunk order.
  const long long n = static_cast<long long>(error.size());
  const std::size_t chunks =
      static_cast<std::size_t>((n + kReduceChunk - 1) / kReduceChunk);
  std::vector<std::array<double, 6>> partial(chunks);
  for (auto& acc : partial) acc.fill(0.0);

  const float* plane[6];
  for (int i = 0; i < 6; ++i)
    plane[i] = sd[static_cast<std::size_t>(i)].pixels().data();
  const float* err = error.pixels().data();

  exec::parallel_for(pool, 0, n, kReduceChunk, [&](long long lo, long long hi) {
    auto& acc = partial[static_cast<std::size_t>(lo / kReduceChunk)];
    for (long long i = lo; i < hi; ++i) {
      const double e = static_cast<double>(err[static_cast<std::size_t>(i)]);
      for (int k = 0; k < 6; ++k)
        acc[static_cast<std::size_t>(k)] +=
            static_cast<double>(plane[k][static_cast<std::size_t>(i)]) * e;
    }
  });

  Vector6 b{};
  for (int k = 0; k < 6; ++k) {
    double acc = 0.0;
    for (std::size_t c = 0; c < chunks; ++c)
      acc += partial[c][static_cast<std::size_t>(k)];
    b[static_cast<std::size_t>(k)] = acc;
  }
  return b;
}

Vector6 delta_p(const Matrix6& h_inv, const Vector6& b) {
  Vector6 dp{};
  for (int r = 0; r < 6; ++r) {
    double acc = 0.0;
    for (int c = 0; c < 6; ++c)
      acc += h_inv[static_cast<std::size_t>(r * 6 + c)] *
             b[static_cast<std::size_t>(c)];
    dp[static_cast<std::size_t>(r)] = acc;
  }
  return dp;
}

void update_params(AffineParams& p, const Vector6& dp) {
  for (int i = 0; i < 6; ++i)
    p[static_cast<std::size_t>(i)] += dp[static_cast<std::size_t>(i)];
}

GmmState::GmmState(int w, int h)
    : width(w),
      height(h),
      weight(static_cast<std::size_t>(w) * h * kModes, 0.0f),
      mean(static_cast<std::size_t>(w) * h * kModes, 0.0f),
      var(static_cast<std::size_t>(w) * h * kModes, 900.0f) {
  // Initialize mode 0 as the dominant background mode.
  for (std::size_t i = 0; i < weight.size(); i += kModes) weight[i] = 1.0f;
}

ImageU16 change_detection(const ImageF& frame, GmmState& state,
                          float learning_rate, float mahal_threshold,
                          float background_weight, exec::ThreadPool* pool) {
  PRESP_REQUIRE(state.width == frame.width() &&
                    state.height == frame.height(),
                "GMM state / frame dimension mismatch");
  constexpr int K = GmmState::kModes;
  ImageU16 mask(frame.width(), frame.height(), 0);
  const auto pixels = frame.pixels();
  const auto out = mask.pixels();

  // Each pixel owns its K modes; chunks touch disjoint state, so parallel
  // updates are race-free and bit-identical to the serial sweep.
  exec::parallel_for(
      pool, 0, static_cast<long long>(pixels.size()), kReduceChunk,
      [&](long long lo, long long hi) {
        for (long long idx = lo; idx < hi; ++idx) {
          const std::size_t i = static_cast<std::size_t>(idx);
          const float v = pixels[i];
          float* w = &state.weight[i * K];
          float* mu = &state.mean[i * K];
          float* var = &state.var[i * K];

          int matched = -1;
          for (int k = 0; k < K; ++k) {
            const float d = v - mu[k];
            if (d * d < mahal_threshold * var[k]) {
              matched = k;
              break;
            }
          }
          if (matched >= 0) {
            // Update the matched mode.
            const float rho = learning_rate;
            mu[matched] += rho * (v - mu[matched]);
            const float d = v - mu[matched];
            var[matched] += rho * (d * d - var[matched]);
            var[matched] = std::max(var[matched], 4.0f);
            for (int k = 0; k < K; ++k)
              w[k] = (1 - learning_rate) * w[k] +
                     (k == matched ? learning_rate : 0.0f);
          } else {
            // Replace the weakest mode.
            int weakest = 0;
            for (int k = 1; k < K; ++k)
              if (w[k] < w[weakest]) weakest = k;
            w[weakest] = learning_rate;
            mu[weakest] = v;
            var[weakest] = 900.0f;
            matched = weakest;
          }
          // Normalize weights.
          float sum = 0.0f;
          for (int k = 0; k < K; ++k) sum += w[k];
          for (int k = 0; k < K; ++k) w[k] /= sum;

          // Foreground: the matched mode is not part of the background set
          // (modes sorted by weight/sqrt(var) until cumulative weight
          // reaches background_weight).
          std::array<int, K> order{0, 1, 2};
          std::sort(order.begin(), order.end(), [&](int a, int b) {
            return w[a] / std::sqrt(var[a]) > w[b] / std::sqrt(var[b]);
          });
          float cumulative = 0.0f;
          bool background = false;
          for (const int k : order) {
            cumulative += w[k];
            if (k == matched) {
              background = true;
              break;
            }
            if (cumulative > background_weight) break;
          }
          if (!background) out[i] = 1;
        }
      });
  return mask;
}

double lucas_kanade_step(const ImageF& reference, const ImageF& frame,
                         AffineParams& p, exec::ThreadPool* pool) {
  const ImageF warped = warp_affine(frame, p, pool);           // (4)
  const ImageF error = subtract(reference, warped, pool);      // (5)
  const Gradients grads = gradient(warped, pool);              // (3)
  const SteepestDescent sd = steepest_descent(grads, pool);    // (6)
  const Matrix6 h = hessian(sd, pool);                         // (7)
  const Matrix6 h_inv = invert6(h);                            // (8)
  const Vector6 b = sd_update(sd, error, pool);                // (9)
  const Vector6 dp = delta_p(h_inv, b);                        // (10)
  update_params(p, dp);                                        // (11)

  // Residual MAE, chunk-partialed like the other reductions so the value
  // is thread-count independent.
  const long long n = static_cast<long long>(error.size());
  const std::size_t chunks =
      static_cast<std::size_t>((n + kReduceChunk - 1) / kReduceChunk);
  std::vector<double> partial(chunks, 0.0);
  const float* err = error.pixels().data();
  exec::parallel_for(pool, 0, n, kReduceChunk, [&](long long lo, long long hi) {
    double acc = 0.0;
    for (long long i = lo; i < hi; ++i)
      acc += std::abs(static_cast<double>(err[static_cast<std::size_t>(i)]));
    partial[static_cast<std::size_t>(lo / kReduceChunk)] = acc;
  });
  double mae = 0.0;
  for (const double part : partial) mae += part;
  return mae / static_cast<double>(error.size());
}

double lucas_kanade(const ImageF& reference, const ImageF& frame,
                    AffineParams& p, int iterations, exec::ThreadPool* pool) {
  double residual = 0.0;
  for (int i = 0; i < iterations; ++i)
    residual = lucas_kanade_step(reference, frame, p, pool);
  return residual;
}

}  // namespace presp::wami
