// The WAMI-App kernels (PERFECT benchmark suite), decomposed as in the
// paper's Fig. 3: Debayer and Grayscale front-end, the Lucas-Kanade
// registration pipeline split into its constituent stages (the paper
// "decomposed the Lucas-Kanade accelerator into multiple accelerators to
// further parallelize its execution"), and GMM change detection.
//
// All functions are pure software ("golden") implementations over dense
// row-major buffers; the SoC accelerator functional models call the same
// code, so hardware/software equivalence is exact by construction and the
// end-to-end SoC simulation can be checked bit-for-bit against the golden
// pipeline.
//
// Kernel indices (Fig. 3 node numbering used by Tables IV/VI):
//    1 debayer          5 subtract            9 sd-update
//    2 grayscale        6 steepest-descent   10 delta-p solve/apply
//    3 gradient         7 hessian            11 parameter update
//    4 warp             8 matrix inversion   12 change detection (GMM)
#pragma once

#include <array>

#include "wami/image.hpp"

namespace presp::wami {

/// Affine warp parameters [p1..p6]:
///   x' = (1+p1)x + p3 y + p5,   y' = p2 x + (1+p4) y + p6.
using AffineParams = std::array<double, 6>;

/// (1) Bayer (RGGB) mosaic to RGB planes, bilinear demosaic.
struct RgbImage {
  ImageF r, g, b;
};
RgbImage debayer(const ImageU16& bayer);

/// (2) RGB to luma (ITU-R BT.601 weights), range-preserving.
ImageF grayscale(const RgbImage& rgb);

/// (3) Central-difference spatial gradients.
struct Gradients {
  ImageF ix, iy;
};
Gradients gradient(const ImageF& image);

/// (4) Inverse-warp `src` by the affine params (bilinear sampling):
/// out(x,y) = src(W(x,y; p)).
ImageF warp_affine(const ImageF& src, const AffineParams& p);

/// (5) Element-wise difference a - b.
ImageF subtract(const ImageF& a, const ImageF& b);

/// (6) Steepest-descent images: six planes SD_k = [Ix Iy] * dW/dp_k.
using SteepestDescent = std::array<ImageF, 6>;
SteepestDescent steepest_descent(const Gradients& grads);

/// (7) Gauss-Newton Hessian H = sum_pix SD^T SD (6x6, row-major).
using Matrix6 = std::array<double, 36>;
Matrix6 hessian(const SteepestDescent& sd);

/// (8) 6x6 matrix inversion (Gauss-Jordan with partial pivoting).
/// Throws InvalidArgument on a singular system.
Matrix6 invert6(const Matrix6& m);

/// (9) Right-hand side b_k = sum_pix SD_k * error.
using Vector6 = std::array<double, 6>;
Vector6 sd_update(const SteepestDescent& sd, const ImageF& error);

/// (10) delta_p = H_inv * b.
Vector6 delta_p(const Matrix6& h_inv, const Vector6& b);

/// (11) Forwards-additive parameter update: p += dp.
void update_params(AffineParams& p, const Vector6& dp);

/// (12) GMM change detection (Stauffer-Grimson, K=3 gaussians/pixel).
struct GmmState {
  static constexpr int kModes = 3;
  int width = 0;
  int height = 0;
  /// Per pixel per mode: weight, mean, variance (packed).
  std::vector<float> weight, mean, var;

  GmmState() = default;
  GmmState(int w, int h);
};
/// Updates the model with `frame` and returns the foreground mask
/// (1 = changed pixel).
ImageU16 change_detection(const ImageF& frame, GmmState& state,
                          float learning_rate = 0.05f,
                          float mahal_threshold = 6.25f,
                          float background_weight = 0.7f);

/// One Lucas-Kanade iteration composed from kernels 3..11: refines `p` so
/// that warp_affine(frame, p) approaches `reference`. Returns the residual
/// mean absolute error after the update.
double lucas_kanade_step(const ImageF& reference, const ImageF& frame,
                         AffineParams& p);

/// Full registration: iterates lucas_kanade_step up to `iterations`.
double lucas_kanade(const ImageF& reference, const ImageF& frame,
                    AffineParams& p, int iterations);

}  // namespace presp::wami
