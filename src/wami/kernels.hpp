// The WAMI-App kernels (PERFECT benchmark suite), decomposed as in the
// paper's Fig. 3: Debayer and Grayscale front-end, the Lucas-Kanade
// registration pipeline split into its constituent stages (the paper
// "decomposed the Lucas-Kanade accelerator into multiple accelerators to
// further parallelize its execution"), and GMM change detection.
//
// All functions are pure software ("golden") implementations over dense
// row-major buffers; the SoC accelerator functional models call the same
// code, so hardware/software equivalence is exact by construction and the
// end-to-end SoC simulation can be checked bit-for-bit against the golden
// pipeline.
//
// Every kernel takes an optional exec::ThreadPool. Work is split into
// row tiles (elementwise kernels) or fixed-size pixel chunks (reductions)
// whose boundaries depend only on the image size — never on the thread
// count — and reduction partials are combined in chunk order, so results
// are bit-identical with a null pool, a 1-thread pool or an N-thread pool.
//
// Kernel indices (Fig. 3 node numbering used by Tables IV/VI):
//    1 debayer          5 subtract            9 sd-update
//    2 grayscale        6 steepest-descent   10 delta-p solve/apply
//    3 gradient         7 hessian            11 parameter update
//    4 warp             8 matrix inversion   12 change detection (GMM)
#pragma once

#include <array>

#include "wami/image.hpp"

namespace presp::exec {
class ThreadPool;
}

namespace presp::wami {

/// Affine warp parameters [p1..p6]:
///   x' = (1+p1)x + p3 y + p5,   y' = p2 x + (1+p4) y + p6.
using AffineParams = std::array<double, 6>;

/// (1) Bayer (RGGB) mosaic to RGB planes, bilinear demosaic.
struct RgbImage {
  ImageF r, g, b;
};
RgbImage debayer(const ImageU16& bayer, exec::ThreadPool* pool = nullptr);

/// (2) RGB to luma (ITU-R BT.601 weights), range-preserving.
ImageF grayscale(const RgbImage& rgb, exec::ThreadPool* pool = nullptr);

/// (1)+(2) fused: luma straight from the Bayer mosaic, without
/// materializing the three RGB planes. Bit-identical to
/// grayscale(debayer(bayer)) — the per-site R/G/B expressions and the
/// BT.601 combination are float in both paths — at ~1/4 the memory
/// traffic.
ImageF luma_from_bayer(const ImageU16& bayer,
                       exec::ThreadPool* pool = nullptr);

/// (3) Central-difference spatial gradients.
struct Gradients {
  ImageF ix, iy;
};
Gradients gradient(const ImageF& image, exec::ThreadPool* pool = nullptr);

/// (4) Inverse-warp `src` by the affine params (bilinear sampling):
/// out(x,y) = src(W(x,y; p)).
ImageF warp_affine(const ImageF& src, const AffineParams& p,
                   exec::ThreadPool* pool = nullptr);

/// (5) Element-wise difference a - b.
ImageF subtract(const ImageF& a, const ImageF& b,
                exec::ThreadPool* pool = nullptr);

/// (6) Steepest-descent images: six planes SD_k = [Ix Iy] * dW/dp_k.
using SteepestDescent = std::array<ImageF, 6>;
SteepestDescent steepest_descent(const Gradients& grads,
                                 exec::ThreadPool* pool = nullptr);

/// (7) Gauss-Newton Hessian H = sum_pix SD^T SD (6x6, row-major).
/// Single blocked pass: each pixel chunk streams the six SD planes once
/// and accumulates all 21 upper-triangle products, instead of 21 separate
/// full-image passes.
using Matrix6 = std::array<double, 36>;
Matrix6 hessian(const SteepestDescent& sd, exec::ThreadPool* pool = nullptr);

/// (8) 6x6 matrix inversion (Gauss-Jordan with partial pivoting).
/// Throws InvalidArgument on a singular system.
Matrix6 invert6(const Matrix6& m);

/// (9) Right-hand side b_k = sum_pix SD_k * error (blocked, single pass).
using Vector6 = std::array<double, 6>;
Vector6 sd_update(const SteepestDescent& sd, const ImageF& error,
                  exec::ThreadPool* pool = nullptr);

/// (10) delta_p = H_inv * b.
Vector6 delta_p(const Matrix6& h_inv, const Vector6& b);

/// (11) Forwards-additive parameter update: p += dp.
void update_params(AffineParams& p, const Vector6& dp);

/// (12) GMM change detection (Stauffer-Grimson, K=3 gaussians/pixel).
struct GmmState {
  static constexpr int kModes = 3;
  int width = 0;
  int height = 0;
  /// Per pixel per mode: weight, mean, variance (packed).
  std::vector<float> weight, mean, var;

  GmmState() = default;
  GmmState(int w, int h);
};
/// Updates the model with `frame` and returns the foreground mask
/// (1 = changed pixel). Per-pixel state is independent, so row tiles
/// update disjoint state and the parallel result is bit-identical.
ImageU16 change_detection(const ImageF& frame, GmmState& state,
                          float learning_rate = 0.05f,
                          float mahal_threshold = 6.25f,
                          float background_weight = 0.7f,
                          exec::ThreadPool* pool = nullptr);

/// One Lucas-Kanade iteration composed from kernels 3..11: refines `p` so
/// that warp_affine(frame, p) approaches `reference`. Returns the residual
/// mean absolute error after the update.
double lucas_kanade_step(const ImageF& reference, const ImageF& frame,
                         AffineParams& p, exec::ThreadPool* pool = nullptr);

/// Full registration: iterates lucas_kanade_step up to `iterations`.
double lucas_kanade(const ImageF& reference, const ImageF& frame,
                    AffineParams& p, int iterations,
                    exec::ThreadPool* pool = nullptr);

}  // namespace presp::wami
