// Synthetic wide-area-motion-imagery generator.
//
// The PERFECT WAMI input data is not redistributable, so the benchmark
// runs on synthetic aerial scenes with the same structure: a textured
// static background observed by a drifting sensor (global affine motion,
// ground truth known) with a few moving vehicle-like objects on top,
// mosaiced into an RGGB Bayer pattern with sensor noise. Ground truth lets
// tests assert that Lucas-Kanade recovers the injected motion and that
// change detection flags exactly the movers.
#pragma once

#include <vector>

#include "util/rng.hpp"
#include "wami/kernels.hpp"

namespace presp::wami {

struct SceneOptions {
  int width = 128;
  int height = 128;
  /// Per-frame camera drift in pixels (global translation).
  double drift_x = 1.2;
  double drift_y = -0.7;
  int num_objects = 3;
  int object_size = 6;
  /// Object speed in pixels/frame (relative to the ground).
  double object_speed = 2.5;
  double noise_sigma = 2.0;
  std::uint64_t seed = 7;
};

class FrameGenerator {
 public:
  explicit FrameGenerator(SceneOptions options = {});

  /// Generates the next frame (Bayer mosaic) and advances the scene.
  ImageU16 next_frame();

  /// Camera translation of the most recent frame relative to frame 0.
  double camera_x() const { return cam_x_; }
  double camera_y() const { return cam_y_; }

  /// Object centers in the most recent frame's coordinates.
  std::vector<std::pair<double, double>> object_positions() const;

  int frames_generated() const { return frame_; }
  const SceneOptions& options() const { return options_; }

 private:
  float background_at(double gx, double gy) const;

  SceneOptions options_;
  presp::Rng rng_;
  /// Smooth value-noise background grid (ground coordinates).
  int grid_size_ = 0;
  std::vector<float> grid_;
  struct Object {
    double x, y, vx, vy;
    float brightness;
  };
  std::vector<Object> objects_;
  double cam_x_ = 0.0;
  double cam_y_ = 0.0;
  int frame_ = 0;
};

}  // namespace presp::wami
