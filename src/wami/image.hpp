// Image containers and DRAM marshalling for the WAMI pipeline.
//
// Images are dense row-major. Kernels operate on raw spans so the same
// functions back both the software golden pipeline and the accelerator
// functional models (which read/write the simulated DRAM).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "soc/memory.hpp"
#include "util/error.hpp"

namespace presp::wami {

template <typename T>
class Image {
 public:
  Image() = default;
  Image(int width, int height, T fill = T{})
      : width_(width), height_(height),
        data_(static_cast<std::size_t>(width) * height, fill) {
    PRESP_REQUIRE(width > 0 && height > 0, "image dimensions must be positive");
  }

  int width() const { return width_; }
  int height() const { return height_; }
  std::size_t size() const { return data_.size(); }

  T& at(int x, int y) {
    PRESP_ASSERT(x >= 0 && x < width_ && y >= 0 && y < height_);
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }
  const T& at(int x, int y) const {
    PRESP_ASSERT(x >= 0 && x < width_ && y >= 0 && y < height_);
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }
  /// Clamped access for border handling.
  const T& at_clamped(int x, int y) const {
    x = x < 0 ? 0 : (x >= width_ ? width_ - 1 : x);
    y = y < 0 ? 0 : (y >= height_ ? height_ - 1 : y);
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }

  std::span<T> pixels() { return data_; }
  std::span<const T> pixels() const { return data_; }

  friend bool operator==(const Image&, const Image&) = default;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<T> data_;
};

using ImageU16 = Image<std::uint16_t>;
using ImageF = Image<float>;

/// Copies a typed array into simulated DRAM at `addr`.
template <typename T>
void store_to_memory(soc::MainMemory& memory, std::uint64_t addr,
                     std::span<const T> values) {
  auto dst = memory.bytes(addr, values.size() * sizeof(T));
  std::memcpy(dst.data(), values.data(), values.size() * sizeof(T));
}

/// Reads a typed array from simulated DRAM.
template <typename T>
std::vector<T> load_from_memory(const soc::MainMemory& memory,
                                std::uint64_t addr, std::size_t count) {
  const auto src = memory.bytes(addr, count * sizeof(T));
  std::vector<T> values(count);
  std::memcpy(values.data(), src.data(), count * sizeof(T));
  return values;
}

}  // namespace presp::wami
