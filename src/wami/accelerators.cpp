#include "wami/accelerators.hpp"

#include <algorithm>

#include "hls/estimator.hpp"
#include "util/error.hpp"

namespace presp::wami {

namespace {

const std::array<std::string, kNumKernels> kKernelNames = {
    "debayer",          // 1
    "grayscale",        // 2
    "gradient",         // 3
    "warp",             // 4
    "subtract",         // 5
    "steepest_descent", // 6
    "hessian",          // 7
    "matrix_invert",    // 8
    "sd_update",        // 9
    "delta_p",          // 10
    "param_update",     // 11
    "change_detection", // 12
};

}  // namespace

const std::string& kernel_name(int index) {
  PRESP_REQUIRE(index >= 1 && index <= kNumKernels,
                "kernel index out of range");
  return kKernelNames[static_cast<std::size_t>(index - 1)];
}

int kernel_index(const std::string& name) {
  for (int i = 0; i < kNumKernels; ++i)
    if (kKernelNames[static_cast<std::size_t>(i)] == name) return i + 1;
  throw InvalidArgument("unknown WAMI kernel '" + name + "'");
}

hls::KernelSpec wami_kernel_spec(int index) {
  using hls::OpKind;
  hls::KernelSpec s;
  s.name = kernel_name(index);
  switch (index) {
    case 1:  // debayer: 5 multiplies + 8 adds per output (bilinear masks)
      s.pe_ops = {{OpKind::kMul16, 5}, {OpKind::kAdd16, 8}};
      s.num_pes = 8;
      s.address_generators = 4;
      s.fsm_states = 12;
      s.buffer_luts = 700;  // two Bayer line buffers
      s.scratchpad_bytes = 16 * 1024;
      s.words_in_per_item = 0.25;  // u16 mosaic in
      s.words_out_per_item = 1.5;  // three f32 planes out
      break;
    case 2:  // grayscale: 3 multiplies + 2 adds
      s.pe_ops = {{OpKind::kMul16, 3}, {OpKind::kAdd16, 2}};
      s.num_pes = 2;
      s.address_generators = 1;
      s.fsm_states = 2;
      s.words_in_per_item = 1.5;
      s.words_out_per_item = 0.5;
      break;
    case 3:  // gradient: central differences, two planes
      s.pe_ops = {{OpKind::kFAdd, 2}, {OpKind::kFMul, 1}};
      s.num_pes = 12;
      s.address_generators = 3;
      s.fsm_states = 8;
      s.buffer_luts = 500;
      s.scratchpad_bytes = 8 * 1024;
      s.words_in_per_item = 0.5;
      s.words_out_per_item = 1.0;
      break;
    case 4:  // warp: bilinear sample = 4 mul + 3 add (plus coordinates)
      s.pe_ops = {{OpKind::kFMul, 4}, {OpKind::kFAdd, 3}};
      s.num_pes = 13;
      s.address_generators = 6;
      s.fsm_states = 16;
      s.buffer_luts = 800;
      s.scratchpad_bytes = 32 * 1024;
      s.words_in_per_item = 2.0;  // gather reads
      s.words_out_per_item = 0.5;
      break;
    case 5:  // subtract
      s.pe_ops = {{OpKind::kFAdd, 1}};
      s.num_pes = 2;
      s.address_generators = 2;
      s.fsm_states = 4;
      s.words_in_per_item = 1.0;
      s.words_out_per_item = 0.5;
      break;
    case 6:  // steepest descent: 6 planes from 2 gradients
      s.pe_ops = {{OpKind::kFMul, 2}, {OpKind::kFAdd, 1}};
      s.num_pes = 22;
      s.address_generators = 3;
      s.fsm_states = 10;
      s.words_in_per_item = 1.0;
      s.words_out_per_item = 3.0;
      break;
    case 7:  // hessian: 21 unique dot products
      s.pe_ops = {{OpKind::kFMac, 2}};
      s.num_pes = 22;
      s.address_generators = 4;
      s.fsm_states = 10;
      s.words_in_per_item = 3.0;
      s.words_out_per_item = 36.0 / 16384.0;
      break;
    case 8:  // 6x6 Gauss-Jordan inversion (deep sequential datapath)
      s.pe_ops = {{OpKind::kFDiv, 8}, {OpKind::kFAdd, 12},
                  {OpKind::kFMul, 6}};
      s.num_pes = 1;
      s.address_generators = 3;
      s.fsm_states = 30;
      s.pipeline_ii = 12;
      s.pipeline_depth = 40;
      s.words_in_per_item = 1.0;
      s.words_out_per_item = 1.0;
      break;
    case 9:  // sd-update: 6 dot products against the error image
      s.pe_ops = {{OpKind::kFMac, 1}};
      s.num_pes = 42;
      s.address_generators = 4;
      s.fsm_states = 12;
      s.words_in_per_item = 3.5;
      s.words_out_per_item = 6.0 / 16384.0;
      break;
    case 10:  // delta-p: solve application (matrix-vector + bookkeeping)
      s.pe_ops = {{OpKind::kFMac, 1}};
      s.num_pes = 45;
      s.address_generators = 5;
      s.fsm_states = 10;
      s.words_in_per_item = 1.0;
      s.words_out_per_item = 1.0;
      break;
    case 11:  // parameter update / flow accumulate (warp-like datapath)
      s.pe_ops = {{OpKind::kFMul, 4}, {OpKind::kFAdd, 3}};
      s.num_pes = 13;
      s.address_generators = 6;
      s.fsm_states = 16;
      s.buffer_luts = 1'000;
      s.scratchpad_bytes = 32 * 1024;
      s.words_in_per_item = 1.0;
      s.words_out_per_item = 0.5;
      break;
    case 12:  // GMM change detection
      s.pe_ops = {{OpKind::kFMul, 4}, {OpKind::kFAdd, 4},
                  {OpKind::kFDiv, 1}, {OpKind::kCmp, 4},
                  {OpKind::kLutFunc, 1}};
      s.num_pes = 4;
      s.address_generators = 4;
      s.fsm_states = 20;
      s.buffer_luts = 2'500;
      s.scratchpad_bytes = 64 * 1024;
      s.words_in_per_item = 5.0;  // pixel + model state in
      s.words_out_per_item = 4.7; // mask + model state back
      break;
    default:
      throw InvalidArgument("kernel index out of range");
  }
  return s;
}

void register_wami_kernels(netlist::ComponentLibrary& lib) {
  for (int i = 1; i <= kNumKernels; ++i)
    hls::register_kernel(lib, wami_kernel_spec(i));
}

netlist::ComponentLibrary wami_library() {
  auto lib = netlist::ComponentLibrary::with_builtins();
  register_wami_kernels(lib);
  return lib;
}

// -------------------------------------------------------------- SoCs

std::array<int, 4> table4_kernels(char which) {
  switch (which) {
    case 'A': return {4, 8, 10, 9};   // Class 1.2
    case 'B': return {2, 3, 11, 1};   // Class 1.1
    case 'C': return {7, 11, 8, 2};   // Class 1.3
    case 'D': return {4, 5, 9, 2};    // Class 2.1 (CPU also reconfigurable)
    default: throw InvalidArgument("Table IV SoC must be 'A'..'D'");
  }
}

netlist::SocConfig table4_soc(char which) {
  const auto kernels = table4_kernels(which);
  netlist::SocConfig soc;
  soc.name = std::string("soc_") + static_cast<char>(which + 32);
  soc.device = "vc707";
  soc.rows = 3;
  soc.cols = 3;
  soc.tiles.assign(9, netlist::TileSpec{});
  soc.tile(0, 0).type = netlist::TileType::kCpu;
  soc.tile(0, 0).cpu_in_reconfigurable_partition = which == 'D';
  soc.tile(0, 1).type = netlist::TileType::kMem;
  soc.tile(0, 2).type = netlist::TileType::kAux;
  const int slots[4][2] = {{1, 0}, {1, 1}, {1, 2}, {2, 0}};
  for (int i = 0; i < 4; ++i) {
    auto& tile = soc.tile(slots[i][0], slots[i][1]);
    tile.type = netlist::TileType::kReconf;
    tile.accelerators = {kernel_name(kernels[static_cast<std::size_t>(i)])};
  }
  soc.validate();
  return soc;
}

std::vector<std::vector<int>> table6_partitions(char which) {
  switch (which) {
    case 'X':
      return {{1, 4, 9, 10, 8}, {2, 3, 6, 7, 11}};
    case 'Y':
      return {{1, 3, 7, 12}, {2, 6, 8}, {4, 9, 10}};
    case 'Z':
      return {{1, 6, 12}, {2, 5, 11}, {4, 10, 7}, {3, 8, 9}};
    default:
      throw InvalidArgument("Table VI SoC must be 'X'..'Z'");
  }
}

netlist::SocConfig table6_soc(char which) {
  const auto partitions = table6_partitions(which);
  netlist::SocConfig soc;
  soc.name = std::string("soc_") + static_cast<char>(which + 32);
  soc.device = "vc707";
  // CPU + MEM + AUX + N reconfigurable tiles, smallest grid that fits.
  const int tiles_needed = 3 + static_cast<int>(partitions.size());
  soc.rows = tiles_needed <= 6 ? 2 : 3;
  soc.cols = 3;
  soc.tiles.assign(static_cast<std::size_t>(soc.rows) * soc.cols,
                   netlist::TileSpec{});
  soc.tile(0, 0).type = netlist::TileType::kCpu;
  soc.tile(0, 1).type = netlist::TileType::kMem;
  soc.tile(0, 2).type = netlist::TileType::kAux;
  int slot = 3;
  for (const auto& members : partitions) {
    auto& tile = soc.tiles[static_cast<std::size_t>(slot++)];
    tile.type = netlist::TileType::kReconf;
    for (const int k : members) tile.accelerators.push_back(kernel_name(k));
  }
  soc.validate();
  return soc;
}

// ---------------------------------------------------------- registry

long long kernel_items(int index, const WamiWorkload& workload) {
  const long long pixels =
      static_cast<long long>(workload.width) * workload.height;
  switch (index) {
    case 8: return 36;        // one 6x6 matrix
    case 10: return 42;       // 6x6 * 6 + update bookkeeping
    case 11: return 64;       // parameter block update
    default: return pixels;   // full-frame kernels
  }
}

long long kernel_cycles_per_item(int index) {
  // Profiled per-item datapath costs at the 78 MHz SoC clock (the Fig. 3
  // exec-time annotations, re-derived by profiling our kernels on a 2x2
  // SoC — bench_fig3_profiles). The deep floating-point kernels dominate.
  switch (index) {
    case 1: return 10;   // debayer
    case 2: return 4;    // grayscale
    case 3: return 8;    // gradient
    case 4: return 26;   // warp (gather + bilinear)
    case 5: return 3;    // subtract
    case 6: return 12;   // steepest descent
    case 7: return 34;   // hessian (21 dot products)
    case 8: return 600;  // 6x6 Gauss-Jordan, deep divider chains
    case 9: return 14;   // sd-update
    case 10: return 60;  // delta-p solve application
    case 11: return 20;  // parameter update
    case 12: return 48;  // GMM update + classification
    default: throw InvalidArgument("kernel index out of range");
  }
}

soc::AcceleratorRegistry wami_accelerator_registry(
    const WamiWorkload& workload, bool functional) {
  // Functional models are wired by the application layer (app.cpp), which
  // owns the memory layout; the registry built here carries timing and
  // resource data. When `functional` is set, the caller is expected to
  // attach compute callbacks via wami::WamiApp.
  (void)functional;
  (void)workload;
  soc::AcceleratorRegistry registry;
  for (int i = 1; i <= kNumKernels; ++i) {
    const auto kernel = hls::estimate(wami_kernel_spec(i));
    soc::AcceleratorSpec spec;
    spec.name = kernel.name;
    spec.latency = kernel.latency;
    // The HLS throughput bound is never reached at the 78 MHz SoC clock;
    // use the profiled per-item cost instead (memory-fed datapaths).
    spec.latency.items_per_beat = 1;
    spec.latency.ii = static_cast<int>(kernel_cycles_per_item(i));
    spec.luts = kernel.resources.luts;
    registry.add(std::move(spec));
  }
  return registry;
}

}  // namespace presp::wami
