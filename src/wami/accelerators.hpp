// WAMI accelerator definitions: HLS kernel specifications for the twelve
// Fig. 3 nodes, behavioral models for the SoC simulator, and the SoC
// configurations of the paper's evaluation (Tables IV and VI).
//
// Kernel indices follow Fig. 3 (see kernels.hpp). PE counts are calibrated
// so the Table IV SoCs land in the paper's design classes:
//   SoC_A {4,8,10,9}  gamma ~ 1.30 (paper 1.26)  Class 1.2
//   SoC_B {2,3,11,1}  gamma ~ 0.61 (paper 0.60)  Class 1.1
//   SoC_C {7,11,8,2}  gamma ~ 1.00 (paper 0.97)  Class 1.3
//   SoC_D {4,5,9,2}+CPU gamma ~ 2.5 (paper 2.4)  Class 2.1
#pragma once

#include <array>
#include <string>
#include <vector>

#include "hls/kernel_spec.hpp"
#include "netlist/components.hpp"
#include "netlist/soc_config.hpp"
#include "soc/accelerator.hpp"

namespace presp::wami {

inline constexpr int kNumKernels = 12;

/// Canonical module name of Fig. 3 node `index` (1-based).
const std::string& kernel_name(int index);
/// Inverse of kernel_name. Throws InvalidArgument for unknown names.
int kernel_index(const std::string& name);

/// HLS specification of one kernel (index 1..12).
hls::KernelSpec wami_kernel_spec(int index);

/// Registers all twelve kernels into a component library (for the flow).
void register_wami_kernels(netlist::ComponentLibrary& lib);

/// Component library with builtins + all WAMI kernels.
netlist::ComponentLibrary wami_library();

// ---------------------------------------------------------------- SoCs

/// Table IV evaluation SoCs: 3x3 grids, four single-kernel reconfigurable
/// tiles each; SoC_D has its CPU tile in the reconfigurable part.
/// `which` is 'A'..'D'.
netlist::SocConfig table4_soc(char which);
/// The paper's accelerator sets per SoC (Fig. 3 indices).
std::array<int, 4> table4_kernels(char which);

/// Table VI embedded SoCs: SoC_X (2 reconfigurable tiles), SoC_Y (3),
/// SoC_Z (4), hosting the Table VI member sets. `which` is 'X'..'Z'.
netlist::SocConfig table6_soc(char which);
/// Member kernels per reconfigurable tile (Fig. 3 indices).
std::vector<std::vector<int>> table6_partitions(char which);

// ------------------------------------------------ behavioral models

struct WamiWorkload {
  int width = 128;
  int height = 128;
};

/// Builds the accelerator registry for SoC simulation: per-kernel latency
/// models (from the HLS estimator) + functional models operating on the
/// simulated DRAM. Functional models use the layout of WamiAppMemory (see
/// app.hpp); timing-only simulations may pass empty compute functions via
/// `functional = false`.
soc::AcceleratorRegistry wami_accelerator_registry(
    const WamiWorkload& workload, bool functional = false);

/// Items per invocation of kernel `index` on a WxH frame (drives the
/// latency model and the Fig. 3 profiling bench).
long long kernel_items(int index, const WamiWorkload& workload);

/// Profiled datapath cycles per item at the SoC clock (Fig. 3 exec-time
/// basis).
long long kernel_cycles_per_item(int index);

}  // namespace presp::wami
