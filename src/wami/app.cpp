#include "wami/app.hpp"

#include <algorithm>
#include <cstring>

#include "hls/estimator.hpp"
#include "runtime/workqueue.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace presp::wami {

namespace {

/// Scheduled node: kernel `k` in Lucas-Kanade iteration `iter`. The
/// front-end (1, 2) runs in iteration 0 only; the LK stages (3..11) run
/// every iteration; change detection (12) runs after the last iteration.
struct Node {
  int k = 0;
  int iter = 0;
};

bool node_scheduled(int k, int iter, int iterations) {
  if (k <= 2) return iter == 0;
  if (k == 12) return iter == iterations - 1;
  return true;
}

std::vector<Node> deps_of(int k, int iter, int iterations) {
  switch (k) {
    case 1: return {};
    case 2: return {{1, 0}};
    case 3:
    case 4:
      return iter == 0 ? std::vector<Node>{{2, 0}}
                       : std::vector<Node>{{11, iter - 1}};
    case 5: return {{4, iter}};
    case 6: return {{3, iter}};
    case 7: return {{6, iter}};
    case 8: return {{7, iter}};
    case 9: return {{5, iter}, {6, iter}};
    case 10: return {{8, iter}, {9, iter}};
    case 11: return {{10, iter}};
    case 12: return {{11, iterations - 1}};
    default: throw LogicError("unknown kernel node");
  }
}

std::size_t node_index(int k, int iter) {
  return static_cast<std::size_t>(iter) * (kNumKernels + 1) +
         static_cast<std::size_t>(k);
}

}  // namespace

struct WamiApp::State {
  WamiAppOptions options;
  soc::AcceleratorRegistry registry;
  FrameGenerator generator;
  int frame = 0;

  // DRAM layout (addresses).
  std::uint64_t bayer = 0, rgb = 0, gray = 0, ref = 0, warped = 0,
                error = 0, ix = 0, iy = 0, sd0 = 0, hmat = 0, hinv = 0,
                bvec = 0, params = 0, dp = 0, mask = 0;
  std::size_t plane_bytes = 0;

  /// Serializes software-fallback kernels on the single CPU.
  std::unique_ptr<sim::Semaphore> cpu_lock;

  // Host-side replica state.
  GmmState gmm_soc;
  GmmState gmm_golden;
  ImageU16 golden_mask;
  AffineParams golden_params{};
  ImageF golden_ref;

  // Per-frame completion events, indexed by node_index(k, iter).
  std::vector<std::unique_ptr<sim::SimEvent>> done;

  explicit State(const WamiAppOptions& opt)
      : options(opt),
        registry(wami_accelerator_registry(opt.workload, opt.functional)),
        generator(opt.scene),
        gmm_soc(opt.workload.width, opt.workload.height),
        gmm_golden(opt.workload.width, opt.workload.height),
        golden_mask(opt.workload.width, opt.workload.height),
        golden_ref(opt.workload.width, opt.workload.height) {}

  int w() const { return options.workload.width; }
  int h() const { return options.workload.height; }
  std::size_t pixels() const {
    return static_cast<std::size_t>(w()) * h();
  }

  // ---- typed DRAM helpers ------------------------------------------

  ImageF load_plane(soc::MainMemory& mem, std::uint64_t addr) const {
    ImageF img(w(), h());
    const auto values = load_from_memory<float>(mem, addr, pixels());
    std::copy(values.begin(), values.end(), img.pixels().begin());
    return img;
  }
  void store_plane(soc::MainMemory& mem, std::uint64_t addr,
                   const ImageF& img) const {
    store_to_memory<float>(mem, addr, img.pixels());
  }
  AffineParams load_params(soc::MainMemory& mem) const {
    const auto values = load_from_memory<double>(mem, params, 6);
    AffineParams p{};
    std::copy(values.begin(), values.end(), p.begin());
    return p;
  }

  /// Executes kernel `k` functionally against the simulated DRAM.
  void execute(soc::MainMemory& mem, int k) {
    if (!options.functional) return;
    switch (k) {
      case 1: {
        ImageU16 in(w(), h());
        const auto raw =
            load_from_memory<std::uint16_t>(mem, bayer, pixels());
        std::copy(raw.begin(), raw.end(), in.pixels().begin());
        const RgbImage out = debayer(in);
        store_plane(mem, rgb, out.r);
        store_plane(mem, rgb + plane_bytes, out.g);
        store_plane(mem, rgb + 2 * plane_bytes, out.b);
        break;
      }
      case 2: {
        const RgbImage in{load_plane(mem, rgb),
                          load_plane(mem, rgb + plane_bytes),
                          load_plane(mem, rgb + 2 * plane_bytes)};
        const ImageF out = grayscale(in);
        store_plane(mem, gray, out);
        if (frame == 0) store_plane(mem, ref, out);  // template frame
        break;
      }
      case 3: {
        const Gradients out = gradient(load_plane(mem, gray));
        store_plane(mem, ix, out.ix);
        store_plane(mem, iy, out.iy);
        break;
      }
      case 4: {
        const ImageF out =
            warp_affine(load_plane(mem, gray), load_params(mem));
        store_plane(mem, warped, out);
        break;
      }
      case 5: {
        const ImageF out =
            subtract(load_plane(mem, ref), load_plane(mem, warped));
        store_plane(mem, error, out);
        break;
      }
      case 6: {
        const SteepestDescent out = steepest_descent(
            Gradients{load_plane(mem, ix), load_plane(mem, iy)});
        for (int i = 0; i < 6; ++i)
          store_plane(mem, sd0 + static_cast<std::uint64_t>(i) * plane_bytes,
                      out[static_cast<std::size_t>(i)]);
        break;
      }
      case 7: {
        const Matrix6 out = hessian(load_sd(mem));
        store_to_memory<double>(mem, hmat, out);
        break;
      }
      case 8: {
        const auto in = load_from_memory<double>(mem, hmat, 36);
        Matrix6 m{};
        std::copy(in.begin(), in.end(), m.begin());
        const Matrix6 out = invert6(m);
        store_to_memory<double>(mem, hinv, out);
        break;
      }
      case 9: {
        const Vector6 out =
            sd_update(load_sd(mem), load_plane(mem, error));
        store_to_memory<double>(mem, bvec, out);
        break;
      }
      case 10: {
        const auto hi = load_from_memory<double>(mem, hinv, 36);
        const auto bv = load_from_memory<double>(mem, bvec, 6);
        Matrix6 m{};
        Vector6 b{};
        std::copy(hi.begin(), hi.end(), m.begin());
        std::copy(bv.begin(), bv.end(), b.begin());
        const Vector6 out = delta_p(m, b);
        store_to_memory<double>(mem, dp, out);
        break;
      }
      case 11: {
        AffineParams p = load_params(mem);
        const auto dv = load_from_memory<double>(mem, dp, 6);
        Vector6 v{};
        std::copy(dv.begin(), dv.end(), v.begin());
        update_params(p, v);
        store_to_memory<double>(mem, params, p);
        break;
      }
      case 12: {
        const ImageU16 out =
            change_detection(load_plane(mem, warped), gmm_soc);
        store_to_memory<std::uint16_t>(mem, mask, out.pixels());
        break;
      }
      default:
        throw LogicError("unknown kernel node");
    }
  }

  SteepestDescent load_sd(soc::MainMemory& mem) const {
    SteepestDescent sd{ImageF(w(), h()), ImageF(w(), h()), ImageF(w(), h()),
                       ImageF(w(), h()), ImageF(w(), h()), ImageF(w(), h())};
    for (int i = 0; i < 6; ++i)
      sd[static_cast<std::size_t>(i)] = load_plane(
          mem, sd0 + static_cast<std::uint64_t>(i) * plane_bytes);
    return sd;
  }

  /// Host-side golden replica of one frame (same kernel graph, same
  /// iteration structure, pure software).
  void golden_frame(const ImageU16& input, int iterations) {
    const RgbImage rgb_img = debayer(input);
    const ImageF gray_img = grayscale(rgb_img);
    if (frame == 0) golden_ref = gray_img;
    ImageF warped_img(gray_img.width(), gray_img.height());
    for (int iter = 0; iter < iterations; ++iter) {
      const Gradients grads = gradient(gray_img);
      warped_img = warp_affine(gray_img, golden_params);
      const ImageF error_img = subtract(golden_ref, warped_img);
      const SteepestDescent sdg = steepest_descent(grads);
      const Matrix6 h = hessian(sdg);
      const Matrix6 h_inv = invert6(h);
      const Vector6 b = sd_update(sdg, error_img);
      const Vector6 dpv = delta_p(h_inv, b);
      update_params(golden_params, dpv);
    }
    golden_mask = change_detection(warped_img, gmm_golden);
  }
};

WamiApp::WamiApp(char which, WamiAppOptions options)
    : which_(which), options_(options) {
  PRESP_REQUIRE(options_.frames >= 1, "need at least one frame");
  options_.scene.width = options_.workload.width;
  options_.scene.height = options_.workload.height;

  state_ = std::make_unique<State>(options_);

  // Attach functional models: the accelerator callback simply executes
  // the kernel node carried in the task's aux argument.
  if (options_.functional) {
    State* state = state_.get();
    for (int k = 1; k <= kNumKernels; ++k) {
      const auto base = state->registry.get(kernel_name(k));
      soc::AcceleratorSpec spec = base;
      spec.compute = [state](soc::MainMemory& mem,
                             const soc::AccelTask& task) {
        state->execute(mem, static_cast<int>(task.aux));
      };
      state->registry.add(std::move(spec));
    }
  }

  soc_ = std::make_unique<soc::Soc>(table6_soc(which), state_->registry,
                                    options_.soc);
  if (options_.fault.injector != nullptr)
    soc_->set_fault_injector(options_.fault.injector);
  store_ = std::make_unique<runtime::BitstreamStore>(soc_->memory(),
                                                     options_.store);
  manager_ = std::make_unique<runtime::ReconfigurationManager>(
      *soc_, *store_, options_.manager);

  // DRAM layout.
  auto& mem = soc_->memory();
  State& s = *state_;
  s.plane_bytes = s.pixels() * sizeof(float);
  s.bayer = mem.allocate("bayer", s.pixels() * 2);
  s.rgb = mem.allocate("rgb", 3 * s.plane_bytes);
  s.gray = mem.allocate("gray", s.plane_bytes);
  s.ref = mem.allocate("ref", s.plane_bytes);
  s.warped = mem.allocate("warped", s.plane_bytes);
  s.error = mem.allocate("error", s.plane_bytes);
  s.ix = mem.allocate("ix", s.plane_bytes);
  s.iy = mem.allocate("iy", s.plane_bytes);
  s.sd0 = mem.allocate("sd", 6 * s.plane_bytes);
  s.hmat = mem.allocate("hessian", 36 * sizeof(double));
  s.hinv = mem.allocate("hinv", 36 * sizeof(double));
  s.bvec = mem.allocate("b", 6 * sizeof(double));
  s.params = mem.allocate("params", 6 * sizeof(double));
  s.dp = mem.allocate("dp", 6 * sizeof(double));
  s.mask = mem.allocate("mask", s.pixels() * 2);

  // Load the partial bitstreams into kernel memory (Section V).
  const auto partitions = table6_partitions(which);
  const auto reconf_indices =
      soc_->config().tiles_of(netlist::TileType::kReconf);
  PRESP_ASSERT(partitions.size() == reconf_indices.size());
  for (std::size_t t = 0; t < partitions.size(); ++t) {
    for (const int k : partitions[t]) {
      std::size_t bytes;
      if (static_cast<std::size_t>(k) <= options_.pbs_bytes.size() &&
          options_.pbs_bytes[static_cast<std::size_t>(k - 1)] > 0) {
        bytes = options_.pbs_bytes[static_cast<std::size_t>(k - 1)];
      } else {
        // ~11 bytes of compressed frames per LUT: lands in the Table VI
        // 245-400 KB range for WAMI-sized kernels.
        bytes = static_cast<std::size_t>(
            state_->registry.get(kernel_name(k)).luts * 11);
      }
      store_->add(reconf_indices[t], kernel_name(k), bytes);
    }
  }

  // Cross-tile images: every kernel loadable on every tile, so a
  // quarantined tile's work can re-route instead of dropping to software.
  if (options_.fault.cross_tile_images) {
    for (const int tile : reconf_indices) {
      for (int k = 1; k <= kNumKernels; ++k) {
        if (store_->has(tile, kernel_name(k))) continue;
        store_->add(tile, kernel_name(k),
                    static_cast<std::size_t>(
                        state_->registry.get(kernel_name(k)).luts * 11));
      }
    }
  }

  // Greybox blanking images: the manager needs them to leave a safe
  // partition behind when it escalates a failed request.
  for (const int tile : reconf_indices)
    if (!store_->has(tile, "")) store_->add_blank(tile, 65'536);
}

WamiApp::~WamiApp() = default;

namespace {

/// One software thread per reconfigurable tile. Reconfigurations are
/// *interleaved*: as soon as the tile finishes a member, the thread queues
/// the reconfiguration for its next member while data dependencies are
/// still being produced by other tiles — with enough tiles this hides most
/// of the reconfiguration latency, which is exactly the effect the paper
/// observes ("[SoC_X] has a higher non-interleaved reconfiguration due to
/// the fewer number of reconfigurable tiles").
/// Fire-and-forget cache warm-up: owns its completion event so callers
/// can drop the handle (mirrors DprApi::prefetch).
sim::Process warm_store(runtime::BitstreamStore& store, sim::Kernel& kernel,
                        int tile, std::string module) {
  sim::SimEvent warmed(kernel);
  store.prefetch(kernel, tile, module, warmed);
  co_await warmed.wait();
}

sim::Process tile_worker(soc::Soc& soc,
                         runtime::ReconfigurationManager& manager,
                         runtime::BitstreamStore& store,
                         sim::Kernel& kernel, WamiApp::State& state,
                         int tile, std::vector<int> members, int iterations,
                         WamiWorkload workload,
                         std::uint64_t task_src, std::uint64_t task_dst) {
  std::sort(members.begin(), members.end());  // index order is topological
  for (int iter = 0; iter < iterations; ++iter) {
    for (std::size_t m = 0; m < members.size(); ++m) {
      const int k = members[m];
      if (!node_scheduled(k, iter, iterations)) continue;
      if (state.options.prefetch_next_kernel) {
        // While this member reconfigures and runs, pull the next one's
        // bitstream from the async source into the cache.
        int next = -1;
        for (std::size_t j = m + 1; j < members.size() && next < 0; ++j)
          if (node_scheduled(members[j], iter, iterations)) next = members[j];
        for (std::size_t j = 0;
             next < 0 && iter + 1 < iterations && j < members.size(); ++j)
          if (node_scheduled(members[j], iter + 1, iterations))
            next = members[j];
        if (next >= 0 && store.has(tile, kernel_name(next)))
          warm_store(store, kernel, tile, kernel_name(next));
      }
      // Prefetch: swap the partition to this member immediately; the ICAP
      // transfer overlaps the wait for upstream producers. A non-ok
      // prefetch is ignored: run() below re-routes or reports the final
      // verdict.
      runtime::Completion prefetched(kernel);
      manager.ensure_module(tile, kernel_name(k), prefetched);
      for (const Node dep : deps_of(k, iter, iterations))
        co_await state.done[node_index(dep.k, dep.iter)]->wait();
      co_await prefetched.wait();

      soc::AccelTask task;
      task.src = task_src;
      task.dst = task_dst;
      task.items = kernel_items(k, workload);
      task.aux = static_cast<std::uint64_t>(k);
      runtime::Completion run_done(kernel);
      manager.run(tile, kernel_name(k), task, run_done);
      co_await run_done.wait();
      if (!run_done.ok()) {
        // Hardware path exhausted (tile quarantined, no healthy host):
        // degrade gracefully to the software kernel. Failed hardware
        // attempts never executed the datapath, so this is the node's
        // first and only execution — results stay bit-exact.
        manager.note_fallback();
        co_await state.cpu_lock->acquire();
        const auto cycles = static_cast<sim::Time>(
            static_cast<double>(kernel_items(k, workload)) *
            static_cast<double>(kernel_cycles_per_item(k)) *
            state.options.cpu_fallback_factor);
        co_await sim::Delay(kernel, cycles);
        soc.energy().on_cpu_busy(static_cast<long long>(cycles));
        state.execute(soc.memory(), k);
        state.cpu_lock->release();
      }
      state.done[node_index(k, iter)]->trigger();
    }
  }
}

/// Software-fallback node: kernels absent from this SoC's mapping run on
/// the CPU tile — serialized on the single core and slower per item than
/// the accelerator datapath.
sim::Process virtual_node(soc::Soc& soc, WamiApp::State& state, int k,
                          int iter, int iterations) {
  for (const Node dep : deps_of(k, iter, iterations))
    co_await state.done[node_index(dep.k, dep.iter)]->wait();
  co_await state.cpu_lock->acquire();
  const auto cycles = static_cast<sim::Time>(
      static_cast<double>(kernel_items(k, state.options.workload)) *
      static_cast<double>(kernel_cycles_per_item(k)) *
      state.options.cpu_fallback_factor);
  co_await sim::Delay(soc.kernel(), cycles);
  soc.energy().on_cpu_busy(static_cast<long long>(cycles));
  state.execute(soc.memory(), k);
  state.cpu_lock->release();
  state.done[node_index(k, iter)]->trigger();
}

}  // namespace

WamiAppResult WamiApp::run() {
  State& s = *state_;
  auto& kernel = soc_->kernel();
  auto& mem = soc_->memory();

  const auto partitions = table6_partitions(which_);
  const auto reconf_indices =
      soc_->config().tiles_of(netlist::TileType::kReconf);
  std::vector<bool> present(kNumKernels + 1, false);
  for (const auto& members : partitions)
    for (const int k : members) present[static_cast<std::size_t>(k)] = true;

  // Initialize warp parameters to identity offset (all zeros).
  const std::array<double, 6> zero{};
  store_to_memory<double>(mem, s.params, zero);

  if (!s.cpu_lock)
    s.cpu_lock = std::make_unique<sim::Semaphore>(kernel, 1);

  WamiAppResult result;
  result.soc = which_;

  for (int f = 0; f < options_.frames; ++f) {
    s.frame = f;
    const ImageU16 input = s.generator.next_frame();
    store_to_memory<std::uint16_t>(mem, s.bayer, input.pixels());

    // Fresh completion events.
    const int iterations = options_.lk_iterations;
    s.done.clear();
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(iterations) * (kNumKernels + 1); ++i)
      s.done.push_back(std::make_unique<sim::SimEvent>(kernel));

    const sim::Time t0 = kernel.now();
    const double j0 = soc_->total_joules();
    const auto reconf0 = soc_->aux().reconfigurations();
    const bool tracing = trace::enabled(trace::Category::kApp);
    if (tracing)
      trace::sim_begin(trace::Category::kApp,
                       "frame " + std::to_string(f), t0, trace::kTrackApp);

    for (int iter = 0; iter < iterations; ++iter)
      for (int k = 1; k <= kNumKernels; ++k)
        if (!present[static_cast<std::size_t>(k)] &&
            node_scheduled(k, iter, iterations))
          virtual_node(*soc_, s, k, iter, iterations);
    for (std::size_t t = 0; t < partitions.size(); ++t)
      tile_worker(*soc_, *manager_, *store_, kernel, s, reconf_indices[t],
                  partitions[t], iterations, options_.workload, s.gray,
                  s.mask);

    kernel.run();  // frame completes when every process settles

    if (tracing)
      trace::sim_end(trace::Category::kApp, "frame " + std::to_string(f),
                     kernel.now(), trace::kTrackApp);

    for (int iter = 0; iter < iterations; ++iter)
      for (int k = 1; k <= kNumKernels; ++k)
        if (node_scheduled(k, iter, iterations))
          PRESP_ASSERT_MSG(s.done[node_index(k, iter)]->triggered(),
                           "kernel node never completed (deadlock)");

    FrameStats stats;
    stats.seconds = static_cast<double>(kernel.now() - t0) /
                    (soc_->config().clock_mhz * 1e6);
    stats.joules = soc_->total_joules() - j0;
    stats.reconfigurations =
        static_cast<int>(soc_->aux().reconfigurations() - reconf0);

    if (options_.functional && options_.verify) {
      s.golden_frame(input, iterations);
      const auto soc_mask =
          load_from_memory<std::uint16_t>(mem, s.mask, s.pixels());
      const auto soc_params = s.load_params(mem);
      stats.verified =
          std::equal(soc_mask.begin(), soc_mask.end(),
                     s.golden_mask.pixels().begin()) &&
          soc_params == s.golden_params;
      result.all_verified = result.all_verified && stats.verified;
      if (!stats.verified) ++result.frames_lost;
    }
    result.frames.push_back(stats);

    // Between-frame maintenance: scrub partitions (repairs latent SEUs
    // via readback verify + partial-bitstream rewrite) and, for soak
    // runs, re-admit quarantined tiles.
    if (options_.fault.scrub_between_frames) {
      // Pool-backed drain: all partitions scrub concurrently in sim-time
      // (the PRC semaphore still serializes the ICAP readbacks) instead
      // of one full spawn-and-run round trip per tile.
      runtime::RequestPool scrubbers(kernel, *manager_,
                                     options_.fault.scrub_workers);
      for (const int tile : reconf_indices) {
        runtime::PoolRequest request;
        request.kind = runtime::PoolRequest::Kind::kScrub;
        request.tile = tile;
        scrubbers.enqueue(request);
      }
      scrubbers.drain();
      kernel.run();
      PRESP_ASSERT(scrubbers.idle());
    }
    if (options_.fault.rehabilitate_between_frames)
      for (const int tile : reconf_indices) manager_->rehabilitate(tile);
  }

  // Aggregate: steady state excludes the first frame (cold bitstores).
  double sum_s = 0.0;
  double sum_j = 0.0;
  int counted = 0;
  for (std::size_t f = 0; f < result.frames.size(); ++f) {
    if (f == 0 && result.frames.size() > 1) {
      result.first_frame_seconds = result.frames[f].seconds;
      continue;
    }
    sum_s += result.frames[f].seconds;
    sum_j += result.frames[f].joules;
    ++counted;
  }
  result.seconds_per_frame = sum_s / std::max(1, counted);
  result.joules_per_frame = sum_j / std::max(1, counted);
  result.reconfigurations = manager_->stats().reconfigurations;
  result.reconfigurations_avoided =
      manager_->stats().reconfigurations_avoided;
  result.icap_bytes = soc_->aux().icap_bytes();
  result.energy_breakdown = soc_->energy_breakdown();
  result.params = options_.functional ? s.load_params(mem) : AffineParams{};
  result.software_fallbacks = manager_->stats().fallbacks;
  result.watchdog_fires = manager_->stats().watchdog_fires;
  result.reroutes = manager_->stats().reroutes;
  result.quarantines = manager_->health().stats().quarantines;
  result.scrub_repairs = manager_->stats().seu_repairs;
  if (options_.fault.injector != nullptr)
    result.faults_injected = options_.fault.injector->stats().total_injected();
  return result;
}

}  // namespace presp::wami
