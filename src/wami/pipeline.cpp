#include "wami/pipeline.hpp"

#include "util/error.hpp"

namespace presp::wami {

PipelineFrameResult WamiPipeline::process(const ImageU16& bayer) {
  PRESP_REQUIRE(options_.lk_iterations >= 1,
                "pipeline needs at least one LK iteration");
  const ImageF gray = grayscale(debayer(bayer));

  if (!reference_) {
    reference_ = gray;
    gmm_.emplace(gray.width(), gray.height());
    params_ = AffineParams{};
  } else {
    PRESP_REQUIRE(gray.width() == reference_->width() &&
                      gray.height() == reference_->height(),
                  "frame size changed mid-stream");
  }

  PipelineFrameResult result;
  result.residual =
      lucas_kanade(*reference_, gray, params_, options_.lk_iterations);
  result.params = params_;
  result.stabilized = warp_affine(gray, params_);
  result.change_mask = change_detection(result.stabilized, *gmm_);
  for (const auto v : result.change_mask.pixels())
    result.changed_pixels += v;
  ++frames_;
  return result;
}

void WamiPipeline::reset() {
  reference_.reset();
  gmm_.reset();
  params_ = AffineParams{};
  frames_ = 0;
}

}  // namespace presp::wami
