#include "wami/pipeline.hpp"

#include <utility>

#include "exec/thread_pool.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"

namespace presp::wami {

WamiPipeline::WamiPipeline(PipelineOptions options)
    : options_(options) {
  if (options_.threads > 1)
    pool_ = std::make_unique<exec::ThreadPool>(options_.threads);
}

WamiPipeline::~WamiPipeline() = default;

PipelineFrameResult WamiPipeline::process(const ImageU16& bayer) {
  return process_luma(luma_from_bayer(bayer, pool()));
}

PipelineFrameResult WamiPipeline::process_luma(ImageF gray) {
  PRESP_REQUIRE(options_.lk_iterations >= 1,
                "pipeline needs at least one LK iteration");
  if (!reference_) {
    reference_ = gray;
    gmm_.emplace(gray.width(), gray.height());
    params_ = AffineParams{};
  } else {
    PRESP_REQUIRE(gray.width() == reference_->width() &&
                      gray.height() == reference_->height(),
                  "frame size changed mid-stream");
  }

  PipelineFrameResult result;
  {
    const trace::TraceScope span(trace::Category::kExec, "task:wami:lk");
    result.residual = lucas_kanade(*reference_, gray, params_,
                                   options_.lk_iterations, pool());
  }
  result.params = params_;
  {
    const trace::TraceScope span(trace::Category::kExec, "task:wami:warp");
    result.stabilized = warp_affine(gray, params_, pool());
  }
  {
    const trace::TraceScope span(trace::Category::kExec, "task:wami:cd");
    result.change_mask =
        change_detection(result.stabilized, *gmm_, 0.05f, 6.25f, 0.7f, pool());
  }
  for (const auto v : result.change_mask.pixels())
    result.changed_pixels += v;
  ++frames_;
  return result;
}

std::vector<PipelineFrameResult> WamiPipeline::process_batch(
    std::span<const ImageU16> frames) {
  std::vector<PipelineFrameResult> results;
  results.reserve(frames.size());
  if (frames.empty()) return results;

  // Software pipelining: the front-end (Bayer -> luma) of frame i+1 is
  // independent of all back-end state, so it runs as a pool task while
  // the caller's thread executes the stateful back-end of frame i. The
  // prefetch task itself runs single-threaded (null pool) — the back-end's
  // row tiles fill the remaining workers — and chunk boundaries never
  // depend on the schedule, so results match process() bit for bit.
  ImageF luma = luma_from_bayer(frames[0], pool());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    ImageF next;
    exec::TaskGroup prefetch(pool());
    if (i + 1 < frames.size()) {
      const ImageU16& bayer = frames[i + 1];
      if (pool() != nullptr) {
        prefetch.run([&next, &bayer] {
          const trace::TraceScope span(trace::Category::kExec,
                                       "task:wami:luma-prefetch");
          next = luma_from_bayer(bayer);
        });
      } else {
        next = luma_from_bayer(bayer);
      }
    }
    results.push_back(process_luma(std::move(luma)));
    prefetch.wait();
    luma = std::move(next);
  }
  return results;
}

void WamiPipeline::reset() {
  reference_.reset();
  gmm_.reset();
  params_ = AffineParams{};
  frames_ = 0;
}

}  // namespace presp::wami
