#include "wami/frame_generator.hpp"

#include <algorithm>
#include <cmath>

namespace presp::wami {

FrameGenerator::FrameGenerator(SceneOptions options)
    : options_(options), rng_(options.seed) {
  PRESP_REQUIRE(options_.width >= 16 && options_.height >= 16,
                "scene too small");
  // Value-noise background over a coarse grid covering the scene plus
  // maximal drift margin.
  grid_size_ = std::max(options_.width, options_.height) / 4 + 64;
  grid_.resize(static_cast<std::size_t>(grid_size_) * grid_size_);
  for (auto& g : grid_)
    g = static_cast<float>(200.0 + 600.0 * rng_.next_double());

  for (int i = 0; i < options_.num_objects; ++i) {
    Object obj;
    obj.x = rng_.next_double(options_.width * 0.2, options_.width * 0.8);
    obj.y = rng_.next_double(options_.height * 0.2, options_.height * 0.8);
    const double angle = rng_.next_double(0.0, 6.2831853);
    obj.vx = options_.object_speed * std::cos(angle);
    obj.vy = options_.object_speed * std::sin(angle);
    obj.brightness = static_cast<float>(1'400.0 + 800.0 * rng_.next_double());
    objects_.push_back(obj);
  }
}

float FrameGenerator::background_at(double gx, double gy) const {
  // Bilinear value noise at 1/8 pixel frequency, two octaves.
  auto sample = [&](double x, double y, double freq, float amp) {
    const double fx = x * freq + 1000.0;
    const double fy = y * freq + 1000.0;
    const int x0 = static_cast<int>(std::floor(fx)) % grid_size_;
    const int y0 = static_cast<int>(std::floor(fy)) % grid_size_;
    const int x1 = (x0 + 1) % grid_size_;
    const int y1 = (y0 + 1) % grid_size_;
    const float tx = static_cast<float>(fx - std::floor(fx));
    const float ty = static_cast<float>(fy - std::floor(fy));
    const auto at = [&](int xx, int yy) {
      return grid_[static_cast<std::size_t>(yy) * grid_size_ + xx];
    };
    const float v = (1 - tx) * (1 - ty) * at(x0, y0) +
                    tx * (1 - ty) * at(x1, y0) +
                    (1 - tx) * ty * at(x0, y1) + tx * ty * at(x1, y1);
    return amp * v;
  };
  return sample(gx, gy, 0.125, 0.7f) + sample(gx, gy, 0.035, 0.3f);
}

ImageU16 FrameGenerator::next_frame() {
  if (frame_ > 0) {
    cam_x_ += options_.drift_x;
    cam_y_ += options_.drift_y;
    for (Object& obj : objects_) {
      obj.x += obj.vx;
      obj.y += obj.vy;
      // Bounce at the ground-window borders so movers stay visible.
      if (obj.x < 4 || obj.x > options_.width - 4) obj.vx = -obj.vx;
      if (obj.y < 4 || obj.y > options_.height - 4) obj.vy = -obj.vy;
    }
  }
  ++frame_;

  // Render intensity in camera coordinates, then mosaic.
  const int w = options_.width;
  const int h = options_.height;
  ImageU16 bayer(w, h);
  const double half = options_.object_size / 2.0;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const double gx = x + cam_x_;
      const double gy = y + cam_y_;
      float intensity = background_at(gx, gy);
      for (const Object& obj : objects_) {
        if (std::abs(gx - obj.x) <= half && std::abs(gy - obj.y) <= half)
          intensity = obj.brightness;
      }
      intensity += static_cast<float>(options_.noise_sigma *
                                      rng_.next_gaussian());
      // RGGB mosaic: attenuate per color channel so demosaic has work to
      // do (greens brighter than reds/blues on natural scenes).
      const bool even_x = (x % 2) == 0;
      const bool even_y = (y % 2) == 0;
      float gain = 1.0f;
      if (even_x && even_y) gain = 0.85f;        // R
      else if (!even_x && !even_y) gain = 0.75f; // B
      const float value = std::clamp(intensity * gain, 0.0f, 4095.0f);
      bayer.at(x, y) = static_cast<std::uint16_t>(value);
    }
  }
  return bayer;
}

std::vector<std::pair<double, double>> FrameGenerator::object_positions()
    const {
  std::vector<std::pair<double, double>> out;
  for (const Object& obj : objects_)
    out.emplace_back(obj.x - cam_x_, obj.y - cam_y_);
  return out;
}

}  // namespace presp::wami
