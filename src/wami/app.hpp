// The WAMI control application (paper Section VI, second experiment).
//
// "We also developed a multi-threaded Linux software, with one thread per
// reconfigurable tile, to control the execution flow of accelerators. All
// SoCs process individual frames without pipelining."
//
// Each frame traverses the Fig. 3 dataflow DAG:
//
//   1 debayer -> 2 grayscale -> { 3 gradient, 4 warp }
//   4 -> 5 subtract;   3 -> 6 steepest-descent
//   6 -> 7 hessian -> 8 invert;   {5,6} -> 9 sd-update
//   {8,9} -> 10 delta-p -> 11 param-update -> 12 change detection
//
// Kernels absent from a SoC's Table VI mapping become virtual nodes that
// complete as soon as their dependencies do (their work is folded into
// neighbours by that mapping). One software thread (coroutine) per
// reconfigurable tile walks its members in topological order, letting the
// runtime manager reconfigure and run each; frames are not pipelined.
//
// With `functional` enabled the accelerators execute the real kernels on
// simulated DRAM and every frame is checked bit-exactly against a
// host-side replica of the same kernel graph.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "runtime/api.hpp"
#include "wami/accelerators.hpp"
#include "wami/frame_generator.hpp"
#include "wami/kernels.hpp"

namespace presp::wami {

/// Fault-tolerance knobs for chaos/soak experiments. With an injector
/// attached the app still verifies every frame bit-exactly: failed
/// hardware attempts never execute the datapath, so the software fallback
/// (or the rerouted tile) is always the first and only execution.
struct WamiFaultOptions {
  /// Attached to the SoC before the first frame (not owned; must outlive
  /// the app).
  fault::FaultInjector* injector = nullptr;
  /// Register every kernel's bitstream for every reconfigurable tile so
  /// quarantined work can re-route instead of falling back to software.
  bool cross_tile_images = false;
  /// Readback-scrub every partition between frames (repairs SEUs that
  /// have not yet been caught by a start-time check).
  bool scrub_between_frames = false;
  /// Worker processes draining the between-frame scrub queue (sim-time
  /// concurrency via runtime::RequestPool; 1 reproduces the old serial
  /// drain's contention, any value yields the same repairs).
  int scrub_workers = 4;
  /// Re-admit quarantined tiles between frames (soak benches re-arm
  /// faults each frame; rehabilitation keeps every tile in play).
  bool rehabilitate_between_frames = false;
};

struct WamiAppOptions {
  WamiWorkload workload{128, 128};
  int frames = 3;
  /// Lucas-Kanade iterations per frame (stages 3..11 repeat).
  int lk_iterations = 2;
  /// Kernels absent from the SoC's Table VI mapping are folded into the
  /// software control loop on the CPU tile, charged the same per-item
  /// datapath cost scaled by this factor (1.0 models the mapping's
  /// intent: the omitted stage is fused into a neighbouring kernel's
  /// pass; bench_ablation_cpu_fallback sweeps the penalty of a genuine
  /// software implementation).
  double cpu_fallback_factor = 1.0;
  bool functional = true;
  /// Verify each frame's outputs against the host-side replica
  /// (requires functional).
  bool verify = true;
  SceneOptions scene;
  /// Compressed partial bitstream bytes per kernel index (1..12). When
  /// empty, sizes are estimated from the kernel LUT footprint (~11 B/LUT,
  /// matching the Table VI range); benches inject flow-measured sizes.
  std::vector<std::size_t> pbs_bytes;
  soc::SocOptions soc;
  /// Runtime manager tuning (watchdogs, retry budgets, health policy).
  runtime::ManagerOptions manager;
  /// Bitstream store residency policy (cache_slots > 0 enables the LRU
  /// partial-bitstream cache fed by the async source).
  runtime::StoreOptions store;
  /// Warm the store cache with each tile's next scheduled kernel while
  /// the current one reconfigures/runs. Output is bit-identical either
  /// way; only cache-fill latency moves off the critical path.
  bool prefetch_next_kernel = false;
  WamiFaultOptions fault;
};

struct FrameStats {
  double seconds = 0.0;
  double joules = 0.0;
  int reconfigurations = 0;
  bool verified = true;
};

struct WamiAppResult {
  char soc = '?';
  std::vector<FrameStats> frames;
  double seconds_per_frame = 0.0;  // steady-state mean (first frame excluded)
  double joules_per_frame = 0.0;
  double first_frame_seconds = 0.0;
  std::uint64_t reconfigurations = 0;
  std::uint64_t reconfigurations_avoided = 0;
  std::uint64_t icap_bytes = 0;
  soc::EnergyMeter::Breakdown energy_breakdown;
  bool all_verified = true;
  /// Final registration parameters (functional runs).
  AffineParams params{};
  // ---- fault-tolerance telemetry (zero without an injector) ----
  /// Kernel nodes executed in software after the hardware path reported a
  /// non-ok status.
  std::uint64_t software_fallbacks = 0;
  std::uint64_t watchdog_fires = 0;
  std::uint64_t reroutes = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t scrub_repairs = 0;
  std::uint64_t faults_injected = 0;
  /// Frames whose outputs failed bit-exact verification (the soak target
  /// is zero even under heavy fault injection).
  int frames_lost = 0;
};

class WamiApp {
 public:
  /// `which` selects SoC_X / SoC_Y / SoC_Z (Table VI).
  WamiApp(char which, WamiAppOptions options = {});
  ~WamiApp();
  WamiApp(const WamiApp&) = delete;
  WamiApp& operator=(const WamiApp&) = delete;

  /// Runs the configured number of frames to completion.
  WamiAppResult run();

  soc::Soc& soc() { return *soc_; }
  runtime::ReconfigurationManager& manager() { return *manager_; }
  runtime::BitstreamStore& store() { return *store_; }

  /// Implementation detail exposed for the in-translation-unit worker
  /// coroutines; not part of the stable API.
  struct State;

 private:
  std::unique_ptr<State> state_;
  std::unique_ptr<soc::Soc> soc_;
  std::unique_ptr<runtime::BitstreamStore> store_;
  std::unique_ptr<runtime::ReconfigurationManager> manager_;
  char which_;
  WamiAppOptions options_;
};

}  // namespace presp::wami
