// The pure-software WAMI pipeline: the golden reference the paper's SoCs
// are checked against, packaged as a reusable stateful API.
//
// Per frame: demosaic -> luma -> Lucas-Kanade registration against the
// first frame (template) -> stabilized frame -> GMM change detection.
// Users feed frames (e.g. from FrameGenerator) and get the registration
// parameters, the stabilized image and the change mask.
//
// With options.threads > 1 the pipeline owns an exec::ThreadPool and
// (a) row-tiles every kernel and (b) software-pipelines batches: frame
// N+1's Bayer front-end runs on the pool while frame N's Lucas-Kanade /
// GMM back-end (which carries the registration and background state and
// is therefore sequential across frames) runs on the caller's thread.
// Results are bit-identical to the serial pipeline at any thread count.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "exec/thread_pool.hpp"
#include "wami/kernels.hpp"

namespace presp::wami {

struct PipelineOptions {
  int lk_iterations = 4;
  /// Worker threads for kernel row-tiling and batch stage overlap;
  /// <= 1 runs fully serial (no pool is created).
  int threads = 0;
};

struct PipelineFrameResult {
  AffineParams params{};   // cumulative registration vs the template
  double residual = 0.0;   // LK mean absolute error after refinement
  ImageF stabilized;       // current frame warped onto the template
  ImageU16 change_mask;    // GMM foreground
  int changed_pixels = 0;
};

class WamiPipeline {
 public:
  explicit WamiPipeline(PipelineOptions options = {});
  ~WamiPipeline();
  WamiPipeline(const WamiPipeline&) = delete;
  WamiPipeline& operator=(const WamiPipeline&) = delete;

  /// Processes one Bayer frame; the first frame becomes the template.
  PipelineFrameResult process(const ImageU16& bayer);

  /// Processes a frame sequence with the front-end of frame N+1
  /// overlapping the back-end of frame N. Equivalent to calling process()
  /// per frame (bit-identical results, same state evolution), faster on a
  /// multi-core pool.
  std::vector<PipelineFrameResult> process_batch(
      std::span<const ImageU16> frames);

  int frames_processed() const { return frames_; }
  /// Worker-pool counters (all zero when running serial, i.e. no pool).
  exec::ThreadPool::Stats pool_stats() const {
    return pool_ ? pool_->stats() : exec::ThreadPool::Stats{};
  }
  const AffineParams& params() const { return params_; }
  /// The registration template (first frame's luma); empty before the
  /// first call.
  const std::optional<ImageF>& reference() const { return reference_; }

  /// Resets to the pre-first-frame state.
  void reset();

 private:
  /// Back-end: LK registration + stabilization + GMM on an already
  /// demosaiced luma frame. Sequential across frames (stateful).
  PipelineFrameResult process_luma(ImageF gray);
  exec::ThreadPool* pool() const { return pool_.get(); }

  PipelineOptions options_;
  std::unique_ptr<exec::ThreadPool> pool_;
  std::optional<ImageF> reference_;
  std::optional<GmmState> gmm_;
  AffineParams params_{};
  int frames_ = 0;
};

}  // namespace presp::wami
