// The pure-software WAMI pipeline: the golden reference the paper's SoCs
// are checked against, packaged as a reusable stateful API.
//
// Per frame: demosaic -> luma -> Lucas-Kanade registration against the
// first frame (template) -> stabilized frame -> GMM change detection.
// Users feed frames (e.g. from FrameGenerator) and get the registration
// parameters, the stabilized image and the change mask.
#pragma once

#include <optional>

#include "wami/kernels.hpp"

namespace presp::wami {

struct PipelineOptions {
  int lk_iterations = 4;
};

struct PipelineFrameResult {
  AffineParams params{};   // cumulative registration vs the template
  double residual = 0.0;   // LK mean absolute error after refinement
  ImageF stabilized;       // current frame warped onto the template
  ImageU16 change_mask;    // GMM foreground
  int changed_pixels = 0;
};

class WamiPipeline {
 public:
  explicit WamiPipeline(PipelineOptions options = {})
      : options_(options) {}

  /// Processes one Bayer frame; the first frame becomes the template.
  PipelineFrameResult process(const ImageU16& bayer);

  int frames_processed() const { return frames_; }
  const AffineParams& params() const { return params_; }
  /// The registration template (first frame's luma); empty before the
  /// first call.
  const std::optional<ImageF>& reference() const { return reference_; }

  /// Resets to the pre-first-frame state.
  void reset();

 private:
  PipelineOptions options_;
  std::optional<ImageF> reference_;
  std::optional<GmmState> gmm_;
  AffineParams params_{};
  int frames_ = 0;
};

}  // namespace presp::wami
