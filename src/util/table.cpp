#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace presp {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  PRESP_REQUIRE(!headers_.empty(), "TextTable needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  PRESP_REQUIRE(cells.size() == headers_.size(),
                "TextTable row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TextTable::integer(long long value) {
  return std::to_string(value);
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " ");
      if (c == 0) {
        os << row[c] << std::string(widths[c] - row[c].size(), ' ');
      } else {
        os << std::string(widths[c] - row[c].size(), ' ') << row[c];
      }
      os << " |";
    }
    os << '\n';
  };
  auto emit_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
    }
    os << '\n';
  };

  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

}  // namespace presp
