#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace presp {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& tag,
              const std::string& message) {
  if (level < g_level.load()) return;
  // Format outside the lock into one contiguous buffer so the critical
  // section is a single fwrite: concurrent pool workers (exec/) never
  // interleave fragments of a line, and the lock is held only for the
  // write syscall, not the formatting.
  std::string line;
  line.reserve(tag.size() + message.size() + 16);
  line += '[';
  line += level_name(level);
  line += "] ";
  line += tag;
  line += ": ";
  line += message;
  line += '\n';
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace presp
