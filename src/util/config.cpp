#include "util/config.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace presp {

Config Config::parse(const std::string& text) {
  Config cfg;
  std::string section;
  int line_no = 0;
  std::istringstream is(text);
  std::string raw;
  while (std::getline(is, raw)) {
    ++line_no;
    std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#' || line.front() == ';') continue;
    if (line.front() == '[') {
      if (line.back() != ']')
        throw ConfigError("line " + std::to_string(line_no) +
                          ": unterminated section header");
      section = std::string(trim(line.substr(1, line.size() - 2)));
      if (section.empty())
        throw ConfigError("line " + std::to_string(line_no) +
                          ": empty section name");
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos)
      throw ConfigError("line " + std::to_string(line_no) +
                        ": expected 'key = value'");
    const std::string key{trim(line.substr(0, eq))};
    const std::string value{trim(line.substr(eq + 1))};
    if (key.empty())
      throw ConfigError("line " + std::to_string(line_no) + ": empty key");
    if (cfg.has(section, key))
      throw ConfigError("line " + std::to_string(line_no) +
                        ": duplicate key '" + key + "' in section [" +
                        section + "]");
    cfg.set(section, key, value);
  }
  return cfg;
}

void Config::set(const std::string& section, const std::string& key,
                 const std::string& value) {
  auto it = sections_.find(section);
  if (it == sections_.end()) {
    section_order_.push_back(section);
    it = sections_.emplace(section, Section{}).first;
  }
  auto& sec = it->second;
  if (sec.values.find(key) == sec.values.end()) sec.order.push_back(key);
  sec.values[key] = value;
}

const Config::Section* Config::find_section(const std::string& name) const {
  const auto it = sections_.find(name);
  return it == sections_.end() ? nullptr : &it->second;
}

bool Config::has(const std::string& section, const std::string& key) const {
  const Section* sec = find_section(section);
  return sec != nullptr && sec->values.find(key) != sec->values.end();
}

const std::string& Config::get(const std::string& section,
                               const std::string& key) const {
  const Section* sec = find_section(section);
  if (sec != nullptr) {
    const auto it = sec->values.find(key);
    if (it != sec->values.end()) return it->second;
  }
  throw ConfigError("missing config key [" + section + "] " + key);
}

std::string Config::get_or(const std::string& section, const std::string& key,
                           const std::string& fallback) const {
  return has(section, key) ? get(section, key) : fallback;
}

long long Config::get_int(const std::string& section,
                          const std::string& key) const {
  return parse_int(get(section, key));
}

long long Config::get_int_or(const std::string& section,
                             const std::string& key,
                             long long fallback) const {
  return has(section, key) ? get_int(section, key) : fallback;
}

double Config::get_double(const std::string& section,
                          const std::string& key) const {
  return parse_double(get(section, key));
}

bool Config::get_bool_or(const std::string& section, const std::string& key,
                         bool fallback) const {
  if (!has(section, key)) return fallback;
  const std::string v = to_lower(get(section, key));
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw ConfigError("malformed boolean for [" + section + "] " + key + ": '" +
                    v + "'");
}

std::vector<std::string> Config::sections() const { return section_order_; }

std::vector<std::string> Config::keys(const std::string& section) const {
  const Section* sec = find_section(section);
  return sec == nullptr ? std::vector<std::string>{} : sec->order;
}

std::string Config::to_string() const {
  std::ostringstream os;
  for (const auto& name : section_order_) {
    const Section& sec = sections_.at(name);
    if (!name.empty()) os << '[' << name << "]\n";
    for (const auto& key : sec.order)
      os << key << " = " << sec.values.at(key) << '\n';
  }
  return os.str();
}

}  // namespace presp
