// Small statistics helpers used by benches and the CAD runtime-model
// calibration: running moments, percentiles, and least-squares fitting.
#pragma once

#include <cstddef>
#include <vector>

namespace presp {

/// Accumulates count/mean/variance/min/max in a single pass (Welford).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile with linear interpolation; p in [0,100]. Input need not be
/// sorted (a sorted copy is made). Throws InvalidArgument on empty input.
double percentile(std::vector<double> values, double p);

/// Ordinary least squares y = a + b*x. Returns {a, b}. Requires >= 2 points.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  /// Coefficient of determination of the fit.
  double r_squared = 0.0;
};
LinearFit fit_linear(const std::vector<double>& xs,
                     const std::vector<double>& ys);

/// Mean absolute percentage error between model and reference values.
double mape(const std::vector<double>& reference,
            const std::vector<double>& model);

}  // namespace presp
