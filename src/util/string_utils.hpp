// Small string helpers shared by the configuration parser and report
// generators.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace presp {

/// Splits on a single character; adjacent separators yield empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);

/// Joins with a separator (inverse of split for non-empty fields).
std::string join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Lower-cases ASCII characters only.
std::string to_lower(std::string_view text);

/// Parses a non-negative integer; throws ConfigError on malformed input.
long long parse_int(std::string_view text);

/// Parses a floating-point number; throws ConfigError on malformed input.
double parse_double(std::string_view text);

}  // namespace presp
