// ASCII table rendering for the benchmark harness. Every bench binary
// reproduces one of the paper's tables/figures; TextTable renders the rows
// in the same layout the paper uses so the output can be compared side by
// side with the publication.
#pragma once

#include <string>
#include <vector>

namespace presp {

class TextTable {
 public:
  /// Column headers define the table width; every later row must have the
  /// same number of cells.
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision, passing through
  /// strings untouched. "-" marks an empty cell (paper convention).
  static std::string num(double value, int precision = 1);
  static std::string integer(long long value);

  /// Renders with a header rule and column alignment (first column left,
  /// remaining columns right — the layout used by the paper's tables).
  std::string render() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace presp
