// Sectioned key=value configuration, modeled on ESP's `.esp_config` files.
// The PR-ESP flow is driven from one of these: grid dimensions, per-tile
// type/accelerator assignments, target device, flow options. Syntax:
//
//   # comment
//   [section]
//   key = value
//
// Keys outside any [section] live in the "" (global) section.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace presp {

class Config {
 public:
  Config() = default;

  /// Parses config text; throws ConfigError with a line number on syntax
  /// errors or duplicate keys within a section.
  static Config parse(const std::string& text);

  void set(const std::string& section, const std::string& key,
           const std::string& value);

  bool has(const std::string& section, const std::string& key) const;

  /// Throws ConfigError if the key is missing.
  const std::string& get(const std::string& section,
                         const std::string& key) const;
  std::string get_or(const std::string& section, const std::string& key,
                     const std::string& fallback) const;
  long long get_int(const std::string& section, const std::string& key) const;
  long long get_int_or(const std::string& section, const std::string& key,
                       long long fallback) const;
  double get_double(const std::string& section, const std::string& key) const;
  bool get_bool_or(const std::string& section, const std::string& key,
                   bool fallback) const;

  /// Section names in first-seen order.
  std::vector<std::string> sections() const;
  /// Keys of one section in first-seen order; empty if section absent.
  std::vector<std::string> keys(const std::string& section) const;

  /// Serializes back to parseable text (sections in first-seen order).
  std::string to_string() const;

 private:
  struct Section {
    std::vector<std::string> order;
    std::map<std::string, std::string> values;
  };
  const Section* find_section(const std::string& name) const;

  std::vector<std::string> section_order_;
  std::map<std::string, Section> sections_;
};

}  // namespace presp
