// Deterministic pseudo-random number generator (xoshiro256**) used by every
// stochastic component (annealing placer, floorplanner, traffic generators,
// synthetic imagery). Determinism across platforms matters more here than
// statistical sophistication: every experiment must replay bit-identically
// from its seed.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/error.hpp"

namespace presp {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    PRESP_ASSERT(bound > 0);
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(next_u64()) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        m = static_cast<__uint128_t>(next_u64()) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    PRESP_ASSERT(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  bool next_bool(double p_true = 0.5) { return next_double() < p_true; }

  /// Standard normal via Box-Muller (one value per call; simple and
  /// deterministic, throughput is irrelevant here).
  double next_gaussian();

  /// Fisher-Yates shuffle.
  template <typename Container>
  void shuffle(Container& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

inline double Rng::next_gaussian() {
  // Marsaglia polar method, deterministic given the stream position.
  double u;
  double v;
  double s;
  do {
    u = next_double(-1.0, 1.0);
    v = next_double(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  return u * factor;
}

}  // namespace presp
